// TrainingSession / HyperparamSearch: the session's runs must be bitwise
// identical to standalone Coordinator::Train at any thread count, and the
// search must keep deterministic candidate ordering under concurrency.

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "data/generators.h"
#include "models/logistic_regression.h"
#include "models/ppca.h"
#include "runtime/thread_pool.h"
#include "session/hyperparam_search.h"
#include "session/training_session.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectBitwiseEqual;
using testing::FastConfig;
using testing::kTightContract;

TEST(TrainingSession, MatchesStandaloneCoordinatorBitwise) {
  const Dataset data = testing::SmallDenseLogistic(20000, 6, 3);
  const std::vector<double> l2s = {1e-4, 1e-3, 1e-2};

  TrainingSession session(Dataset(data), FastConfig(11));
  const Coordinator coordinator(FastConfig(11));
  for (const double l2 : l2s) {
    LogisticRegressionSpec spec(l2);
    const auto via_session = session.Train(spec, kTightContract);
    const auto standalone = coordinator.Train(spec, data, kTightContract);
    ASSERT_TRUE(via_session.ok());
    ASSERT_TRUE(standalone.ok());
    ExpectBitwiseEqual(*via_session, *standalone, "session vs standalone");
  }

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.runs, static_cast<int>(l2s.size()));
  // One prefix served every run: the amortization the session exists for.
  // (The prefix itself is memoized above the sample cache, so the cache
  // records its holdout + D_0 materializations as misses, once.)
  EXPECT_EQ(stats.prefixes_computed, 1);
  EXPECT_GE(stats.cache.misses, 2u);
  EXPECT_GT(stats.cache.cached_rows, 0);
  EXPECT_GT(stats.prefix_seconds, 0.0);
  EXPECT_GT(stats.run_timings.total, 0.0);
}

// Sparse workload through the ObservedFisher Gram path: the session's
// shared feature Gram (reuse_feature_gram on, the default) and the
// per-candidate merge oracle (off) must BOTH be bitwise identical to a
// standalone Coordinator with the same flag — the cache only removes a
// recomputation, and the rescale algebra is applied identically with or
// without a session.
TEST(TrainingSession, SparseStatisticsMatchStandaloneWithGramReuseOnAndOff) {
  const Dataset data = testing::SparseBinaryData(20000, /*dim=*/400,
                                                 /*seed=*/13,
                                                 /*nnz_per_row=*/12);
  for (const bool reuse : {true, false}) {
    BlinkConfig config = FastConfig(11);
    config.reuse_feature_gram = reuse;
    config.stats_sample_size = 256;  // below dim: sparse Gram path engaged
    TrainingSession session(Dataset(data), config);
    const Coordinator coordinator(config);
    for (const double l2 : {1e-3, 1e-2}) {
      LogisticRegressionSpec spec(l2);
      const auto via_session = session.Train(spec, kTightContract);
      const auto standalone = coordinator.Train(spec, data, kTightContract);
      ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();
      ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();
      ExpectBitwiseEqual(*via_session, *standalone,
                         reuse ? "gram reuse on" : "gram reuse off");
    }
    const SessionStats stats = session.stats();
    if (reuse) {
      // The second candidate's initial statistics hit the cached Gram.
      EXPECT_GE(stats.gram_cache.hits, 1u);
      EXPECT_GE(stats.gram_cache.misses, 1u);
    } else {
      // The merge path never touches the Gram cache.
      EXPECT_EQ(stats.gram_cache.hits + stats.gram_cache.misses, 0u);
    }
  }
}

TEST(SampleCacheTest, SharesMaterializationsByKey) {
  const Dataset data = MakeSyntheticLogistic(500, 4, 1);
  SampleCache cache;
  int factory_calls = 0;
  const SampleCache::Key key{SampleCache::Purpose::kFinalSample, 42, 100};
  auto factory = [&] {
    ++factory_calls;
    Rng rng(7);
    return data.SampleRows(100, &rng);
  };
  const auto a = cache.GetOrCreate(key, factory);
  const auto b = cache.GetOrCreate(key, factory);
  EXPECT_EQ(a.get(), b.get());  // shared by reference, not re-copied
  EXPECT_EQ(factory_calls, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.cached_rows, 100);

  // A different purpose or size is a different subset.
  const auto c = cache.GetOrCreate(
      {SampleCache::Purpose::kCustom, 42, 100}, factory);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(factory_calls, 2);

  cache.Clear();
  EXPECT_EQ(cache.stats().cached_rows, 0);
  EXPECT_EQ(a->num_rows(), 100);  // live users keep their dataset
}

TEST(TrainingSession, PerRunSeedsGetTheirOwnPrefix) {
  const Dataset data = MakeSyntheticLogistic(20000, 5, 7);
  TrainingSession session(Dataset(data), FastConfig(11));
  LogisticRegressionSpec spec(1e-3);

  const auto a = session.Train(spec, kTightContract, 11);
  const auto b = session.Train(spec, kTightContract, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(session.stats().prefixes_computed, 2);

  // Each seed matches its standalone run.
  const auto sa = Coordinator(FastConfig(11)).Train(spec, data, kTightContract);
  const auto sb = Coordinator(FastConfig(99)).Train(spec, data, kTightContract);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  ExpectBitwiseEqual(*a, *sa, "seed 11");
  ExpectBitwiseEqual(*b, *sb, "seed 99");
}

TEST(HyperparamSearch, ConcurrentSearchMatchesStandaloneAtAnyThreadCount) {
  const Dataset data = MakeSyntheticLogistic(20000, 6, 5);
  const std::vector<Candidate> candidates =
      HyperparamSearch::LogGrid(1e-4, 1e-1, 4);

  // Standalone reference, fully serial.
  std::vector<ApproxResult> reference;
  for (const Candidate& c : candidates) {
    BlinkConfig config = FastConfig(11);
    config.runtime.enabled = false;
    LogisticRegressionSpec spec(c.l2);
    const auto r = Coordinator(config).Train(spec, data, kTightContract);
    ASSERT_TRUE(r.ok());
    reference.push_back(*r);
  }

  ThreadPool pool(4);
  for (const int threads : {1, 2, 4}) {
    BlinkConfig config = FastConfig(11);
    config.runtime.pool = &pool;
    config.runtime.num_threads = threads;
    TrainingSession session(Dataset(data), config);
    SearchOptions options;
    options.contract = kTightContract;
    HyperparamSearch search(&session, options);
    const SearchOutcome outcome = search.Run(
        [](const Candidate& c) {
          return std::make_shared<LogisticRegressionSpec>(c.l2);
        },
        candidates);

    ASSERT_EQ(outcome.candidates.size(), candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const CandidateResult& cr = outcome.candidates[i];
      ASSERT_TRUE(cr.status.ok()) << cr.status.ToString();
      EXPECT_FALSE(cr.skipped);
      EXPECT_FALSE(cr.pruned);
      // Deterministic ordering: slot i holds candidate i.
      EXPECT_EQ(cr.candidate.l2, candidates[i].l2);
      ExpectBitwiseEqual(cr.result, reference[i], "search vs standalone");
    }
    EXPECT_GE(outcome.best_index, 0);
    // Scores are deterministic, so the winner is too.
    const double best_score =
        outcome.candidates[static_cast<std::size_t>(outcome.best_index)]
            .score;
    for (const CandidateResult& cr : outcome.candidates) {
      EXPECT_LE(cr.score, best_score);
    }
    // The k candidates shared one prefix computation.
    EXPECT_EQ(outcome.session_stats.prefixes_computed, 1);
    EXPECT_EQ(outcome.session_stats.runs,
              static_cast<int>(candidates.size()));
  }
}

TEST(HyperparamSearch, FinalTrainTokenBudgetIsHonoredAndFlagged) {
  const Dataset data = MakeSyntheticLogistic(20000, 6, 9);
  TrainingSession session(Dataset(data), FastConfig(11));
  SearchOptions options;
  options.contract = kTightContract;  // every candidate wants a final train
  options.max_final_trains = 1;
  HyperparamSearch search(&session, options);
  const SearchOutcome outcome = search.Run(
      [](const Candidate& c) {
        return std::make_shared<LogisticRegressionSpec>(c.l2);
      },
      HyperparamSearch::LogGrid(1e-4, 1e-1, 3));

  int finals = 0;
  for (const CandidateResult& cr : outcome.candidates) {
    ASSERT_TRUE(cr.status.ok());
    if (!cr.result.used_initial_only) ++finals;
    if (cr.final_train_skipped) {
      // Clipped, not satisfied: the m_0 bound exceeded the contract.
      EXPECT_TRUE(cr.result.used_initial_only);
      EXPECT_FALSE(cr.result.contract_satisfied);
    }
  }
  EXPECT_EQ(finals, 1);
  EXPECT_EQ(static_cast<int>(outcome.candidates.size()) - finals, 2);
}

TEST(HyperparamSearch, DominatedCandidateIsPrunedAfterInitialModel) {
  // PPCA rank selection: the candidate knob is the factor rank. On
  // true-rank-2 data the rank-1 model's log-likelihood is far worse than
  // the rank-2 model's while its eps_0 stays small, so its optimistic
  // bound (score(m_0) + eps_0) cannot beat the completed rank-2 candidate.
  const Dataset labeled = MakeSyntheticLowRank(20000, 8, 2, 13, 0.4);
  const Dataset data(Matrix(labeled.dense()), Vector(), Task::kUnsupervised);
  BlinkConfig config = FastConfig(11);
  // Serial execution => candidates complete in order, so the dominance
  // check against "best completed so far" is deterministic.
  config.runtime.enabled = false;
  TrainingSession session(Dataset(data), config);
  SearchOptions options;
  // Tight enough that no initial model satisfies the contract outright
  // (a contract-satisfying m_0 returns before the dominance check).
  options.contract = {1e-6, 0.05};
  options.prune_dominated = true;
  HyperparamSearch search(&session, options);

  std::vector<Candidate> candidates(2);
  candidates[0].l2 = 2;  // interpreted as rank by the factory
  candidates[1].l2 = 1;
  const SearchOutcome outcome = search.Run(
      [](const Candidate& c) {
        return std::make_shared<PpcaSpec>(
            static_cast<Vector::Index>(c.l2));
      },
      candidates);

  ASSERT_TRUE(outcome.candidates[0].status.ok())
      << outcome.candidates[0].status.ToString();
  ASSERT_TRUE(outcome.candidates[1].status.ok())
      << outcome.candidates[1].status.ToString();
  EXPECT_FALSE(outcome.candidates[0].pruned);
  EXPECT_TRUE(outcome.candidates[1].pruned);
  EXPECT_TRUE(outcome.candidates[1].result.used_initial_only);
  EXPECT_EQ(outcome.best_index, 0);
}

TEST(HyperparamSearch, ExhaustedTimeBudgetSkipsAndFlagsCandidates) {
  const Dataset data = MakeSyntheticLogistic(5000, 4, 9);
  TrainingSession session(Dataset(data), FastConfig(11));
  SearchOptions options;
  options.contract = kTightContract;
  options.time_budget_seconds = 1e-9;  // expires before any candidate starts
  HyperparamSearch search(&session, options);
  const SearchOutcome outcome = search.Run(
      [](const Candidate& c) {
        return std::make_shared<LogisticRegressionSpec>(c.l2);
      },
      HyperparamSearch::LogGrid(1e-4, 1e-1, 3));

  ASSERT_EQ(outcome.candidates.size(), 3u);
  for (const CandidateResult& cr : outcome.candidates) {
    EXPECT_TRUE(cr.skipped);
    EXPECT_TRUE(cr.status.ok());
  }
  EXPECT_EQ(outcome.best_index, -1);
  EXPECT_EQ(outcome.session_stats.runs, 0);
}

// Batched candidate scoring must be a pure execution-strategy change: the
// scores (and hence the winner) are bitwise identical to the
// per-candidate holdout passes, and the batch path actually engages (one
// prediction matrix for the whole same-seed group).
TEST(HyperparamSearch, BatchedScoringMatchesPerCandidateScoresBitwise) {
  const Dataset data = testing::SmallDenseLogistic(20000, 6, 5);
  const std::vector<Candidate> candidates =
      HyperparamSearch::LogGrid(1e-4, 1e-1, 5);
  const auto factory = [](const Candidate& c) {
    return std::make_shared<LogisticRegressionSpec>(c.l2);
  };

  SearchOutcome outcomes[2];
  for (const bool batched : {false, true}) {
    TrainingSession session(Dataset(data), FastConfig(11));
    SearchOptions options;
    options.contract = kTightContract;
    options.batched_scoring = batched;
    HyperparamSearch search(&session, options);
    outcomes[batched ? 1 : 0] = search.Run(factory, candidates);
  }

  const SearchOutcome& per_candidate = outcomes[0];
  const SearchOutcome& batched = outcomes[1];
  EXPECT_EQ(per_candidate.batched_score_groups, 0);
  // All candidates share the session seed => one holdout => one matrix.
  EXPECT_EQ(batched.batched_score_groups, 1);
  ASSERT_EQ(batched.candidates.size(), per_candidate.candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ASSERT_TRUE(batched.candidates[i].status.ok());
    ASSERT_TRUE(per_candidate.candidates[i].status.ok());
    EXPECT_EQ(batched.candidates[i].score, per_candidate.candidates[i].score)
        << "candidate " << i;
    ExpectBitwiseEqual(batched.candidates[i].result,
                       per_candidate.candidates[i].result, "batched scoring");
  }
  EXPECT_EQ(batched.best_index, per_candidate.best_index);
}

// A logistic spec with inverted predictions: same training (objective and
// gradients inherited), different Predict/PredictBatch. Shares the base
// class's name() but not its dynamic type — the grouping must split them.
class FlippedLogistic : public LogisticRegressionSpec {
 public:
  using LogisticRegressionSpec::LogisticRegressionSpec;
  void Predict(const Vector& theta, const Dataset& data,
               Vector* out) const override {
    LogisticRegressionSpec::Predict(theta, data, out);
    for (Vector::Index i = 0; i < out->size(); ++i) {
      (*out)[i] = 1.0 - (*out)[i];
    }
  }
  void PredictBatch(const std::vector<const Vector*>& thetas,
                    const Dataset& data, Matrix* out) const override {
    LogisticRegressionSpec::PredictBatch(thetas, data, out);
    for (Matrix::Index i = 0; i < out->rows(); ++i) {
      for (Matrix::Index c = 0; c < out->cols(); ++c) {
        (*out)(i, c) = 1.0 - (*out)(i, c);
      }
    }
  }
};

// A subclass that overrides Predict but NOT PredictBatch — the inherited
// margin kernel no longer matches its predictions. The search's
// self-check must catch the divergence and score it per candidate.
class InconsistentLogistic : public LogisticRegressionSpec {
 public:
  using LogisticRegressionSpec::LogisticRegressionSpec;
  void Predict(const Vector& theta, const Dataset& data,
               Vector* out) const override {
    LogisticRegressionSpec::Predict(theta, data, out);
    for (Vector::Index i = 0; i < out->size(); ++i) {
      (*out)[i] = 1.0 - (*out)[i];
    }
  }
};

// A spec whose predictions depend on state beyond theta (a decision
// threshold): it must opt out of batched scoring entirely.
class ThresholdLogistic : public LogisticRegressionSpec {
 public:
  ThresholdLogistic(double l2, double threshold)
      : LogisticRegressionSpec(l2), threshold_(threshold) {}
  bool has_theta_only_predictions() const override { return false; }
  void Predict(const Vector& theta, const Dataset& data,
               Vector* out) const override {
    out->Resize(data.num_rows());
    for (Dataset::Index i = 0; i < data.num_rows(); ++i) {
      (*out)[i] = data.RowDot(i, theta.data()) >= threshold_ ? 1.0 : 0.0;
    }
  }

 private:
  double threshold_;
};

// Mixed spec types in one search: the batch-scoring grouping must split
// on the exact dynamic type (a subclass sharing the base name() never
// rides on the base group's prediction matrix) and honor the
// has_theta_only_predictions() opt-out — with scores bitwise equal to the
// per-candidate path in every case.
TEST(HyperparamSearch, BatchedScoringSplitsMixedSpecTypes) {
  const Dataset data = testing::SmallDenseLogistic(20000, 6, 5);
  std::vector<Candidate> candidates = HyperparamSearch::LogGrid(1e-4, 1e-2, 7);
  // Deterministic type assignment by index, carried through the label:
  // base {0, 2}, flipped {1, 5}, threshold opt-out {3}, and an
  // inconsistent pair {4, 6} whose group must fail the self-check.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i].label = std::to_string(i);
  }
  const auto typed_factory =
      [](const Candidate& c) -> std::shared_ptr<ModelSpec> {
    const int i = std::stoi(c.label);
    if (i == 1 || i == 5) return std::make_shared<FlippedLogistic>(c.l2);
    if (i == 3) return std::make_shared<ThresholdLogistic>(c.l2, 0.1);
    if (i == 4 || i == 6) return std::make_shared<InconsistentLogistic>(c.l2);
    return std::make_shared<LogisticRegressionSpec>(c.l2);
  };

  SearchOutcome outcomes[2];
  for (const bool batched : {false, true}) {
    TrainingSession session(Dataset(data), FastConfig(11));
    SearchOptions options;
    options.contract = kTightContract;
    options.batched_scoring = batched;
    HyperparamSearch search(&session, options);
    outcomes[batched ? 1 : 0] = search.Run(typed_factory, candidates);
  }

  // Matrices built: {base x2} and {flipped x2} (the typeid split keeps a
  // subclass off its base's matrix even though name() matches). The
  // threshold spec opted out via has_theta_only_predictions(), and the
  // inconsistent pair's group failed the Predict-vs-PredictBatch
  // self-check — both scored per candidate, contributing no matrix.
  EXPECT_EQ(outcomes[1].batched_score_groups, 2);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ASSERT_TRUE(outcomes[0].candidates[i].status.ok());
    ASSERT_TRUE(outcomes[1].candidates[i].status.ok());
    EXPECT_EQ(outcomes[1].candidates[i].score, outcomes[0].candidates[i].score)
        << "candidate " << i;
  }
  EXPECT_EQ(outcomes[1].best_index, outcomes[0].best_index);
}

TEST(HyperparamSearch, QuantizedFinalSampleSizeOnlyRoundsUpOntoTheGrid) {
  // SearchOptions::quantize_final_n rounds each candidate's estimated
  // final n UP to the 2^(1/4) log-grid so near-identical estimates share
  // the (seed, final n) sample-cache / feature-Gram keys. The contract
  // must be unaffected: rounding up can only shrink v (Theorem 2).
  const auto data = std::make_shared<const Dataset>(
      testing::SparseBinaryData(20000, /*dim=*/400, /*seed=*/13,
                                /*nnz_per_row=*/12));
  const std::vector<Candidate> candidates =
      HyperparamSearch::LogGrid(1e-4, 1e-3, 5);
  const auto factory = [](const Candidate& c) {
    return std::make_shared<LogisticRegressionSpec>(c.l2);
  };
  BlinkConfig config = FastConfig(11);
  config.stats_sample_size = 128;  // p = 400 > n_s: sparse Gram path

  SearchOutcome outcomes[2];
  for (const bool quantize : {false, true}) {
    TrainingSession session(data, config);
    SearchOptions options;
    options.contract = kTightContract;
    options.quantize_final_n = quantize;
    outcomes[quantize ? 1 : 0] =
        HyperparamSearch(&session, options).Run(factory, candidates);
  }
  const SearchOutcome& off = outcomes[0];
  const SearchOutcome& on = outcomes[1];

  std::set<Dataset::Index> distinct_off, distinct_on;
  int finals = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ApproxResult& r_off = off.candidates[i].result;
    const ApproxResult& r_on = on.candidates[i].result;
    ASSERT_TRUE(off.candidates[i].status.ok());
    ASSERT_TRUE(on.candidates[i].status.ok());
    EXPECT_EQ(r_off.size_estimate.quantized_from, 0);
    if (r_off.used_initial_only) {
      EXPECT_TRUE(r_on.used_initial_only);
      continue;
    }
    ++finals;
    distinct_off.insert(r_off.sample_size);
    distinct_on.insert(r_on.sample_size);
    // Quantization only rounds UP, from the same raw estimate (the stages
    // before it are untouched).
    EXPECT_GE(r_on.size_estimate.sample_size, r_off.size_estimate.sample_size)
        << "candidate " << i;
    if (r_on.size_estimate.quantized_from > 0) {
      EXPECT_EQ(r_on.size_estimate.quantized_from,
                r_off.size_estimate.sample_size)
          << "candidate " << i;
      // The quantized n sits on the 2^(1/4) grid (or the pool cap).
      const Dataset::Index n = r_on.size_estimate.sample_size;
      bool on_grid = n == r_on.full_size;
      double g = 1.0;
      while (!on_grid && static_cast<Dataset::Index>(std::llround(g)) <= n) {
        on_grid = static_cast<Dataset::Index>(std::llround(g)) == n;
        g *= std::pow(2.0, 0.25);
      }
      EXPECT_TRUE(on_grid) << "n=" << n;
    } else {
      EXPECT_EQ(r_on.size_estimate.sample_size,
                r_off.size_estimate.sample_size);
    }
    // The guarantee survives rounding up: any candidate that met the
    // contract without quantization still meets it with.
    if (r_off.contract_satisfied) {
      EXPECT_TRUE(r_on.contract_satisfied) << "candidate " << i;
    }
  }
  ASSERT_GT(finals, 0) << "fixture regression: no candidate trained a final";
  // Rounding onto a coarser grid can only merge final sizes, never split.
  EXPECT_LE(distinct_on.size(), distinct_off.size());
}

TEST(HyperparamSearch, GridAndRandomCandidateGenerators) {
  const auto grid = HyperparamSearch::LogGrid(1e-4, 1e-1, 4);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid.front().l2, 1e-4);
  EXPECT_NEAR(grid.back().l2, 1e-1, 1e-12);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i].l2, grid[i - 1].l2);
  }

  const auto random = HyperparamSearch::LogRandom(1e-4, 1e-1, 16, 123);
  ASSERT_EQ(random.size(), 16u);
  for (const Candidate& c : random) {
    EXPECT_GE(c.l2, 1e-4);
    EXPECT_LE(c.l2, 1e-1);
  }
  // Same seed, same draws.
  const auto random2 = HyperparamSearch::LogRandom(1e-4, 1e-1, 16, 123);
  for (std::size_t i = 0; i < random.size(); ++i) {
    EXPECT_EQ(random[i].l2, random2[i].l2);
  }

  EXPECT_TRUE(HyperparamSearch::LogGrid(1e-1, 1e-4, 4).empty());
  EXPECT_TRUE(HyperparamSearch::LogRandom(0.0, 1e-1, 4, 1).empty());
}

}  // namespace
}  // namespace blinkml
