// Parameterized accuracy-estimator invariants across every model class:
// the estimator must produce sane, reproducible, monotone bounds for each
// of the five supported specs — the property the whole system rests on.

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "core/accuracy_estimator.h"
#include "core/statistics.h"
#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/max_entropy.h"
#include "models/poisson_regression.h"
#include "models/ppca.h"
#include "models/trainer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

struct SweepCase {
  const char* name;
  std::shared_ptr<ModelSpec> spec;
  Dataset data;
  bool bounded_metric;  // v in [0, 1] (classification / cosine)
};

SweepCase MakeCase(int which) {
  switch (which) {
    case 0:
      return {"Lin", std::make_shared<LinearRegressionSpec>(1e-3),
              MakeSyntheticLinear(20000, 6, 900), false};
    case 1:
      return {"LR", std::make_shared<LogisticRegressionSpec>(1e-3),
              MakeSyntheticLogistic(20000, 6, 901), true};
    case 2:
      return {"ME", std::make_shared<MaxEntropySpec>(1e-3),
              MakeSyntheticMulticlass(20000, 5, 4, 902), true};
    case 3:
      return {"Poisson", std::make_shared<PoissonRegressionSpec>(1e-3),
              MakeSyntheticCounts(20000, 6, 903), false};
    default:
      return {"PPCA", std::make_shared<PpcaSpec>(3),
              MakeSyntheticLowRank(20000, 8, 3, 904), true};
  }
}

class EstimatorSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    case_ = MakeCase(GetParam());
    Rng rng(50);
    auto [holdout, pool] = case_.data.Split(0.1, &rng);
    holdout_ = std::move(holdout);
    pool_ = std::move(pool);
    d0_ = pool_.SampleRows(2000, &rng);
    const auto model = ModelTrainer().Train(*case_.spec, d0_);
    ASSERT_TRUE(model.ok()) << case_.name;
    theta0_ = model->theta;
    StatsOptions options;
    Rng stats_rng(51);
    auto stats =
        ComputeStatistics(*case_.spec, theta0_, d0_, options, &stats_rng);
    ASSERT_TRUE(stats.ok()) << case_.name;
    sampler_ = std::make_unique<ParamSampler>(std::move(*stats));
  }

  SweepCase case_{nullptr, nullptr, Dataset(), false};
  Dataset holdout_, pool_, d0_;
  Vector theta0_;
  std::unique_ptr<ParamSampler> sampler_;
};

TEST_P(EstimatorSweep, BoundIsSaneAndFinite) {
  AccuracyOptions options;
  options.num_samples = 128;
  Rng rng(52);
  const auto est =
      EstimateAccuracy(*case_.spec, theta0_, 2000, pool_.num_rows(),
                       *sampler_, holdout_, options, &rng);
  ASSERT_TRUE(est.ok()) << case_.name;
  EXPECT_TRUE(std::isfinite(est->epsilon)) << case_.name;
  EXPECT_GE(est->epsilon, 0.0) << case_.name;
  if (case_.bounded_metric) {
    EXPECT_LE(est->epsilon, 1.0 + 1e-12) << case_.name;
  }
  EXPECT_GE(est->epsilon, est->mean_v) << case_.name;
}

TEST_P(EstimatorSweep, BoundDecreasesWithSampleSize) {
  AccuracyOptions options;
  options.num_samples = 128;
  double prev = std::numeric_limits<double>::infinity();
  for (const Dataset::Index n : {2000, 6000, 14000}) {
    Rng rng(53);  // common random numbers across n for strictness
    const auto est = EstimateAccuracy(*case_.spec, theta0_, n,
                                      pool_.num_rows(), *sampler_, holdout_,
                                      options, &rng);
    ASSERT_TRUE(est.ok()) << case_.name;
    EXPECT_LE(est->epsilon, prev + 1e-12) << case_.name << " n=" << n;
    prev = est->epsilon;
  }
}

TEST_P(EstimatorSweep, DeterministicGivenSeed) {
  AccuracyOptions options;
  options.num_samples = 64;
  Rng rng_a(54), rng_b(54);
  const auto a = EstimateAccuracy(*case_.spec, theta0_, 2000,
                                  pool_.num_rows(), *sampler_, holdout_,
                                  options, &rng_a);
  const auto b = EstimateAccuracy(*case_.spec, theta0_, 2000,
                                  pool_.num_rows(), *sampler_, holdout_,
                                  options, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->epsilon, b->epsilon) << case_.name;
  EXPECT_DOUBLE_EQ(a->mean_v, b->mean_v) << case_.name;
}

TEST_P(EstimatorSweep, TighterDeltaGivesLargerBound) {
  // Smaller delta (more confidence) can only push the conservative
  // quantile level up, never down.
  AccuracyOptions loose;
  loose.num_samples = 256;
  loose.delta = 0.5;
  AccuracyOptions tight = loose;
  tight.delta = 0.01;
  Rng rng_a(55), rng_b(55);
  const auto l = EstimateAccuracy(*case_.spec, theta0_, 2000,
                                  pool_.num_rows(), *sampler_, holdout_,
                                  loose, &rng_a);
  const auto t = EstimateAccuracy(*case_.spec, theta0_, 2000,
                                  pool_.num_rows(), *sampler_, holdout_,
                                  tight, &rng_b);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(t.ok());
  EXPECT_GE(t->epsilon, l->epsilon - 1e-12) << case_.name;
  EXPECT_GE(t->quantile_level, l->quantile_level) << case_.name;
}

INSTANTIATE_TEST_SUITE_P(AllModelClasses, EstimatorSweep,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace blinkml
