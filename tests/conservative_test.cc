#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/conservative.h"
#include "core/contract.h"
#include "random/rng.h"
#include "util/check.h"

namespace blinkml {
namespace {

TEST(ConservativeQuantile, LevelAlwaysAboveConfidence) {
  // The level must never fall below 1 - delta: the empirical quantile has
  // to cover at least the target probability mass.
  for (const double delta : {0.01, 0.05, 0.1, 0.3}) {
    for (const int k : {16, 128, 1024, 100000}) {
      const QuantileLevel q = ConservativeQuantileLevel(delta, k);
      EXPECT_GE(q.level, 1.0 - delta) << "delta=" << delta << " k=" << k;
      EXPECT_LE(q.level, 1.0);
    }
  }
}

TEST(ConservativeQuantile, LevelDecreasesWithMoreSamples) {
  // More Monte-Carlo samples -> tighter (smaller) feasible level.
  const double delta = 0.2;
  double prev = 1.1;
  for (const int k : {8, 64, 512, 4096, 32768}) {
    const QuantileLevel q = ConservativeQuantileLevel(delta, k);
    EXPECT_LE(q.level, prev + 1e-12) << "k=" << k;
    prev = q.level;
  }
}

TEST(ConservativeQuantile, ConvergesToOneMinusDelta) {
  // As k -> infinity the Hoeffding correction vanishes and the optimal
  // split c -> 1, so the level approaches 1 - delta.
  const QuantileLevel q = ConservativeQuantileLevel(0.1, 10'000'000);
  EXPECT_LT(q.level, 0.91);
  EXPECT_FALSE(q.clamped);
}

TEST(ConservativeQuantile, SmallKClampsToMaximum) {
  // delta = 0.05 with very few samples: no feasible level < 1 (this is the
  // regime where the paper's own constant was infeasible); the estimator
  // then uses the sample maximum.
  const QuantileLevel q = ConservativeQuantileLevel(0.05, 10);
  EXPECT_TRUE(q.clamped);
  EXPECT_DOUBLE_EQ(q.level, 1.0);
}

TEST(ConservativeQuantile, FeasibleAtModerateKForDelta05) {
  const QuantileLevel q = ConservativeQuantileLevel(0.05, 20000);
  EXPECT_FALSE(q.clamped);
  EXPECT_LT(q.level, 1.0);
  EXPECT_GE(q.level, 0.95);
  EXPECT_GT(q.split_c, 0.95);  // split constant must exceed 1 - delta
}

TEST(ConservativeQuantile, GuaranteeHoldsByMonteCarlo) {
  // End-to-end check of the probabilistic guarantee: if v has a known
  // distribution and we bound it by the conservative empirical quantile of
  // k draws, then Pr[fresh v <= bound] >= 1 - delta should hold for the
  // *aggregate* coverage across trials.
  const double delta = 0.2;
  const int k = 256;
  const QuantileLevel level = ConservativeQuantileLevel(delta, k);
  Rng rng(7);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> vs(k);
    for (auto& v : vs) v = std::fabs(rng.Normal());
    std::sort(vs.begin(), vs.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(level.level * k));
    const double bound = vs[std::min<std::size_t>(rank, k) - 1];
    // True CDF of |N(0,1)| at bound = erf(bound / sqrt(2)).
    const double coverage = std::erf(bound / std::sqrt(2.0));
    if (coverage >= 1.0 - delta) ++covered;
  }
  // The bound construction should succeed in the vast majority of trials
  // (it is conservative, so well above the nominal rate).
  EXPECT_GE(static_cast<double>(covered) / trials, 0.9);
}

TEST(ConservativeQuantile, RejectsBadInputs) {
  EXPECT_THROW(ConservativeQuantileLevel(0.0, 10), CheckError);
  EXPECT_THROW(ConservativeQuantileLevel(1.0, 10), CheckError);
  EXPECT_THROW(ConservativeQuantileLevel(0.1, 0), CheckError);
}

// ---------- Lemma 1 ----------

TEST(Lemma1, MatchesFormula) {
  EXPECT_DOUBLE_EQ(FullModelGeneralizationBound(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FullModelGeneralizationBound(0.2, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(FullModelGeneralizationBound(0.0, 0.1), 0.1);
  EXPECT_NEAR(FullModelGeneralizationBound(0.2, 0.1), 0.2 + 0.1 - 0.02,
              1e-15);
}

TEST(Lemma1, BoundStaysInUnitIntervalAndIsMonotone) {
  for (double eg = 0.0; eg <= 1.0; eg += 0.25) {
    double prev = -1.0;
    for (double e = 0.0; e <= 1.5; e += 0.25) {
      const double b = FullModelGeneralizationBound(eg, e);
      EXPECT_GE(b, eg);
      EXPECT_LE(b, 1.0 + 1e-15);
      EXPECT_GE(b, prev - 1e-15);  // monotone in eps
      prev = b;
    }
  }
}

TEST(Lemma1, RejectsInvalidInputs) {
  EXPECT_THROW(FullModelGeneralizationBound(-0.1, 0.1), CheckError);
  EXPECT_THROW(FullModelGeneralizationBound(1.1, 0.1), CheckError);
  EXPECT_THROW(FullModelGeneralizationBound(0.1, -0.1), CheckError);
}

// ---------- Contract validation ----------

TEST(Contract, ValidationRules) {
  EXPECT_TRUE(ValidateContract({0.05, 0.05}).ok());
  EXPECT_TRUE(ValidateContract({0.0, 0.5}).ok());
  EXPECT_TRUE(ValidateContract({2.0, 0.99}).ok());  // eps > 1 is legal
  EXPECT_FALSE(ValidateContract({-0.1, 0.05}).ok());
  EXPECT_FALSE(ValidateContract({0.05, 0.0}).ok());
  EXPECT_FALSE(ValidateContract({0.05, 1.0}).ok());
  EXPECT_FALSE(ValidateContract({std::nan(""), 0.05}).ok());
}

TEST(Contract, StatsMethodNames) {
  EXPECT_STREQ(StatsMethodName(StatsMethod::kClosedForm), "ClosedForm");
  EXPECT_STREQ(StatsMethodName(StatsMethod::kInverseGradients),
               "InverseGradients");
  EXPECT_STREQ(StatsMethodName(StatsMethod::kObservedFisher),
               "ObservedFisher");
}

}  // namespace
}  // namespace blinkml
