#include <gtest/gtest.h>

#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/trainer.h"
#include "models/sgd.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

TEST(Sgd, RejectsBadOptions) {
  LinearRegressionSpec spec(1e-2);
  const Dataset data = MakeSyntheticLinear(100, 3, 1);
  SgdOptions options;
  options.batch_size = 0;
  EXPECT_FALSE(MinimizeSgd(spec, data, options).ok());
  options = {};
  options.epochs = 0;
  EXPECT_FALSE(MinimizeSgd(spec, data, options).ok());
  options = {};
  options.initial_step = 0.0;
  EXPECT_FALSE(MinimizeSgd(spec, data, options).ok());
  const Dataset empty(Matrix(0, 3), Vector(), Task::kUnsupervised);
  EXPECT_FALSE(MinimizeSgd(spec, empty, {}).ok());
}

TEST(Sgd, ApproachesExactRidgeSolution) {
  const Dataset data = MakeSyntheticLinear(4000, 5, 2, /*noise=*/0.3);
  LinearRegressionSpec spec(1e-2);
  SgdOptions options;
  options.epochs = 30;
  options.initial_step = 0.05;
  options.decay = 0.2;
  const auto sgd = MinimizeSgd(spec, data, options);
  ASSERT_TRUE(sgd.ok());
  const auto exact = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(exact.ok());
  // SGD lands close to the exact optimum in objective value.
  EXPECT_LT(sgd->objective, exact->objective * 1.05 + 1e-3);
}

TEST(Sgd, ObjectiveDecreasesWithMoreEpochs) {
  const Dataset data = MakeSyntheticLogistic(3000, 6, 3);
  LogisticRegressionSpec spec(1e-3);
  double prev = spec.Objective(spec.InitialTheta(data), data);
  for (const int epochs : {1, 5, 20}) {
    SgdOptions options;
    options.epochs = epochs;
    options.seed = 4;
    const auto result = MinimizeSgd(spec, data, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->objective, prev + 1e-6) << epochs;
    prev = result->objective;
  }
}

TEST(Sgd, AveragingReducesObjectiveNoise) {
  const Dataset data = MakeSyntheticLinear(2000, 4, 5);
  LinearRegressionSpec spec(1e-2);
  SgdOptions noisy;
  noisy.epochs = 12;
  noisy.initial_step = 0.08;
  noisy.average_final_epoch = false;
  SgdOptions averaged = noisy;
  averaged.average_final_epoch = true;
  // Across several seeds, averaging should not be worse on average.
  double total_noisy = 0.0, total_averaged = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    noisy.seed = seed;
    averaged.seed = seed;
    total_noisy += MinimizeSgd(spec, data, noisy)->objective;
    total_averaged += MinimizeSgd(spec, data, averaged)->objective;
  }
  EXPECT_LE(total_averaged, total_noisy * 1.02);
}

TEST(Sgd, CountsGradientEvaluations) {
  const Dataset data = MakeSyntheticLinear(100, 3, 6);
  LinearRegressionSpec spec(1e-2);
  SgdOptions options;
  options.epochs = 3;
  options.batch_size = 32;
  const auto result = MinimizeSgd(spec, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epochs, 3);
  EXPECT_EQ(result->gradient_evaluations, 300);  // every row, every epoch
}

TEST(Sgd, DeterministicGivenSeed) {
  const Dataset data = MakeSyntheticLogistic(500, 4, 7);
  LogisticRegressionSpec spec(1e-3);
  SgdOptions options;
  options.seed = 99;
  const auto a = MinimizeSgd(spec, data, options);
  const auto b = MinimizeSgd(spec, data, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  testing::ExpectVectorNear(a->theta, b->theta, 0.0);
}

TEST(Sgd, BatchLargerThanDataBehavesAsGradientDescent) {
  const Dataset data = MakeSyntheticLinear(50, 3, 8);
  LinearRegressionSpec spec(1e-2);
  SgdOptions options;
  options.batch_size = 1000;  // clamped to n
  options.epochs = 5;
  const auto result = MinimizeSgd(spec, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->gradient_evaluations, 250);
}

}  // namespace
}  // namespace blinkml
