#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "data/generators.h"
#include "models/logistic_regression.h"

namespace blinkml {
namespace {

BlinkConfig FastConfig() {
  BlinkConfig config;
  config.initial_sample_size = 1000;
  config.holdout_size = 500;
  config.accuracy_samples = 128;
  config.seed = 9;
  return config;
}

TEST(FixedRatio, TrainsOnFixedFraction) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(20000, 5, 1);
  const FixedRatioBaseline baseline(0.01, FastConfig());
  const auto result = baseline.Train(spec, data, {0.05, 0.05});
  ASSERT_TRUE(result.ok());
  // 1% of the pool (20000 - 500 holdout).
  EXPECT_EQ(result->sample_size, 195);
  EXPECT_EQ(result->models_trained, 1);
}

TEST(FixedRatio, IgnoresContract) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(10000, 4, 2);
  const FixedRatioBaseline baseline(0.02, FastConfig());
  const auto loose = baseline.Train(spec, data, {0.5, 0.05});
  const auto tight = baseline.Train(spec, data, {0.001, 0.05});
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_EQ(loose->sample_size, tight->sample_size);
}

TEST(FixedRatio, RejectsBadFraction) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(1000, 3, 3);
  EXPECT_FALSE(
      FixedRatioBaseline(0.0, FastConfig()).Train(spec, data, {}).ok());
  EXPECT_FALSE(
      FixedRatioBaseline(1.5, FastConfig()).Train(spec, data, {}).ok());
}

TEST(RelativeRatio, ScalesWithRequestedAccuracy) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(40000, 4, 4);
  const RelativeRatioBaseline baseline(0.10, FastConfig());
  const auto at80 = baseline.Train(spec, data, {0.20, 0.05});
  const auto at99 = baseline.Train(spec, data, {0.01, 0.05});
  ASSERT_TRUE(at80.ok());
  ASSERT_TRUE(at99.ok());
  // (1 - 0.20) * 10% = 8%; (1 - 0.01) * 10% = 9.9%.
  const double pool = static_cast<double>(at80->full_size);
  EXPECT_NEAR(at80->sample_size / pool, 0.080, 0.001);
  EXPECT_NEAR(at99->sample_size / pool, 0.099, 0.001);
  EXPECT_FALSE(baseline.Train(spec, data, {0.05, 0.0}).ok());
}

TEST(IncEstimator, GrowsUntilContractMet) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(30000, 5, 5);
  const IncEstimatorBaseline baseline(FastConfig());
  const auto result = baseline.Train(spec, data, {0.10, 0.1});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->models_trained, 1);
  // Sample sizes follow 1000 k^2.
  bool valid_size = false;
  for (Dataset::Index k = 1; k * k * 1000 <= 30000; ++k) {
    if (result->sample_size == 1000 * k * k) valid_size = true;
  }
  EXPECT_TRUE(valid_size || result->sample_size == result->full_size);
}

TEST(IncEstimator, TightContractTrainsMoreModelsThanLoose) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(30000, 5, 6);
  const IncEstimatorBaseline baseline(FastConfig());
  const auto loose = baseline.Train(spec, data, {0.30, 0.1});
  const auto tight = baseline.Train(spec, data, {0.02, 0.1});
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(tight->models_trained, loose->models_trained);
  EXPECT_GE(tight->sample_size, loose->sample_size);
}

TEST(IncEstimator, CapsAtFullSize) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(5000, 4, 7);
  const IncEstimatorBaseline baseline(FastConfig());
  const auto result = baseline.Train(spec, data, {0.0, 0.1});  // impossible
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sample_size, result->full_size);
}

}  // namespace
}  // namespace blinkml
