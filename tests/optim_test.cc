#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "optim/line_search.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectVectorNear;

// f(x) = 0.5 x^T A x - b^T x with SPD A; minimum at A^-1 b.
class QuadraticObjective final : public DifferentiableObjective {
 public:
  QuadraticObjective(Matrix a, Vector b) : a_(std::move(a)), b_(std::move(b)) {}

  Vector::Index dim() const override { return b_.size(); }

  double Value(const Vector& theta) const override {
    return 0.5 * Dot(theta, MatVec(a_, theta)) - Dot(b_, theta);
  }

  void Gradient(const Vector& theta, Vector* grad) const override {
    *grad = MatVec(a_, theta);
    *grad -= b_;
  }

 private:
  Matrix a_;
  Vector b_;
};

// The Rosenbrock function: a classic ill-conditioned nonconvex test.
class RosenbrockObjective final : public DifferentiableObjective {
 public:
  Vector::Index dim() const override { return 2; }

  double Value(const Vector& t) const override {
    const double a = 1.0 - t[0];
    const double b = t[1] - t[0] * t[0];
    return a * a + 100.0 * b * b;
  }

  void Gradient(const Vector& t, Vector* grad) const override {
    grad->Resize(2);
    const double b = t[1] - t[0] * t[0];
    (*grad)[0] = -2.0 * (1.0 - t[0]) - 400.0 * t[0] * b;
    (*grad)[1] = 200.0 * b;
  }
};

QuadraticObjective MakeQuadratic(int n, std::uint64_t seed) {
  Rng rng(seed);
  return QuadraticObjective(testing::RandomSpd(n, &rng),
                            testing::RandomVector(n, &rng));
}

// ---------- Line searches ----------

TEST(LineSearch, BacktrackingSatisfiesArmijo) {
  const QuadraticObjective f = MakeQuadratic(5, 1);
  const Vector theta(5);
  Vector grad;
  const double value = f.ValueAndGradient(theta, &grad);
  Vector direction = grad;
  direction *= -1.0;
  const LineSearchResult r =
      BacktrackingSearch(f, theta, value, grad, direction);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.alpha, 0.0);
  const LineSearchOptions opts;
  EXPECT_LE(r.value,
            value + opts.armijo_c1 * r.alpha * Dot(grad, direction) + 1e-12);
}

TEST(LineSearch, StrongWolfeSatisfiesBothConditions) {
  const QuadraticObjective f = MakeQuadratic(6, 2);
  Rng rng(3);
  const Vector theta = testing::RandomVector(6, &rng);
  Vector grad;
  const double value = f.ValueAndGradient(theta, &grad);
  Vector direction = grad;
  direction *= -1.0;
  const LineSearchOptions opts;
  const LineSearchResult r =
      StrongWolfeSearch(f, theta, value, grad, direction, opts);
  ASSERT_TRUE(r.success);
  const double slope0 = Dot(grad, direction);
  EXPECT_LE(r.value, value + opts.armijo_c1 * r.alpha * slope0 + 1e-12);
  EXPECT_LE(std::fabs(Dot(r.gradient, direction)),
            -opts.wolfe_c2 * slope0 + 1e-12);
}

TEST(LineSearch, RejectsAscentDirection) {
  const QuadraticObjective f = MakeQuadratic(3, 4);
  Rng rng(5);
  const Vector theta = testing::RandomVector(3, &rng);
  Vector grad;
  const double value = f.ValueAndGradient(theta, &grad);
  // grad itself is an ascent direction.
  EXPECT_THROW(BacktrackingSearch(f, theta, value, grad, grad), CheckError);
  EXPECT_THROW(StrongWolfeSearch(f, theta, value, grad, grad), CheckError);
}

// ---------- Optimizers ----------

class OptimizerKinds : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerKinds, SolvesQuadraticToTolerance) {
  const int n = 8;
  Rng rng(10);
  const Matrix a = testing::RandomSpd(n, &rng);
  const Vector b = testing::RandomVector(n, &rng);
  const QuadraticObjective f(a, b);
  OptimizerOptions options;
  options.max_iterations = 500;
  const auto optimizer = MakeOptimizer(GetParam(), options);
  const auto result = optimizer->Minimize(f, Vector(n));
  ASSERT_TRUE(result.ok()) << OptimizerKindName(GetParam());
  EXPECT_TRUE(result->converged);
  // Oracle solution via Cholesky.
  const auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  ExpectVectorNear(result->theta, chol->Solve(b), 1e-4,
                   OptimizerKindName(GetParam()));
}

TEST_P(OptimizerKinds, RejectsBadStart) {
  const QuadraticObjective f = MakeQuadratic(3, 11);
  const auto optimizer = MakeOptimizer(GetParam());
  EXPECT_FALSE(optimizer->Minimize(f, Vector(5)).ok());  // wrong dim
  Vector nan_start(3);
  nan_start[0] = std::nan("");
  EXPECT_FALSE(optimizer->Minimize(f, nan_start).ok());
}

TEST_P(OptimizerKinds, MonotoneValueDecrease) {
  // converged result value must be <= initial value.
  const QuadraticObjective f = MakeQuadratic(4, 12);
  Rng rng(13);
  const Vector start = testing::RandomVector(4, &rng);
  const double initial = f.Value(start);
  const auto result = MakeOptimizer(GetParam())->Minimize(f, start);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->value, initial);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerKinds,
                         ::testing::Values(OptimizerKind::kGradientDescent,
                                           OptimizerKind::kBfgs,
                                           OptimizerKind::kLbfgs));

TEST(Bfgs, SolvesRosenbrock) {
  const RosenbrockObjective f;
  OptimizerOptions options;
  options.max_iterations = 2000;
  options.gradient_tolerance = 1e-8;
  options.value_tolerance = 0.0;  // run to gradient tolerance
  const auto result =
      MakeOptimizer(OptimizerKind::kBfgs, options)->Minimize(f, Vector{-1.2, 1.0});
  ASSERT_TRUE(result.ok());
  ExpectVectorNear(result->theta, Vector{1.0, 1.0}, 1e-4, "Rosenbrock");
}

TEST(Lbfgs, SolvesRosenbrock) {
  const RosenbrockObjective f;
  OptimizerOptions options;
  options.max_iterations = 2000;
  options.gradient_tolerance = 1e-8;
  options.value_tolerance = 0.0;
  const auto result =
      MakeOptimizer(OptimizerKind::kLbfgs, options)->Minimize(f, Vector{-1.2, 1.0});
  ASSERT_TRUE(result.ok());
  ExpectVectorNear(result->theta, Vector{1.0, 1.0}, 1e-4, "Rosenbrock");
}

TEST(Lbfgs, MatchesBfgsOnConvexProblem) {
  const QuadraticObjective f = MakeQuadratic(20, 14);
  OptimizerOptions options;
  options.max_iterations = 500;
  const auto bfgs =
      MakeOptimizer(OptimizerKind::kBfgs, options)->Minimize(f, Vector(20));
  const auto lbfgs =
      MakeOptimizer(OptimizerKind::kLbfgs, options)->Minimize(f, Vector(20));
  ASSERT_TRUE(bfgs.ok());
  ASSERT_TRUE(lbfgs.ok());
  ExpectVectorNear(bfgs->theta, lbfgs->theta, 1e-4, "BFGS vs L-BFGS");
}

TEST(Optimizer, IterationBudgetReportsNotConverged) {
  const QuadraticObjective f = MakeQuadratic(30, 15);
  OptimizerOptions options;
  options.max_iterations = 1;
  options.gradient_tolerance = 1e-14;
  options.value_tolerance = 0.0;
  const auto result =
      MakeOptimizer(OptimizerKind::kGradientDescent, options)
          ->Minimize(f, Vector(30));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 1);
}

TEST(Optimizer, StartingAtOptimumConvergesImmediately) {
  const int n = 5;
  Rng rng(16);
  const Matrix a = testing::RandomSpd(n, &rng);
  const Vector b = testing::RandomVector(n, &rng);
  const QuadraticObjective f(a, b);
  const auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const auto result =
      MakeOptimizer(OptimizerKind::kLbfgs)->Minimize(f, chol->Solve(b));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 0);
}

TEST(Optimizer, ChooseOptimizerFollowsPaperPolicy) {
  EXPECT_EQ(ChooseOptimizer(28), OptimizerKind::kBfgs);
  EXPECT_EQ(ChooseOptimizer(99), OptimizerKind::kBfgs);
  EXPECT_EQ(ChooseOptimizer(100), OptimizerKind::kLbfgs);
  EXPECT_EQ(ChooseOptimizer(998922), OptimizerKind::kLbfgs);
}

TEST(Optimizer, KindNames) {
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kGradientDescent),
               "GradientDescent");
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kBfgs), "BFGS");
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kLbfgs), "L-BFGS");
}

}  // namespace
}  // namespace blinkml
