// Failure-injection tests (DESIGN.md Section 7): degenerate inputs that a
// production system must reject cleanly or survive gracefully.

#include <cmath>

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/statistics.h"
#include "linalg/eigen_sym.h"
#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/trainer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

BlinkConfig TinyConfig() {
  BlinkConfig config;
  config.initial_sample_size = 500;
  config.holdout_size = 200;
  config.accuracy_samples = 64;
  config.size_samples = 32;
  config.seed = 3;
  return config;
}

TEST(Robustness, DuplicateRowsGiveSingularCovariance) {
  // A dataset made of one row repeated: the gradient covariance is rank
  // <= 1; statistics and the sampler must still work (the paper's
  // degenerate-direction handling) or fail cleanly.
  Matrix x(200, 4);
  Vector y(200);
  Rng rng(1);
  Vector proto = testing::RandomVector(4, &rng);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 4; ++j) x(i, j) = proto[j];
    y[i] = static_cast<double>(i % 2);  // labels alternate
  }
  const Dataset data(std::move(x), std::move(y), Task::kBinary);
  LogisticRegressionSpec spec(1e-2);
  const auto model = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(model.ok());
  StatsOptions options;
  Rng stats_rng(2);
  const auto stats =
      ComputeStatistics(spec, model->theta, data, options, &stats_rng);
  // Rank-1 J: either a usable (effectively rank-1) sampler or a clean
  // error. The dense factor keeps p columns, zeroing degenerate ones, so
  // check the covariance spectrum rather than the column count.
  if (stats.ok()) {
    Rng draw_rng(3);
    const Vector d = stats->Draw(1.0, &draw_rng);
    for (int j = 0; j < 4; ++j) EXPECT_TRUE(std::isfinite(d[j]));
    const auto cov = stats->DenseCovariance();
    ASSERT_TRUE(cov.ok());
    const auto eig = EigenSymValues(*cov);
    ASSERT_TRUE(eig.ok());
    // Second-largest eigenvalue negligible relative to the largest.
    EXPECT_LT((*eig)[2], 1e-6 * std::max((*eig)[3], 1e-300));
  } else {
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Robustness, PerfectFitHasNoUncertainty) {
  // Linear regression on exactly-linear data with no noise and no
  // regularization: every per-example gradient at the MLE is ~zero. The
  // statistics computation must report the degenerate case.
  Matrix x(100, 2);
  Vector y(100);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = 2.0 * x(i, 0) - x(i, 1);  // exact linear function
  }
  const Dataset data(std::move(x), std::move(y), Task::kRegression);
  LinearRegressionSpec spec(0.0);
  const auto model = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(model.ok());
  StatsOptions options;
  Rng stats_rng(5);
  const auto stats =
      ComputeStatistics(spec, model->theta, data, options, &stats_rng);
  // Either the degenerate case is detected outright (exactly zero
  // gradients) or — since the optimizer stops at a small but nonzero
  // gradient — the estimated parameter variance is negligible.
  if (stats.ok()) {
    const auto diag = stats->VarianceDiagonal();
    ASSERT_TRUE(diag.ok());
    for (int j = 0; j < 2; ++j) EXPECT_LT((*diag)[j], 1e-6);
  } else {
    EXPECT_NE(stats.status().message().find("zero"), std::string::npos);
  }
}

TEST(Robustness, AllSameLabelStillTrains) {
  // Logistic regression where every label is 1 and the model has an
  // intercept column: the MLE pushes the intercept toward +inf but L2
  // regularization keeps it finite; the coordinator should return a model
  // that predicts the single class everywhere.
  Matrix x(3000, 3);
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    x(i, 2) = 1.0;  // intercept
  }
  const Dataset data(std::move(x), Vector(3000, 1.0), Task::kBinary);
  LogisticRegressionSpec spec(1e-2);
  const Coordinator coordinator(TinyConfig());
  const auto result = coordinator.Train(spec, data, {0.05, 0.05});
  ASSERT_TRUE(result.ok());
  // The intercept dominates: nearly every prediction is class 1.
  Vector pred;
  spec.Predict(result->model.theta, *result->holdout, &pred);
  int ones = 0;
  for (Vector::Index i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1.0) ++ones;
  }
  EXPECT_GE(static_cast<double>(ones) / static_cast<double>(pred.size()),
            0.95);
}

TEST(Robustness, ConstantLabelsRegressionHasUnitScale) {
  // Regression with constant labels: LabelScale falls back to 1 and the
  // contract machinery stays finite.
  Matrix x(2000, 2);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
  }
  const Dataset data(std::move(x), Vector(2000, 5.0), Task::kRegression);
  LinearRegressionSpec spec(1e-2);
  const Coordinator coordinator(TinyConfig());
  const auto result = coordinator.Train(spec, data, {0.05, 0.05});
  EXPECT_TRUE(result.ok());
}

TEST(Robustness, EpsilonAboveOneIsTriviallySatisfied) {
  const Dataset data = MakeSyntheticLogistic(5000, 4, 8);
  LogisticRegressionSpec spec(1e-3);
  const Coordinator coordinator(TinyConfig());
  const auto result = coordinator.Train(spec, data, {1.5, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_initial_only);
  EXPECT_EQ(result->sample_size, 500);
}

TEST(Robustness, DeltaNearOneIsPermissive) {
  // delta = 0.99: almost no confidence required; the conservative
  // quantile level is low and the initial model should almost always do.
  const Dataset data = MakeSyntheticLogistic(8000, 4, 9);
  LogisticRegressionSpec spec(1e-3);
  const Coordinator coordinator(TinyConfig());
  const auto result = coordinator.Train(spec, data, {0.2, 0.99});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_initial_only);
}

TEST(Robustness, NonConvergedTrainingIsReportedNotHidden) {
  const Dataset data = MakeSyntheticLogistic(2000, 10, 10);
  LogisticRegressionSpec spec(1e-4);
  TrainerOptions options;
  options.optimizer.max_iterations = 1;
  options.optimizer.gradient_tolerance = 1e-14;
  options.optimizer.value_tolerance = 0.0;
  const auto model = ModelTrainer(options).Train(spec, data);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->converged);
}

TEST(Robustness, HoldoutCappedForSmallDatasets) {
  // A dataset barely above the minimum: holdout must shrink to fit.
  const Dataset data = MakeSyntheticLogistic(60, 3, 11);
  LogisticRegressionSpec spec(1e-2);
  BlinkConfig config = TinyConfig();
  config.holdout_size = 1000;  // bigger than the data; must be capped
  const Coordinator coordinator(config);
  const auto result = coordinator.Train(spec, data, {0.5, 0.2});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->holdout->num_rows(), 12);  // 20% cap
  EXPECT_GE(result->holdout->num_rows(), 1);
}

TEST(Robustness, ZeroRegularizationPathWorks) {
  // beta = 0 exercises the J = H branch and the unregularized sampler
  // weights 1/sqrt(lambda).
  const Dataset data = MakeSyntheticLogistic(20000, 5, 12, /*sparsity=*/1.0,
                                             /*noise=*/0.2);
  LogisticRegressionSpec spec(0.0);
  const Coordinator coordinator(TinyConfig());
  const auto result = coordinator.Train(spec, data, {0.10, 0.1});
  ASSERT_TRUE(result.ok());
  const auto full = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(spec.Diff(result->model.theta, full->theta, *result->holdout),
            0.10 + 0.05);
}

TEST(Robustness, SingleFeatureModel) {
  // d = 1: the smallest possible model end to end.
  Matrix x(10000, 1);
  Vector y(10000);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    x(i, 0) = rng.Normal();
    y[i] = rng.Bernoulli(LogisticRegressionSpec::Sigmoid(2.0 * x(i, 0)))
               ? 1.0
               : 0.0;
  }
  const Dataset data(std::move(x), std::move(y), Task::kBinary);
  LogisticRegressionSpec spec(1e-3);
  const Coordinator coordinator(TinyConfig());
  const auto result = coordinator.Train(spec, data, {0.05, 0.05});
  EXPECT_TRUE(result.ok());
}

TEST(Robustness, StatisticsOnSingleRowSample) {
  // One row cannot define a covariance; must fail cleanly, not crash.
  const Dataset data = MakeSyntheticLogistic(300, 4, 14);
  LogisticRegressionSpec spec(1e-3);
  const auto model = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(model.ok());
  const Dataset one = data.TakeRows({0});
  StatsOptions options;
  Rng rng(15);
  const auto stats =
      ComputeStatistics(spec, model->theta, one, options, &rng);
  // A rank-1 sampler or a clean error are both acceptable.
  if (!stats.ok()) {
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace blinkml
