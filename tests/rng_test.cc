#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "random/multivariate.h"
#include "random/rng.h"
#include "tests/test_util.h"
#include "util/stats.h"

namespace blinkml {
namespace {

using testing::RandomSpd;

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  EXPECT_NE(r.Next(), 0u);  // SplitMix64 avoids the all-zero state
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsRoughlyCorrect) {
  Rng r(6);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = r.Uniform();
  EXPECT_NEAR(Mean(xs), 0.5, 0.01);
  EXPECT_NEAR(Variance(xs), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_THROW(r.Uniform(3.0, -2.0), CheckError);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng r(8);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[r.UniformInt(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.01);
  }
  EXPECT_THROW(r.UniformInt(0), CheckError);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(9);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = r.Normal();
  EXPECT_NEAR(Mean(xs), 0.0, 0.02);
  EXPECT_NEAR(Variance(xs), 1.0, 0.03);
  // Roughly 68% within one sigma.
  int within = 0;
  for (double x : xs) {
    if (std::fabs(x) <= 1.0) ++within;
  }
  EXPECT_NEAR(static_cast<double>(within) / xs.size(), 0.6827, 0.01);
}

TEST(Rng, NormalWithParamsScalesAndShifts) {
  Rng r(10);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = r.Normal(3.0, 2.0);
  EXPECT_NEAR(Mean(xs), 3.0, 0.05);
  EXPECT_NEAR(StdDev(xs), 2.0, 0.05);
  EXPECT_THROW(r.Normal(0.0, -1.0), CheckError);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int ones = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ones += r.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.3, 0.01);
  EXPECT_THROW(r.Bernoulli(1.5), CheckError);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng r(12);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[r.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.01);
  EXPECT_THROW(r.Categorical({}), CheckError);
  EXPECT_THROW(r.Categorical({0.0, 0.0}), CheckError);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(13);
  for (const double lambda : {0.5, 4.0, 100.0}) {
    std::vector<double> xs(20000);
    for (auto& x : xs) x = static_cast<double>(r.Poisson(lambda));
    EXPECT_NEAR(Mean(xs), lambda, lambda * 0.05 + 0.05) << lambda;
  }
  EXPECT_EQ(r.Poisson(0.0), 0);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng a(99);
  Rng b = a.Split();
  std::vector<double> xs(5000), ys(5000);
  for (int i = 0; i < 5000; ++i) {
    xs[static_cast<std::size_t>(i)] = a.Uniform();
    ys[static_cast<std::size_t>(i)] = b.Uniform();
  }
  // Sample correlation near zero.
  const double mx = Mean(xs), my = Mean(ys);
  double cov = 0.0;
  for (int i = 0; i < 5000; ++i) {
    cov += (xs[static_cast<std::size_t>(i)] - mx) *
           (ys[static_cast<std::size_t>(i)] - my);
  }
  cov /= 5000.0;
  EXPECT_LT(std::fabs(cov / (StdDev(xs) * StdDev(ys))), 0.05);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng r(14);
  const auto perm = RandomPermutation(100, &r);
  std::set<std::int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(RandomPermutation, UniformFirstElement) {
  Rng r(15);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[RandomPermutation(4, &r)[0]];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials), 0.25, 0.01);
  }
}

class SampleWithoutReplacementCases
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SampleWithoutReplacementCases, DistinctInRangeCorrectCount) {
  const auto [n, k] = GetParam();
  Rng r(16);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = SampleWithoutReplacement(n, k, &r);
    EXPECT_EQ(sample.size(), static_cast<std::size_t>(k));
    std::set<std::int64_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(k)) << "duplicates";
    for (auto v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SampleWithoutReplacementCases,
    ::testing::Values(std::make_pair(10, 0), std::make_pair(10, 10),
                      std::make_pair(10, 3), std::make_pair(1000, 5),
                      std::make_pair(1000, 999), std::make_pair(5, 1)));

TEST(SampleWithoutReplacement, MarginalInclusionIsUniform) {
  // Every element should appear with probability k/n.
  Rng r(17);
  const int n = 20, k = 5, trials = 30000;
  std::vector<int> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    for (auto v : SampleWithoutReplacement(n, k, &r)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials),
                static_cast<double>(k) / n, 0.012);
  }
}

TEST(FactorMvnSampler, CovarianceMatchesFactor) {
  Rng rng(18);
  // W = [[1,0],[1,1],[0,2]]; Sigma = W W^T.
  const Matrix w = {{1.0, 0.0}, {1.0, 1.0}, {0.0, 2.0}};
  const FactorMvnSampler sampler(w);
  EXPECT_EQ(sampler.dim(), 3);
  EXPECT_EQ(sampler.rank(), 2);
  const int trials = 40000;
  Matrix cov(3, 3);
  for (int t = 0; t < trials; ++t) {
    const Vector x = sampler.Draw(&rng);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) cov(i, j) += x[i] * x[j];
    }
  }
  cov *= 1.0 / trials;
  const Matrix expected = MatMulT(w, w);
  EXPECT_LT(MaxAbsDiff(cov, expected), 0.1);
}

TEST(FactorMvnSampler, DrawWithZIsDeterministic) {
  const Matrix w = {{2.0, 0.0}, {0.0, 3.0}};
  const FactorMvnSampler sampler(w);
  const Vector z{1.0, -1.0};
  testing::ExpectVectorNear(sampler.DrawWithZ(z), Vector{2.0, -3.0}, 0.0);
  EXPECT_THROW(sampler.DrawWithZ(Vector{1.0}), CheckError);
}

TEST(DenseMvnSampler, CovarianceMatchesTarget) {
  Rng rng(19);
  const Matrix sigma = RandomSpd(4, &rng);
  const auto sampler = DenseMvnSampler::Create(sigma);
  ASSERT_TRUE(sampler.ok());
  const int trials = 60000;
  Matrix cov(4, 4);
  for (int t = 0; t < trials; ++t) {
    const Vector x = sampler->Draw(&rng);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) cov(i, j) += x[i] * x[j];
    }
  }
  cov *= 1.0 / trials;
  EXPECT_LT(MaxAbsDiff(cov, sigma), 0.35 * sigma.MaxAbs());
}

TEST(DenseMvnSampler, HandlesSemiDefiniteWithJitter) {
  // Rank-1 covariance: [[1,1],[1,1]].
  const Matrix sigma = {{1.0, 1.0}, {1.0, 1.0}};
  const auto sampler = DenseMvnSampler::Create(sigma);
  ASSERT_TRUE(sampler.ok());
  Rng rng(20);
  const Vector x = sampler->Draw(&rng);
  EXPECT_NEAR(x[0], x[1], 1e-3);  // perfectly correlated up to jitter
}

TEST(DenseMvnSampler, RejectsNonSquare) {
  EXPECT_FALSE(DenseMvnSampler::Create(Matrix(2, 3)).ok());
}

}  // namespace
}  // namespace blinkml
