// Compute-kernel layer (linalg/kernels.h): kernel-vs-oracle equivalence,
// bitwise thread-count invariance, the tiled sparse Gram's heavy-row
// path, the batched-margin consistency invariant, and degenerate shapes.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/statistics.h"
#include "data/generators.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "models/logistic_regression.h"
#include "models/model_spec.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::RandomMatrix;
using testing::RandomVector;
using testing::SparseBinaryData;

// Runs fn under the given kernel level (ambient pool, full parallelism).
template <typename Fn>
auto AtLevel(KernelLevel level, const Fn& fn) {
  RuntimeOptions options;
  options.kernel_level = level;
  RuntimeScope scope(options);
  return fn();
}

Vector Flatten(const Matrix& m) {
  Vector v(m.size());
  std::copy(m.data(), m.data() + m.size(), v.data());
  return v;
}

// A sparse matrix with deliberately mixed row weights: empty rows, light
// rows (below the heavy-tile threshold), and heavy rows (hundreds of
// nonzeros), so both SparseGram paths and their seam are exercised.
SparseMatrix MixedRowMatrix(SparseMatrix::Index rows,
                            SparseMatrix::Index cols, std::uint64_t seed) {
  Rng rng(seed);
  CsrBuilder builder;
  for (SparseMatrix::Index r = 0; r < rows; ++r) {
    const int kind = static_cast<int>(r % 4);
    SparseMatrix::Index nnz = 0;
    if (kind == 1) nnz = 3;                         // light
    if (kind == 2) nnz = 40;                        // mid
    if (kind == 3) nnz = std::min<SparseMatrix::Index>(cols, 300);  // heavy
    std::vector<bool> used(static_cast<std::size_t>(cols), false);
    for (SparseMatrix::Index e = 0; e < nnz; ++e) {
      SparseMatrix::Index c =
          static_cast<SparseMatrix::Index>(rng.Uniform(0.0, 1.0) *
                                           static_cast<double>(cols));
      c = std::min(c, cols - 1);
      if (used[static_cast<std::size_t>(c)]) continue;
      used[static_cast<std::size_t>(c)] = true;
      builder.Add(c, rng.Normal(0.0, 1.0));
    }
    builder.FinishRow();
  }
  return std::move(builder).Build(cols);
}

// ---------- Dense kernels vs the oracle ----------

TEST(DenseKernels, MatchOracleWithinTolerance) {
  Rng rng(3);
  // Off-block sizes on purpose: tails of every tile level.
  const Matrix a = RandomMatrix(131, 67, &rng);
  const Matrix b = RandomMatrix(67, 45, &rng);
  const Vector x = RandomVector(67, &rng);
  const Vector y = RandomVector(131, &rng);

  EXPECT_LE(MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return GramRows(a); }),
                    AtLevel(KernelLevel::kNaive, [&] { return GramRows(a); })),
            1e-12);
  EXPECT_LE(MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return GramCols(a); }),
                    AtLevel(KernelLevel::kNaive, [&] { return GramCols(a); })),
            1e-12);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return MatMul(a, b); }),
              AtLevel(KernelLevel::kNaive, [&] { return MatMul(a, b); })),
      1e-12);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return MatVec(a, x); }),
              AtLevel(KernelLevel::kNaive, [&] { return MatVec(a, x); })),
      1e-12);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return MatTVec(a, y); }),
              AtLevel(KernelLevel::kNaive, [&] { return MatTVec(a, y); })),
      1e-12);
}

TEST(DenseKernels, GramSymmetryAndMultiBlockShapes) {
  Rng rng(11);
  // > 2 blocks in each direction, odd tails.
  const Matrix a = RandomMatrix(201, 130, &rng);
  const Matrix g = AtLevel(KernelLevel::kBlocked, [&] { return GramRows(a); });
  for (Matrix::Index i = 0; i < g.rows(); ++i) {
    for (Matrix::Index j = i + 1; j < g.cols(); ++j) {
      EXPECT_EQ(g(i, j), g(j, i)) << i << "," << j;
    }
  }
  EXPECT_LE(MaxRelDiff(g, AtLevel(KernelLevel::kNaive, [&] { return GramRows(a); })),
            1e-12);
}

TEST(DenseKernels, ThreadCountInvariance) {
  Rng rng(5);
  const Matrix a = RandomMatrix(130, 70, &rng);
  const Matrix b = RandomMatrix(70, 31, &rng);
  const Vector x = RandomVector(70, &rng);
  const Vector y = RandomVector(130, &rng);
  testing::ExpectThreadCountInvariant([&] { return Flatten(GramRows(a)); },
                                      {1, 2, 8}, "GramRows");
  testing::ExpectThreadCountInvariant([&] { return Flatten(GramCols(a)); },
                                      {1, 2, 8}, "GramCols");
  testing::ExpectThreadCountInvariant([&] { return Flatten(MatMul(a, b)); },
                                      {1, 2, 8}, "MatMul");
  testing::ExpectThreadCountInvariant([&] { return MatVec(a, x); }, {1, 2, 8},
                                      "MatVec");
  testing::ExpectThreadCountInvariant([&] { return MatTVec(a, y); }, {1, 2, 8},
                                      "MatTVec");
}

// ---------- Sparse kernels ----------

TEST(SparseKernels, TiledGramMatchesMergeOnHeavyAndMixedRows) {
  // Heavy rows: every tile takes the scatter/gather path.
  const Dataset heavy = MakeSyntheticLogistic(90, 3000, /*seed=*/7,
                                              /*sparsity=*/0.08, /*noise=*/0.1);
  // Mixed: empty/light/mid/heavy rows interleaved — tiles straddle the
  // heavy threshold and empty rows produce zero Gram rows.
  const SparseMatrix mixed = MixedRowMatrix(61, 2000, 13);

  for (const SparseMatrix* m : {&heavy.sparse(), &mixed}) {
    const Matrix tiled =
        AtLevel(KernelLevel::kBlocked, [&] { return SparseGradientGram(*m); });
    const Matrix merge =
        AtLevel(KernelLevel::kNaive, [&] { return SparseGradientGram(*m); });
    // The gather accumulates the same products in the same column order as
    // the merge (non-matching columns contribute exact zeros), so the two
    // paths agree bitwise, not just to rounding.
    EXPECT_EQ(MaxAbsDiff(tiled, merge), 0.0);
  }
}

TEST(SparseKernels, GramEmptyRowsYieldZeroRows) {
  const SparseMatrix mixed = MixedRowMatrix(17, 500, 3);  // rows 0,4,8,... empty
  const Matrix g =
      AtLevel(KernelLevel::kBlocked, [&] { return SparseGradientGram(mixed); });
  for (SparseMatrix::Index r = 0; r < mixed.rows(); r += 4) {
    for (Matrix::Index j = 0; j < g.cols(); ++j) {
      EXPECT_EQ(g(r, j), 0.0);
      EXPECT_EQ(g(j, r), 0.0);
    }
  }
}

TEST(SparseKernels, ApplyAndTransposedMatchOracle) {
  const SparseMatrix m = MixedRowMatrix(83, 700, 17);
  Rng rng(2);
  const Vector x = RandomVector(700, &rng);
  const Vector y = RandomVector(83, &rng);
  EXPECT_LE(MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return m.Apply(x); }),
                    AtLevel(KernelLevel::kNaive, [&] { return m.Apply(x); })),
            1e-12);
  EXPECT_LE(MaxRelDiff(
                AtLevel(KernelLevel::kBlocked,
                        [&] { return m.ApplyTransposed(y); }),
                AtLevel(KernelLevel::kNaive,
                        [&] { return m.ApplyTransposed(y); })),
            1e-12);
  testing::ExpectThreadCountInvariant([&] { return m.Apply(x); }, {1, 2, 8},
                                      "Apply");
  testing::ExpectThreadCountInvariant([&] { return m.ApplyTransposed(y); },
                                      {1, 2, 8}, "ApplyTransposed");
}

TEST(SparseKernels, ApplyTransposedMultiBitwiseEqualsPerColumn) {
  const SparseMatrix m = MixedRowMatrix(60, 400, 23);
  Rng rng(9);
  // 11 columns: one full kMultiVec group plus a tail group.
  Matrix v(60, 11);
  for (Matrix::Index i = 0; i < v.size(); ++i) {
    v.data()[i] = rng.Normal(0.0, 1.0);
  }
  const Matrix multi = kernels::ApplyTransposedMulti(m, v);
  ASSERT_EQ(multi.rows(), 400);
  ASSERT_EQ(multi.cols(), 11);
  for (Matrix::Index c = 0; c < v.cols(); ++c) {
    const Vector naive = AtLevel(KernelLevel::kNaive, [&] {
      return m.ApplyTransposed(v.Col(c));
    });
    for (Matrix::Index j = 0; j < multi.rows(); ++j) {
      ASSERT_EQ(multi(j, c), naive[j]) << "col " << c << " row " << j;
    }
  }
  testing::ExpectThreadCountInvariant(
      [&] { return Flatten(kernels::ApplyTransposedMulti(m, v)); }, {1, 2, 8},
      "ApplyTransposedMulti");
}

// ---------- Batched margins: the scoring consistency invariant ----------

TEST(BatchMargins, ColumnsBitwiseEqualSingleMarginPasses) {
  const Dataset sparse = SparseBinaryData(120, 900, /*seed=*/5,
                                          /*nnz_per_row=*/25);
  const Dataset dense = testing::SmallDenseLogistic(150, 40, /*seed=*/6);
  for (const Dataset* data : {&sparse, &dense}) {
    // Group widths across a full group + tails: 1, 3, 8, 11 candidates.
    for (const int k : {1, 3, 8, 11}) {
      std::vector<Vector> store;
      for (int t = 0; t < k; ++t) {
        store.push_back(testing::Trainedish(*data, 100 + t));
      }
      std::vector<const Vector*> thetas;
      for (const Vector& v : store) thetas.push_back(&v);
      const Matrix batch = BatchMargins(*data, thetas);
      ASSERT_EQ(batch.cols(), k);
      for (int t = 0; t < k; ++t) {
        Vector single(data->num_rows());
        // The same margin kernel Predict/GlmPredict run (PanelMargins).
        if (data->is_sparse()) {
          kernels::SparseMargins(data->sparse(), store[t].data(), 0,
                                 data->num_rows(), single.data());
        } else {
          kernels::DenseMargins(data->dense(), store[t].data(), 0,
                                data->num_rows(), single.data());
        }
        for (Dataset::Index i = 0; i < data->num_rows(); ++i) {
          ASSERT_EQ(batch(i, t), single[i])
              << (data->is_sparse() ? "sparse" : "dense") << " k=" << k
              << " theta " << t << " row " << i;
        }
      }
    }
  }
}

TEST(BatchMargins, PredictBatchColumnZeroMatchesPredict) {
  // The self-check the batched scoring path performs must hold under the
  // blocked kernels: column 0 of PredictBatch bitwise equals Predict.
  const Dataset data = SparseBinaryData(200, 1200, /*seed=*/8,
                                        /*nnz_per_row=*/30);
  const LogisticRegressionSpec spec(1e-3);
  std::vector<Vector> store;
  for (int t = 0; t < 5; ++t) {
    store.push_back(testing::Trainedish(data, 40 + t));
  }
  std::vector<const Vector*> thetas;
  for (const Vector& v : store) thetas.push_back(&v);
  Matrix predictions;
  spec.PredictBatch(thetas, data, &predictions);
  Vector single;
  spec.Predict(store[0], data, &single);
  for (Dataset::Index i = 0; i < data.num_rows(); ++i) {
    ASSERT_EQ(predictions(i, 0), single[i]) << "row " << i;
  }
}

// ---------- Fused GLM passes ----------

TEST(GlmKernels, FusedLossAndGradientMatchNaive) {
  const Dataset sparse = SparseBinaryData(300, 800, /*seed=*/4,
                                          /*nnz_per_row=*/20);
  const Dataset dense = testing::SmallDenseLogistic(400, 30, /*seed=*/9);
  const LogisticRegressionSpec spec(1e-3);
  for (const Dataset* data : {&sparse, &dense}) {
    const Vector theta = testing::Trainedish(*data, 21);
    Vector g_naive, g_blocked;
    const double f_naive = AtLevel(KernelLevel::kNaive, [&] {
      return spec.ObjectiveAndGradient(theta, *data, &g_naive);
    });
    const double f_blocked = AtLevel(KernelLevel::kBlocked, [&] {
      return spec.ObjectiveAndGradient(theta, *data, &g_blocked);
    });
    EXPECT_NEAR(f_blocked, f_naive, 1e-12 * std::max(1.0, std::fabs(f_naive)));
    EXPECT_LE(MaxRelDiff(g_blocked, g_naive), 1e-11);
    // Value-only pass agrees with the fused pass at each level.
    EXPECT_EQ(AtLevel(KernelLevel::kBlocked,
                      [&] { return spec.Objective(theta, *data); }),
              f_blocked);
    testing::ExpectThreadCountInvariant(
        [&] {
          Vector g;
          spec.ObjectiveAndGradient(theta, *data, &g);
          return g;
        },
        {1, 2, 8}, "ObjectiveAndGradient");
  }
}

// ---------- Degenerate shapes ----------

TEST(KernelDegenerateShapes, SingleColumnSingleRowAndEmpty) {
  Rng rng(31);
  // p = 1: one-column matrix.
  const Matrix col = RandomMatrix(37, 1, &rng);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return GramRows(col); }),
              AtLevel(KernelLevel::kNaive, [&] { return GramRows(col); })),
      1e-12);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return GramCols(col); }),
              AtLevel(KernelLevel::kNaive, [&] { return GramCols(col); })),
      1e-12);
  // n_s = 1: single-row matrix.
  const Matrix row = RandomMatrix(1, 29, &rng);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return GramRows(row); }),
              AtLevel(KernelLevel::kNaive, [&] { return GramRows(row); })),
      1e-12);
  const Vector x = RandomVector(29, &rng);
  EXPECT_LE(
      MaxRelDiff(AtLevel(KernelLevel::kBlocked, [&] { return MatVec(row, x); }),
              AtLevel(KernelLevel::kNaive, [&] { return MatVec(row, x); })),
      1e-12);

  // Sparse single row / all-empty rows.
  CsrBuilder one_row;
  one_row.Add(3, 2.0);
  one_row.Add(7, -1.5);
  one_row.FinishRow();
  const SparseMatrix single = std::move(one_row).Build(10);
  const Matrix g1 =
      AtLevel(KernelLevel::kBlocked, [&] { return SparseGradientGram(single); });
  ASSERT_EQ(g1.rows(), 1);
  EXPECT_DOUBLE_EQ(g1(0, 0), 2.0 * 2.0 + 1.5 * 1.5);

  CsrBuilder empties;
  for (int r = 0; r < 6; ++r) empties.FinishRow();
  const SparseMatrix empty = std::move(empties).Build(10);
  const Matrix g0 =
      AtLevel(KernelLevel::kBlocked, [&] { return SparseGradientGram(empty); });
  EXPECT_EQ(g0.MaxAbs(), 0.0);
  const Vector applied =
      AtLevel(KernelLevel::kBlocked, [&] { return empty.Apply(Vector(10)); });
  EXPECT_EQ(applied.size(), 6);
  const Vector applied_t = AtLevel(KernelLevel::kBlocked, [&] {
    return empty.ApplyTransposed(Vector(6));
  });
  EXPECT_EQ(applied_t.size(), 10);
}

TEST(KernelDegenerateShapes, ZeroRowTransposedAppliesKeepTheOutputShape) {
  // The reduce-shaped kernels must return the size-cols zero vector for a
  // 0-row operand, exactly as the naive loops do (an empty chunk layout
  // must not collapse the output to size 0).
  const Matrix dense0(0, 5);
  const Vector t = AtLevel(KernelLevel::kBlocked,
                           [&] { return MatTVec(dense0, Vector(0)); });
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(NormInf(t), 0.0);
  CsrBuilder none;
  const SparseMatrix sparse0 = std::move(none).Build(7);
  const Vector st = AtLevel(KernelLevel::kBlocked, [&] {
    return sparse0.ApplyTransposed(Vector(0));
  });
  EXPECT_EQ(st.size(), 7);
  EXPECT_EQ(NormInf(st), 0.0);
}

// ---------- Scope propagation to pool lanes ----------

TEST(KernelDispatch, ScopeKernelLevelReachesPoolWorkerLanes) {
  // Kernel dispatch happens wherever a linalg entry point is reached —
  // including inside parallel-region bodies running on pool workers (the
  // Monte-Carlo draw loops do exactly this). The ambient RuntimeOptions
  // must reach every lane: under a kNaive scope, a dispatch on a worker
  // lane falling back to the default (kBlocked) would make results
  // depend on which lane ran the chunk.
  Rng rng(41);
  const Matrix a = RandomMatrix(40, 93, &rng);
  const Vector x = RandomVector(93, &rng);
  const Vector serial_naive =
      AtLevel(KernelLevel::kNaive, [&] { return MatVec(a, x); });

  ThreadPool pool(8);
  RuntimeOptions options;
  options.kernel_level = KernelLevel::kNaive;
  options.pool = &pool;
  options.num_threads = 8;
  RuntimeScope scope(options);
  constexpr ParallelIndex kItems = 16;
  Matrix per_item(kItems, 40);
  // Grain 1: items spread across all 8 lanes; each item's MatVec
  // dispatches on its lane's thread (the nested region runs inline).
  ParallelFor(0, kItems, [&](ParallelIndex b, ParallelIndex e) {
    for (ParallelIndex i = b; i < e; ++i) {
      const Vector y = MatVec(a, x);
      for (Vector::Index c = 0; c < y.size(); ++c) per_item(i, c) = y[c];
    }
  }, /*grain=*/1);
  for (ParallelIndex i = 0; i < kItems; ++i) {
    for (Vector::Index c = 0; c < serial_naive.size(); ++c) {
      ASSERT_EQ(per_item(i, c), serial_naive[c]) << "item " << i;
    }
  }
}

// ---------- Multi-z kernels: per-column bitwise contract ----------

// Runs fn at the blocked level with the given ISA forced via the scope.
template <typename Fn>
auto AtIsa(KernelIsa isa, const Fn& fn) {
  RuntimeOptions options;
  options.kernel_level = KernelLevel::kBlocked;
  options.kernel_isa = isa;
  RuntimeScope scope(options);
  return fn();
}

// True when forcing kAvx2 actually resolves to kAvx2 (i.e. the CPU has
// AVX2+FMA); on other machines the scope clamps back to kScalar and the
// AVX2 legs of these tests are vacuous, so the callers skip them.
bool Avx2Available() {
  return AtIsa(KernelIsa::kAvx2,
               [] { return CurrentKernelIsa() == KernelIsa::kAvx2; });
}

std::vector<KernelIsa> IsasToTest() {
  std::vector<KernelIsa> isas = {KernelIsa::kScalar};
  if (Avx2Available()) isas.push_back(KernelIsa::kAvx2);
  return isas;
}

const char* IsaName(KernelIsa isa) {
  return isa == KernelIsa::kAvx2 ? "avx2" : "scalar";
}

TEST(MultiZKernels, MatVecMultiBitwiseEqualsPerColumn) {
  Rng rng(51);
  const Matrix a = RandomMatrix(67, 19, &rng);
  for (const KernelIsa isa : IsasToTest()) {
    // Widths across a full kMultiVec group and odd tails, plus rank 1.
    for (const Matrix::Index width : {1, 3, 8, 11}) {
      const Matrix zs = RandomMatrix(width, 19, &rng);
      const Matrix multi =
          AtIsa(isa, [&] { return kernels::MatVecMulti(a, zs); });
      ASSERT_EQ(multi.rows(), a.rows());
      ASSERT_EQ(multi.cols(), width);
      for (Matrix::Index b = 0; b < width; ++b) {
        const Vector single =
            AtIsa(isa, [&] { return MatVec(a, zs.Row(b)); });
        for (Matrix::Index i = 0; i < multi.rows(); ++i) {
          ASSERT_EQ(multi(i, b), single[i])
              << IsaName(isa) << " width=" << width << " col " << b;
        }
      }
    }
  }
  // Rank-1 factor (a single column) hits every tail path at once.
  const Matrix a1 = RandomMatrix(40, 1, &rng);
  const Matrix z1 = RandomMatrix(5, 1, &rng);
  const Matrix multi1 =
      AtLevel(KernelLevel::kBlocked, [&] { return kernels::MatVecMulti(a1, z1); });
  for (Matrix::Index b = 0; b < 5; ++b) {
    const Vector single =
        AtLevel(KernelLevel::kBlocked, [&] { return MatVec(a1, z1.Row(b)); });
    for (Matrix::Index i = 0; i < multi1.rows(); ++i) {
      ASSERT_EQ(multi1(i, b), single[i]);
    }
  }
  const Matrix zs = RandomMatrix(11, 19, &rng);
  testing::ExpectThreadCountInvariant(
      [&] {
        return Flatten(AtLevel(KernelLevel::kBlocked,
                               [&] { return kernels::MatVecMulti(a, zs); }));
      },
      {1, 2, 8}, "MatVecMulti");
}

TEST(MultiZKernels, MatTVecMultiBitwiseEqualsPerColumn) {
  Rng rng(52);
  const Matrix a = RandomMatrix(60, 23, &rng);
  for (const KernelIsa isa : IsasToTest()) {
    for (const Matrix::Index width : {1, 3, 8, 11}) {
      const Matrix t = RandomMatrix(60, width, &rng);
      const Matrix multi =
          AtIsa(isa, [&] { return kernels::MatTVecMulti(a, t); });
      ASSERT_EQ(multi.rows(), a.cols());
      ASSERT_EQ(multi.cols(), width);
      for (Matrix::Index b = 0; b < width; ++b) {
        const Vector single =
            AtIsa(isa, [&] { return MatTVec(a, t.Col(b)); });
        for (Matrix::Index i = 0; i < multi.rows(); ++i) {
          ASSERT_EQ(multi(i, b), single[i])
              << IsaName(isa) << " width=" << width << " col " << b;
        }
      }
    }
  }
  // Single-feature (p = 1) shape.
  const Matrix a1 = RandomMatrix(48, 1, &rng);
  const Matrix t1 = RandomMatrix(48, 8, &rng);
  const Matrix multi1 = AtLevel(KernelLevel::kBlocked,
                                [&] { return kernels::MatTVecMulti(a1, t1); });
  for (Matrix::Index b = 0; b < 8; ++b) {
    const Vector single = AtLevel(KernelLevel::kBlocked,
                                  [&] { return MatTVec(a1, t1.Col(b)); });
    ASSERT_EQ(multi1(0, b), single[0]);
  }
  const Matrix t = RandomMatrix(60, 11, &rng);
  testing::ExpectThreadCountInvariant(
      [&] {
        return Flatten(AtLevel(KernelLevel::kBlocked,
                               [&] { return kernels::MatTVecMulti(a, t); }));
      },
      {1, 2, 8}, "MatTVecMulti");
}

TEST(MultiZKernels, ApplyTransposedMultiBlockedBitwiseEqualsPerColumn) {
  const SparseMatrix m = MixedRowMatrix(60, 400, 24);
  Rng rng(53);
  for (const KernelIsa isa : IsasToTest()) {
    for (const Matrix::Index width : {1, 3, 8, 11}) {
      const Matrix t = RandomMatrix(60, width, &rng);
      const Matrix multi = AtIsa(
          isa, [&] { return kernels::ApplyTransposedMultiBlocked(m, t); });
      ASSERT_EQ(multi.rows(), 400);
      ASSERT_EQ(multi.cols(), width);
      for (Matrix::Index b = 0; b < width; ++b) {
        const Vector single =
            AtIsa(isa, [&] { return m.ApplyTransposed(t.Col(b)); });
        for (Matrix::Index i = 0; i < multi.rows(); ++i) {
          ASSERT_EQ(multi(i, b), single[i])
              << IsaName(isa) << " width=" << width << " col " << b;
        }
      }
    }
  }
  const Matrix t = RandomMatrix(60, 11, &rng);
  testing::ExpectThreadCountInvariant(
      [&] {
        return Flatten(AtLevel(
            KernelLevel::kBlocked,
            [&] { return kernels::ApplyTransposedMultiBlocked(m, t); }));
      },
      {1, 2, 8}, "ApplyTransposedMultiBlocked");
}

// ---------- Runtime ISA dispatch ----------

TEST(KernelIsaDispatch, Avx2BitwiseEqualsScalarAndMatchesNaiveOracle) {
  // The AVX2 variants keep the canonical four-chain association (no FMA
  // contraction), so they are bitwise equal to the scalar blocked kernels
  // — a stronger statement than the documented 1e-12 oracle contract,
  // which is also checked here against kNaive.
  Rng rng(61);
  const Matrix a = RandomMatrix(131, 67, &rng);
  const Vector x = RandomVector(67, &rng);
  const Dataset sparse = SparseBinaryData(200, 900, /*seed=*/62,
                                          /*nnz_per_row=*/25);
  std::vector<Vector> store;
  for (int t = 0; t < 11; ++t) {
    store.push_back(testing::Trainedish(sparse, 70 + t));
  }
  std::vector<const Vector*> thetas;
  for (const Vector& v : store) thetas.push_back(&v);

  const Matrix zs = RandomMatrix(8, 67, &rng);
  auto run = [&](KernelIsa isa) {
    return AtIsa(isa, [&] {
      std::vector<Vector> outs;
      outs.push_back(MatVec(a, x));
      outs.push_back(Flatten(BatchMargins(sparse, thetas)));
      outs.push_back(Flatten(kernels::MatVecMulti(a, zs)));
      return outs;
    });
  };

  const std::vector<Vector> scalar = run(KernelIsa::kScalar);
  const std::vector<Vector> naive = AtLevel(KernelLevel::kNaive, [&] {
    std::vector<Vector> outs;
    outs.push_back(MatVec(a, x));
    outs.push_back(Flatten(BatchMargins(sparse, thetas)));
    outs.push_back(Flatten(kernels::MatVecMulti(a, zs)));
    return outs;
  });
  for (std::size_t o = 0; o < scalar.size(); ++o) {
    EXPECT_LE(MaxRelDiff(scalar[o], naive[o]), 1e-12) << "output " << o;
  }

  if (!Avx2Available()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  const std::vector<Vector> avx2 = run(KernelIsa::kAvx2);
  ASSERT_EQ(avx2.size(), scalar.size());
  for (std::size_t o = 0; o < scalar.size(); ++o) {
    ASSERT_EQ(avx2[o].size(), scalar[o].size());
    for (Vector::Index i = 0; i < scalar[o].size(); ++i) {
      ASSERT_EQ(avx2[o][i], scalar[o][i]) << "output " << o << " elem " << i;
    }
    EXPECT_LE(MaxRelDiff(avx2[o], naive[o]), 1e-12) << "output " << o;
  }
}

TEST(KernelIsaDispatch, ScopeIsaReachesPoolWorkerLanes) {
  // Like ScopeKernelLevelReachesPoolWorkerLanes: the ISA choice must be
  // visible on pool worker lanes, or batched Monte-Carlo chunks would
  // resolve the ISA per lane and results could depend on the machine's
  // ambient environment mid-run.
  ThreadPool pool(8);
  RuntimeOptions options;
  options.kernel_isa = KernelIsa::kScalar;
  options.pool = &pool;
  options.num_threads = 8;
  RuntimeScope scope(options);
  constexpr ParallelIndex kItems = 16;
  std::vector<int> seen(kItems, -1);
  ParallelFor(0, kItems, [&](ParallelIndex b, ParallelIndex e) {
    for (ParallelIndex i = b; i < e; ++i) {
      seen[static_cast<std::size_t>(i)] =
          static_cast<int>(CurrentKernelIsa());
    }
  }, /*grain=*/1);
  for (ParallelIndex i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)],
              static_cast<int>(KernelIsa::kScalar))
        << "item " << i;
  }
}

// ---------- End to end through the statistics path ----------

TEST(KernelStatistics, ObservedFisherAgreesAcrossLevelsAndThreads) {
  const Dataset data = SparseBinaryData(400, 600, /*seed=*/7,
                                        /*nnz_per_row=*/20);
  const Vector theta = testing::Trainedish(data, 1);
  const LogisticRegressionSpec spec(1e-3);
  StatsOptions options;
  options.stats_sample_size = 128;
  options.max_rank = 64;

  auto variance_at = [&](KernelLevel level) {
    return AtLevel(level, [&] {
      Rng rng(17);
      auto sampler = ComputeStatistics(spec, theta, data, options, &rng);
      EXPECT_TRUE(sampler.ok()) << sampler.status().ToString();
      auto diag = sampler->VarianceDiagonal();
      EXPECT_TRUE(diag.ok());
      return *diag;
    });
  };
  const Vector v_naive = variance_at(KernelLevel::kNaive);
  const Vector v_blocked = variance_at(KernelLevel::kBlocked);
  EXPECT_LE(MaxRelDiff(v_blocked, v_naive), 1e-9);

  testing::ExpectThreadCountInvariant(
      [&] {
        Rng rng(17);
        auto sampler = ComputeStatistics(spec, theta, data, options, &rng);
        EXPECT_TRUE(sampler.ok());
        auto diag = sampler->VarianceDiagonal();
        EXPECT_TRUE(diag.ok());
        return *diag;
      },
      {1, 2, 8}, "ObservedFisher variances");
}

}  // namespace
}  // namespace blinkml
