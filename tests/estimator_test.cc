#include <cmath>

#include <gtest/gtest.h>

#include "core/accuracy_estimator.h"
#include "core/sample_size_estimator.h"
#include "core/statistics.h"
#include "data/generators.h"
#include "models/logistic_regression.h"
#include "models/linear_regression.h"
#include "models/ppca.h"
#include "models/trainer.h"
#include "runtime/parallel.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

// Fixture: a trained initial logistic model + sampler + holdout, shared
// across estimator tests.
class EstimatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    full_data_ = MakeSyntheticLogistic(30000, 10, 42, /*sparsity=*/1.0,
                                       /*noise=*/0.1);
    Rng rng(1);
    auto [holdout, pool] = full_data_.Split(0.05, &rng);
    holdout_ = std::move(holdout);
    pool_ = std::move(pool);
    n0_ = 2000;
    d0_ = pool_.SampleRows(n0_, &rng);
    const auto model = ModelTrainer().Train(spec_, d0_);
    ASSERT_TRUE(model.ok());
    theta0_ = model->theta;
    StatsOptions options;
    Rng stats_rng(2);
    auto stats = ComputeStatistics(spec_, theta0_, d0_, options, &stats_rng);
    ASSERT_TRUE(stats.ok());
    sampler_ = std::make_unique<ParamSampler>(std::move(*stats));
  }

  LogisticRegressionSpec spec_{1e-3};
  Dataset full_data_, holdout_, pool_, d0_;
  Dataset::Index n0_ = 0;
  Vector theta0_;
  std::unique_ptr<ParamSampler> sampler_;
};

// ---------- Accuracy estimator ----------

TEST_F(EstimatorFixture, AccuracyZeroWhenSampleIsFullData) {
  AccuracyOptions options;
  Rng rng(3);
  const auto est =
      EstimateAccuracy(spec_, theta0_, pool_.num_rows(), pool_.num_rows(),
                       *sampler_, holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->epsilon, 0.0);
}

TEST_F(EstimatorFixture, AccuracyBoundShrinksWithLargerSample) {
  AccuracyOptions options;
  options.num_samples = 256;
  const Dataset::Index full = pool_.num_rows();
  double prev = 2.0;
  for (const Dataset::Index n : {500, 2000, 8000, 20000}) {
    Rng rng(4);
    const auto est = EstimateAccuracy(spec_, theta0_, n, full, *sampler_,
                                      holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(est->epsilon, prev + 0.02) << "n=" << n;
    EXPECT_GE(est->epsilon, 0.0);
    prev = est->epsilon;
  }
}

TEST_F(EstimatorFixture, AccuracyBoundIsConservative) {
  // The estimated bound must exceed the mean sampled difference (it is an
  // upper quantile).
  AccuracyOptions options;
  Rng rng(5);
  const auto est = EstimateAccuracy(spec_, theta0_, n0_, pool_.num_rows(),
                                    *sampler_, holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est->epsilon, est->mean_v);
  EXPECT_GT(est->quantile_level, 0.9);
}

TEST_F(EstimatorFixture, AccuracyBoundCoversActualDifference) {
  // Statistical check of the guarantee itself: train the *actual* full
  // model and verify v(m0, mN) <= estimated epsilon. A single run can fail
  // with probability <= delta; use delta = 0.2 and require 4/5 successes.
  AccuracyOptions options;
  options.delta = 0.2;
  options.num_samples = 512;
  const auto full_model = ModelTrainer().Train(spec_, pool_);
  ASSERT_TRUE(full_model.ok());
  int covered = 0;
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(100 + trial);
    Rng sample_rng(200 + trial);
    const Dataset d0 = pool_.SampleRows(n0_, &sample_rng);
    const auto m0 = ModelTrainer().Train(spec_, d0);
    ASSERT_TRUE(m0.ok());
    StatsOptions stats_options;
    auto stats =
        ComputeStatistics(spec_, m0->theta, d0, stats_options, &rng);
    ASSERT_TRUE(stats.ok());
    const auto est =
        EstimateAccuracy(spec_, m0->theta, n0_, pool_.num_rows(), *stats,
                         holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    const double actual_v =
        spec_.Diff(m0->theta, full_model->theta, holdout_);
    if (actual_v <= est->epsilon) ++covered;
  }
  EXPECT_GE(covered, 4);
}

TEST_F(EstimatorFixture, AccuracyRejectsBadArguments) {
  AccuracyOptions options;
  Rng rng(6);
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 0, 100, *sampler_, holdout_,
                                options, &rng)
                   .ok());
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 200, 100, *sampler_,
                                holdout_, options, &rng)
                   .ok());
  options.num_samples = 0;
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 100, 200, *sampler_,
                                holdout_, options, &rng)
                   .ok());
  options.num_samples = 10;
  options.delta = 0.0;
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 100, 200, *sampler_,
                                holdout_, options, &rng)
                   .ok());
}

// ---------- Sample size estimator ----------

TEST_F(EstimatorFixture, SizeGrowsAsEpsilonShrinks) {
  // Paper Section 5.2: more accurate models need larger samples.
  SampleSizeOptions options;
  options.num_samples = 128;
  Dataset::Index prev = 0;
  for (const double eps : {0.20, 0.10, 0.05, 0.02, 0.01}) {
    options.epsilon = eps;
    Rng rng(7);
    const auto est = EstimateSampleSize(spec_, theta0_, n0_,
                                        pool_.num_rows(), *sampler_,
                                        holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    EXPECT_GE(est->sample_size, prev) << "eps=" << eps;
    EXPECT_LE(est->sample_size, pool_.num_rows());
    prev = est->sample_size;
  }
}

TEST_F(EstimatorFixture, TrivialContractNeedsMinimalSample) {
  SampleSizeOptions options;
  options.epsilon = 1.0;  // any model agrees within 1.0
  options.min_n = 100;
  Rng rng(8);
  const auto est =
      EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                         holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->sample_size, 100);
}

TEST_F(EstimatorFixture, ImpossibleContractReturnsFullSize) {
  SampleSizeOptions options;
  options.epsilon = 0.0;  // exact agreement: only n = N guarantees it
  Rng rng(9);
  const auto est =
      EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                         holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->sample_size, pool_.num_rows());
}

TEST_F(EstimatorFixture, SuccessProbabilityMonotoneInN) {
  // Paper Theorem 2: the success probability increases with n. Verify on
  // the estimator's own Monte-Carlo estimate (common random numbers make
  // this hold path-by-path up to small noise).
  SampleSizeOptions options;
  options.epsilon = 0.05;
  options.num_samples = 128;
  // Probe the internal estimate through its observable: the returned
  // success fraction at increasing min_n floors.
  double prev_fraction = -1.0;
  for (const Dataset::Index floor_n : {2000, 8000, 16000}) {
    options.min_n = floor_n;
    Rng rng(10);
    const auto est =
        EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                           holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    if (est->sample_size == floor_n) {
      EXPECT_GE(est->success_fraction + 0.05, prev_fraction);
      prev_fraction = est->success_fraction;
    }
  }
}

TEST_F(EstimatorFixture, EstimatedSizeActuallySatisfiesContract) {
  // End-to-end: train on the estimated n; the result should agree with
  // the actually-trained full model within eps (statistical: 4/5 trials).
  SampleSizeOptions options;
  options.epsilon = 0.08;
  options.delta = 0.2;
  const auto full_model = ModelTrainer().Train(spec_, pool_);
  ASSERT_TRUE(full_model.ok());
  int satisfied = 0;
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(300 + trial);
    const auto est =
        EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                           holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    Rng sample_rng(400 + trial);
    const Dataset dn = pool_.SampleRows(est->sample_size, &sample_rng);
    const auto mn = ModelTrainer().Train(spec_, dn);
    ASSERT_TRUE(mn.ok());
    if (spec_.Diff(mn->theta, full_model->theta, holdout_) <=
        options.epsilon) {
      ++satisfied;
    }
  }
  EXPECT_GE(satisfied, 4);
}

TEST_F(EstimatorFixture, SizeEstimatorRejectsBadArguments) {
  SampleSizeOptions options;
  Rng rng(11);
  EXPECT_FALSE(EstimateSampleSize(spec_, theta0_, 0, 100, *sampler_,
                                  holdout_, options, &rng)
                   .ok());
  options.epsilon = -1.0;
  EXPECT_FALSE(EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(),
                                  *sampler_, holdout_, options, &rng)
                   .ok());
}

// ---------- Batched Monte-Carlo draws ----------

// Runs fn under the given kernel level (ambient pool, full parallelism).
template <typename Fn>
auto AtLevel(KernelLevel level, const Fn& fn) {
  RuntimeOptions options;
  options.kernel_level = level;
  RuntimeScope scope(options);
  return fn();
}

TEST(DrawBatch, BitwiseEqualsDrawWithZAcrossBackends) {
  Rng rng(71);
  const Matrix::Index p = 37;
  const Matrix::Index r = 9;
  const Matrix::Index ns = 50;
  const Matrix w = testing::RandomMatrix(p, r, &rng);
  const Matrix q_dense = testing::RandomMatrix(ns, p, &rng);
  const Matrix v_scaled = testing::RandomMatrix(ns, r, &rng);
  const Dataset sparse_data =
      testing::SparseBinaryData(ns, p, /*seed=*/72, /*nnz_per_row=*/6);
  const ParamSampler samplers[] = {
      ParamSampler::FromDenseFactor(w),
      ParamSampler::FromGramFactor(q_dense, v_scaled),
      ParamSampler::FromSparseGramFactor(sparse_data.sparse(), v_scaled),
  };
  const char* names[] = {"dense", "gram", "sparse-gram"};
  for (int s = 0; s < 3; ++s) {
    const ParamSampler& sampler = samplers[s];
    for (const KernelLevel level : {KernelLevel::kNaive, KernelLevel::kBlocked}) {
      // Widths across a full kMultiVec group and odd remainders.
      for (const Matrix::Index width : {1, 3, 5, 8, 11}) {
        const Matrix zs = testing::RandomMatrix(width, r, &rng);
        for (const double scale : {1.0, 0.3}) {
          const std::vector<Vector> batch = AtLevel(
              level, [&] { return sampler.DrawBatch(scale, zs); });
          ASSERT_EQ(batch.size(), static_cast<std::size_t>(width));
          for (Matrix::Index b = 0; b < width; ++b) {
            const Vector single = AtLevel(
                level, [&] { return sampler.DrawWithZ(scale, zs.Row(b)); });
            ASSERT_EQ(batch[static_cast<std::size_t>(b)].size(), single.size());
            for (Vector::Index i = 0; i < single.size(); ++i) {
              ASSERT_EQ(batch[static_cast<std::size_t>(b)][i], single[i])
                  << names[s] << " level=" << static_cast<int>(level)
                  << " width=" << width << " scale=" << scale << " draw " << b
                  << " elem " << i;
            }
          }
        }
      }
    }
  }
}

TEST(DrawBatch, DegenerateShapes) {
  Rng rng(73);
  // Rank-1 factor and single-parameter (p = 1) factor.
  const ParamSampler rank1 =
      ParamSampler::FromDenseFactor(testing::RandomMatrix(20, 1, &rng));
  const ParamSampler p1 =
      ParamSampler::FromDenseFactor(testing::RandomMatrix(1, 4, &rng));
  for (const ParamSampler* sampler : {&rank1, &p1}) {
    const Matrix zs = testing::RandomMatrix(5, sampler->rank(), &rng);
    const std::vector<Vector> batch = AtLevel(
        KernelLevel::kBlocked, [&] { return sampler->DrawBatch(0.5, zs); });
    ASSERT_EQ(batch.size(), 5u);
    for (Matrix::Index b = 0; b < 5; ++b) {
      const Vector single = AtLevel(KernelLevel::kBlocked, [&] {
        return sampler->DrawWithZ(0.5, zs.Row(b));
      });
      for (Vector::Index i = 0; i < single.size(); ++i) {
        ASSERT_EQ(batch[static_cast<std::size_t>(b)][i], single[i]);
      }
    }
  }
  // Empty batch.
  const Matrix empty(0, rank1.rank());
  EXPECT_TRUE(rank1.DrawBatch(1.0, empty).empty());
}

TEST_F(EstimatorFixture, BatchedAccuracyBitwiseEqualsUnbatched) {
  // batch_draws is a pure speed knob: same z stream, same kernels per
  // column, so the estimate is bit-for-bit identical — at both levels.
  for (const KernelLevel level : {KernelLevel::kNaive, KernelLevel::kBlocked}) {
    AccuracyOptions options;
    options.num_samples = 100;  // not a multiple of kMultiVec on purpose
    options.batch_draws = true;
    Rng rng_a(21);
    const auto batched = AtLevel(level, [&] {
      return EstimateAccuracy(spec_, theta0_, n0_, pool_.num_rows(),
                              *sampler_, holdout_, options, &rng_a);
    });
    options.batch_draws = false;
    Rng rng_b(21);
    const auto unbatched = AtLevel(level, [&] {
      return EstimateAccuracy(spec_, theta0_, n0_, pool_.num_rows(),
                              *sampler_, holdout_, options, &rng_b);
    });
    ASSERT_TRUE(batched.ok());
    ASSERT_TRUE(unbatched.ok());
    EXPECT_EQ(batched->epsilon, unbatched->epsilon)
        << "level=" << static_cast<int>(level);
    EXPECT_EQ(batched->mean_v, unbatched->mean_v)
        << "level=" << static_cast<int>(level);
  }
}

TEST_F(EstimatorFixture, BatchedSampleSizeBitwiseEqualsUnbatched) {
  for (const KernelLevel level : {KernelLevel::kNaive, KernelLevel::kBlocked}) {
    SampleSizeOptions options;
    options.num_samples = 60;  // not a multiple of kMultiVec on purpose
    options.epsilon = 0.05;
    options.batch_draws = true;
    Rng rng_a(22);
    const auto batched = AtLevel(level, [&] {
      return EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(),
                                *sampler_, holdout_, options, &rng_a);
    });
    options.batch_draws = false;
    Rng rng_b(22);
    const auto unbatched = AtLevel(level, [&] {
      return EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(),
                                *sampler_, holdout_, options, &rng_b);
    });
    ASSERT_TRUE(batched.ok());
    ASSERT_TRUE(unbatched.ok());
    EXPECT_EQ(batched->sample_size, unbatched->sample_size)
        << "level=" << static_cast<int>(level);
    EXPECT_EQ(batched->success_fraction, unbatched->success_fraction)
        << "level=" << static_cast<int>(level);
    EXPECT_EQ(batched->evaluations, unbatched->evaluations)
        << "level=" << static_cast<int>(level);
  }
}

TEST_F(EstimatorFixture, BatchedEstimatorsThreadCountInvariant) {
  // The chunk layout (and so the z-block boundaries) is a pure function
  // of the sample count; with batching on the drawn bits must still be
  // identical at 1, 2, and 8 threads.
  AccuracyOptions acc_options;
  acc_options.num_samples = 100;
  testing::ExpectThreadCountInvariant(
      [&] {
        Rng rng(23);
        const auto est =
            EstimateAccuracy(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                             holdout_, acc_options, &rng);
        EXPECT_TRUE(est.ok());
        Vector out(2);
        out[0] = est->epsilon;
        out[1] = est->mean_v;
        return out;
      },
      {1, 2, 8}, "batched accuracy estimate");

  SampleSizeOptions size_options;
  size_options.num_samples = 60;
  size_options.epsilon = 0.05;
  testing::ExpectThreadCountInvariant(
      [&] {
        Rng rng(24);
        const auto est =
            EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(),
                               *sampler_, holdout_, size_options, &rng);
        EXPECT_TRUE(est.ok());
        Vector out(3);
        out[0] = static_cast<double>(est->sample_size);
        out[1] = est->success_fraction;
        out[2] = static_cast<double>(est->evaluations);
        return out;
      },
      {1, 2, 8}, "batched sample-size estimate");
}

// ---------- Search-evaluation accounting (memoized candidates) ----------

int CeilLog2(Dataset::Index len) {
  int bits = 0;
  while ((Dataset::Index{1} << bits) < len) ++bits;
  return bits;
}

TEST_F(EstimatorFixture, TrivialContractEvaluatesOnce) {
  // The trivially feasible lower bound is evaluated exactly once: the
  // reported success fraction reads the memo instead of re-running the
  // Monte-Carlo pass (this used to cost a second full evaluation).
  SampleSizeOptions options;
  options.epsilon = 1.0;
  options.min_n = 100;
  Rng rng(25);
  const auto est =
      EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                         holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->sample_size, 100);
  EXPECT_EQ(est->evaluations, 1);
  EXPECT_GE(est->success_fraction, est->quantile_level);
}

TEST_F(EstimatorFixture, SearchEvaluatesEachCandidateOnce) {
  const Dataset::Index full_n = pool_.num_rows();
  const Dataset::Index lo0 = 100;

  // Infeasible contract: every bisection midpoint fails, so the interval
  // shrinks by ceil-halves — exactly CeilLog2(full_n - lo0) midpoints —
  // plus the initial lower bound and one final evaluation at full_n
  // (never probed as a midpoint).
  SampleSizeOptions options;
  options.epsilon = 0.0;
  options.min_n = lo0;
  Rng rng(26);
  const auto impossible =
      EstimateSampleSize(spec_, theta0_, n0_, full_n, *sampler_, holdout_,
                         options, &rng);
  ASSERT_TRUE(impossible.ok());
  ASSERT_EQ(impossible->sample_size, full_n);
  EXPECT_EQ(impossible->evaluations, 2 + CeilLog2(full_n - lo0));

  // Moderate contract: the distinct candidates are the lower bound plus
  // at most CeilLog2 midpoints; the final report at the returned n is
  // always served from the memo.
  options.epsilon = 0.05;
  Rng rng2(27);
  const auto mid = EstimateSampleSize(spec_, theta0_, n0_, full_n, *sampler_,
                                      holdout_, options, &rng2);
  ASSERT_TRUE(mid.ok());
  ASSERT_GT(mid->sample_size, lo0);
  ASSERT_LT(mid->sample_size, full_n);
  EXPECT_LE(mid->evaluations, 1 + CeilLog2(full_n - lo0));
  EXPECT_GE(mid->evaluations, 2);
}

// The generic (non-score) path must work for PPCA.
TEST(EstimatorGeneric, PpcaSampleSizeSearch) {
  const Dataset data = MakeSyntheticLowRank(20000, 8, 2, 50, /*noise=*/0.4);
  Rng rng(12);
  auto [holdout, pool] = data.Split(0.05, &rng);
  PpcaSpec spec(2);
  const Dataset d0 = pool.SampleRows(1000, &rng);
  const auto m0 = ModelTrainer().Train(spec, d0);
  ASSERT_TRUE(m0.ok());
  StatsOptions stats_options;
  auto stats = ComputeStatistics(spec, m0->theta, d0, stats_options, &rng);
  ASSERT_TRUE(stats.ok());
  SampleSizeOptions options;
  options.num_samples = 64;
  options.epsilon = 1e-4;  // tight cosine-distance contract
  const auto est = EstimateSampleSize(spec, m0->theta, 1000,
                                      pool.num_rows(), *stats, holdout,
                                      options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->sample_size, 1000);

  // A loose contract needs fewer rows.
  options.epsilon = 0.05;
  Rng rng2(13);
  const auto loose = EstimateSampleSize(spec, m0->theta, 1000,
                                        pool.num_rows(), *stats, holdout,
                                        options, &rng2);
  ASSERT_TRUE(loose.ok());
  EXPECT_LT(loose->sample_size, est->sample_size);
}

}  // namespace
}  // namespace blinkml
