#include <cmath>

#include <gtest/gtest.h>

#include "core/accuracy_estimator.h"
#include "core/sample_size_estimator.h"
#include "core/statistics.h"
#include "data/generators.h"
#include "models/logistic_regression.h"
#include "models/linear_regression.h"
#include "models/ppca.h"
#include "models/trainer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

// Fixture: a trained initial logistic model + sampler + holdout, shared
// across estimator tests.
class EstimatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    full_data_ = MakeSyntheticLogistic(30000, 10, 42, /*sparsity=*/1.0,
                                       /*noise=*/0.1);
    Rng rng(1);
    auto [holdout, pool] = full_data_.Split(0.05, &rng);
    holdout_ = std::move(holdout);
    pool_ = std::move(pool);
    n0_ = 2000;
    d0_ = pool_.SampleRows(n0_, &rng);
    const auto model = ModelTrainer().Train(spec_, d0_);
    ASSERT_TRUE(model.ok());
    theta0_ = model->theta;
    StatsOptions options;
    Rng stats_rng(2);
    auto stats = ComputeStatistics(spec_, theta0_, d0_, options, &stats_rng);
    ASSERT_TRUE(stats.ok());
    sampler_ = std::make_unique<ParamSampler>(std::move(*stats));
  }

  LogisticRegressionSpec spec_{1e-3};
  Dataset full_data_, holdout_, pool_, d0_;
  Dataset::Index n0_ = 0;
  Vector theta0_;
  std::unique_ptr<ParamSampler> sampler_;
};

// ---------- Accuracy estimator ----------

TEST_F(EstimatorFixture, AccuracyZeroWhenSampleIsFullData) {
  AccuracyOptions options;
  Rng rng(3);
  const auto est =
      EstimateAccuracy(spec_, theta0_, pool_.num_rows(), pool_.num_rows(),
                       *sampler_, holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->epsilon, 0.0);
}

TEST_F(EstimatorFixture, AccuracyBoundShrinksWithLargerSample) {
  AccuracyOptions options;
  options.num_samples = 256;
  const Dataset::Index full = pool_.num_rows();
  double prev = 2.0;
  for (const Dataset::Index n : {500, 2000, 8000, 20000}) {
    Rng rng(4);
    const auto est = EstimateAccuracy(spec_, theta0_, n, full, *sampler_,
                                      holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(est->epsilon, prev + 0.02) << "n=" << n;
    EXPECT_GE(est->epsilon, 0.0);
    prev = est->epsilon;
  }
}

TEST_F(EstimatorFixture, AccuracyBoundIsConservative) {
  // The estimated bound must exceed the mean sampled difference (it is an
  // upper quantile).
  AccuracyOptions options;
  Rng rng(5);
  const auto est = EstimateAccuracy(spec_, theta0_, n0_, pool_.num_rows(),
                                    *sampler_, holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est->epsilon, est->mean_v);
  EXPECT_GT(est->quantile_level, 0.9);
}

TEST_F(EstimatorFixture, AccuracyBoundCoversActualDifference) {
  // Statistical check of the guarantee itself: train the *actual* full
  // model and verify v(m0, mN) <= estimated epsilon. A single run can fail
  // with probability <= delta; use delta = 0.2 and require 4/5 successes.
  AccuracyOptions options;
  options.delta = 0.2;
  options.num_samples = 512;
  const auto full_model = ModelTrainer().Train(spec_, pool_);
  ASSERT_TRUE(full_model.ok());
  int covered = 0;
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(100 + trial);
    Rng sample_rng(200 + trial);
    const Dataset d0 = pool_.SampleRows(n0_, &sample_rng);
    const auto m0 = ModelTrainer().Train(spec_, d0);
    ASSERT_TRUE(m0.ok());
    StatsOptions stats_options;
    auto stats =
        ComputeStatistics(spec_, m0->theta, d0, stats_options, &rng);
    ASSERT_TRUE(stats.ok());
    const auto est =
        EstimateAccuracy(spec_, m0->theta, n0_, pool_.num_rows(), *stats,
                         holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    const double actual_v =
        spec_.Diff(m0->theta, full_model->theta, holdout_);
    if (actual_v <= est->epsilon) ++covered;
  }
  EXPECT_GE(covered, 4);
}

TEST_F(EstimatorFixture, AccuracyRejectsBadArguments) {
  AccuracyOptions options;
  Rng rng(6);
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 0, 100, *sampler_, holdout_,
                                options, &rng)
                   .ok());
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 200, 100, *sampler_,
                                holdout_, options, &rng)
                   .ok());
  options.num_samples = 0;
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 100, 200, *sampler_,
                                holdout_, options, &rng)
                   .ok());
  options.num_samples = 10;
  options.delta = 0.0;
  EXPECT_FALSE(EstimateAccuracy(spec_, theta0_, 100, 200, *sampler_,
                                holdout_, options, &rng)
                   .ok());
}

// ---------- Sample size estimator ----------

TEST_F(EstimatorFixture, SizeGrowsAsEpsilonShrinks) {
  // Paper Section 5.2: more accurate models need larger samples.
  SampleSizeOptions options;
  options.num_samples = 128;
  Dataset::Index prev = 0;
  for (const double eps : {0.20, 0.10, 0.05, 0.02, 0.01}) {
    options.epsilon = eps;
    Rng rng(7);
    const auto est = EstimateSampleSize(spec_, theta0_, n0_,
                                        pool_.num_rows(), *sampler_,
                                        holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    EXPECT_GE(est->sample_size, prev) << "eps=" << eps;
    EXPECT_LE(est->sample_size, pool_.num_rows());
    prev = est->sample_size;
  }
}

TEST_F(EstimatorFixture, TrivialContractNeedsMinimalSample) {
  SampleSizeOptions options;
  options.epsilon = 1.0;  // any model agrees within 1.0
  options.min_n = 100;
  Rng rng(8);
  const auto est =
      EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                         holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->sample_size, 100);
}

TEST_F(EstimatorFixture, ImpossibleContractReturnsFullSize) {
  SampleSizeOptions options;
  options.epsilon = 0.0;  // exact agreement: only n = N guarantees it
  Rng rng(9);
  const auto est =
      EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                         holdout_, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->sample_size, pool_.num_rows());
}

TEST_F(EstimatorFixture, SuccessProbabilityMonotoneInN) {
  // Paper Theorem 2: the success probability increases with n. Verify on
  // the estimator's own Monte-Carlo estimate (common random numbers make
  // this hold path-by-path up to small noise).
  SampleSizeOptions options;
  options.epsilon = 0.05;
  options.num_samples = 128;
  // Probe the internal estimate through its observable: the returned
  // success fraction at increasing min_n floors.
  double prev_fraction = -1.0;
  for (const Dataset::Index floor_n : {2000, 8000, 16000}) {
    options.min_n = floor_n;
    Rng rng(10);
    const auto est =
        EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                           holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    if (est->sample_size == floor_n) {
      EXPECT_GE(est->success_fraction + 0.05, prev_fraction);
      prev_fraction = est->success_fraction;
    }
  }
}

TEST_F(EstimatorFixture, EstimatedSizeActuallySatisfiesContract) {
  // End-to-end: train on the estimated n; the result should agree with
  // the actually-trained full model within eps (statistical: 4/5 trials).
  SampleSizeOptions options;
  options.epsilon = 0.08;
  options.delta = 0.2;
  const auto full_model = ModelTrainer().Train(spec_, pool_);
  ASSERT_TRUE(full_model.ok());
  int satisfied = 0;
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(300 + trial);
    const auto est =
        EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(), *sampler_,
                           holdout_, options, &rng);
    ASSERT_TRUE(est.ok());
    Rng sample_rng(400 + trial);
    const Dataset dn = pool_.SampleRows(est->sample_size, &sample_rng);
    const auto mn = ModelTrainer().Train(spec_, dn);
    ASSERT_TRUE(mn.ok());
    if (spec_.Diff(mn->theta, full_model->theta, holdout_) <=
        options.epsilon) {
      ++satisfied;
    }
  }
  EXPECT_GE(satisfied, 4);
}

TEST_F(EstimatorFixture, SizeEstimatorRejectsBadArguments) {
  SampleSizeOptions options;
  Rng rng(11);
  EXPECT_FALSE(EstimateSampleSize(spec_, theta0_, 0, 100, *sampler_,
                                  holdout_, options, &rng)
                   .ok());
  options.epsilon = -1.0;
  EXPECT_FALSE(EstimateSampleSize(spec_, theta0_, n0_, pool_.num_rows(),
                                  *sampler_, holdout_, options, &rng)
                   .ok());
}

// The generic (non-score) path must work for PPCA.
TEST(EstimatorGeneric, PpcaSampleSizeSearch) {
  const Dataset data = MakeSyntheticLowRank(20000, 8, 2, 50, /*noise=*/0.4);
  Rng rng(12);
  auto [holdout, pool] = data.Split(0.05, &rng);
  PpcaSpec spec(2);
  const Dataset d0 = pool.SampleRows(1000, &rng);
  const auto m0 = ModelTrainer().Train(spec, d0);
  ASSERT_TRUE(m0.ok());
  StatsOptions stats_options;
  auto stats = ComputeStatistics(spec, m0->theta, d0, stats_options, &rng);
  ASSERT_TRUE(stats.ok());
  SampleSizeOptions options;
  options.num_samples = 64;
  options.epsilon = 1e-4;  // tight cosine-distance contract
  const auto est = EstimateSampleSize(spec, m0->theta, 1000,
                                      pool.num_rows(), *stats, holdout,
                                      options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->sample_size, 1000);

  // A loose contract needs fewer rows.
  options.epsilon = 0.05;
  Rng rng2(13);
  const auto loose = EstimateSampleSize(spec, m0->theta, 1000,
                                        pool.num_rows(), *stats, holdout,
                                        options, &rng2);
  ASSERT_TRUE(loose.ok());
  EXPECT_LT(loose->sample_size, est->sample_size);
}

}  // namespace
}  // namespace blinkml
