// SessionManager: concurrent multi-tenant jobs must be bitwise identical
// to standalone runs at any thread count; the byte-budget LRU must evict
// idle sessions but never in-use ones (refcount); job exceptions must
// propagate through the returned futures.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "runtime/thread_pool.h"
#include "serve/session_manager.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectBitwiseEqual;
using testing::FastConfig;
using testing::kTightContract;

std::shared_ptr<LogisticRegressionSpec> Lr(double l2) {
  return std::make_shared<LogisticRegressionSpec>(l2);
}

// The three tenants' datasets: dense binary, sparse binary (Gram-path
// statistics), dense regression.
Dataset DenseData() { return testing::SmallDenseLogistic(20000, 6, 3); }
Dataset SparseData() {
  return testing::SparseBinaryData(20000, /*dim=*/400, /*seed=*/13,
                                   /*nnz_per_row=*/12);
}
Dataset LinearData() { return MakeSyntheticLinear(20000, 5, 21); }

TEST(SessionManager, ConcurrentTenantsMatchStandaloneAtAnyThreadCount) {
  const Dataset dense = DenseData();
  const Dataset sparse = SparseData();
  const Dataset linear = LinearData();
  const std::vector<Candidate> candidates =
      HyperparamSearch::LogGrid(1e-4, 1e-1, 3);
  const auto lr_factory = [](const Candidate& c) { return Lr(c.l2); };

  // Standalone references, fully serial.
  BlinkConfig serial = FastConfig(11);
  serial.runtime.enabled = false;
  std::vector<ApproxResult> search_ref;
  for (const Candidate& c : candidates) {
    const auto r =
        Coordinator(serial).Train(*Lr(c.l2), dense, kTightContract);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    search_ref.push_back(*r);
  }
  const auto sparse_ref =
      Coordinator(serial).Train(*Lr(1e-3), sparse, kTightContract);
  const LinearRegressionSpec lin_spec(1e-3);
  const auto linear_ref =
      Coordinator(serial).Train(lin_spec, linear, kTightContract);
  BlinkConfig serial99 = FastConfig(99);
  serial99.runtime.enabled = false;
  const auto sparse_ref99 =
      Coordinator(serial99).Train(*Lr(1e-2), sparse, kTightContract);
  ASSERT_TRUE(sparse_ref.ok());
  ASSERT_TRUE(linear_ref.ok());
  ASSERT_TRUE(sparse_ref99.ok());

  ThreadPool pool(8);
  for (const int threads : {1, 2, 8}) {
    BlinkConfig config = FastConfig(11);
    config.runtime.pool = &pool;
    config.runtime.num_threads = threads;

    ServeOptions options;
    options.max_concurrent_jobs = 4;
    SessionManager manager(options);
    ASSERT_TRUE(manager.RegisterDataset("dense", Dataset(dense), config).ok());
    // Lazily generated tenant: the factory runs inside the first job.
    ASSERT_TRUE(manager
                    .RegisterDataset("sparse",
                                     [&sparse] { return Dataset(sparse); },
                                     config)
                    .ok());
    ASSERT_TRUE(
        manager.RegisterDataset("linear", Dataset(linear), config).ok());
    // The same name cannot be registered twice.
    EXPECT_FALSE(
        manager.RegisterDataset("dense", Dataset(dense), config).ok());

    // Mixed concurrent jobs: one search + three trains across the three
    // datasets, two of the trains sharing the "sparse" session and one
    // using a per-request seed (its own session).
    SearchOptions search_options;
    search_options.contract = kTightContract;
    SearchRequest search_request;
    search_request.dataset = "dense";
    search_request.factory = lr_factory;
    search_request.candidates = candidates;
    search_request.options = search_options;
    auto search_future = manager.SubmitSearch(std::move(search_request));
    auto sparse_future =
        manager.SubmitTrain({"sparse", Lr(1e-3), kTightContract});
    auto linear_future = manager.SubmitTrain(
        {"linear", std::make_shared<LinearRegressionSpec>(1e-3),
         kTightContract});
    auto seeded_future =
        manager.SubmitTrain({"sparse", Lr(1e-2), kTightContract, 99});

    const auto search_outcome = search_future.get();
    ASSERT_TRUE(search_outcome.ok()) << search_outcome.status().ToString();
    ASSERT_EQ(search_outcome->candidates.size(), candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const CandidateResult& cr = search_outcome->candidates[i];
      ASSERT_TRUE(cr.status.ok()) << cr.status.ToString();
      ExpectBitwiseEqual(cr.result, search_ref[i], "served search");
    }
    const auto sparse_result = sparse_future.get();
    ASSERT_TRUE(sparse_result.ok()) << sparse_result.status().ToString();
    ExpectBitwiseEqual(*sparse_result, *sparse_ref, "served sparse train");
    const auto linear_result = linear_future.get();
    ASSERT_TRUE(linear_result.ok()) << linear_result.status().ToString();
    ExpectBitwiseEqual(*linear_result, *linear_ref, "served linear train");
    const auto seeded_result = seeded_future.get();
    ASSERT_TRUE(seeded_result.ok()) << seeded_result.status().ToString();
    ExpectBitwiseEqual(*seeded_result, *sparse_ref99, "served seeded train");

    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.jobs_submitted, 4u);
    EXPECT_EQ(stats.jobs_completed, 4u);
    EXPECT_EQ(stats.jobs_failed, 0u);
    // (dense, 11), (sparse, 11), (linear, 11), (sparse, 99).
    EXPECT_EQ(stats.sessions_created, 4u);
    EXPECT_EQ(stats.loaded_datasets, 3);
    // No budget: nothing was evicted.
    EXPECT_EQ(stats.sessions_evicted, 0u);
    EXPECT_EQ(stats.live_sessions, 4);
    EXPECT_GT(stats.resident_bytes, 0u);

    // Forced eviction drops the idle sessions and unloads the
    // factory-registered dataset, but pre-materialized registrations are
    // pinned resident (their bytes live in the registry's own closure, so
    // unloading them would free nothing).
    EXPECT_EQ(manager.EvictIdle(), 4);
    const ServeStats after = manager.stats();
    EXPECT_EQ(after.live_sessions, 0);
    EXPECT_EQ(after.loaded_datasets, 2);
  }
}

TEST(SessionManager, CacheBytesCountsBudgetBypassedPrefixes) {
  // The precise-accounting gap: a memoized prefix dataset (holdout / D_0)
  // whose materialization the sample cache bypassed at its row budget is
  // still pinned by the session's per-seed prefix map. CacheBytes must
  // count those bytes, or the serving layer's byte-budget LRU
  // under-charges sessions that trained on many seeds.
  const Dataset base = testing::SmallDenseLogistic(2000, 6, 3);
  TrainingSession session(Dataset(base), FastConfig(11));
  const auto bytes_of_rows = [&](Dataset::Index n) {
    // Dense dataset: features (n x dim) + labels, Dataset::MemoryBytes.
    return static_cast<std::uint64_t>(n) *
           (static_cast<std::uint64_t>(base.dim()) + 1) * sizeof(double);
  };
  // Replay of the sample cache's budget rule (4x the dataset's rows, set
  // by the session constructor) over the exact materialization order:
  // holdout, D_0, then the final sample when one is trained. Only the
  // first two are pinned by the memoized prefix; a bypassed final sample
  // is dropped when the run ends and must NOT be counted.
  const Dataset::Index budget = 4 * base.num_rows();
  Dataset::Index sim_cached = 0;
  std::uint64_t expected_uncached = 0;
  std::uint64_t expected_bypasses = 0;
  const auto touch = [&](Dataset::Index rows, bool pinned_by_prefix) {
    if (sim_cached + rows > budget) {
      ++expected_bypasses;
      if (pinned_by_prefix) expected_uncached += bytes_of_rows(rows);
    } else {
      sim_cached += rows;
    }
  };
  const LogisticRegressionSpec spec(1e-3);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto result = session.Train(spec, testing::kLooseContract, seed);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    touch(result->holdout->num_rows(), /*pinned_by_prefix=*/true);
    touch(std::min<Dataset::Index>(FastConfig(11).initial_sample_size,
                                   result->full_size),
          /*pinned_by_prefix=*/true);  // D_0
    if (!result->used_initial_only) {
      touch(result->sample_size, /*pinned_by_prefix=*/false);
    }
    const SessionStats stats = session.stats();
    ASSERT_EQ(stats.cache.bypassed, expected_bypasses) << "seed " << seed;
    ASSERT_EQ(stats.cache.cached_rows, sim_cached) << "seed " << seed;
    EXPECT_EQ(session.CacheBytes(),
              stats.cache.cached_bytes + stats.gram_cache.cached_bytes +
                  expected_uncached)
        << "seed " << seed;
  }
  // The fixture must actually reach the budget, with prefix datasets
  // among the bypasses (otherwise the regression is untested).
  EXPECT_GT(expected_bypasses, 0u);
  EXPECT_GT(expected_uncached, 0u);
}

TEST(SessionManager, EvictionUnderPressureRecomputesIdenticalResults) {
  const Dataset dense = DenseData();
  const Dataset linear = LinearData();

  // Lazy factories: unloading a factory-registered dataset genuinely
  // frees it (pre-materialized registrations are pinned resident instead
  // — their bytes live in the registry's own closure).
  const auto dense_factory = [&dense] { return Dataset(dense); };
  const auto linear_factory = [&linear] { return Dataset(linear); };

  // Reference: an unlimited manager serving the same jobs.
  std::vector<ApproxResult> reference;
  {
    SessionManager unlimited(ServeOptions{});
    ASSERT_TRUE(
        unlimited.RegisterDataset("dense", dense_factory, FastConfig(11))
            .ok());
    ASSERT_TRUE(
        unlimited.RegisterDataset("linear", linear_factory, FastConfig(11))
            .ok());
    for (int round = 0; round < 2; ++round) {
      auto a = unlimited.SubmitTrain({"dense", Lr(1e-3), kTightContract});
      auto b = unlimited.SubmitTrain(
          {"linear", std::make_shared<LinearRegressionSpec>(1e-3),
           kTightContract});
      const auto ra = a.get();
      const auto rb = b.get();
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rb.ok());
      reference.push_back(*ra);
      reference.push_back(*rb);
    }
    EXPECT_EQ(unlimited.stats().sessions_evicted, 0u);
  }

  // A 1-byte budget: every release finds the footprint over budget and
  // evicts the now-idle session and unloads its dataset; the next round
  // reloads and recomputes, bitwise identically (every cached artifact is
  // a pure function of its key).
  ServeOptions tight;
  tight.max_resident_bytes = 1;
  tight.max_concurrent_jobs = 1;  // serialize so each release sees idle
  SessionManager manager(tight);
  ASSERT_TRUE(
      manager.RegisterDataset("dense", dense_factory, FastConfig(11)).ok());
  ASSERT_TRUE(
      manager.RegisterDataset("linear", linear_factory, FastConfig(11)).ok());
  std::size_t next = 0;
  for (int round = 0; round < 2; ++round) {
    auto a = manager.SubmitTrain({"dense", Lr(1e-3), kTightContract});
    const auto ra = a.get();
    ASSERT_TRUE(ra.ok());
    ExpectBitwiseEqual(*ra, reference[next++], "evicted dense");
    auto b = manager.SubmitTrain(
        {"linear", std::make_shared<LinearRegressionSpec>(1e-3),
         kTightContract});
    const auto rb = b.get();
    ASSERT_TRUE(rb.ok());
    ExpectBitwiseEqual(*rb, reference[next++], "evicted linear");
  }

  const ServeStats stats = manager.stats();
  // Each of the four jobs created a fresh session and evicted it on
  // completion; each dataset was loaded once per use.
  EXPECT_EQ(stats.sessions_created, 4u);
  EXPECT_EQ(stats.sessions_evicted, 4u);
  EXPECT_GE(stats.datasets_loaded, 4u);
  EXPECT_GE(stats.datasets_unloaded, 4u);
  EXPECT_EQ(stats.live_sessions, 0);
  EXPECT_EQ(stats.loaded_datasets, 0);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

// A logistic spec whose initial training blocks until the test releases
// it — pins its session mid-job so the refcount protection is observable.
class GatedSpec final : public LogisticRegressionSpec {
 public:
  GatedSpec(double l2, std::atomic<bool>* started,
            std::shared_future<void> gate)
      : LogisticRegressionSpec(l2), started_(started),
        gate_(std::move(gate)) {}

  Vector InitialTheta(const Dataset& data) const override {
    started_->store(true);
    gate_.wait();
    return LogisticRegressionSpec::InitialTheta(data);
  }

 private:
  std::atomic<bool>* started_;
  std::shared_future<void> gate_;
};

TEST(SessionManager, InUseSessionsSurviveEvictionByRefcount) {
  const Dataset dense = DenseData();
  const Dataset linear = LinearData();

  ServeOptions options;
  options.max_resident_bytes = 1;  // everything idle is evictable
  options.max_concurrent_jobs = 2;
  SessionManager manager(options);
  ASSERT_TRUE(manager
                  .RegisterDataset("dense",
                                   [&dense] { return Dataset(dense); },
                                   FastConfig(11))
                  .ok());
  ASSERT_TRUE(manager
                  .RegisterDataset("linear",
                                   [&linear] { return Dataset(linear); },
                                   FastConfig(11))
                  .ok());

  std::atomic<bool> started{false};
  std::promise<void> gate;
  const std::shared_future<void> gate_future = gate.get_future().share();
  auto gated = std::make_shared<GatedSpec>(1e-3, &started, gate_future);
  auto blocked = manager.SubmitTrain({"dense", gated, kTightContract});
  // Wait until the job holds its session lease (it is blocked inside
  // initial training).
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A completing job on another dataset triggers budget enforcement; the
  // in-use "dense" session must survive it, and so must its dataset.
  auto quick = manager.SubmitTrain(
      {"linear", std::make_shared<LinearRegressionSpec>(1e-3),
       kTightContract});
  ASSERT_TRUE(quick.get().ok());
  // Forced eviction cannot touch it either.
  EXPECT_EQ(manager.EvictIdle(), 0);
  {
    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.live_sessions, 1);
    EXPECT_EQ(stats.loaded_datasets, 1);
    // The idle "linear" session fell to the budget when its job released.
    EXPECT_EQ(stats.sessions_evicted, 1u);
  }

  // Release the gate: the pinned job completes normally and matches a
  // standalone run — eviction pressure never perturbs results.
  gate.set_value();
  const auto result = blocked.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  BlinkConfig serial = FastConfig(11);
  serial.runtime.enabled = false;
  // (gate already released; the standalone run passes straight through)
  GatedSpec standalone_spec(1e-3, &started, gate_future);
  const auto standalone =
      Coordinator(serial).Train(standalone_spec, dense, kTightContract);
  ASSERT_TRUE(standalone.ok());
  ExpectBitwiseEqual(*result, *standalone, "gated job vs standalone");

  // The moment the pinned job released its lease, the 1-byte budget took
  // the now-idle session (and its dataset) too: nothing is left to evict.
  EXPECT_EQ(manager.EvictIdle(), 0);
  const ServeStats end_stats = manager.stats();
  EXPECT_EQ(end_stats.sessions_evicted, 2u);
  EXPECT_EQ(end_stats.live_sessions, 0);
  EXPECT_EQ(end_stats.loaded_datasets, 0);
}

TEST(SessionManager, JobFailuresPropagate) {
  SessionManager manager(ServeOptions{});

  // Unknown dataset: an error Result, not an exception.
  auto unknown = manager.SubmitTrain({"nope", Lr(1e-3), kTightContract});
  const auto unknown_result = unknown.get();
  ASSERT_FALSE(unknown_result.ok());
  EXPECT_EQ(unknown_result.status().code(), StatusCode::kNotFound);

  // Null spec: invalid argument.
  auto null_spec = manager.SubmitTrain({"nope", nullptr, kTightContract});
  EXPECT_EQ(null_spec.get().status().code(), StatusCode::kInvalidArgument);

  // A throwing dataset factory: the exception reaches the waiting future,
  // and the failed load is not cached — once the factory recovers, the
  // next job succeeds.
  std::atomic<bool> fail{true};
  ASSERT_TRUE(manager
                  .RegisterDataset("flaky",
                                   [&fail] {
                                     if (fail.load()) {
                                       throw std::runtime_error("disk on fire");
                                     }
                                     return testing::SmallDenseLogistic(
                                         20000, 6, 3);
                                   },
                                   FastConfig(11))
                  .ok());
  auto broken = manager.SubmitTrain({"flaky", Lr(1e-3), kTightContract});
  EXPECT_THROW(broken.get(), std::runtime_error);

  fail.store(false);
  auto recovered = manager.SubmitTrain({"flaky", Lr(1e-3), kTightContract});
  const auto result = recovered.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->sample_size, 0);

  const ServeStats stats = manager.stats();
  EXPECT_EQ(stats.jobs_submitted, 4u);
  EXPECT_EQ(stats.jobs_completed, 4u);
  EXPECT_EQ(stats.jobs_failed, 3u);
}

// Destroying a manager with queued jobs fulfills every future first.
TEST(SessionManager, ShutdownDrainsTheQueue) {
  const Dataset dense = DenseData();
  std::vector<std::future<Result<ApproxResult>>> futures;
  {
    ServeOptions options;
    options.max_concurrent_jobs = 1;
    SessionManager manager(options);
    ASSERT_TRUE(
        manager.RegisterDataset("dense", Dataset(dense), FastConfig(11))
            .ok());
    for (int i = 0; i < 3; ++i) {
      futures.push_back(
          manager.SubmitTrain({"dense", Lr(1e-3), kTightContract}));
    }
  }  // destructor drains
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(SessionManager, StatsReportsCachedBytesAndLoadsInProgress) {
  // A factory that blocks until released, so the single-flight load is
  // observable mid-flight through stats().
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  SessionManager manager;
  ASSERT_TRUE(manager
                  .RegisterDataset(
                      "slow",
                      [released] {
                        released.wait();
                        return testing::SmallDenseLogistic(4000, 5, 3);
                      },
                      FastConfig(11))
                  .ok());

  EXPECT_EQ(manager.stats().loads_in_progress, 0);
  EXPECT_EQ(manager.stats().cached_bytes, 0u);

  auto future = manager.SubmitTrain({"slow", Lr(1e-3), kTightContract});
  // The job is inside the factory until we release it.
  for (int i = 0; i < 1000 && manager.stats().loads_in_progress == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(manager.stats().loads_in_progress, 1);
  release.set_value();
  ASSERT_TRUE(future.get().ok());

  const ServeStats stats = manager.stats();
  EXPECT_EQ(stats.loads_in_progress, 0);
  EXPECT_EQ(stats.loaded_datasets, 1);
  // The completed session retains its sample/Gram caches; that retention
  // is the evictable share of the resident footprint.
  EXPECT_GT(stats.cached_bytes, 0u);
  EXPECT_LE(stats.cached_bytes, stats.resident_bytes);

  manager.EvictIdle();
  EXPECT_EQ(manager.stats().cached_bytes, 0u);
}

}  // namespace
}  // namespace blinkml
