#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "tests/test_util.h"
#include "util/check.h"

namespace blinkml {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;
using testing::RandomVector;

// ---------- Vector ----------

TEST(Vector, ConstructionAndAccess) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  v[1] = 2.5;
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  const Vector w{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(w[2], 3.0);
  EXPECT_TRUE(Vector().empty());
}

TEST(Vector, NegativeSizeThrows) {
  EXPECT_THROW(Vector(-1), CheckError);
}

TEST(Vector, Arithmetic) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  ExpectVectorNear(a + b, Vector{5.0, 7.0, 9.0}, 0.0);
  ExpectVectorNear(b - a, Vector{3.0, 3.0, 3.0}, 0.0);
  ExpectVectorNear(a * 2.0, Vector{2.0, 4.0, 6.0}, 0.0);
  ExpectVectorNear(2.0 * a, Vector{2.0, 4.0, 6.0}, 0.0);
  ExpectVectorNear(b / 2.0, Vector{2.0, 2.5, 3.0}, 0.0);
}

TEST(Vector, SizeMismatchThrows) {
  Vector a{1.0, 2.0};
  const Vector b{1.0, 2.0, 3.0};
  EXPECT_THROW(a += b, CheckError);
  EXPECT_THROW(Dot(a, b), CheckError);
}

TEST(Vector, DivisionByZeroThrows) {
  Vector a{1.0};
  EXPECT_THROW(a /= 0.0, CheckError);
}

TEST(Vector, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(SquaredNorm2(a), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(a), 4.0);
  EXPECT_DOUBLE_EQ(NormInf(Vector{-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(NormInf(Vector()), 0.0);
}

TEST(Vector, Axpy) {
  const Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  Axpy(3.0, x, &y);
  ExpectVectorNear(y, Vector{13.0, 26.0}, 0.0);
}

TEST(Vector, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity(Vector{1.0, 0.0}, Vector{0.0, 1.0}), 0.0,
              1e-15);
  EXPECT_NEAR(CosineSimilarity(Vector{1.0, 1.0}, Vector{2.0, 2.0}), 1.0,
              1e-15);
  EXPECT_NEAR(CosineSimilarity(Vector{1.0, 0.0}, Vector{-3.0, 0.0}), -1.0,
              1e-15);
  EXPECT_THROW(CosineSimilarity(Vector{0.0, 0.0}, Vector{1.0, 0.0}),
               CheckError);
}

TEST(Vector, FillAndResize) {
  Vector v(2);
  v.Fill(7.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  v.Resize(4);
  EXPECT_EQ(v.size(), 4);
  EXPECT_DOUBLE_EQ(v[0], 7.0);   // preserved
  EXPECT_DOUBLE_EQ(v[3], 0.0);   // zero-filled
}

// ---------- Matrix ----------

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);

  const Matrix init = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(init(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(init(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(Matrix, RowColAccess) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  ExpectVectorNear(m.Row(1), Vector{3.0, 4.0}, 0.0);
  ExpectVectorNear(m.Col(1), Vector{2.0, 4.0, 6.0}, 0.0);
  Matrix w = m;
  w.SetRow(0, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(w(0, 1), 8.0);
  w.SetCol(0, Vector{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(w(2, 0), 1.0);
  EXPECT_THROW(w.SetRow(0, Vector{1.0}), CheckError);
}

TEST(Matrix, TransposedRoundTrip) {
  Rng rng(11);
  const Matrix m = RandomMatrix(4, 7, &rng);
  ExpectMatrixNear(m.Transposed().Transposed(), m, 0.0);
  EXPECT_EQ(m.Transposed().rows(), 7);
}

TEST(Matrix, AddToDiagonal) {
  Matrix m(2, 2);
  m.AddToDiagonal(3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, MatMulAgainstHandComputed) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  ExpectMatrixNear(MatMul(a, b), Matrix{{19.0, 22.0}, {43.0, 50.0}}, 1e-14);
}

TEST(Matrix, MatMulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(MatMul(a, b), CheckError);
}

TEST(Matrix, TransposedProductsMatchExplicit) {
  Rng rng(12);
  const Matrix a = RandomMatrix(5, 3, &rng);
  const Matrix b = RandomMatrix(5, 4, &rng);
  ExpectMatrixNear(MatTMul(a, b), MatMul(a.Transposed(), b), 1e-12,
                   "A^T B");
  const Matrix c = RandomMatrix(4, 3, &rng);
  const Matrix d = RandomMatrix(6, 3, &rng);
  ExpectMatrixNear(MatMulT(c, d), MatMul(c, d.Transposed()), 1e-12, "A B^T");
}

TEST(Matrix, MatVecMatchesManual) {
  const Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  ExpectVectorNear(MatVec(a, Vector{1.0, 1.0, 1.0}), Vector{6.0, 15.0},
                   1e-14);
  ExpectVectorNear(MatTVec(a, Vector{1.0, 1.0}), Vector{5.0, 7.0, 9.0},
                   1e-14);
}

TEST(Matrix, GramMatricesMatchExplicit) {
  Rng rng(13);
  const Matrix a = RandomMatrix(6, 4, &rng);
  ExpectMatrixNear(GramRows(a), MatMul(a, a.Transposed()), 1e-12, "A A^T");
  ExpectMatrixNear(GramCols(a), MatMul(a.Transposed(), a), 1e-12, "A^T A");
}

TEST(Matrix, FrobeniusAndMaxAbs) {
  const Matrix m = {{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(Matrix, MeanFrobeniusError) {
  const Matrix a = {{1.0, 1.0}, {1.0, 1.0}};
  const Matrix b = {{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(MeanFrobeniusError(a, b), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(MeanFrobeniusError(a, a), 0.0);
}

// Parameterized: products at many shapes agree with a naive reference.
class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, MatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  Rng rng(100 + m * 31 + k * 7 + n);
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  Matrix expected(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += a(i, p) * b(p, j);
      expected(i, j) = s;
    }
  }
  ExpectMatrixNear(MatMul(a, b), expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(7, 1, 2), std::make_tuple(8, 8, 8),
                      std::make_tuple(65, 64, 63),
                      std::make_tuple(100, 3, 100),
                      std::make_tuple(3, 100, 3),
                      std::make_tuple(129, 130, 5)));

}  // namespace
}  // namespace blinkml
