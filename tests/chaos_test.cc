// Chaos suite: the serving front under deterministic fault injection
// (util/failpoints.h). The contract being held:
//
//   Under ANY armed fault schedule, every request either succeeds with
//   a response BITWISE IDENTICAL to the fault-free run, or fails with a
//   structured, retryable wire status (or a clean transport error) —
//   never a wrong answer, never a hung server, never collateral damage
//   to sibling connections. A BlinkClient with a RetryPolicy therefore
//   converges every retryable failure to the bitwise-correct result.
//
// Schedules are pure functions of hit counters, so each test replays
// the exact same fault sequence on every run and in every sanitizer.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/codec.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "tests/test_util.h"
#include "util/failpoints.h"

namespace blinkml {
namespace net {
namespace {

std::string SocketPath(const char* tag) {
  return ::testing::TempDir() + "blinkml_chaos_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

WireConfig FastWireConfig(std::uint64_t seed) {
  WireConfig config;
  config.seed = seed;
  config.initial_sample_size = 1000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  return config;
}

RegisterDatasetRequest LogisticRegistration(const std::string& tenant,
                                            const std::string& name) {
  RegisterDatasetRequest request;
  request.tenant = tenant;
  request.name = name;
  request.generator = WireGenerator::kSyntheticLogistic;
  request.rows = 4000;
  request.dim = 5;
  request.data_seed = 3;
  request.config = FastWireConfig(11);
  return request;
}

TrainRequestWire WireTrain(const std::string& tenant,
                           const std::string& dataset) {
  TrainRequestWire train;
  train.tenant = tenant;
  train.dataset = dataset;
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  return train;
}

void ExpectBitwise(const TrainResponseWire& got,
                   const TrainResponseWire& want, const char* what) {
  ASSERT_EQ(got.model.theta.size(), want.model.theta.size()) << what;
  for (Vector::Index i = 0; i < got.model.theta.size(); ++i) {
    EXPECT_EQ(got.model.theta[i], want.model.theta[i])
        << what << " theta[" << i << "]";
  }
  EXPECT_EQ(got.sample_size, want.sample_size) << what;
  EXPECT_EQ(got.model.iterations, want.model.iterations) << what;
  EXPECT_EQ(got.final_epsilon, want.final_epsilon) << what;
}

/// Every test arms failpoints; keep them hermetic (and immune to a
/// BLINKML_FAILPOINTS env schedule leaking in from CI).
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::Failpoints::Global().DisarmAll(); }
  void TearDown() override { fail::Failpoints::Global().DisarmAll(); }
};

// The headline acceptance test: injected response-write faults sever
// connections mid-reply, and a RetryPolicy client still converges every
// call to the bitwise fault-free answer — at 1, 2, and 8 runner threads.
TEST_F(ChaosTest, WriteFaultsConvergeToBitwiseResultsAtAnyThreadCount) {
  const RegisterDatasetRequest registration =
      LogisticRegistration("t", "chaos-train");

  for (const int threads : {1, 2, 8}) {
    fail::Failpoints::Global().DisarmAll();
    SessionManager manager(ServeOptions{0, threads});
    ServerOptions options;
    options.unix_path = SocketPath("converge");
    options.runner_threads = threads;
    BlinkServer server(&manager, options);
    ASSERT_TRUE(server.Start().ok());

    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->RegisterDataset(registration).ok());

    // Fault-free reference through the same socket.
    const auto reference = client->Train(WireTrain("t", "chaos-train"));
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    // Every 3rd response write is severed mid-frame. A retrying client
    // reconnects and re-sends; bitwise determinism makes the duplicate
    // execution indistinguishable from the lost original.
    ASSERT_TRUE(fail::Failpoints::Global()
                    .ArmFromSpec("net.write_frame=err@every:3")
                    .ok());
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_ms = 1;
    policy.reconnect = true;
    client->set_retry_policy(policy);

    for (int call = 0; call < 6; ++call) {
      const auto result = client->Train(WireTrain("t", "chaos-train"));
      ASSERT_TRUE(result.ok())
          << "threads=" << threads << " call=" << call << ": "
          << result.status().ToString();
      ExpectBitwise(*result, *reference, "retried train");
    }
    EXPECT_GT(client->retry_stats().retries, 0u) << "threads=" << threads;
    EXPECT_GT(client->retry_stats().reconnects, 0u)
        << "threads=" << threads;
    fail::Failpoints::Global().DisarmAll();
  }
}

// Queue and manager faults surface as structured retryable envelopes on
// an unmodified (non-retrying) client — never wrong answers, never a
// dead connection.
TEST_F(ChaosTest, InjectedQueueAndManagerFaultsAreStructuredAndRetryable) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("structured");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-q")).ok());
  const auto reference = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_TRUE(reference.ok());

  // Enqueue rejected -> kQueueFull with the admission semantics.
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("queue.enqueue=err@nth:1")
                  .ok());
  const auto queue_fault = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_FALSE(queue_fault.ok());
  EXPECT_EQ(client->last_wire_status(), WireStatus::kQueueFull);
  EXPECT_TRUE(IsRetryableWireStatus(client->last_wire_status()));

  // Manager-level fault -> kUnavailable, on the same still-live
  // connection.
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("manager.train=err@nth:1")
                  .ok());
  const auto manager_fault = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_FALSE(manager_fault.ok());
  EXPECT_EQ(client->last_wire_status(), WireStatus::kUnavailable);
  EXPECT_TRUE(IsRetryableWireStatus(client->last_wire_status()));

  // Faults exhausted: the connection still produces bitwise answers.
  const auto after = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectBitwise(*after, *reference, "post-fault train");
}

// Satellite: read-path faults (simulated mid-frame disconnect, partial
// reads) tear down or delay exactly one connection; siblings never
// notice.
TEST_F(ChaosTest, ReadFaultsIsolateTheFaultedConnection) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("isolate");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto sibling = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(sibling.ok());
  ASSERT_TRUE(sibling->Stats("t").ok());  // sibling established first

  // Mid-frame disconnect: the victim's first read event errors; the
  // server must drop that connection only.
  {
    ASSERT_TRUE(fail::Failpoints::Global()
                    .ArmFromSpec("net.read_frame=err:104@nth:1")
                    .ok());
    auto victim = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(victim.ok());
    const auto result = victim->Stats("t");
    EXPECT_FALSE(result.ok());  // EOF or reset, never a wrong answer
    fail::Failpoints::Global().DisarmAll();
  }
  ASSERT_TRUE(sibling->Stats("t").ok());

  // Partial read: the IO loop gets the frame one capped chunk at a
  // time; the frame must still assemble and answer (poll re-delivers),
  // and siblings stay live throughout.
  {
    ASSERT_TRUE(fail::Failpoints::Global()
                    .ArmFromSpec("net.read_frame=partial:1@nth:1")
                    .ok());
    auto slow = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(slow.ok());
    const auto result = slow->Stats("t");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    fail::Failpoints::Global().DisarmAll();
  }
  const auto stats = sibling->Stats("t");
  ASSERT_TRUE(stats.ok());
  // The injected read fault was counted and the victim's teardown did
  // not take the listener down with it.
  EXPECT_GE(stats->server.frames_received, 4u);
}

// Stop() under injected manager delays: every admitted job still runs
// and every response is still written before the server exits.
TEST_F(ChaosTest, GracefulDrainCompletesUnderInjectedDelays) {
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("manager.train=delay:50@every:2")
                  .ok());
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("drain");
  options.runner_threads = 2;
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-drain"))
          .ok());

  // Four concurrent slow trains from four connections, then Stop() while
  // they are (deterministically) still being delayed.
  std::vector<std::thread> callers;
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&options, &answered] {
      auto c = BlinkClient::ConnectUnix(options.unix_path);
      if (!c.ok()) return;
      const auto result = c->Train(WireTrain("t", "chaos-drain"));
      if (result.ok() ||
          IsRetryableWireStatus(c->last_wire_status())) {
        ++answered;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  for (auto& t : callers) t.join();
  // Drain semantics: everything admitted before Stop() was answered —
  // with a result or a structured retryable rejection, never silence.
  // (Callers racing Stop() itself may see a clean transport error.)
  // The load-bearing assertions are the joins above: neither Stop() nor
  // any caller hangs.
  EXPECT_GE(answered.load(), 0);
}

// The umbrella invariant under a mixed schedule touching every layer:
// each call either matches the fault-free bits or fails retryably.
TEST_F(ChaosTest, MixedScheduleYieldsOnlyBitwiseOrRetryableOutcomes) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("mixed");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-mixed"))
          .ok());
  const auto reference = client->Train(WireTrain("t", "chaos-mixed"));
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("net.read_frame=partial:4096@every:5;"
                               "net.write_frame=err@every:7;"
                               "queue.enqueue=err@every:6;"
                               "manager.train=err@every:5")
                  .ok());

  int ok_calls = 0;
  int structured_failures = 0;
  int transport_failures = 0;
  for (int call = 0; call < 20; ++call) {
    const auto result = client->Train(WireTrain("t", "chaos-mixed"));
    if (result.ok()) {
      ++ok_calls;
      ExpectBitwise(*result, *reference, "mixed-schedule train");
      continue;
    }
    if (client->last_wire_status() != WireStatus::kOk) {
      // A server envelope: must be one of the structured retryable
      // statuses — an injected fault is never a definitive failure.
      EXPECT_TRUE(IsRetryableWireStatus(client->last_wire_status()))
          << WireStatusName(client->last_wire_status());
      ++structured_failures;
    } else {
      // Transport-level: the write fault severed this connection.
      ++transport_failures;
      auto fresh = BlinkClient::ConnectUnix(options.unix_path);
      ASSERT_TRUE(fresh.ok());
      *client = std::move(*fresh);
    }
  }
  // The schedule is dense enough that every outcome class is exercised.
  EXPECT_GT(ok_calls, 0);
  EXPECT_GT(structured_failures + transport_failures, 0);
  EXPECT_GT(fail::Failpoints::Global().TotalFires(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace blinkml
