// Chaos suite: the serving front under deterministic fault injection
// (util/failpoints.h). The contract being held:
//
//   Under ANY armed fault schedule, every request either succeeds with
//   a response BITWISE IDENTICAL to the fault-free run, or fails with a
//   structured, retryable wire status (or a clean transport error) —
//   never a wrong answer, never a hung server, never collateral damage
//   to sibling connections. A BlinkClient with a RetryPolicy therefore
//   converges every retryable failure to the bitwise-correct result.
//
// Schedules are pure functions of hit counters, so each test replays
// the exact same fault sequence on every run and in every sanitizer.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/codec.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "shard/hashing.h"
#include "shard/router.h"
#include "shard/supervisor.h"
#include "tests/test_util.h"
#include "util/failpoints.h"

namespace blinkml {
namespace net {
namespace {

std::string SocketPath(const char* tag) {
  return ::testing::TempDir() + "blinkml_chaos_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

WireConfig FastWireConfig(std::uint64_t seed) {
  WireConfig config;
  config.seed = seed;
  config.initial_sample_size = 1000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  return config;
}

RegisterDatasetRequest LogisticRegistration(const std::string& tenant,
                                            const std::string& name) {
  RegisterDatasetRequest request;
  request.tenant = tenant;
  request.name = name;
  request.generator = WireGenerator::kSyntheticLogistic;
  request.rows = 4000;
  request.dim = 5;
  request.data_seed = 3;
  request.config = FastWireConfig(11);
  return request;
}

TrainRequestWire WireTrain(const std::string& tenant,
                           const std::string& dataset) {
  TrainRequestWire train;
  train.tenant = tenant;
  train.dataset = dataset;
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  return train;
}

void ExpectBitwise(const TrainResponseWire& got,
                   const TrainResponseWire& want, const char* what) {
  ASSERT_EQ(got.model.theta.size(), want.model.theta.size()) << what;
  for (Vector::Index i = 0; i < got.model.theta.size(); ++i) {
    EXPECT_EQ(got.model.theta[i], want.model.theta[i])
        << what << " theta[" << i << "]";
  }
  EXPECT_EQ(got.sample_size, want.sample_size) << what;
  EXPECT_EQ(got.model.iterations, want.model.iterations) << what;
  EXPECT_EQ(got.final_epsilon, want.final_epsilon) << what;
}

/// Every test arms failpoints; keep them hermetic (and immune to a
/// BLINKML_FAILPOINTS env schedule leaking in from CI).
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::Failpoints::Global().DisarmAll(); }
  void TearDown() override { fail::Failpoints::Global().DisarmAll(); }
};

// The headline acceptance test: injected response-write faults sever
// connections mid-reply, and a RetryPolicy client still converges every
// call to the bitwise fault-free answer — at 1, 2, and 8 runner threads.
TEST_F(ChaosTest, WriteFaultsConvergeToBitwiseResultsAtAnyThreadCount) {
  const RegisterDatasetRequest registration =
      LogisticRegistration("t", "chaos-train");

  for (const int threads : {1, 2, 8}) {
    fail::Failpoints::Global().DisarmAll();
    SessionManager manager(ServeOptions{0, threads});
    ServerOptions options;
    options.unix_path = SocketPath("converge");
    options.runner_threads = threads;
    BlinkServer server(&manager, options);
    ASSERT_TRUE(server.Start().ok());

    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->RegisterDataset(registration).ok());

    // Fault-free reference through the same socket.
    const auto reference = client->Train(WireTrain("t", "chaos-train"));
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    // Every 3rd response write is severed mid-frame. A retrying client
    // reconnects and re-sends; bitwise determinism makes the duplicate
    // execution indistinguishable from the lost original.
    ASSERT_TRUE(fail::Failpoints::Global()
                    .ArmFromSpec("net.write_frame=err@every:3")
                    .ok());
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_ms = 1;
    policy.reconnect = true;
    client->set_retry_policy(policy);

    for (int call = 0; call < 6; ++call) {
      const auto result = client->Train(WireTrain("t", "chaos-train"));
      ASSERT_TRUE(result.ok())
          << "threads=" << threads << " call=" << call << ": "
          << result.status().ToString();
      ExpectBitwise(*result, *reference, "retried train");
    }
    EXPECT_GT(client->retry_stats().retries, 0u) << "threads=" << threads;
    EXPECT_GT(client->retry_stats().reconnects, 0u)
        << "threads=" << threads;
    fail::Failpoints::Global().DisarmAll();
  }
}

// Queue and manager faults surface as structured retryable envelopes on
// an unmodified (non-retrying) client — never wrong answers, never a
// dead connection.
TEST_F(ChaosTest, InjectedQueueAndManagerFaultsAreStructuredAndRetryable) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("structured");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-q")).ok());
  const auto reference = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_TRUE(reference.ok());

  // Enqueue rejected -> kQueueFull with the admission semantics.
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("queue.enqueue=err@nth:1")
                  .ok());
  const auto queue_fault = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_FALSE(queue_fault.ok());
  EXPECT_EQ(client->last_wire_status(), WireStatus::kQueueFull);
  EXPECT_TRUE(IsRetryableWireStatus(client->last_wire_status()));

  // Manager-level fault -> kUnavailable, on the same still-live
  // connection.
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("manager.train=err@nth:1")
                  .ok());
  const auto manager_fault = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_FALSE(manager_fault.ok());
  EXPECT_EQ(client->last_wire_status(), WireStatus::kUnavailable);
  EXPECT_TRUE(IsRetryableWireStatus(client->last_wire_status()));

  // Faults exhausted: the connection still produces bitwise answers.
  const auto after = client->Train(WireTrain("t", "chaos-q"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectBitwise(*after, *reference, "post-fault train");
}

// Satellite: read-path faults (simulated mid-frame disconnect, partial
// reads) tear down or delay exactly one connection; siblings never
// notice.
TEST_F(ChaosTest, ReadFaultsIsolateTheFaultedConnection) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("isolate");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto sibling = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(sibling.ok());
  ASSERT_TRUE(sibling->Stats("t").ok());  // sibling established first

  // Mid-frame disconnect: the victim's first read event errors; the
  // server must drop that connection only.
  {
    ASSERT_TRUE(fail::Failpoints::Global()
                    .ArmFromSpec("net.read_frame=err:104@nth:1")
                    .ok());
    auto victim = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(victim.ok());
    const auto result = victim->Stats("t");
    EXPECT_FALSE(result.ok());  // EOF or reset, never a wrong answer
    fail::Failpoints::Global().DisarmAll();
  }
  ASSERT_TRUE(sibling->Stats("t").ok());

  // Partial read: the IO loop gets the frame one capped chunk at a
  // time; the frame must still assemble and answer (poll re-delivers),
  // and siblings stay live throughout.
  {
    ASSERT_TRUE(fail::Failpoints::Global()
                    .ArmFromSpec("net.read_frame=partial:1@nth:1")
                    .ok());
    auto slow = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(slow.ok());
    const auto result = slow->Stats("t");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    fail::Failpoints::Global().DisarmAll();
  }
  const auto stats = sibling->Stats("t");
  ASSERT_TRUE(stats.ok());
  // The injected read fault was counted and the victim's teardown did
  // not take the listener down with it.
  EXPECT_GE(stats->server.frames_received, 4u);
}

// Stop() under injected manager delays: every admitted job still runs
// and every response is still written before the server exits.
TEST_F(ChaosTest, GracefulDrainCompletesUnderInjectedDelays) {
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("manager.train=delay:50@every:2")
                  .ok());
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("drain");
  options.runner_threads = 2;
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-drain"))
          .ok());

  // Four concurrent slow trains from four connections, then Stop() while
  // they are (deterministically) still being delayed.
  std::vector<std::thread> callers;
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&options, &answered] {
      auto c = BlinkClient::ConnectUnix(options.unix_path);
      if (!c.ok()) return;
      const auto result = c->Train(WireTrain("t", "chaos-drain"));
      if (result.ok() ||
          IsRetryableWireStatus(c->last_wire_status())) {
        ++answered;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  for (auto& t : callers) t.join();
  // Drain semantics: everything admitted before Stop() was answered —
  // with a result or a structured retryable rejection, never silence.
  // (Callers racing Stop() itself may see a clean transport error.)
  // The load-bearing assertions are the joins above: neither Stop() nor
  // any caller hangs.
  EXPECT_GE(answered.load(), 0);
}

// The umbrella invariant under a mixed schedule touching every layer:
// each call either matches the fault-free bits or fails retryably.
TEST_F(ChaosTest, MixedScheduleYieldsOnlyBitwiseOrRetryableOutcomes) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("mixed");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-mixed"))
          .ok());
  const auto reference = client->Train(WireTrain("t", "chaos-mixed"));
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("net.read_frame=partial:4096@every:5;"
                               "net.write_frame=err@every:7;"
                               "queue.enqueue=err@every:6;"
                               "manager.train=err@every:5")
                  .ok());

  int ok_calls = 0;
  int structured_failures = 0;
  int transport_failures = 0;
  for (int call = 0; call < 20; ++call) {
    const auto result = client->Train(WireTrain("t", "chaos-mixed"));
    if (result.ok()) {
      ++ok_calls;
      ExpectBitwise(*result, *reference, "mixed-schedule train");
      continue;
    }
    if (client->last_wire_status() != WireStatus::kOk) {
      // A server envelope: must be one of the structured retryable
      // statuses — an injected fault is never a definitive failure.
      EXPECT_TRUE(IsRetryableWireStatus(client->last_wire_status()))
          << WireStatusName(client->last_wire_status());
      ++structured_failures;
    } else {
      // Transport-level: the write fault severed this connection.
      ++transport_failures;
      auto fresh = BlinkClient::ConnectUnix(options.unix_path);
      ASSERT_TRUE(fresh.ok());
      *client = std::move(*fresh);
    }
  }
  // The schedule is dense enough that every outcome class is exercised.
  EXPECT_GT(ok_calls, 0);
  EXPECT_GT(structured_failures + transport_failures, 0);
  EXPECT_GT(fail::Failpoints::Global().TotalFires(), 0u);
}

// A hung server must fail the caller's probe, not hang it: with a recv
// timeout armed, an injected server-side delay longer than the timeout
// surfaces as a transport-level error (no envelope) before the delay
// elapses — the mechanism the shard supervisor's liveness prober runs on.
TEST_F(ChaosTest, RecvTimeoutSurfacesHungServerAsTransportError) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("rcvto");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "chaos-rcvto")).ok());
  ASSERT_TRUE(client->set_recv_timeout_ms(100).ok());

  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("manager.train=delay:600@nth:1")
                  .ok());
  const auto start = std::chrono::steady_clock::now();
  const auto result = client->Train(WireTrain("t", "chaos-rcvto"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(result.ok());
  // Transport error, not a server envelope: the response never arrived.
  EXPECT_EQ(client->last_wire_status(), WireStatus::kOk);
  EXPECT_LT(elapsed.count(), 500) << "timeout must beat the injected delay";
  fail::Failpoints::Global().DisarmAll();
  // server.Stop() in the destructor still drains the delayed job.
}

// --- Worker-kill chaos through the shard router -------------------------

shard::RouterOptions ChaosRouterOptions(const std::string& tag,
                                        int num_shards) {
  shard::RouterOptions options;
  options.unix_path = SocketPath(("router_" + tag).c_str());
  options.num_shards = num_shards;
  options.worker.socket_dir = "/tmp";
  options.worker.socket_prefix =
      "blinkml_cw_" + tag + "_" + std::to_string(::getpid());
  options.worker.probe_interval_ms = 25;
  options.worker.backoff_initial_ms = 5;
  options.worker.backoff_max_ms = 100;
  return options;
}

SearchRequestWire WireSearch(const std::string& tenant,
                             const std::string& dataset) {
  SearchRequestWire search;
  search.tenant = tenant;
  search.dataset = dataset;
  search.model_class = "LogisticRegression";
  search.candidates = {{1e-3, 0}, {1e-2, 0}, {1e-1, 0}};
  search.epsilon = 0.05;
  search.delta = 0.05;
  return search;
}

void ExpectBitwiseSearch(const SearchResponseWire& got,
                         const SearchResponseWire& want, const char* what) {
  ASSERT_EQ(got.candidates.size(), want.candidates.size()) << what;
  EXPECT_EQ(got.best_index, want.best_index) << what;
  for (std::size_t c = 0; c < got.candidates.size(); ++c) {
    const auto& g = got.candidates[c];
    const auto& w = want.candidates[c];
    EXPECT_EQ(g.status, w.status) << what << " candidate " << c;
    EXPECT_EQ(g.score, w.score) << what << " candidate " << c;
    EXPECT_EQ(g.final_epsilon, w.final_epsilon) << what << " candidate " << c;
    EXPECT_EQ(g.sample_size, w.sample_size) << what << " candidate " << c;
    ASSERT_EQ(g.model.theta.size(), w.model.theta.size()) << what;
    for (Vector::Index i = 0; i < g.model.theta.size(); ++i) {
      EXPECT_EQ(g.model.theta[i], w.model.theta[i])
          << what << " candidate " << c << " theta[" << i << "]";
    }
  }
}

// The shard-front headline: a worker is KILLED mid-Search (a real
// process exit at a deterministic hit), and a retrying client still
// converges every call to bits identical to the fault-free
// single-process run — at 1, 2, and 8 worker runner threads. Crash,
// restart, journal replay, and re-forward are all exercised on the way.
TEST_F(ChaosTest, RouterWorkerKillMidSearchConvergesBitwise) {
  const RegisterDatasetRequest registration =
      LogisticRegistration("t", "chaos-shard");

  // Fault-free single-process reference.
  SearchResponseWire want;
  {
    SessionManager manager(ServeOptions{0, 2});
    ServerOptions options;
    options.unix_path = SocketPath("shardref");
    BlinkServer server(&manager, options);
    ASSERT_TRUE(server.Start().ok());
    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->RegisterDataset(registration).ok());
    auto result = client->Search(WireSearch("t", "chaos-shard"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    want = std::move(result.value());
  }

  for (const int threads : {1, 2, 8}) {
    shard::RouterOptions options =
        ChaosRouterOptions("kill" + std::to_string(threads), 2);
    options.worker.runner_threads = threads;
    // Every worker process dies mid-way through its SECOND Search, every
    // generation — the deterministic kill switch (failpoints.h kExit).
    options.worker.worker_failpoints = "manager.search=exit:137@nth:2";
    options.worker.inherit_env_failpoints = false;
    shard::ShardRouter router(options);
    ASSERT_TRUE(router.Start().ok());

    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    RetryPolicy policy;
    policy.max_attempts = 12;
    policy.initial_backoff_ms = 10;
    policy.max_backoff_ms = 200;
    policy.reconnect = true;
    client->set_retry_policy(policy);
    ASSERT_TRUE(client->RegisterDataset(registration).ok());

    // Call 1: hit 1, clean. Call 2: hit 2 KILLS the owner mid-search;
    // the retry rides restart + journal replay and re-runs on the new
    // process (gen 2, hit 1). Call 3 crashes gen 2 the same way.
    for (int call = 0; call < 3; ++call) {
      const auto result = client->Search(WireSearch("t", "chaos-shard"));
      ASSERT_TRUE(result.ok())
          << "threads=" << threads << " call=" << call << ": "
          << result.status().ToString();
      ExpectBitwiseSearch(*result, want,
                          ("threads=" + std::to_string(threads) + " call=" +
                           std::to_string(call))
                              .c_str());
    }
    EXPECT_GE(router.stats().worker_restarts, 2u) << "threads=" << threads;
    EXPECT_GE(router.stats().replayed_registrations, 2u)
        << "threads=" << threads;
    EXPECT_GT(router.stats().unavailable, 0u) << "threads=" << threads;
    EXPECT_GT(client->retry_stats().retries, 0u) << "threads=" << threads;
  }
}

// Journal-replay convergence: several datasets journaled on one shard, a
// crash wipes the worker's whole registry, and every dataset — not just
// the one in flight — trains bitwise after the automatic replay.
TEST_F(ChaosTest, RouterReplaysWholeJournalAfterWorkerCrash) {
  std::vector<RegisterDatasetRequest> regs;
  for (int i = 0; i < 3; ++i) {
    regs.push_back(LogisticRegistration("t", "cj" + std::to_string(i)));
    regs.back().data_seed = 3 + static_cast<std::uint64_t>(i);
  }

  std::vector<TrainResponseWire> want;
  {
    SessionManager manager(ServeOptions{0, 2});
    ServerOptions options;
    options.unix_path = SocketPath("replayref");
    BlinkServer server(&manager, options);
    ASSERT_TRUE(server.Start().ok());
    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    for (const auto& reg : regs) {
      ASSERT_TRUE(client->RegisterDataset(reg).ok());
      auto result = client->Train(WireTrain("t", reg.name));
      ASSERT_TRUE(result.ok());
      want.push_back(std::move(result.value()));
    }
  }

  // One shard owns everything; its fourth Train kills it.
  shard::RouterOptions options = ChaosRouterOptions("replay", 1);
  options.worker.worker_failpoints = "manager.train=exit:137@nth:4";
  options.worker.inherit_env_failpoints = false;
  shard::ShardRouter router(options);
  ASSERT_TRUE(router.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 10;
  policy.reconnect = true;
  client->set_retry_policy(policy);
  for (const auto& reg : regs) {
    ASSERT_TRUE(client->RegisterDataset(reg).ok());
  }

  // Hits 1-3 clean; the re-train of cj0 (hit 4) kills the worker. The
  // retry converges after restart + replay of ALL THREE registrations.
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const auto result = client->Train(WireTrain("t", regs[i].name));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitwise(*result, want[i], "pre-crash train");
  }
  const auto crashed = client->Train(WireTrain("t", regs[0].name));
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  ExpectBitwise(*crashed, want[0], "post-crash train");
  EXPECT_GE(router.stats().replayed_registrations, 3u);

  // The OTHER datasets (never touched since the crash) must serve from
  // the replayed registry without any client-visible difference.
  for (std::size_t i = 1; i < regs.size(); ++i) {
    const auto result = client->Train(WireTrain("t", regs[i].name));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitwise(*result, want[i], "post-replay train");
  }
}

// The umbrella invariant through the router under AMBIENT worker kills:
// this test arms nothing itself, but inherits any worker-kill schedule
// from BLINKML_WORKER_FAILPOINTS (the CI router-chaos leg sets one).
// Whatever dies, every call either matches the fault-free bits or the
// client's RetryPolicy converges it; non-convergence within the budget
// is the only failure.
TEST_F(ChaosTest, RouterUmbrellaInvariantUnderAmbientWorkerFaults) {
  const RegisterDatasetRequest registration =
      LogisticRegistration("t", "chaos-ambient");

  TrainResponseWire want;
  {
    SessionManager manager(ServeOptions{0, 2});
    ServerOptions options;
    options.unix_path = SocketPath("ambientref");
    BlinkServer server(&manager, options);
    ASSERT_TRUE(server.Start().ok());
    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->RegisterDataset(registration).ok());
    auto result = client->Train(WireTrain("t", "chaos-ambient"));
    ASSERT_TRUE(result.ok());
    want = std::move(result.value());
  }

  shard::RouterOptions options = ChaosRouterOptions("ambient", 2);
  options.worker.inherit_env_failpoints = true;  // the CI hook
  shard::ShardRouter router(options);
  ASSERT_TRUE(router.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  RetryPolicy policy;
  policy.max_attempts = 15;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 300;
  policy.reconnect = true;
  client->set_retry_policy(policy);
  ASSERT_TRUE(client->RegisterDataset(registration).ok());

  for (int call = 0; call < 8; ++call) {
    const auto result = client->Train(WireTrain("t", "chaos-ambient"));
    ASSERT_TRUE(result.ok())
        << "call " << call << " failed to converge within the retry "
        << "budget: " << result.status().ToString();
    ExpectBitwise(*result, want, "ambient-fault train");
  }
}

}  // namespace
}  // namespace net
}  // namespace blinkml
