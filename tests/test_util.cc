#include "tests/test_util.h"

#include <algorithm>
#include <utility>

#include "data/generators.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"

namespace blinkml {
namespace testing {

Matrix RandomMatrix(Matrix::Index rows, Matrix::Index cols, Rng* rng) {
  Matrix m(rows, cols);
  for (Matrix::Index r = 0; r < rows; ++r) {
    for (Matrix::Index c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

Matrix RandomSpd(Matrix::Index n, Rng* rng, double ridge) {
  const Matrix b = RandomMatrix(n, n, rng);
  Matrix a = MatMulT(b, b);
  a.AddToDiagonal(ridge);
  return a;
}

Matrix RandomSymmetric(Matrix::Index n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix at = a.Transposed();
  a += at;
  a *= 0.5;
  return a;
}

Vector RandomVector(Vector::Index n, Rng* rng) {
  Vector v(n);
  rng->FillNormal(&v);
  return v;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol,
                      const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_LE(MaxAbsDiff(a, b), tol) << what;
}

void ExpectVectorNear(const Vector& a, const Vector& b, double tol,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_LE(MaxAbsDiff(a, b), tol) << what;
}

void ExpectBitwiseEqual(const ApproxResult& a, const ApproxResult& b,
                        const char* what) {
  EXPECT_EQ(a.sample_size, b.sample_size) << what;
  EXPECT_EQ(a.full_size, b.full_size) << what;
  EXPECT_EQ(a.used_initial_only, b.used_initial_only) << what;
  EXPECT_EQ(a.contract_satisfied, b.contract_satisfied) << what;
  EXPECT_EQ(a.initial_epsilon, b.initial_epsilon) << what;
  EXPECT_EQ(a.final_epsilon, b.final_epsilon) << what;
  EXPECT_EQ(a.size_estimate.sample_size, b.size_estimate.sample_size) << what;
  ASSERT_EQ(a.model.theta.size(), b.model.theta.size()) << what;
  EXPECT_EQ(MaxAbsDiff(a.model.theta, b.model.theta), 0.0) << what;
}

BlinkConfig FastConfig(std::uint64_t seed) {
  BlinkConfig config;
  config.initial_sample_size = 1000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  config.seed = seed;
  return config;
}

Dataset SmallDenseLogistic(std::int64_t rows, std::int64_t dim,
                           std::uint64_t seed) {
  return MakeSyntheticLogistic(rows, dim, seed);
}

Dataset SparseBinaryData(Dataset::Index rows, Dataset::Index dim,
                         std::uint64_t seed, Dataset::Index nnz_per_row) {
  return MakeCriteoLike(rows, seed, dim, nnz_per_row);
}

Vector Trainedish(const Dataset& data, std::uint64_t seed) {
  Rng rng(seed);
  Vector theta(data.dim());
  for (Vector::Index j = 0; j < theta.size(); ++j) {
    theta[j] = rng.Normal(0.0, 0.05);
  }
  return theta;
}

void ExpectThreadCountInvariant(const std::function<Vector()>& fn,
                                std::vector<int> thread_counts,
                                const char* what) {
  RuntimeOptions serial;
  serial.enabled = false;
  Vector reference;
  {
    RuntimeScope scope(serial);
    reference = fn();
  }
  int max_threads = 1;
  for (const int t : thread_counts) max_threads = std::max(max_threads, t);
  ThreadPool pool(max_threads);
  for (const int threads : thread_counts) {
    RuntimeOptions options;
    options.pool = &pool;
    options.num_threads = threads;
    RuntimeScope scope(options);
    const Vector got = fn();
    ASSERT_EQ(got.size(), reference.size())
        << what << " (threads=" << threads << ")";
    EXPECT_EQ(MaxAbsDiff(got, reference), 0.0)
        << what << " (threads=" << threads << ")";
  }
}

}  // namespace testing
}  // namespace blinkml
