#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generators.h"
#include "linalg/eigen_sym.h"
#include "tests/test_util.h"
#include "util/stats.h"

namespace blinkml {
namespace {

Dataset SmallDense() {
  Matrix x = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}, {7.0, 8.0}};
  Vector y{0.0, 1.0, 1.0, 0.0};
  return Dataset(std::move(x), std::move(y), Task::kBinary);
}

TEST(Dataset, DenseBasics) {
  const Dataset d = SmallDense();
  EXPECT_EQ(d.num_rows(), 4);
  EXPECT_EQ(d.dim(), 2);
  EXPECT_EQ(d.task(), Task::kBinary);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_FALSE(d.is_sparse());
  EXPECT_TRUE(d.has_labels());
  EXPECT_DOUBLE_EQ(d.label(2), 1.0);
  EXPECT_THROW(d.sparse(), CheckError);
}

TEST(Dataset, SparseBasics) {
  std::vector<std::vector<SparseEntry>> rows(2);
  rows[0] = {{0, 1.0}};
  rows[1] = {{2, 3.0}};
  Dataset d(SparseMatrix(3, std::move(rows)), Vector{1.0, 0.0}, Task::kBinary);
  EXPECT_TRUE(d.is_sparse());
  EXPECT_EQ(d.dim(), 3);
  EXPECT_THROW(d.dense(), CheckError);
}

TEST(Dataset, LabelValidation) {
  Matrix x(2, 1);
  EXPECT_THROW(Dataset(x, Vector{0.0, 2.0}, Task::kBinary), CheckError);
  EXPECT_THROW(Dataset(x, Vector{0.0}, Task::kBinary), CheckError);
  EXPECT_THROW(Dataset(x, Vector{0.5, 1.0}, Task::kMulticlass, 3),
               CheckError);
  EXPECT_THROW(Dataset(x, Vector{0.0, 3.0}, Task::kMulticlass, 3),
               CheckError);
  EXPECT_NO_THROW(Dataset(x, Vector{0.0, 2.0}, Task::kMulticlass, 3));
  EXPECT_NO_THROW(Dataset(x, Vector{-1.5, 2.5}, Task::kRegression));
  // Unsupervised datasets need no labels at all.
  EXPECT_NO_THROW(Dataset(x, Vector(), Task::kUnsupervised));
}

TEST(Dataset, RowDotAndAddRowTo) {
  const Dataset d = SmallDense();
  const double theta[2] = {1.0, 10.0};
  EXPECT_DOUBLE_EQ(d.RowDot(1, theta), 43.0);
  Vector acc(2);
  d.AddRowTo(0, 2.0, acc.data());
  testing::ExpectVectorNear(acc, Vector{2.0, 4.0}, 0.0);
}

TEST(Dataset, TakeRowsPreservesLabelsAndOrder) {
  const Dataset d = SmallDense();
  const Dataset t = d.TakeRows({3, 0});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_DOUBLE_EQ(t.dense()(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(t.label(0), 0.0);
  EXPECT_DOUBLE_EQ(t.dense()(1, 0), 1.0);
  EXPECT_THROW(d.TakeRows({4}), CheckError);
}

TEST(Dataset, SampleRowsIsWithoutReplacement) {
  Rng rng(30);
  const Dataset d = MakeSyntheticLinear(100, 3, /*seed=*/1);
  const Dataset s = d.SampleRows(100, &rng);  // full-size sample
  EXPECT_EQ(s.num_rows(), 100);
  // All rows distinct: the first feature of MakeSyntheticLinear is a.s.
  // unique per row.
  std::set<double> firsts;
  for (Dataset::Index i = 0; i < s.num_rows(); ++i) {
    firsts.insert(s.dense()(i, 0));
  }
  EXPECT_EQ(firsts.size(), 100u);
  EXPECT_THROW(d.SampleRows(101, &rng), CheckError);
}

TEST(Dataset, SplitPartitionsRows) {
  Rng rng(31);
  const Dataset d = MakeSyntheticLinear(200, 2, /*seed=*/2);
  const auto [a, b] = d.Split(0.3, &rng);
  EXPECT_EQ(a.num_rows(), 60);
  EXPECT_EQ(b.num_rows(), 140);
  // Disjoint: no shared first-feature values.
  std::set<double> a_firsts;
  for (Dataset::Index i = 0; i < a.num_rows(); ++i) {
    a_firsts.insert(a.dense()(i, 0));
  }
  for (Dataset::Index i = 0; i < b.num_rows(); ++i) {
    EXPECT_EQ(a_firsts.count(b.dense()(i, 0)), 0u);
  }
}

// ---------- Generators ----------

TEST(Generators, GasLikeShapeAndTask) {
  const Dataset d = MakeGasLike(500, 1);
  EXPECT_EQ(d.num_rows(), 500);
  EXPECT_EQ(d.dim(), 57);
  EXPECT_EQ(d.task(), Task::kRegression);
  EXPECT_FALSE(d.is_sparse());
}

TEST(Generators, GasLikeNeighborsCorrelated) {
  // AR(1) design: adjacent features correlate ~0.6, distant ones ~0.
  const Dataset d = MakeGasLike(4000, 2);
  auto corr = [&](int col_a, int col_b) {
    std::vector<double> a, b;
    for (Dataset::Index i = 0; i < d.num_rows(); ++i) {
      a.push_back(d.dense()(i, col_a));
      b.push_back(d.dense()(i, col_b));
    }
    const double ma = Mean(a), mb = Mean(b);
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - ma) * (b[i] - mb);
    }
    return cov / (a.size() * StdDev(a) * StdDev(b));
  };
  EXPECT_NEAR(corr(10, 11), 0.6, 0.08);
  EXPECT_NEAR(corr(10, 40), 0.0, 0.08);
}

TEST(Generators, PowerLikeShape) {
  const Dataset d = MakePowerLike(300, 3);
  EXPECT_EQ(d.dim(), 114);
  EXPECT_EQ(d.task(), Task::kRegression);
}

TEST(Generators, HiggsLikeBalancedBinary) {
  const Dataset d = MakeHiggsLike(4000, 4);
  EXPECT_EQ(d.dim(), 28);
  EXPECT_EQ(d.task(), Task::kBinary);
  double positives = 0;
  for (Dataset::Index i = 0; i < d.num_rows(); ++i) positives += d.label(i);
  const double rate = positives / static_cast<double>(d.num_rows());
  EXPECT_GT(rate, 0.30);
  EXPECT_LT(rate, 0.70);
}

TEST(Generators, CriteoLikeSparseRareClicks) {
  const Dataset d = MakeCriteoLike(3000, 5, /*dim=*/2000, /*nnz_per_row=*/30);
  EXPECT_TRUE(d.is_sparse());
  EXPECT_EQ(d.dim(), 2000);
  EXPECT_EQ(d.task(), Task::kBinary);
  // Sparse: far fewer nonzeros than dense.
  EXPECT_LE(d.sparse().nnz(), 3000 * 30);
  // CTR-like positive rate: the minority class, but nonzero (the flip
  // noise floor raises the rate above raw click probability).
  double positives = 0;
  for (Dataset::Index i = 0; i < d.num_rows(); ++i) positives += d.label(i);
  const double rate = positives / static_cast<double>(d.num_rows());
  EXPECT_GT(rate, 0.002);
  EXPECT_LT(rate, 0.40);
}

TEST(Generators, MnistLikeClassesAndPixelRange) {
  const Dataset d = MakeMnistLike(600, 6, /*dim=*/144, /*num_classes=*/10);
  EXPECT_EQ(d.dim(), 144);
  EXPECT_EQ(d.num_classes(), 10);
  std::set<double> labels;
  double max_pixel = -1.0, min_pixel = 2.0;
  for (Dataset::Index i = 0; i < d.num_rows(); ++i) {
    labels.insert(d.label(i));
    for (Dataset::Index j = 0; j < d.dim(); ++j) {
      max_pixel = std::max(max_pixel, d.dense()(i, j));
      min_pixel = std::min(min_pixel, d.dense()(i, j));
    }
  }
  EXPECT_GE(labels.size(), 8u);  // nearly all classes appear
  EXPECT_GE(min_pixel, 0.0);
  EXPECT_LE(max_pixel, 1.5);
}

TEST(Generators, MnistLikeRejectsNonSquareDim) {
  EXPECT_THROW(MakeMnistLike(10, 1, /*dim=*/10), CheckError);
}

TEST(Generators, YelpLikeSparseFiveClasses) {
  const Dataset d = MakeYelpLike(300, 7, /*dim=*/500);
  EXPECT_TRUE(d.is_sparse());
  EXPECT_EQ(d.num_classes(), 5);
  EXPECT_EQ(d.task(), Task::kMulticlass);
  // Bag-of-words: log1p counts are positive.
  for (SparseMatrix::Index i = 0; i < d.sparse().nnz() && i < 100; ++i) {
    // spot-check via row iteration
  }
  EXPECT_GT(d.sparse().nnz(), 0);
}

TEST(Generators, SyntheticLogisticDenseAndSparse) {
  const Dataset dense = MakeSyntheticLogistic(200, 10, 8);
  EXPECT_FALSE(dense.is_sparse());
  const Dataset sparse = MakeSyntheticLogistic(200, 50, 9, /*sparsity=*/0.1);
  EXPECT_TRUE(sparse.is_sparse());
  EXPECT_EQ(sparse.sparse().RowNnz(0), 5);  // 10% of 50
}

TEST(Generators, SyntheticMulticlassSeparableWithWideSpread) {
  const Dataset d = MakeSyntheticMulticlass(500, 5, 3, 10, /*spread=*/5.0);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.task(), Task::kMulticlass);
}

TEST(Generators, LowRankHasDecayingSpectrum) {
  const Dataset d = MakeSyntheticLowRank(2000, 12, 3, 11, /*noise=*/0.1);
  EXPECT_EQ(d.task(), Task::kUnsupervised);
  EXPECT_FALSE(d.has_labels());
  // Top-3 sample covariance eigenvalues should dominate the rest.
  Matrix s(12, 12);
  for (Dataset::Index i = 0; i < d.num_rows(); ++i) {
    for (int a = 0; a < 12; ++a) {
      for (int b = 0; b < 12; ++b) {
        s(a, b) += d.dense()(i, a) * d.dense()(i, b);
      }
    }
  }
  s *= 1.0 / 2000.0;
  const auto eig = EigenSymValues(s);
  ASSERT_TRUE(eig.ok());
  const Vector& w = *eig;  // ascending
  EXPECT_GT(w[11], 10.0 * w[8]);  // rank-3 signal above the noise floor
}

TEST(Generators, DeterministicGivenSeed) {
  const Dataset a = MakeHiggsLike(50, 77);
  const Dataset b = MakeHiggsLike(50, 77);
  EXPECT_EQ(MaxAbsDiff(a.dense(), b.dense()), 0.0);
  for (Dataset::Index i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
  }
  const Dataset c = MakeHiggsLike(50, 78);
  EXPECT_GT(MaxAbsDiff(a.dense(), c.dense()), 0.0);
}

}  // namespace
}  // namespace blinkml
