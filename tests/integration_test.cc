// Cross-module integration tests: the full BlinkML pipeline on each of the
// paper's workload shapes, including the sparse high-dimensional path and
// the file-loader path.

#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/conservative.h"
#include "core/coordinator.h"
#include "data/generators.h"
#include "data/loader.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/max_entropy.h"
#include "models/ppca.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

BlinkConfig FastConfig(std::uint64_t seed = 7) {
  BlinkConfig config;
  config.initial_sample_size = 1500;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  config.seed = seed;
  return config;
}

TEST(Integration, SparseHighDimensionalLogisticRegression) {
  // Criteo-like: sparse features, d larger than the statistics sample, so
  // the lazy Gram-factor path is exercised end to end.
  const Dataset data =
      MakeCriteoLike(30000, 1, /*dim=*/3000, /*nnz_per_row=*/25);
  LogisticRegressionSpec spec(1e-3);
  BlinkConfig config = FastConfig();
  config.stats_sample_size = 512;
  const Coordinator coordinator(config);
  const auto result = coordinator.Train(spec, data, {0.03, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->sample_size, 0);
  // Verify against the actually trained full model.
  const auto full = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(full.ok());
  const double v =
      spec.Diff(result->model.theta, full->theta, *result->holdout);
  EXPECT_LE(v, 0.03 + 0.02);
}

TEST(Integration, SparseMulticlassYelpLike) {
  // n_0 must stay comfortably above the parameter count (p = 5 * 300 here)
  // for the MLE asymptotics to hold — when n_0 <~ p the initial model
  // overfits and per-example gradients at theta_0 underestimate J (see
  // DESIGN.md Section 6, "regime boundary").
  const Dataset data = MakeYelpLike(15000, 2, /*dim=*/300);
  MaxEntropySpec spec(1e-3);
  BlinkConfig config = FastConfig();
  config.initial_sample_size = 3000;
  const Coordinator coordinator(config);
  const auto result = coordinator.Train(spec, data, {0.15, 0.05});
  ASSERT_TRUE(result.ok());
  const auto full = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(spec.Diff(result->model.theta, full->theta, *result->holdout),
            0.15 + 0.03);
}

TEST(Integration, RegressionOnPowerLikeData) {
  const Dataset data = MakePowerLike(25000, 3, /*dim=*/30);
  LinearRegressionSpec spec(1e-3);
  const Coordinator coordinator(FastConfig());
  const auto result = coordinator.Train(spec, data, {0.05, 0.05});
  ASSERT_TRUE(result.ok());
  const auto full = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(spec.Diff(result->model.theta, full->theta, *result->holdout),
            0.05 + 0.02);
}

TEST(Integration, PpcaOnMnistLikeData) {
  const Dataset data = MakeMnistLike(20000, 4, /*dim=*/64, /*num_classes=*/10);
  // Drop labels: PPCA treats features only.
  const Dataset unlabeled(Matrix(data.dense()), Vector(),
                          Task::kUnsupervised);
  PpcaSpec spec(5);
  // PPCA's cosine metric is quadratically sensitive near zero; give the
  // initial model a comfortable asymptotic margin (n_0 >> p = 321).
  BlinkConfig config = FastConfig();
  config.initial_sample_size = 4000;
  const Coordinator coordinator(config);
  const auto result = coordinator.Train(spec, unlabeled, {0.02, 0.05});
  ASSERT_TRUE(result.ok());
  const auto full = ModelTrainer().Train(spec, unlabeled);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(spec.Diff(result->model.theta, full->theta, *result->holdout),
            0.02 + 0.01);
}

TEST(Integration, Lemma1GeneralizationTransfer) {
  // gen(m_N) <= gen(m_n) + eps - gen(m_n) * eps must hold for the actually
  // trained pair.
  const Dataset data = MakeHiggsLike(30000, 5, /*dim=*/15);
  LogisticRegressionSpec spec(1e-3);
  const double eps = 0.05;
  const Coordinator coordinator(FastConfig());
  const auto result = coordinator.Train(spec, data, {eps, 0.05});
  ASSERT_TRUE(result.ok());
  const auto full = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(full.ok());
  const double gen_approx =
      spec.GeneralizationError(result->model.theta, *result->holdout);
  const double gen_full =
      spec.GeneralizationError(full->theta, *result->holdout);
  EXPECT_LE(gen_full, FullModelGeneralizationBound(gen_approx, eps) + 0.02);
}

TEST(Integration, CsvPipelineEndToEnd) {
  // Generate -> save CSV -> load -> train with a contract.
  const auto dir = std::filesystem::temp_directory_path() /
                   "blinkml_integration_csv";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "train.csv").string();
  const Dataset original = MakeSyntheticLogistic(8000, 6, 6);
  ASSERT_TRUE(SaveCsv(original, path).ok());
  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->task(), Task::kBinary);
  LogisticRegressionSpec spec(1e-3);
  const Coordinator coordinator(FastConfig());
  const auto result = coordinator.Train(spec, *loaded, {0.2, 0.05});
  EXPECT_TRUE(result.ok());
  std::filesystem::remove_all(dir);
}

TEST(Integration, BlinkMlBeatsIncEstimatorOnModelCount) {
  // BlinkML trains at most 2 models; IncEstimator may train several for a
  // tight contract on the same data.
  const Dataset data = MakeSyntheticLogistic(25000, 8, 7, /*sparsity=*/1.0,
                                             /*noise=*/0.25);
  LogisticRegressionSpec spec(1e-3);
  const BlinkConfig config = FastConfig();
  const Coordinator coordinator(config);
  const ApproximationContract contract{0.02, 0.1};
  const auto blink = coordinator.Train(spec, data, contract);
  ASSERT_TRUE(blink.ok());
  const IncEstimatorBaseline inc(config);
  const auto inc_result = inc.Train(spec, data, contract);
  ASSERT_TRUE(inc_result.ok());
  EXPECT_GE(inc_result->models_trained, 2);
}

TEST(Integration, StatsMethodsInterchangeableInCoordinator) {
  const Dataset data = MakeHiggsLike(20000, 8, /*dim=*/12);
  LogisticRegressionSpec spec(1e-3);
  for (const StatsMethod method :
       {StatsMethod::kClosedForm, StatsMethod::kInverseGradients,
        StatsMethod::kObservedFisher}) {
    BlinkConfig config = FastConfig();
    config.stats_method = method;
    const Coordinator coordinator(config);
    const auto result = coordinator.Train(spec, data, {0.05, 0.05});
    ASSERT_TRUE(result.ok()) << StatsMethodName(method);
    EXPECT_GT(result->sample_size, 0) << StatsMethodName(method);
  }
}

}  // namespace
}  // namespace blinkml
