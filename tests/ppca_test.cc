#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "models/ppca.h"
#include "models/trainer.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

TEST(Ppca, ParamDimIncludesSigma) {
  PpcaSpec spec(3);
  const Dataset data = MakeSyntheticLowRank(50, 8, 3, 1);
  EXPECT_EQ(spec.ParamDim(data), 8 * 3 + 1);
  EXPECT_EQ(spec.num_factors(), 3);
  EXPECT_DOUBLE_EQ(spec.l2(), 0.0);
}

TEST(Ppca, RejectsZeroFactors) { EXPECT_THROW(PpcaSpec(0), CheckError); }

TEST(Ppca, ClosedFormSatisfiesStationarity) {
  // The closed-form MLE must be a stationary point of the objective.
  const Dataset data = MakeSyntheticLowRank(800, 10, 3, 2, /*noise=*/0.4);
  PpcaSpec spec(3);
  const auto theta = spec.TrainClosedForm(data);
  ASSERT_TRUE(theta.ok());
  Vector grad;
  spec.Gradient(*theta, data, &grad);
  EXPECT_LT(NormInf(grad), 1e-6);
}

TEST(Ppca, ClosedFormRecoversNoiseVariance) {
  // Data generated exactly from the PPCA model: sigma^2 estimate should be
  // close to the true noise variance.
  const double true_noise = 0.5;
  const Dataset data = MakeSyntheticLowRank(4000, 12, 3, 3, true_noise);
  PpcaSpec spec(3);
  const auto theta = spec.TrainClosedForm(data);
  ASSERT_TRUE(theta.ok());
  const double sigma = (*theta)[12 * 3];
  EXPECT_NEAR(sigma, true_noise, 0.06);
}

TEST(Ppca, ClosedFormRecoversSubspace) {
  // The learned factors must span the covariance's top eigen-subspace:
  // reconstructed covariance close to sample covariance in top directions.
  const Dataset data = MakeSyntheticLowRank(4000, 10, 2, 4, /*noise=*/0.2);
  PpcaSpec spec(2);
  const auto theta = spec.TrainClosedForm(data);
  ASSERT_TRUE(theta.ok());
  Matrix factors;
  double sigma = 0.0;
  spec.Unpack(*theta, 10, &factors, &sigma);
  // Columns of Theta must be orthogonal (closed form gives U_q scaled).
  const Matrix gram = GramCols(factors);
  EXPECT_NEAR(gram(0, 1), 0.0, 1e-8 * std::max(gram(0, 0), gram(1, 1)));
  // And capture more variance than the noise floor.
  EXPECT_GT(gram(0, 0), 4.0 * sigma * sigma);
}

TEST(Ppca, TrainerUsesClosedForm) {
  const Dataset data = MakeSyntheticLowRank(500, 8, 2, 5);
  PpcaSpec spec(2);
  const auto model = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->iterations, 0);  // closed form, no optimizer
  EXPECT_TRUE(model->converged);
}

TEST(Ppca, DiffIsCosineDistanceOnFactorBlock) {
  PpcaSpec spec(2);
  const Dataset dummy = MakeSyntheticLowRank(10, 3, 2, 6);
  // theta = [factors(6); sigma]
  Vector t1{1.0, 0.0, 0.0, 1.0, 0.0, 0.0, /*sigma=*/0.5};
  Vector t2 = t1;
  EXPECT_NEAR(spec.Diff(t1, t2, dummy), 0.0, 1e-14);
  // Scaling the factor block leaves the cosine unchanged.
  Vector t3 = t1;
  for (int i = 0; i < 6; ++i) t3[i] *= 3.0;
  EXPECT_NEAR(spec.Diff(t1, t3, dummy), 0.0, 1e-12);
  // Sigma (last component) must not affect the metric.
  Vector t4 = t1;
  t4[6] = 99.0;
  EXPECT_NEAR(spec.Diff(t1, t4, dummy), 0.0, 1e-14);
  // Orthogonal factors give diff 1.
  Vector t5{0.0, 1.0, -1.0, 0.0, 0.0, 0.0, 0.5};
  EXPECT_NEAR(spec.Diff(t1, t5, dummy), 1.0, 1e-12);
}

TEST(Ppca, DiffRejectsZeroFactors) {
  PpcaSpec spec(1);
  const Dataset dummy = MakeSyntheticLowRank(10, 3, 1, 7);
  const Vector zero(4);  // 3 factors + sigma, all zero
  const Vector ok{1.0, 0.0, 0.0, 0.5};
  EXPECT_THROW(spec.Diff(zero, ok, dummy), CheckError);
}

TEST(Ppca, PredictIsUndefined) {
  PpcaSpec spec(2);
  const Dataset data = MakeSyntheticLowRank(10, 4, 2, 8);
  Vector out;
  EXPECT_THROW(spec.Predict(Vector(9), data, &out), CheckError);
}

TEST(Ppca, RejectsTooFewRowsOrTooManyFactors) {
  PpcaSpec spec(5);
  const Dataset tiny = MakeSyntheticLowRank(2, 4, 2, 9);
  EXPECT_FALSE(spec.TrainClosedForm(tiny).ok());  // q >= d
  PpcaSpec spec2(2);
  const Dataset one_row = MakeSyntheticLowRank(2, 6, 2, 10).TakeRows({0});
  EXPECT_FALSE(spec2.TrainClosedForm(one_row).ok());
}

TEST(Ppca, ObjectiveMatchesDirectDensityComputation) {
  // Cross-check the Woodbury-based objective against a direct O(d^3)
  // evaluation of 0.5*(d log 2pi + log|C| + mean x^T C^-1 x).
  const Dataset data = MakeSyntheticLowRank(60, 5, 2, 11);
  PpcaSpec spec(2);
  const auto trained = spec.TrainClosedForm(data);
  ASSERT_TRUE(trained.ok());
  Matrix factors;
  double sigma = 0.0;
  spec.Unpack(*trained, 5, &factors, &sigma);
  Matrix c = MatMulT(factors, factors);
  c.AddToDiagonal(sigma * sigma);
  const auto chol = Cholesky::Factor(c);
  ASSERT_TRUE(chol.ok());
  double quad = 0.0;
  for (Dataset::Index i = 0; i < data.num_rows(); ++i) {
    const Vector x = data.dense().Row(i);
    quad += Dot(x, chol->Solve(x));
  }
  quad /= static_cast<double>(data.num_rows());
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double expected = 0.5 * (5.0 * std::log(kTwoPi) + chol->LogDet() + quad);
  EXPECT_NEAR(spec.Objective(*trained, data), expected, 1e-8);
}

// The PPCA inner loops (objective/gradient reduction, per-example
// gradients, the closed-form moment accumulation) run through the parallel
// runtime with fixed chunk layouts, so every output must be bitwise
// identical at 1, 2, and 8 threads (runtime/parallel.h determinism
// contract).
TEST(Ppca, ParallelLoopsAreThreadCountInvariant) {
  const Dataset data = MakeSyntheticLowRank(1500, 10, 3, 21, /*noise=*/0.3);
  PpcaSpec spec(3);
  const Vector theta0 = spec.InitialTheta(data);

  struct Outputs {
    double objective = 0.0;
    Vector gradient;
    Matrix per_example;
    Vector closed_form;
  };
  auto run = [&] {
    Outputs out;
    out.objective = spec.ObjectiveAndGradient(theta0, data, &out.gradient);
    spec.PerExampleGradients(theta0, data, &out.per_example);
    auto trained = spec.TrainClosedForm(data);
    EXPECT_TRUE(trained.ok());
    out.closed_form = std::move(*trained);
    return out;
  };

  RuntimeOptions serial;
  serial.enabled = false;
  Outputs reference;
  {
    RuntimeScope scope(serial);
    reference = run();
  }
  ThreadPool pool(8);
  for (const int threads : {1, 2, 8}) {
    RuntimeOptions options;
    options.pool = &pool;
    options.num_threads = threads;
    RuntimeScope scope(options);
    const Outputs parallel = run();
    EXPECT_EQ(parallel.objective, reference.objective) << threads;
    EXPECT_EQ(MaxAbsDiff(parallel.gradient, reference.gradient), 0.0)
        << threads;
    EXPECT_EQ(MaxAbsDiff(parallel.per_example, reference.per_example), 0.0)
        << threads;
    EXPECT_EQ(MaxAbsDiff(parallel.closed_form, reference.closed_form), 0.0)
        << threads;
  }
}

TEST(Ppca, SubspaceStableAcrossSamples) {
  // Two disjoint samples from the same distribution should learn nearly
  // parallel factor parameters (this is exactly the quantity BlinkML's
  // PPCA accuracy metric tracks).
  const Dataset all = MakeSyntheticLowRank(6000, 8, 2, 12, /*noise=*/0.2);
  Rng rng(14);
  const auto [a, b] = all.Split(0.5, &rng);
  PpcaSpec spec(2);
  const auto ta = spec.TrainClosedForm(a);
  const auto tb = spec.TrainClosedForm(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  EXPECT_LT(spec.Diff(*ta, *tb, a), 0.05);
}

}  // namespace
}  // namespace blinkml
