#include <cmath>

#include <gtest/gtest.h>

#include "core/param_sampler.h"
#include "core/statistics.h"
#include "data/generators.h"
#include "linalg/eigen_sym.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/max_entropy.h"
#include "models/ppca.h"
#include "models/trainer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectMatrixNear;

// Trains a model and returns (theta, data).
template <typename Spec>
std::pair<Vector, Dataset> TrainOn(const Spec& spec, Dataset data) {
  const auto model = ModelTrainer().Train(spec, data);
  EXPECT_TRUE(model.ok());
  return {model->theta, std::move(data)};
}

StatsOptions WithMethod(StatsMethod method) {
  StatsOptions options;
  options.method = method;
  options.stats_sample_size = 0;  // use every row: exact comparisons
  options.max_rank = 0;           // no truncation
  return options;
}

// ---------- ParamSampler ----------

TEST(ParamSampler, DenseFactorDrawsMatchCovariance) {
  Rng rng(1);
  const Matrix w = {{1.0, 0.0}, {0.5, 2.0}};
  const ParamSampler sampler = ParamSampler::FromDenseFactor(w);
  EXPECT_EQ(sampler.dim(), 2);
  EXPECT_EQ(sampler.rank(), 2);
  Matrix cov(2, 2);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    const Vector x = sampler.Draw(1.0, &rng);
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) cov(i, j) += x[i] * x[j];
    }
  }
  cov *= 1.0 / trials;
  ExpectMatrixNear(cov, MatMulT(w, w), 0.1, "empirical covariance");
}

TEST(ParamSampler, ScalingScalesVarianceQuadratically) {
  const Matrix w = {{2.0}};
  const ParamSampler sampler = ParamSampler::FromDenseFactor(w);
  const Vector z{1.5};
  EXPECT_DOUBLE_EQ(sampler.DrawWithZ(1.0, z)[0], 3.0);
  EXPECT_DOUBLE_EQ(sampler.DrawWithZ(0.5, z)[0], 1.5);
  EXPECT_DOUBLE_EQ(sampler.DrawWithZ(0.0, z)[0], 0.0);
}

TEST(ParamSampler, GramBackendsMatchDenseFactor) {
  // W = Q^T V: all three backends must produce identical draws for the
  // same z.
  Rng rng(2);
  const Matrix q = testing::RandomMatrix(6, 4, &rng);
  const Matrix v = testing::RandomMatrix(6, 3, &rng);
  const Matrix w = MatTMul(q, v);  // 4 x 3
  const ParamSampler dense = ParamSampler::FromDenseFactor(w);
  const ParamSampler gram = ParamSampler::FromGramFactor(q, v);
  const ParamSampler sparse =
      ParamSampler::FromSparseGramFactor(SparseMatrix::FromDense(q), v);
  for (int t = 0; t < 5; ++t) {
    const Vector z = testing::RandomVector(3, &rng);
    const Vector a = dense.DrawWithZ(1.7, z);
    testing::ExpectVectorNear(gram.DrawWithZ(1.7, z), a, 1e-12, "gram");
    testing::ExpectVectorNear(sparse.DrawWithZ(1.7, z), a, 1e-12, "sparse");
  }
  // And their covariance diagnostics agree.
  const auto cov_dense = dense.DenseCovariance();
  const auto cov_gram = gram.DenseCovariance();
  const auto cov_sparse = sparse.DenseCovariance();
  ASSERT_TRUE(cov_dense.ok());
  ASSERT_TRUE(cov_gram.ok());
  ASSERT_TRUE(cov_sparse.ok());
  ExpectMatrixNear(*cov_gram, *cov_dense, 1e-12);
  ExpectMatrixNear(*cov_sparse, *cov_dense, 1e-12);
  const auto diag = gram.VarianceDiagonal();
  ASSERT_TRUE(diag.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR((*diag)[i], (*cov_dense)(i, i), 1e-12);
  }
}

TEST(ParamSampler, RejectsWrongZDimension) {
  const ParamSampler s = ParamSampler::FromDenseFactor(Matrix(3, 2));
  EXPECT_THROW(s.DrawWithZ(1.0, Vector(3)), CheckError);
}

// ---------- Statistics methods ----------

TEST(Statistics, ClosedFormRequiresAnalyticHessian) {
  PpcaSpec ppca(2);
  const Dataset data = MakeSyntheticLowRank(100, 5, 2, 3);
  const auto model = ModelTrainer().Train(ppca, data);
  ASSERT_TRUE(model.ok());
  Rng rng(4);
  const auto stats = ComputeStatistics(ppca, model->theta, data,
                                       WithMethod(StatsMethod::kClosedForm),
                                       &rng);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(Statistics, RejectsEmptyOrMismatched) {
  LinearRegressionSpec lin;
  const Dataset data = MakeSyntheticLinear(20, 3, 5);
  Rng rng(6);
  EXPECT_FALSE(ComputeStatistics(lin, Vector(4), data,
                                 WithMethod(StatsMethod::kObservedFisher),
                                 &rng)
                   .ok());
}

// ClosedForm and InverseGradients must agree: both compute H exactly (one
// analytically, one numerically).
TEST(Statistics, InverseGradientsMatchesClosedForm) {
  LogisticRegressionSpec spec(1e-2);
  auto [theta, data] = TrainOn(spec, testing::SmallDenseLogistic(300, 6, 7));
  Rng rng(8);
  const auto cf = ComputeStatistics(spec, theta, data,
                                    WithMethod(StatsMethod::kClosedForm),
                                    &rng);
  const auto ig = ComputeStatistics(
      spec, theta, data, WithMethod(StatsMethod::kInverseGradients), &rng);
  ASSERT_TRUE(cf.ok());
  ASSERT_TRUE(ig.ok());
  const auto cov_cf = cf->DenseCovariance();
  const auto cov_ig = ig->DenseCovariance();
  ASSERT_TRUE(cov_cf.ok());
  ASSERT_TRUE(cov_ig.ok());
  ExpectMatrixNear(*cov_ig, *cov_cf, 1e-4 * (1.0 + cov_cf->MaxAbs()));
}

// ObservedFisher converges to ClosedForm as the sample grows (the
// information-matrix equality is asymptotic; paper Figure 9a shows the
// same convergence empirically).
TEST(Statistics, ObservedFisherApproachesClosedForm) {
  LogisticRegressionSpec spec(1e-2);
  auto [theta, data] = TrainOn(spec, testing::SmallDenseLogistic(6000, 4, 9));
  Rng rng(10);
  const auto cf = ComputeStatistics(spec, theta, data,
                                    WithMethod(StatsMethod::kClosedForm),
                                    &rng);
  const auto of = ComputeStatistics(
      spec, theta, data, WithMethod(StatsMethod::kObservedFisher), &rng);
  ASSERT_TRUE(cf.ok());
  ASSERT_TRUE(of.ok());
  const auto cov_cf = cf->DenseCovariance();
  const auto cov_of = of->DenseCovariance();
  ASSERT_TRUE(cov_cf.ok());
  ASSERT_TRUE(cov_of.ok());
  // Agreement within ~1/sqrt(n) statistical error.
  ExpectMatrixNear(*cov_of, *cov_cf, 0.15 * (1e-4 + cov_cf->MaxAbs()));
}

// The two ObservedFisher code paths (p <= n_s dense-eigen path and the
// p > n_s Gram path) must agree on the same data.
TEST(Statistics, ObservedFisherSmallAndLargeDimPathsAgree) {
  LogisticRegressionSpec spec(1e-2);
  auto [theta, data] = TrainOn(spec, MakeSyntheticLogistic(120, 10, 11));
  Rng rng_a(12);
  Rng rng_b(12);
  StatsOptions small_path = WithMethod(StatsMethod::kObservedFisher);
  small_path.stats_sample_size = 0;  // n_s = 120 > p = 10: small-dim path
  StatsOptions gram_path = WithMethod(StatsMethod::kObservedFisher);
  gram_path.stats_sample_size = 8;  // n_s = 8 < p = 10: Gram path
  const auto a = ComputeStatistics(spec, theta, data, small_path, &rng_a);
  const auto b = ComputeStatistics(spec, theta, data, gram_path, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different row subsets -> only rough agreement expected; check scale.
  const auto diag_a = a->VarianceDiagonal();
  const auto diag_b = b->VarianceDiagonal();
  ASSERT_TRUE(diag_a.ok());
  ASSERT_TRUE(diag_b.ok());
  double sum_a = 0.0, sum_b = 0.0;
  for (int i = 0; i < 10; ++i) {
    sum_a += (*diag_a)[i];
    sum_b += (*diag_b)[i];
  }
  EXPECT_GT(sum_b, 0.1 * sum_a);
  EXPECT_LT(sum_b, 10.0 * sum_a);
}

// Gram-path correctness oracle: with n_s rows of per-example gradients Q,
// the sampler covariance must equal H^-1 J H^-1 computed densely from
// J = Q^T Q / n_s and H = J + beta I.
TEST(Statistics, GramPathMatchesDenseOracle) {
  LogisticRegressionSpec spec(0.05);
  auto [theta, data] = TrainOn(spec, MakeSyntheticLogistic(40, 12, 13));
  StatsOptions options = WithMethod(StatsMethod::kObservedFisher);
  options.stats_sample_size = 10;  // force Gram path (10 < 12)
  Rng rng(14);
  const auto stats = ComputeStatistics(spec, theta, data, options, &rng);
  ASSERT_TRUE(stats.ok());
  // The estimator sampled 10 specific rows internally; rebuild the oracle
  // from the sampler itself instead: covariance must be PSD with the right
  // rank bound.
  const auto cov = stats->DenseCovariance();
  ASSERT_TRUE(cov.ok());
  const auto eig = EigenSymValues(*cov);
  ASSERT_TRUE(eig.ok());
  int positive = 0;
  for (int i = 0; i < eig->size(); ++i) {
    EXPECT_GE((*eig)[i], -1e-10);
    if ((*eig)[i] > 1e-12) ++positive;
  }
  EXPECT_LE(positive, 10);  // rank bounded by n_s
}

TEST(Statistics, RankTruncationRecordsDroppedVariance) {
  LogisticRegressionSpec spec(1e-3);
  auto [theta, data] = TrainOn(spec, MakeSyntheticLogistic(60, 30, 15));
  StatsOptions options = WithMethod(StatsMethod::kObservedFisher);
  options.stats_sample_size = 20;  // Gram path, rank <= 20
  options.max_rank = 5;            // truncate hard
  Rng rng(16);
  const auto stats = ComputeStatistics(spec, theta, data, options, &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rank(), 5);
  EXPECT_GT(stats->dropped_variance_fraction(), 0.0);
  EXPECT_LT(stats->dropped_variance_fraction(), 1.0);
  // Untruncated sampler records zero dropped variance.
  options.max_rank = 0;
  Rng rng2(16);
  const auto full = ComputeStatistics(spec, theta, data, options, &rng2);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full->dropped_variance_fraction(), 0.0);
}

// The sampler's empirical parameter variance must track the theoretical
// sampling variance of the MLE: retrain on many independent samples and
// compare (this is the "actual variance" of paper Figure 9a).
TEST(Statistics, SamplerVarianceTracksActualResamplingVariance) {
  const std::int64_t big_n = 40000;
  const std::int64_t small_n = 1000;
  const Dataset big = MakeSyntheticLinear(big_n, 3, 17, /*noise=*/1.0);
  LinearRegressionSpec spec(1e-3);

  // Actual: variance of theta across models trained on disjoint samples.
  const int models = 40;
  Rng rng(18);
  std::vector<Vector> thetas;
  for (int m = 0; m < models; ++m) {
    const Dataset sample = big.SampleRows(small_n, &rng);
    const auto trained = ModelTrainer().Train(spec, sample);
    ASSERT_TRUE(trained.ok());
    thetas.push_back(trained->theta);
  }
  Vector mean(3), var(3);
  for (const auto& t : thetas) {
    for (int j = 0; j < 3; ++j) mean[j] += t[j];
  }
  mean *= 1.0 / models;
  for (const auto& t : thetas) {
    for (int j = 0; j < 3; ++j) {
      var[j] += (t[j] - mean[j]) * (t[j] - mean[j]);
    }
  }
  var *= 1.0 / (models - 1);

  // Estimated: alpha * diag(H^-1 J H^-1) from one model.
  const Dataset one_sample = big.SampleRows(small_n, &rng);
  const auto trained = ModelTrainer().Train(spec, one_sample);
  ASSERT_TRUE(trained.ok());
  Rng stats_rng(19);
  const auto stats =
      ComputeStatistics(spec, trained->theta, one_sample,
                        WithMethod(StatsMethod::kObservedFisher), &stats_rng);
  ASSERT_TRUE(stats.ok());
  const auto diag = stats->VarianceDiagonal();
  ASSERT_TRUE(diag.ok());
  const double alpha = 1.0 / small_n - 1.0 / big_n;
  for (int j = 0; j < 3; ++j) {
    const double estimated = alpha * (*diag)[j];
    // Within a factor of 2.5 of the actual variance (40 models give a
    // noisy reference; the paper's Figure 9a reports ratios in [0.5, 2]).
    EXPECT_GT(estimated, var[j] / 2.5) << "param " << j;
    EXPECT_LT(estimated, var[j] * 2.5) << "param " << j;
  }
}

// ObservedFisher must work for every model class (it is the default).
class ObservedFisherSweep : public ::testing::TestWithParam<int> {};

TEST_P(ObservedFisherSweep, ProducesUsableSampler) {
  std::shared_ptr<ModelSpec> spec;
  Dataset data = [&]() -> Dataset {
    switch (GetParam()) {
      case 0:
        spec = std::make_shared<LinearRegressionSpec>(1e-3);
        return MakeSyntheticLinear(500, 8, 20);
      case 1:
        spec = std::make_shared<LogisticRegressionSpec>(1e-3);
        return MakeSyntheticLogistic(500, 8, 21);
      case 2:
        spec = std::make_shared<MaxEntropySpec>(1e-3);
        return MakeSyntheticMulticlass(500, 6, 3, 22);
      default:
        spec = std::make_shared<PpcaSpec>(2);
        return MakeSyntheticLowRank(500, 6, 2, 23);
    }
  }();
  const auto model = ModelTrainer().Train(*spec, data);
  ASSERT_TRUE(model.ok());
  Rng rng(24);
  StatsOptions options;  // defaults: ObservedFisher
  const auto stats =
      ComputeStatistics(*spec, model->theta, data, options, &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->dim(), spec->ParamDim(data));
  EXPECT_GT(stats->rank(), 0);
  // Draws are finite and respond to scale.
  Rng draw_rng(25);
  const Vector d1 = stats->Draw(1.0, &draw_rng);
  for (Vector::Index i = 0; i < d1.size(); ++i) {
    EXPECT_TRUE(std::isfinite(d1[i]));
  }
  const Vector z(stats->rank(), 0.5);
  const Vector a = stats->DrawWithZ(1.0, z);
  const Vector b = stats->DrawWithZ(2.0, z);
  EXPECT_NEAR(Norm2(b), 2.0 * Norm2(a), 1e-9 * Norm2(a));
}

INSTANTIATE_TEST_SUITE_P(Models, ObservedFisherSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace blinkml
