#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/loader.h"
#include "data/scaler.h"
#include "data/generators.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("blinkml_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void WriteFile(const std::string& name, const std::string& content) const {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

using LoaderTest = TempDir;
using ScalerTest = TempDir;

TEST_F(LoaderTest, CsvRoundTrip) {
  const Dataset original = MakeSyntheticLinear(50, 4, /*seed=*/3);
  ASSERT_TRUE(SaveCsv(original, Path("data.csv")).ok());
  const auto loaded = LoadCsv(Path("data.csv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 50);
  EXPECT_EQ(loaded->dim(), 4);
  EXPECT_EQ(loaded->task(), Task::kRegression);
  EXPECT_LT(MaxAbsDiff(loaded->dense(), original.dense()), 1e-12);
  for (Dataset::Index i = 0; i < 50; ++i) {
    EXPECT_NEAR(loaded->label(i), original.label(i), 1e-12);
  }
}

TEST_F(LoaderTest, CsvInfersBinaryTask) {
  WriteFile("b.csv", "f0,f1,label\n1.5,2.0,1\n0.5,1.0,0\n");
  const auto d = LoadCsv(Path("b.csv"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->task(), Task::kBinary);
}

TEST_F(LoaderTest, CsvInfersMulticlassTask) {
  WriteFile("m.csv", "f0,label\n1.0,0\n2.0,3\n3.0,1\n");
  const auto d = LoadCsv(Path("m.csv"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->task(), Task::kMulticlass);
  EXPECT_EQ(d->num_classes(), 4);
}

TEST_F(LoaderTest, CsvCustomLabelColumn) {
  WriteFile("c.csv", "label,f0\n1,5.0\n0,6.0\n");
  CsvOptions options;
  options.label_column = 0;
  const auto d = LoadCsv(Path("c.csv"), options);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->label(0), 1.0);
  EXPECT_DOUBLE_EQ(d->dense()(0, 0), 5.0);
}

TEST_F(LoaderTest, CsvWithoutHeader) {
  WriteFile("nh.csv", "1.0,2.0,0\n3.0,4.0,1\n");
  CsvOptions options;
  options.has_header = false;
  const auto d = LoadCsv(Path("nh.csv"), options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 2);
}

TEST_F(LoaderTest, CsvErrors) {
  EXPECT_EQ(LoadCsv(Path("missing.csv")).status().code(),
            StatusCode::kIOError);

  WriteFile("ragged.csv", "a,b,c\n1,2,3\n1,2\n");
  EXPECT_EQ(LoadCsv(Path("ragged.csv")).status().code(),
            StatusCode::kInvalidArgument);

  WriteFile("nonnum.csv", "a,b\n1,hello\n");
  EXPECT_EQ(LoadCsv(Path("nonnum.csv")).status().code(),
            StatusCode::kInvalidArgument);

  WriteFile("empty.csv", "a,b\n");
  EXPECT_FALSE(LoadCsv(Path("empty.csv")).ok());

  WriteFile("one_col.csv", "a\n1\n");
  EXPECT_FALSE(LoadCsv(Path("one_col.csv")).ok());
}

TEST_F(LoaderTest, CsvSkipsBlankLines) {
  WriteFile("blank.csv", "a,b\n1,0\n\n2,1\n   \n");
  const auto d = LoadCsv(Path("blank.csv"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 2);
}

TEST_F(LoaderTest, SaveCsvRejectsSparse) {
  const Dataset sparse = MakeCriteoLike(10, 1, /*dim=*/50, /*nnz_per_row=*/5);
  EXPECT_FALSE(SaveCsv(sparse, Path("x.csv")).ok());
}

TEST_F(LoaderTest, LibsvmRoundTripSparse) {
  const Dataset original =
      MakeCriteoLike(40, 2, /*dim=*/100, /*nnz_per_row=*/8);
  ASSERT_TRUE(SaveLibsvm(original, Path("d.svm")).ok());
  const auto loaded = LoadLibsvm(Path("d.svm"), /*dim=*/100);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->is_sparse());
  EXPECT_EQ(loaded->num_rows(), 40);
  EXPECT_EQ(loaded->dim(), 100);
  testing::ExpectMatrixNear(loaded->sparse().ToDense(),
                            original.sparse().ToDense(), 1e-12);
}

TEST_F(LoaderTest, LibsvmOneBasedIndexDetection) {
  WriteFile("one.svm", "1 1:0.5 3:1.5\n0 2:2.5\n");
  const auto d = LoadLibsvm(Path("one.svm"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->dim(), 3);  // max index 3, shifted to 0-based
  EXPECT_DOUBLE_EQ(d->sparse().ToDense()(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(d->sparse().ToDense()(1, 1), 2.5);
}

TEST_F(LoaderTest, LibsvmPlusMinusLabels) {
  WriteFile("pm.svm", "+1 1:1.0\n-1 1:2.0\n");
  const auto d = LoadLibsvm(Path("pm.svm"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->task(), Task::kBinary);
  EXPECT_DOUBLE_EQ(d->label(0), 1.0);
  EXPECT_DOUBLE_EQ(d->label(1), 0.0);
}

TEST_F(LoaderTest, LibsvmErrors) {
  EXPECT_EQ(LoadLibsvm(Path("missing.svm")).status().code(),
            StatusCode::kIOError);
  WriteFile("bad.svm", "1 notanentry\n");
  EXPECT_FALSE(LoadLibsvm(Path("bad.svm")).ok());
  WriteFile("over.svm", "1 1:1 500:2\n");
  EXPECT_FALSE(LoadLibsvm(Path("over.svm"), /*dim=*/10).ok());
}

TEST_F(LoaderTest, LibsvmSkipsComments) {
  WriteFile("comment.svm", "# header comment\n1 1:1.0\n");
  const auto d = LoadLibsvm(Path("comment.svm"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 1);
}

// ---------- Standardizer ----------

TEST(Scaler, FitTransformZeroMeanUnitVariance) {
  const Dataset d = MakeSyntheticLinear(500, 3, /*seed=*/4, /*noise=*/1.0);
  const auto scaler = Standardizer::Fit(d);
  ASSERT_TRUE(scaler.ok());
  const auto scaled = scaler->Transform(d);
  ASSERT_TRUE(scaled.ok());
  for (int c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (Dataset::Index i = 0; i < scaled->num_rows(); ++i) {
      mean += scaled->dense()(i, c);
    }
    mean /= scaled->num_rows();
    for (Dataset::Index i = 0; i < scaled->num_rows(); ++i) {
      const double v = scaled->dense()(i, c) - mean;
      var += v * v;
    }
    var /= scaled->num_rows();
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-10);
  }
}

TEST(Scaler, ConstantColumnGetsUnitScale) {
  Matrix x(3, 2);
  for (int i = 0; i < 3; ++i) {
    x(i, 0) = 5.0;             // constant
    x(i, 1) = i;               // varying
  }
  const Dataset d(std::move(x), Vector{1.0, 2.0, 3.0}, Task::kRegression);
  const auto scaler = Standardizer::Fit(d);
  ASSERT_TRUE(scaler.ok());
  EXPECT_DOUBLE_EQ(scaler->scale()[0], 1.0);
  const auto scaled = scaler->Transform(d);
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ(scaled->dense()(0, 0), 0.0);  // (5-5)/1
}

TEST(Scaler, TransformAppliesTrainParametersToTest) {
  const Dataset train = MakeSyntheticLinear(300, 2, 5);
  const Dataset test = MakeSyntheticLinear(100, 2, 6);
  const auto scaler = Standardizer::Fit(train);
  ASSERT_TRUE(scaler.ok());
  const auto scaled_test = scaler->Transform(test);
  ASSERT_TRUE(scaled_test.ok());
  // Spot-check one cell against the formula.
  const double expected =
      (test.dense()(0, 0) - scaler->mean()[0]) / scaler->scale()[0];
  EXPECT_NEAR(scaled_test->dense()(0, 0), expected, 1e-12);
}

TEST(Scaler, RejectsSparseAndMismatchedDim) {
  const Dataset sparse = MakeCriteoLike(10, 3, /*dim=*/20, /*nnz_per_row=*/4);
  EXPECT_FALSE(Standardizer::Fit(sparse).ok());
  const Dataset a = MakeSyntheticLinear(10, 2, 7);
  const Dataset b = MakeSyntheticLinear(10, 3, 8);
  const auto scaler = Standardizer::Fit(a);
  ASSERT_TRUE(scaler.ok());
  EXPECT_FALSE(scaler->Transform(b).ok());
}

}  // namespace
}  // namespace blinkml
