// Shard-router suite: rendezvous placement, the registration journal,
// and the supervised cross-process front (shard/router.h) end to end —
// real forked workers over real sockets.
//
// The invariant every end-to-end test holds is the serving contract
// extended across processes: a job routed through the shard front
// returns bytes BITWISE IDENTICAL to the same request served by one
// in-process SessionManager, whatever the placement — and placement
// changes (drain migration, breaker reassignment) are invisible except
// as capacity.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/codec.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "shard/hashing.h"
#include "shard/journal.h"
#include "shard/router.h"
#include "shard/supervisor.h"
#include "util/failpoints.h"

namespace blinkml {
namespace shard {
namespace {

using net::BlinkClient;
using net::RegisterDatasetRequest;
using net::RetryPolicy;
using net::TrainRequestWire;
using net::TrainResponseWire;
using net::WireConfig;
using net::WireGenerator;

std::string SocketPath(const char* tag) {
  return ::testing::TempDir() + "blinkml_sr_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

WireConfig FastWireConfig(std::uint64_t seed) {
  WireConfig config;
  config.seed = seed;
  config.initial_sample_size = 1000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  return config;
}

RegisterDatasetRequest LogisticRegistration(const std::string& tenant,
                                            const std::string& name,
                                            std::uint64_t data_seed = 3) {
  RegisterDatasetRequest request;
  request.tenant = tenant;
  request.name = name;
  request.generator = WireGenerator::kSyntheticLogistic;
  request.rows = 4000;
  request.dim = 5;
  request.data_seed = data_seed;
  request.config = FastWireConfig(11);
  return request;
}

TrainRequestWire WireTrain(const std::string& tenant,
                           const std::string& dataset) {
  TrainRequestWire train;
  train.tenant = tenant;
  train.dataset = dataset;
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  return train;
}

void ExpectBitwise(const TrainResponseWire& got, const TrainResponseWire& want,
                   const std::string& what) {
  ASSERT_EQ(got.model.theta.size(), want.model.theta.size()) << what;
  for (Vector::Index i = 0; i < got.model.theta.size(); ++i) {
    EXPECT_EQ(got.model.theta[i], want.model.theta[i])
        << what << " theta[" << i << "]";
  }
  EXPECT_EQ(got.sample_size, want.sample_size) << what;
  EXPECT_EQ(got.model.iterations, want.model.iterations) << what;
  EXPECT_EQ(got.final_epsilon, want.final_epsilon) << what;
}

/// Router options wired for tests: short sockets, fast probe/backoff,
/// and NO ambient failpoint inheritance — these tests assert exact
/// placement and lifecycle counts, which a CI-armed worker-kill
/// schedule would perturb (the tolerance tests live in chaos_test.cc).
RouterOptions TestRouterOptions(const char* tag, int num_shards) {
  RouterOptions options;
  options.unix_path = SocketPath(tag);
  options.num_shards = num_shards;
  options.worker.socket_dir = "/tmp";
  options.worker.socket_prefix =
      std::string("blinkml_sw_") + tag + "_" + std::to_string(::getpid());
  options.worker.inherit_env_failpoints = false;
  options.worker.probe_interval_ms = 50;
  options.worker.probe_timeout_ms = 2000;
  options.worker.backoff_initial_ms = 5;
  options.worker.backoff_max_ms = 100;
  return options;
}

/// Fault-free single-process reference: one SessionManager behind one
/// BlinkServer, all registrations applied, one Train per request.
class ReferenceServer {
 public:
  explicit ReferenceServer(const std::vector<RegisterDatasetRequest>& regs)
      : manager_(ServeOptions{0, 2}) {
    net::ServerOptions options;
    options.unix_path = SocketPath("ref");
    server_ = std::make_unique<net::BlinkServer>(&manager_, options);
    BLINKML_CHECK(server_->Start().ok());
    auto client = BlinkClient::ConnectUnix(options.unix_path);
    BLINKML_CHECK(client.ok());
    client_ = std::make_unique<BlinkClient>(std::move(client.value()));
    for (const auto& reg : regs) {
      BLINKML_CHECK(client_->RegisterDataset(reg).ok());
    }
  }

  TrainResponseWire Train(const TrainRequestWire& request) {
    auto result = client_->Train(request);
    BLINKML_CHECK_MSG(result.ok(), result.status().ToString());
    return std::move(result.value());
  }

 private:
  SessionManager manager_;
  std::unique_ptr<net::BlinkServer> server_;
  std::unique_ptr<BlinkClient> client_;
};

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::Failpoints::Global().DisarmAll(); }
  void TearDown() override { fail::Failpoints::Global().DisarmAll(); }
};

// --- Rendezvous hashing -------------------------------------------------

TEST(RendezvousHashing, DeterministicAndRoughlyBalanced) {
  const std::vector<std::uint32_t> shards{0, 1, 2, 3};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 2000; ++i) {
    const ShardKey key{"tenant" + std::to_string(i % 7),
                       "ds" + std::to_string(i)};
    const int owner = RendezvousOwner(key, shards);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    ASSERT_EQ(owner, RendezvousOwner(key, shards)) << "non-deterministic";
    counts[static_cast<std::size_t>(owner)]++;
  }
  // Expectation is 500 per shard; 2000 keys concentrate tightly enough
  // that 300 is a conservative floor (the weights are a fixed function,
  // so this never flakes).
  for (const int c : counts) EXPECT_GT(c, 300);
}

TEST(RendezvousHashing, RemovingAShardMovesOnlyItsOwnKeys) {
  const std::vector<std::uint32_t> all{0, 1, 2, 3};
  const std::vector<std::uint32_t> survivors{0, 1, 3};
  int moved = 0;
  for (int i = 0; i < 1000; ++i) {
    const ShardKey key{"t" + std::to_string(i % 5), "d" + std::to_string(i)};
    const int before = RendezvousOwner(key, all);
    const int after = RendezvousOwner(key, survivors);
    if (before != 2) {
      EXPECT_EQ(before, after) << "key " << i << " moved without cause";
    } else {
      EXPECT_NE(after, 2);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // shard 2 owned a real share
}

TEST(RendezvousHashing, KeyFieldsDoNotConcatenate) {
  EXPECT_NE(ShardKeyHash(ShardKey{"ab", "c"}), ShardKeyHash(ShardKey{"a", "bc"}));
  EXPECT_NE(ShardKeyHash(ShardKey{"ab", ""}), ShardKeyHash(ShardKey{"a", "b"}));
  EXPECT_EQ(RendezvousOwner(ShardKey{"t", "d"}, {}), -1);
}

// --- Registration journal -----------------------------------------------

TEST(RegistrationJournalTest, IdempotentRecordConflictsRejected) {
  RegistrationJournal journal;
  const RegisterDatasetRequest reg = LogisticRegistration("t", "d0");
  ASSERT_TRUE(journal.Record(reg).ok());
  ASSERT_TRUE(journal.Record(reg).ok()) << "identical re-record must be OK";
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_TRUE(journal.Contains("t", "d0"));
  EXPECT_FALSE(journal.Contains("t", "d1"));

  RegisterDatasetRequest conflicting = reg;
  conflicting.data_seed = 99;
  const Status st = journal.Record(conflicting);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The original stays.
  EXPECT_EQ(journal.Snapshot()[0].data_seed, reg.data_seed);

  // Same name under another tenant is a distinct key, not a conflict.
  RegisterDatasetRequest other_tenant = reg;
  other_tenant.tenant = "u";
  EXPECT_TRUE(journal.Record(other_tenant).ok());
  EXPECT_EQ(journal.size(), 2u);
}

TEST(RegistrationJournalTest, SnapshotPreservesInsertionOrder) {
  RegistrationJournal journal;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        journal.Record(LogisticRegistration("t", "d" + std::to_string(i)))
            .ok());
  }
  const auto entries = journal.Snapshot();
  ASSERT_EQ(entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].name,
              "d" + std::to_string(i));
  }
}

// --- Router end to end --------------------------------------------------

// The tentpole acceptance test: jobs routed through the cross-process
// shard front return bytes identical to the single-process run, at
// every worker runner-thread count.
TEST_F(ShardTest, RoutedTrainsAreBitwiseIdenticalToSingleProcess) {
  std::vector<RegisterDatasetRequest> regs;
  for (int i = 0; i < 5; ++i) {
    regs.push_back(LogisticRegistration(i % 2 == 0 ? "ta" : "tb",
                                        "d" + std::to_string(i),
                                        /*data_seed=*/3 + i));
  }
  ReferenceServer reference(regs);
  std::map<std::string, TrainResponseWire> want;
  for (const auto& reg : regs) {
    want[reg.name] = reference.Train(WireTrain(reg.tenant, reg.name));
  }

  for (const int threads : {1, 2, 8}) {
    RouterOptions options = TestRouterOptions(
        ("bw" + std::to_string(threads)).c_str(), /*num_shards=*/3);
    options.worker.runner_threads = threads;
    ShardRouter router(options);
    ASSERT_TRUE(router.Start().ok());

    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    for (const auto& reg : regs) {
      const auto response = client->RegisterDataset(reg);
      ASSERT_TRUE(response.ok())
          << reg.name << ": " << response.status().ToString();
      EXPECT_GT(response->dataset_bytes, 0u);
    }
    EXPECT_EQ(router.journal().size(), regs.size());

    for (const auto& reg : regs) {
      const auto got = client->Train(WireTrain(reg.tenant, reg.name));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitwise(*got, want[reg.name],
                    "threads=" + std::to_string(threads) + " " + reg.name);
    }

    // Aggregation verbs: Health answers locally, Stats sums the shards.
    const auto health = client->Health("ta");
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health->accepting);
    EXPECT_FALSE(health->shedding);
    const auto stats = client->Stats("ta");
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->manager.jobs_completed, 5u);
    EXPECT_GE(stats->server.frames_received, 10u);
    const auto metrics = client->Metrics("ta");
    ASSERT_TRUE(metrics.ok());
    EXPECT_NE(metrics->text.find("# shard 0"), std::string::npos);
    EXPECT_NE(metrics->text.find("# router"), std::string::npos);
    EXPECT_NE(metrics->text.find("shard_forwarded_total"), std::string::npos);

    EXPECT_GE(router.stats().forwarded, 2u * regs.size());
    EXPECT_EQ(router.stats().unavailable, 0u);
  }
}

// An idempotent re-registration answers kOk through the router; a
// conflicting one is rejected at the journal, before any worker sees it.
TEST_F(ShardTest, RouterRegistrationIdempotencyAndConflicts) {
  RouterOptions options = TestRouterOptions("reg", 2);
  ShardRouter router(options);
  ASSERT_TRUE(router.Start().ok());
  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());

  const RegisterDatasetRequest reg = LogisticRegistration("t", "dup");
  ASSERT_TRUE(client->RegisterDataset(reg).ok());
  ASSERT_TRUE(client->RegisterDataset(reg).ok()) << "idempotent retry";
  EXPECT_EQ(router.journal().size(), 1u);

  RegisterDatasetRequest conflicting = reg;
  conflicting.rows = 1234;
  const auto rejected = client->RegisterDataset(conflicting);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(client->last_wire_status(), net::WireStatus::kInvalidArgument);
}

// Planned drain: registrations migrate FIRST, the routing flips second,
// and trains keep answering the same bytes with zero unavailability —
// on a client with NO retry policy.
TEST_F(ShardTest, DrainMigratesKeysAndKeepsServingBitwise) {
  std::vector<RegisterDatasetRequest> regs;
  for (int i = 0; i < 6; ++i) {
    regs.push_back(
        LogisticRegistration("t", "dd" + std::to_string(i), 3 + i));
  }
  RouterOptions options = TestRouterOptions("drain", 2);
  ShardRouter router(options);
  ASSERT_TRUE(router.Start().ok());
  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());

  std::map<std::string, TrainResponseWire> before;
  int owned_by_zero = 0;
  for (const auto& reg : regs) {
    ASSERT_TRUE(client->RegisterDataset(reg).ok());
    if (router.OwnerShard(ShardKey{reg.tenant, reg.name}) == 0) {
      ++owned_by_zero;
    }
    auto got = client->Train(WireTrain(reg.tenant, reg.name));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    before.emplace(reg.name, std::move(got.value()));
  }
  ASSERT_GT(owned_by_zero, 0) << "fixture must place keys on shard 0";

  ASSERT_TRUE(router.DrainShard(0).ok());
  EXPECT_EQ(router.Members(), std::vector<std::uint32_t>{1});
  EXPECT_EQ(router.stats().migrated_registrations,
            static_cast<std::uint64_t>(owned_by_zero));
  EXPECT_EQ(router.supervisor().status(0).state, WorkerState::kStopped);

  // Every dataset — including the migrated ones — answers the same
  // bytes, with no retryable blip visible to this policy-free client.
  for (const auto& reg : regs) {
    const auto after = client->Train(WireTrain(reg.tenant, reg.name));
    ASSERT_TRUE(after.ok()) << reg.name << ": " << after.status().ToString();
    ExpectBitwise(*after, before[reg.name], "post-drain " + reg.name);
  }
  EXPECT_EQ(router.stats().unavailable, 0u);

  // The last member must not drain.
  EXPECT_FALSE(router.DrainShard(1).ok());
  // Neither can a shard that already left.
  EXPECT_FALSE(router.DrainShard(0).ok());
}

// Restart-storm breaker: with a zero restart budget, the first worker
// death trips the breaker, keys migrate to the survivor, and a retrying
// client converges to bitwise-identical results on the new owner.
TEST_F(ShardTest, BreakerTripsMigratesAndDegradesGracefully) {
  const RegisterDatasetRequest reg = LogisticRegistration("t", "trip");
  ReferenceServer reference({reg});
  const TrainResponseWire want = reference.Train(WireTrain("t", "trip"));

  RouterOptions options = TestRouterOptions("trip", 2);
  options.worker.max_restarts = 0;  // any death trips immediately
  // Every worker dies at its second Train — deterministic at the hit.
  options.worker.worker_failpoints = "manager.train=exit:137@nth:2";
  ShardRouter router(options);
  ASSERT_TRUE(router.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 200;
  policy.reconnect = true;
  client->set_retry_policy(policy);

  ASSERT_TRUE(client->RegisterDataset(reg).ok());
  const int victim = router.OwnerShard(ShardKey{"t", "trip"});
  ASSERT_GE(victim, 0);

  // Hit 1 on the owner: clean, bitwise.
  const auto first = client->Train(WireTrain("t", "trip"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ExpectBitwise(*first, want, "pre-trip train");

  // Hit 2 kills the owner mid-request; the breaker trips (budget 0),
  // the key migrates, and the retry converges on the survivor.
  const auto second = client->Train(WireTrain("t", "trip"));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectBitwise(*second, want, "post-trip train");

  EXPECT_EQ(router.stats().workers_tripped, 1u);
  EXPECT_EQ(router.Members().size(), 1u);
  EXPECT_EQ(router.Members()[0],
            victim == 0 ? 1u : 0u);
  EXPECT_EQ(router.supervisor().status(static_cast<std::uint32_t>(victim))
                .state,
            WorkerState::kTripped);
  EXPECT_GE(router.stats().migrated_registrations, 1u);
  EXPECT_GT(client->retry_stats().retries, 0u);
}

// A dead shard answers kUnavailable with a retry-after hint — never a
// hang, never a wrong answer — and Health reports the degradation.
TEST_F(ShardTest, DeadShardAnswersStructuredUnavailable) {
  const RegisterDatasetRequest reg = LogisticRegistration("t", "down");
  RouterOptions options = TestRouterOptions("down", 2);
  // A long backoff pins the worker in kBackoff while we observe it.
  options.worker.backoff_initial_ms = 3000;
  options.worker.backoff_max_ms = 3000;
  options.worker.worker_failpoints = "manager.train=exit:137@nth:1";
  ShardRouter router(options);
  ASSERT_TRUE(router.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->RegisterDataset(reg).ok());

  // First Train kills the owner; the policy-free client sees either the
  // transport cut or (on a fresh connection) structured kUnavailable.
  (void)client->Train(WireTrain("t", "down"));
  auto fresh = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(fresh.ok());
  const auto down = fresh->Train(WireTrain("t", "down"));
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(fresh->last_wire_status(), net::WireStatus::kUnavailable);
  EXPECT_TRUE(net::IsRetryableWireStatus(fresh->last_wire_status()));
  EXPECT_GT(fresh->last_retry_after_ms(), 0u);

  // The supervisor marks the death within a probe interval (the router's
  // NoteSuspect wakes it early); poll Health until it shows.
  bool shedding = false;
  for (int i = 0; i < 200 && !shedding; ++i) {
    const auto health = fresh->Health("t");
    ASSERT_TRUE(health.ok());
    EXPECT_TRUE(health->accepting);
    shedding = health->shedding;
    if (!shedding) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(shedding) << "a down member shard must degrade Health";
}

}  // namespace
}  // namespace shard
}  // namespace blinkml
