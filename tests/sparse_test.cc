#include <gtest/gtest.h>

#include "linalg/sparse.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomVector;

SparseMatrix SmallSparse() {
  // [[1, 0, 2],
  //  [0, 0, 0],
  //  [0, 3, 0]]
  std::vector<std::vector<SparseEntry>> rows(3);
  rows[0] = {{2, 2.0}, {0, 1.0}};  // deliberately unsorted
  rows[2] = {{1, 3.0}};
  return SparseMatrix(3, std::move(rows));
}

TEST(SparseMatrix, BasicProperties) {
  const SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowNnz(2), 1);
}

TEST(SparseMatrix, ColumnsSortedOnConstruction) {
  const SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.RowCols(0)[0], 0);
  EXPECT_EQ(m.RowCols(0)[1], 2);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[1], 2.0);
}

TEST(SparseMatrix, RejectsOutOfRangeColumn) {
  std::vector<std::vector<SparseEntry>> rows(1);
  rows[0] = {{5, 1.0}};
  EXPECT_THROW(SparseMatrix(3, std::move(rows)), CheckError);
}

TEST(SparseMatrix, ToDenseMatchesLayout) {
  const Matrix d = SmallSparse().ToDense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 3.0);
}

TEST(SparseMatrix, FromDenseRoundTrip) {
  const Matrix d = SmallSparse().ToDense();
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.nnz(), 3);
  ExpectMatrixNear(s.ToDense(), d, 0.0);
}

TEST(SparseMatrix, ApplyMatchesDense) {
  Rng rng(21);
  const SparseMatrix s = SmallSparse();
  const Matrix d = s.ToDense();
  const Vector x = RandomVector(3, &rng);
  ExpectVectorNear(s.Apply(x), MatVec(d, x), 1e-14, "A x");
  ExpectVectorNear(s.ApplyTransposed(x), MatTVec(d, x), 1e-14, "A^T x");
}

TEST(SparseMatrix, RowDotAndAddRowTo) {
  const SparseMatrix s = SmallSparse();
  const Vector x{1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(s.RowDot(0, x), 201.0);
  EXPECT_DOUBLE_EQ(s.RowDot(1, x), 0.0);
  Vector y(3);
  s.AddRowTo(0, 2.0, &y);
  ExpectVectorNear(y, Vector{2.0, 0.0, 4.0}, 0.0);
}

TEST(SparseMatrix, TakeRowsSelectsAndReorders) {
  const SparseMatrix s = SmallSparse();
  const SparseMatrix t = s.TakeRows({2, 0});
  EXPECT_EQ(t.rows(), 2);
  const Matrix d = t.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 1.0);
  EXPECT_THROW(s.TakeRows({3}), CheckError);
}

TEST(SparseMatrix, EmptyMatrixBehaves) {
  const SparseMatrix s(5, std::vector<std::vector<SparseEntry>>(4));
  EXPECT_EQ(s.nnz(), 0);
  const Vector x(5);
  ExpectVectorNear(s.Apply(x), Vector(4), 0.0);
}

TEST(SparseMatrix, DimensionMismatchThrows) {
  const SparseMatrix s = SmallSparse();
  EXPECT_THROW(s.Apply(Vector(2)), CheckError);
  EXPECT_THROW(s.ApplyTransposed(Vector(2)), CheckError);
}

// Property sweep: random sparse matrices agree with their dense copies.
class SparseRandom : public ::testing::TestWithParam<int> {};

TEST_P(SparseRandom, OperationsMatchDenseOracle) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int rows = 1 + static_cast<int>(rng.UniformInt(40));
  const int cols = 1 + static_cast<int>(rng.UniformInt(60));
  std::vector<std::vector<SparseEntry>> entries(
      static_cast<std::size_t>(rows));
  for (auto& row : entries) {
    const int nnz = static_cast<int>(rng.UniformInt(
        static_cast<std::uint64_t>(cols / 2 + 1)));
    const auto chosen = SampleWithoutReplacement(cols, nnz, &rng);
    for (const auto c : chosen) row.push_back({c, rng.Normal()});
  }
  const SparseMatrix s(cols, std::move(entries));
  const Matrix d = s.ToDense();
  const Vector x = RandomVector(cols, &rng);
  const Vector y = RandomVector(rows, &rng);
  ExpectVectorNear(s.Apply(x), MatVec(d, x), 1e-12);
  ExpectVectorNear(s.ApplyTransposed(y), MatTVec(d, y), 1e-12);
  for (int r = 0; r < rows; ++r) {
    EXPECT_NEAR(s.RowDot(r, x), Dot(d.Row(r), x), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRandom, ::testing::Range(0, 10));

}  // namespace
}  // namespace blinkml
