#include <gtest/gtest.h>

#include "linalg/sparse.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;
using testing::RandomVector;

SparseMatrix SmallSparse() {
  // [[1, 0, 2],
  //  [0, 0, 0],
  //  [0, 3, 0]]
  std::vector<std::vector<SparseEntry>> rows(3);
  rows[0] = {{2, 2.0}, {0, 1.0}};  // deliberately unsorted
  rows[2] = {{1, 3.0}};
  return SparseMatrix(3, std::move(rows));
}

TEST(SparseMatrix, BasicProperties) {
  const SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowNnz(2), 1);
}

TEST(SparseMatrix, ColumnsSortedOnConstruction) {
  const SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.RowCols(0)[0], 0);
  EXPECT_EQ(m.RowCols(0)[1], 2);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[1], 2.0);
}

TEST(SparseMatrix, RejectsOutOfRangeColumn) {
  std::vector<std::vector<SparseEntry>> rows(1);
  rows[0] = {{5, 1.0}};
  EXPECT_THROW(SparseMatrix(3, std::move(rows)), CheckError);
}

TEST(SparseMatrix, ToDenseMatchesLayout) {
  const Matrix d = SmallSparse().ToDense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 3.0);
}

TEST(SparseMatrix, FromDenseRoundTrip) {
  const Matrix d = SmallSparse().ToDense();
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.nnz(), 3);
  ExpectMatrixNear(s.ToDense(), d, 0.0);
}

TEST(SparseMatrix, ApplyMatchesDense) {
  Rng rng(21);
  const SparseMatrix s = SmallSparse();
  const Matrix d = s.ToDense();
  const Vector x = RandomVector(3, &rng);
  ExpectVectorNear(s.Apply(x), MatVec(d, x), 1e-14, "A x");
  ExpectVectorNear(s.ApplyTransposed(x), MatTVec(d, x), 1e-14, "A^T x");
}

TEST(SparseMatrix, RowDotAndAddRowTo) {
  const SparseMatrix s = SmallSparse();
  const Vector x{1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(s.RowDot(0, x), 201.0);
  EXPECT_DOUBLE_EQ(s.RowDot(1, x), 0.0);
  Vector y(3);
  s.AddRowTo(0, 2.0, &y);
  ExpectVectorNear(y, Vector{2.0, 0.0, 4.0}, 0.0);
}

TEST(SparseMatrix, TakeRowsSelectsAndReorders) {
  const SparseMatrix s = SmallSparse();
  const SparseMatrix t = s.TakeRows({2, 0});
  EXPECT_EQ(t.rows(), 2);
  const Matrix d = t.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 1.0);
  EXPECT_THROW(s.TakeRows({3}), CheckError);
}

TEST(SparseMatrix, EmptyMatrixBehaves) {
  const SparseMatrix s(5, std::vector<std::vector<SparseEntry>>(4));
  EXPECT_EQ(s.nnz(), 0);
  const Vector x(5);
  ExpectVectorNear(s.Apply(x), Vector(4), 0.0);
}

TEST(SparseMatrix, DimensionMismatchThrows) {
  const SparseMatrix s = SmallSparse();
  EXPECT_THROW(s.Apply(Vector(2)), CheckError);
  EXPECT_THROW(s.ApplyTransposed(Vector(2)), CheckError);
}

// Property sweep: random sparse matrices agree with their dense copies.
class SparseRandom : public ::testing::TestWithParam<int> {};

TEST_P(SparseRandom, OperationsMatchDenseOracle) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int rows = 1 + static_cast<int>(rng.UniformInt(40));
  const int cols = 1 + static_cast<int>(rng.UniformInt(60));
  std::vector<std::vector<SparseEntry>> entries(
      static_cast<std::size_t>(rows));
  for (auto& row : entries) {
    const int nnz = static_cast<int>(rng.UniformInt(
        static_cast<std::uint64_t>(cols / 2 + 1)));
    const auto chosen = SampleWithoutReplacement(cols, nnz, &rng);
    for (const auto c : chosen) row.push_back({c, rng.Normal()});
  }
  const SparseMatrix s(cols, std::move(entries));
  const Matrix d = s.ToDense();
  const Vector x = RandomVector(cols, &rng);
  const Vector y = RandomVector(rows, &rng);
  ExpectVectorNear(s.Apply(x), MatVec(d, x), 1e-12);
  ExpectVectorNear(s.ApplyTransposed(y), MatTVec(d, y), 1e-12);
  for (int r = 0; r < rows; ++r) {
    EXPECT_NEAR(s.RowDot(r, x), Dot(d.Row(r), x), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRandom, ::testing::Range(0, 10));

// ---------- Structure sharing ----------

TEST(SparseMatrix, ScaleRowsSharesStructureAndMatchesDense) {
  const SparseMatrix s = SmallSparse();
  const Vector coeffs{2.0, -1.0, 0.5};
  const SparseMatrix scaled = s.ScaleRows(coeffs);
  EXPECT_TRUE(scaled.SharesStructureWith(s));
  EXPECT_EQ(scaled.nnz(), s.nnz());
  Matrix expected = s.ToDense();
  for (Matrix::Index r = 0; r < expected.rows(); ++r) {
    for (Matrix::Index c = 0; c < expected.cols(); ++c) {
      expected(r, c) *= coeffs[r];
    }
  }
  ExpectMatrixNear(scaled.ToDense(), expected, 0.0, "diag(c) X");
  // The source's values are untouched (ScaleRows copies values, aliases
  // only the structure).
  EXPECT_DOUBLE_EQ(s.RowValues(0)[0], 1.0);
  EXPECT_THROW(s.ScaleRows(Vector(2)), CheckError);
}

TEST(SparseMatrix, WithValuesSharesStructure) {
  const SparseMatrix s = SmallSparse();
  const SparseMatrix t = s.WithValues({10.0, 20.0, 30.0});
  EXPECT_TRUE(t.SharesStructureWith(s));
  EXPECT_DOUBLE_EQ(t.ToDense()(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(t.ToDense()(0, 2), 20.0);
  EXPECT_THROW(s.WithValues({1.0}), CheckError);
}

TEST(SparseMatrix, TakeRowsAndIndependentBuildsDoNotShareStructure) {
  const SparseMatrix s = SmallSparse();
  EXPECT_FALSE(s.TakeRows({0, 1}).SharesStructureWith(s));
  EXPECT_FALSE(SmallSparse().SharesStructureWith(s));
  // Chained rescales all alias the one structure.
  const Vector ones{1.0, 1.0, 1.0};
  EXPECT_TRUE(s.ScaleRows(ones).ScaleRows(ones).SharesStructureWith(s));
}

// Construction, FromDense, TakeRows, and ScaleRows are chunk-parallel;
// their outputs must be identical at any thread count (the per-row output
// ranges are precomputed — runtime/parallel.h determinism contract).
TEST(SparseMatrix, ParallelConstructionIsThreadCountInvariant) {
  Rng rng(314);
  const Matrix dense = [&] {
    Matrix m = RandomMatrix(300, 40, &rng);
    // Sparsify: drop ~2/3 of the entries.
    for (Matrix::Index r = 0; r < m.rows(); ++r) {
      for (Matrix::Index c = 0; c < m.cols(); ++c) {
        if ((r * 31 + c * 7) % 3 != 0) m(r, c) = 0.0;
      }
    }
    return m;
  }();
  Vector coeffs = RandomVector(300, &rng);
  std::vector<SparseMatrix::Index> subset;
  for (SparseMatrix::Index r = 0; r < 300; r += 3) subset.push_back(r);

  auto build_all = [&] {
    const SparseMatrix s = SparseMatrix::FromDense(dense);
    struct Out {
      Matrix from_dense, taken, scaled;
    };
    return Out{s.ToDense(), s.TakeRows(subset).ToDense(),
               s.ScaleRows(coeffs).ToDense()};
  };

  RuntimeOptions serial;
  serial.enabled = false;
  decltype(build_all()) reference = [&] {
    RuntimeScope scope(serial);
    return build_all();
  }();

  ThreadPool pool(8);
  for (const int threads : {1, 2, 8}) {
    RuntimeOptions options;
    options.pool = &pool;
    options.num_threads = threads;
    RuntimeScope scope(options);
    const auto parallel = build_all();
    ExpectMatrixNear(parallel.from_dense, reference.from_dense, 0.0);
    ExpectMatrixNear(parallel.taken, reference.taken, 0.0);
    ExpectMatrixNear(parallel.scaled, reference.scaled, 0.0);
  }
}

// ---------- CsrBuilder ----------

TEST(CsrBuilder, MatchesVectorOfVectorsConstruction) {
  Rng rng(99);
  std::vector<std::vector<SparseEntry>> rows(25);
  CsrBuilder builder;
  builder.Reserve(25, 25 * 8);
  for (auto& row : rows) {
    const int nnz = static_cast<int>(rng.UniformInt(9));
    const auto chosen = SampleWithoutReplacement(40, nnz, &rng);
    for (const auto c : chosen) {
      const double v = rng.Normal();
      row.push_back({c, v});
      builder.Add(c, v);
    }
    builder.FinishRow();
  }
  const SparseMatrix via_vectors(40, std::move(rows));
  const SparseMatrix via_builder = std::move(builder).Build(40);
  EXPECT_EQ(via_builder.rows(), via_vectors.rows());
  EXPECT_EQ(via_builder.nnz(), via_vectors.nnz());
  ExpectMatrixNear(via_builder.ToDense(), via_vectors.ToDense(), 0.0);
  // Rows came out column-sorted, like the vector-of-vectors constructor.
  for (SparseMatrix::Index r = 0; r < via_builder.rows(); ++r) {
    for (SparseMatrix::Index i = 1; i < via_builder.RowNnz(r); ++i) {
      EXPECT_LT(via_builder.RowCols(r)[i - 1], via_builder.RowCols(r)[i]);
    }
  }
}

TEST(CsrBuilder, FindInOpenRowAccumulatesCounts) {
  CsrBuilder builder;
  builder.Add(3, 1.0);
  builder.Add(1, 1.0);
  ASSERT_NE(builder.FindInOpenRow(3), nullptr);
  *builder.FindInOpenRow(3) += 1.0;
  EXPECT_EQ(builder.FindInOpenRow(2), nullptr);
  EXPECT_EQ(builder.open_row_nnz(), 2);
  builder.FinishRow();
  // The finished row is out of scope for FindInOpenRow.
  EXPECT_EQ(builder.FindInOpenRow(3), nullptr);
  const SparseMatrix m = std::move(builder).Build(5);
  EXPECT_DOUBLE_EQ(m.ToDense()(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(m.ToDense()(0, 1), 1.0);
}

TEST(CsrBuilder, ShiftColumnsAndValidation) {
  CsrBuilder one_based;
  one_based.Add(1, 5.0);
  one_based.Add(3, 7.0);
  one_based.FinishRow();
  one_based.ShiftColumns(-1);
  const SparseMatrix m = std::move(one_based).Build(3);
  EXPECT_DOUBLE_EQ(m.ToDense()(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.ToDense()(0, 2), 7.0);

  CsrBuilder out_of_range;
  out_of_range.Add(5, 1.0);
  out_of_range.FinishRow();
  EXPECT_THROW(std::move(out_of_range).Build(3), CheckError);
}

}  // namespace
}  // namespace blinkml
