#include <set>

#include <gtest/gtest.h>

#include "models/cross_validation.h"
#include "data/generators.h"
#include "models/logistic_regression.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

TEST(KFold, RejectsBadK) {
  const Dataset data = MakeSyntheticLogistic(20, 2, 1);
  Rng rng(1);
  EXPECT_FALSE(KFoldSplit(data, 1, &rng).ok());
  EXPECT_FALSE(KFoldSplit(data, 21, &rng).ok());
  EXPECT_TRUE(KFoldSplit(data, 20, &rng).ok());  // leave-one-out boundary
}

TEST(KFold, FoldsPartitionTheData) {
  // Use the first feature as a row fingerprint (a.s. unique).
  const Dataset data = MakeSyntheticLogistic(103, 3, 2);
  Rng rng(2);
  const auto folds = KFoldSplit(data, 5, &rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::multiset<double> all_validation;
  Dataset::Index total_validation = 0;
  for (const Fold& fold : *folds) {
    EXPECT_EQ(fold.train.num_rows() + fold.validation.num_rows(), 103);
    for (Dataset::Index i = 0; i < fold.validation.num_rows(); ++i) {
      all_validation.insert(fold.validation.dense()(i, 0));
    }
    total_validation += fold.validation.num_rows();
    // Sizes differ by at most one (103 = 5*20 + 3).
    EXPECT_GE(fold.validation.num_rows(), 20);
    EXPECT_LE(fold.validation.num_rows(), 21);
  }
  EXPECT_EQ(total_validation, 103);
  EXPECT_EQ(all_validation.size(), 103u);  // every row exactly once
}

TEST(KFold, TrainAndValidationDisjointWithinFold) {
  const Dataset data = MakeSyntheticLogistic(60, 2, 3);
  Rng rng(3);
  const auto folds = KFoldSplit(data, 4, &rng);
  ASSERT_TRUE(folds.ok());
  for (const Fold& fold : *folds) {
    std::set<double> train_keys;
    for (Dataset::Index i = 0; i < fold.train.num_rows(); ++i) {
      train_keys.insert(fold.train.dense()(i, 0));
    }
    for (Dataset::Index i = 0; i < fold.validation.num_rows(); ++i) {
      EXPECT_EQ(train_keys.count(fold.validation.dense()(i, 0)), 0u);
    }
  }
}

TEST(KFold, DeterministicGivenSeed) {
  const Dataset data = MakeSyntheticLogistic(50, 2, 4);
  Rng rng_a(7), rng_b(7);
  const auto a = KFoldSplit(data, 3, &rng_a);
  const auto b = KFoldSplit(data, 3, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t f = 0; f < 3; ++f) {
    testing::ExpectMatrixNear((*a)[f].validation.dense(),
                              (*b)[f].validation.dense(), 0.0);
  }
}

TEST(CrossValidate, EstimatesGeneralizationError) {
  // On well-separated data, every fold error should be small; on noisy
  // data it should approach the label-noise floor.
  const Dataset easy = MakeSyntheticLogistic(2000, 4, 5, /*sparsity=*/1.0,
                                             /*noise=*/0.0);
  LogisticRegressionSpec spec(1e-3);
  Rng rng(8);
  const auto result = CrossValidate(spec, easy, 5, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fold_errors.size(), 5u);
  // Labels are drawn from sigmoid(margin), so even "noise = 0" data has an
  // intrinsic Bayes error around 0.2 at this margin scale.
  EXPECT_LT(result->mean_error, 0.30);
  EXPECT_GE(result->stddev_error, 0.0);

  const Dataset noisy = MakeSyntheticLogistic(2000, 4, 6, /*sparsity=*/1.0,
                                              /*noise=*/0.4);
  Rng rng2(9);
  const auto noisy_result = CrossValidate(spec, noisy, 5, &rng2);
  ASSERT_TRUE(noisy_result.ok());
  EXPECT_GT(noisy_result->mean_error, result->mean_error);
}

TEST(CrossValidate, PropagatesBadK) {
  LogisticRegressionSpec spec(1e-3);
  const Dataset data = MakeSyntheticLogistic(30, 2, 10);
  Rng rng(11);
  EXPECT_FALSE(CrossValidate(spec, data, 1, &rng).ok());
}

}  // namespace
}  // namespace blinkml
