#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/conjugate_gradient.h"
#include "linalg/sparse.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectVectorNear;
using testing::RandomSpd;
using testing::RandomVector;

TEST(ConjugateGradient, SolvesIdentityInOneStep) {
  const Vector b{1.0, -2.0, 3.0};
  const auto result = ConjugateGradient(Matrix::Identity(3), b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LE(result->iterations, 1);
  ExpectVectorNear(result->x, b, 1e-12);
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  const auto result = ConjugateGradient(Matrix::Identity(4), Vector(4));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 0);
  EXPECT_DOUBLE_EQ(Norm2(result->x), 0.0);
}

class CgSizes : public ::testing::TestWithParam<int> {};

TEST_P(CgSizes, MatchesCholeskyOracle) {
  const int n = GetParam();
  Rng rng(800 + n);
  // A generous ridge keeps the condition number moderate; CG's iteration
  // count scales with sqrt(condition).
  const Matrix a = RandomSpd(n, &rng, /*ridge=*/5.0);
  const Vector b = RandomVector(n, &rng);
  const auto cg = ConjugateGradient(a, b);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->converged);
  const auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  ExpectVectorNear(cg->x, chol->Solve(b), 1e-6, "CG vs Cholesky");
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSizes, ::testing::Values(1, 2, 5, 20, 80));

TEST(ConjugateGradient, MatrixFreeOperatorForm) {
  // Solve (J + beta I) x = b with J given as a factor Q^T Q — the exact
  // shape of the ObservedFisher Hessian, never materialized.
  Rng rng(900);
  const Matrix q = testing::RandomMatrix(30, 50, &rng);  // J = Q^T Q, 50x50
  const double beta = 0.1;
  const Vector b = RandomVector(50, &rng);
  auto apply = [&](const Vector& v) {
    Vector jv = MatTVec(q, MatVec(q, v));
    Axpy(beta, v, &jv);
    return jv;
  };
  const auto cg = ConjugateGradient(apply, b);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->converged);
  // Verify against the dense oracle.
  Matrix h = GramCols(q);
  h.AddToDiagonal(beta);
  const auto chol = Cholesky::Factor(h);
  ASSERT_TRUE(chol.ok());
  ExpectVectorNear(cg->x, chol->Solve(b), 1e-6);
}

TEST(ConjugateGradient, DetectsIndefiniteOperator) {
  const Matrix a = {{1.0, 0.0}, {0.0, -1.0}};
  const auto result = ConjugateGradient(a, Vector{1.0, 1.0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjugateGradient, RespectsIterationBudget) {
  Rng rng(901);
  const Matrix a = RandomSpd(40, &rng);
  const Vector b = RandomVector(40, &rng);
  CgOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-14;
  const auto result = ConjugateGradient(a, b, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 2);
  EXPECT_GT(result->residual_norm, 0.0);
}

TEST(ConjugateGradient, RejectsBadShapes) {
  EXPECT_FALSE(ConjugateGradient(Matrix(2, 3), Vector(2)).ok());
  EXPECT_FALSE(ConjugateGradient(Matrix::Identity(3), Vector(2)).ok());
  Vector nonzero(3);
  nonzero[0] = 1.0;
  EXPECT_FALSE(
      ConjugateGradient([](const Vector&) { return Vector(5); }, nonzero)
          .ok());
}

TEST(ConjugateGradient, ResidualDecreasesMonotonically) {
  // Run CG one budget step at a time; the residual norm must not grow.
  Rng rng(902);
  const Matrix a = RandomSpd(25, &rng);
  const Vector b = RandomVector(25, &rng);
  double prev = Norm2(b);
  for (int budget = 1; budget <= 25; budget += 4) {
    CgOptions options;
    options.max_iterations = budget;
    options.tolerance = 0.0;
    const auto result = ConjugateGradient(a, b, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->residual_norm, prev * (1.0 + 1e-9)) << budget;
    prev = result->residual_norm;
  }
}

}  // namespace
}  // namespace blinkml
