// Observability layer (src/obs/): the metrics registry and the span
// tracer must never perturb results — training is bitwise identical with
// tracing on or off at any thread count — while a traced request through
// the socket must produce correlated spans (queue wait, verb, pipeline
// phases) sharing the wire request_id, and the Metrics verb must return
// a text snapshot with non-zero per-tenant counters and queue gauges.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "models/logistic_regression.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/session_manager.h"
#include "session/training_session.h"
#include "tests/test_util.h"
#include "util/stats.h"

namespace blinkml {
namespace {

using testing::ExpectBitwiseEqual;
using testing::FastConfig;
using testing::kTightContract;

// --- Registry primitives -----------------------------------------------

TEST(MetricsRegistry, CounterGaugeFloatCounterBasics) {
  obs::Registry registry;
  obs::Counter* counter = registry.Counter("requests_total");
  counter->Inc();
  counter->Inc(4);
  EXPECT_EQ(counter->value(), 5u);

  obs::Gauge* gauge = registry.Gauge("depth");
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 4);

  obs::FloatCounter* seconds = registry.FloatCounter("busy_seconds");
  seconds->Add(0.25);
  seconds->Add(0.5);
  EXPECT_DOUBLE_EQ(seconds->value(), 0.75);
}

TEST(MetricsRegistry, LookupsReturnStablePointersPerLabelSet) {
  obs::Registry registry;
  obs::Counter* a = registry.Counter("hits", {{"tenant", "a"}});
  obs::Counter* b = registry.Counter("hits", {{"tenant", "b"}});
  EXPECT_NE(a, b);
  // Same (name, labels) resolves to the same instance: hot paths cache
  // the pointer once and the counts still aggregate.
  EXPECT_EQ(registry.Counter("hits", {{"tenant", "a"}}), a);
  a->Inc(2);
  b->Inc(3);
  EXPECT_EQ(registry.Counter("hits", {{"tenant", "a"}})->value(), 2u);
  EXPECT_EQ(registry.Counter("hits", {{"tenant", "b"}})->value(), 3u);
}

TEST(MetricsRegistry, HistogramUsesNearestRankOverBucketUpperBounds) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  EXPECT_EQ(histogram.Percentile(50.0), 0.0);  // empty

  // Buckets (upper bounds): 1.0 x2, 2.0 x1, 4.0 x1, overflow x1.
  for (const double v : {0.5, 1.0, 1.5, 3.0, 9.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 15.0);
  EXPECT_EQ(histogram.bucket_count(0), 2u);  // <= 1.0
  EXPECT_EQ(histogram.bucket_count(1), 1u);  // <= 2.0
  EXPECT_EQ(histogram.bucket_count(2), 1u);  // <= 4.0
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // overflow

  // Nearest rank (1-based ceil(p/100 * 5)) over bucket upper bounds,
  // matching blinkml::Percentile's rank rule on the same ordering.
  EXPECT_EQ(histogram.Percentile(20.0), 1.0);   // rank 1
  EXPECT_EQ(histogram.Percentile(50.0), 2.0);   // rank 3
  EXPECT_EQ(histogram.Percentile(80.0), 4.0);   // rank 4
  // Rank 5 lands in the overflow bucket: reported as the largest finite
  // bound (an honest lower bound; the snapshot cannot invent a value).
  EXPECT_EQ(histogram.Percentile(99.0), 4.0);
  EXPECT_EQ(histogram.Percentile(0.0), 1.0);    // clamped to rank 1

  // The shared nearest-rank helper agrees on the equivalent sample list.
  EXPECT_EQ(Percentile({1.0, 1.0, 2.0, 4.0, 4.0}, 50.0), 2.0);
}

TEST(MetricsRegistry, TextSnapshotRendersEveryKindDeterministically) {
  obs::Registry registry;
  registry.Counter("b_total", {{"tenant", "t1"}})->Inc(3);
  registry.Gauge("a_depth")->Set(-2);
  registry.FloatCounter("c_seconds")->Add(1.5);
  registry.Histogram("d_latency_seconds", {}, {0.1, 1.0})->Observe(0.05);

  const std::string snapshot = registry.TextSnapshot();
  EXPECT_NE(snapshot.find("a_depth -2\n"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("b_total{tenant=\"t1\"} 3\n"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find("c_seconds 1.5\n"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("d_latency_seconds_count 1\n"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find("d_latency_seconds_p50 0.1"), std::string::npos)
      << snapshot;
  // Lexicographic key order: two snapshots of the same state are
  // byte-identical (scrape diffing relies on it).
  EXPECT_LT(snapshot.find("a_depth"), snapshot.find("b_total"));
  EXPECT_LT(snapshot.find("b_total"), snapshot.find("c_seconds"));
  EXPECT_EQ(snapshot, registry.TextSnapshot());
}

// --- Determinism: instrumentation must not perturb results -------------

// The non-negotiable: training results are bitwise identical with
// tracing enabled or disabled, at 1, 2, and 8 threads.
TEST(Trace, ResultsBitwiseIdenticalWithTracingOnOrOffAtAnyThreadCount) {
  const Dataset data = testing::SmallDenseLogistic(20000, 6, 3);
  const LogisticRegressionSpec spec(1e-3);
  const auto run = [&](int threads) {
    BlinkConfig config = FastConfig(11);
    config.runtime.num_threads = threads;
    TrainingSession session(Dataset(data), config);
    auto result = session.Train(spec, kTightContract);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  };

  ASSERT_FALSE(obs::Tracer::Global().enabled());
  const ApproxResult baseline = run(1);
  for (const int threads : {2, 8}) {
    ExpectBitwiseEqual(run(threads), baseline, "tracing off");
  }

  const std::string trace_path =
      ::testing::TempDir() + "blinkml_obs_determinism_" +
      std::to_string(::getpid()) + ".json";
  obs::Tracer::Global().Start(trace_path);
  for (const int threads : {1, 2, 8}) {
    ExpectBitwiseEqual(run(threads), baseline, "tracing on");
  }
  ASSERT_TRUE(obs::Tracer::Global().Stop().ok());
  ASSERT_FALSE(obs::Tracer::Global().enabled());

  // The traced runs produced the pipeline-phase spans.
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
  bool saw_phase = false;
  for (const obs::TraceEvent& event : events) {
    saw_phase = saw_phase || std::string(event.cat) == "pipeline";
  }
  EXPECT_TRUE(saw_phase);
  std::remove(trace_path.c_str());
}

// --- Wire surface: Metrics verb + traced request spans -----------------

namespace {

std::string ObsSocketPath(const char* tag) {
  return ::testing::TempDir() + "blinkml_obs_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

net::RegisterDatasetRequest SmallRegistration(const std::string& tenant,
                                              const std::string& name) {
  net::RegisterDatasetRequest request;
  request.tenant = tenant;
  request.name = name;
  request.generator = net::WireGenerator::kSyntheticLogistic;
  request.rows = 4000;
  request.dim = 5;
  request.data_seed = 3;
  request.config.seed = 11;
  request.config.initial_sample_size = 1000;
  request.config.holdout_size = 1000;
  request.config.accuracy_samples = 256;
  request.config.size_samples = 128;
  return request;
}

}  // namespace

TEST(MetricsVerb, SocketRoundTripReturnsCountersAndGauges) {
  SessionManager manager(ServeOptions{0, 2});
  net::ServerOptions options;
  options.unix_path = ObsSocketPath("metrics");
  options.runner_threads = 2;
  net::BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const auto registration = SmallRegistration("tenant-m", "obs-data");
  ASSERT_TRUE(client->RegisterDataset(registration).ok());
  net::TrainRequestWire train;
  train.tenant = "tenant-m";
  train.dataset = "obs-data";
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  ASSERT_TRUE(client->Train(train).ok());

  const auto metrics = client->Metrics("tenant-m");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics->text;

  // Per-tenant, per-verb request counters from admission.
  EXPECT_NE(
      text.find(
          "net_requests_total{tenant=\"tenant-m\",verb=\"RegisterDataset\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("net_requests_total{tenant=\"tenant-m\",verb=\"Train\"} 1"),
            std::string::npos)
      << text;
  // Queue-depth gauges (0 at scrape time — both queues are drained).
  EXPECT_NE(text.find("net_queued_jobs 0"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_queued_jobs 0"), std::string::npos) << text;
  // Manager-side serve metrics (the SessionManager job that ran Train).
  EXPECT_NE(text.find("serve_jobs_submitted_total 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_jobs_completed_total 1"), std::string::npos)
      << text;
  // Queue-wait histogram summary lines (3 requests admitted so far).
  EXPECT_NE(text.find("net_queue_wait_seconds_count 3"), std::string::npos)
      << text;
  // Global-registry section: pipeline phases ran inside this process.
  EXPECT_NE(text.find("pipeline_phase_seconds_count{phase=\"initial_train\"}"),
            std::string::npos)
      << text;

  server.Stop();
  std::remove(options.unix_path.c_str());
}

TEST(Trace, TracedSocketTrainProducesCorrelatedSpans) {
  const std::string trace_path = ::testing::TempDir() +
                                 "blinkml_obs_trace_" +
                                 std::to_string(::getpid()) + ".json";
  SessionManager manager(ServeOptions{0, 2});
  net::ServerOptions options;
  options.unix_path = ObsSocketPath("trace");
  options.runner_threads = 2;
  net::BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto registration = SmallRegistration("tenant-t", "obs-traced");
  ASSERT_TRUE(client->RegisterDataset(registration).ok());

  obs::Tracer::Global().Start(trace_path);
  net::TrainRequestWire train;
  train.tenant = "tenant-t";
  train.dataset = "obs-traced";
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  ASSERT_TRUE(client->Train(train).ok());
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
  ASSERT_TRUE(obs::Tracer::Global().Stop().ok());

  // One traced request: every span carries the Train frame's request_id.
  std::uint64_t request_id = 0;
  for (const obs::TraceEvent& event : events) {
    if (std::string(event.name) == "queue_wait") {
      EXPECT_EQ(request_id, 0u) << "one traced request, one queue wait";
      request_id = event.request_id;
      EXPECT_EQ(event.tenant, "tenant-t");
      EXPECT_STREQ(event.verb, "Train");
    }
  }
  ASSERT_NE(request_id, 0u) << "queue_wait span missing";

  const auto span_names_for = [&](std::uint64_t id) {
    std::set<std::string> names;
    for (const obs::TraceEvent& event : events) {
      if (event.request_id == id) names.insert(event.name);
    }
    return names;
  };
  const std::set<std::string> spans = span_names_for(request_id);
  // Wire verb span, the manager hop, and the pipeline phases all share
  // the id: the request is followable from wire read to kernels.
  EXPECT_TRUE(spans.count("Train")) << "verb span missing";
  EXPECT_TRUE(spans.count("manager:train")) << "manager span missing";
  EXPECT_TRUE(spans.count("initial_train")) << "phase span missing";
  EXPECT_TRUE(spans.count("statistics")) << "phase span missing";
  EXPECT_TRUE(spans.count("mc:accuracy_draws")) << "estimator span missing";

  // The StopTracing dump is a Chrome trace_event JSON document.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":" + std::to_string(request_id)),
            std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");

  server.Stop();
  std::remove(options.unix_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace blinkml
