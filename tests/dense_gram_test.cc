// Dense feature-Gram rescale path: Gram(diag(c) X) = diag(c) Gram(X)
// diag(c) wired into ObservedFisher for dense designs (p > n_s), sharing
// the candidate-independent Gram(X) through the FeatureGramCache exactly
// as the sparse path does.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/statistics.h"
#include "data/feature_gram_cache.h"
#include "models/logistic_regression.h"
#include "session/hyperparam_search.h"
#include "session/training_session.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::SmallDenseLogistic;
using testing::ExpectVectorNear;
using testing::Trainedish;

StatsOptions GramPathOptions(bool reuse) {
  StatsOptions options;
  options.stats_sample_size = 128;  // below dim: Gram path engaged
  options.max_rank = 64;
  options.reuse_feature_gram = reuse;
  return options;
}

// The rescaled feature Gram must match the Gram of the coefficient-scaled
// rows to floating-point rounding (the dense analogue of the sparse
// rescale-vs-merge oracle). Checked at both kernel levels: the oracle's
// identical-order dots meet 1e-12; the blocked kernel's multi-chain dots
// reassociate the cancellation-prone entries and sit a small factor above.
TEST(DenseGramRescale, GramEntriesAgreeToTightRelativeTolerance) {
  const Dataset data = SmallDenseLogistic(200, 300, 7);
  const Vector theta = Trainedish(data, 2);
  const LogisticRegressionSpec spec(1e-3);

  for (const KernelLevel level : {KernelLevel::kNaive, KernelLevel::kBlocked}) {
    RuntimeOptions options;
    options.kernel_level = level;
    RuntimeScope scope(options);
    Vector coeffs;
    spec.PerExampleGradientCoeffs(theta, data, &coeffs);

    const Matrix& x = data.dense();
    const Matrix gram_x = GramRows(x);
    Matrix q;
    spec.PerExampleGradients(theta, data, &q);
    const Matrix gram_direct = GramRows(q);

    double max_rel = 0.0;
    for (Matrix::Index i = 0; i < gram_x.rows(); ++i) {
      for (Matrix::Index j = 0; j < gram_x.cols(); ++j) {
        const double rescaled = coeffs[i] * coeffs[j] * gram_x(i, j);
        const double direct = gram_direct(i, j);
        const double scale = std::max(std::abs(direct), 1e-30);
        max_rel = std::max(max_rel, std::abs(rescaled - direct) / scale);
      }
    }
    EXPECT_LE(max_rel, level == KernelLevel::kNaive ? 1e-12 : 1e-10)
        << "kernel level " << static_cast<int>(level);
  }
}

// End-to-end: ComputeStatistics with the dense rescale path on vs off
// produces samplers whose variances agree to rounding.
TEST(DenseGramRescale, ObservedFisherSamplersAgree) {
  const Dataset data = SmallDenseLogistic(300, 400, 7);
  const Vector theta = Trainedish(data, 3);
  const LogisticRegressionSpec spec(1e-3);

  Rng rng_a(17), rng_b(17);
  const auto with_rescale =
      ComputeStatistics(spec, theta, data, GramPathOptions(true), &rng_a);
  const auto direct =
      ComputeStatistics(spec, theta, data, GramPathOptions(false), &rng_b);
  ASSERT_TRUE(with_rescale.ok()) << with_rescale.status().ToString();
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(with_rescale->rank(), direct->rank());

  const auto var_a = with_rescale->VarianceDiagonal();
  const auto var_b = direct->VarianceDiagonal();
  ASSERT_TRUE(var_a.ok());
  ASSERT_TRUE(var_b.ok());
  double max_var = 0.0;
  for (Vector::Index i = 0; i < var_b->size(); ++i) {
    max_var = std::max(max_var, std::abs((*var_b)[i]));
  }
  ASSERT_GT(max_var, 0.0);
  for (Vector::Index i = 0; i < var_a->size(); ++i) {
    EXPECT_NEAR((*var_a)[i], (*var_b)[i], 1e-10 * max_var) << "entry " << i;
  }
}

// Cache accounting on the dense path: one miss, then hits; cached and
// locally-computed Grams produce bitwise-identical samplers.
TEST(DenseGramRescale, CacheHitMissAccountingAndBitwiseDraws) {
  const Dataset data = SmallDenseLogistic(300, 400, 7);
  const Vector theta = Trainedish(data, 4);
  const LogisticRegressionSpec spec(1e-3);

  FeatureGramCache cache;
  StatsOptions cached = GramPathOptions(true);
  cached.gram_cache = &cache;
  cached.gram_key = {FeatureGramCache::Phase::kInitialStats, 7,
                     data.num_rows()};

  Rng rng_a(23), rng_b(23), rng_c(23);
  const auto first = ComputeStatistics(spec, theta, data, cached, &rng_a);
  const auto second = ComputeStatistics(spec, theta, data, cached, &rng_b);
  const auto uncached =
      ComputeStatistics(spec, theta, data, GramPathOptions(true), &rng_c);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_GT(cache.stats().cached_bytes, 0u);

  const Vector z = testing::RandomVector(first->rank(), &rng_a);
  ExpectVectorNear(first->DrawWithZ(1.0, z), second->DrawWithZ(1.0, z), 0.0,
                   "cache hit vs miss");
  ExpectVectorNear(first->DrawWithZ(1.0, z), uncached->DrawWithZ(1.0, z), 0.0,
                   "cached vs local Gram");
}

// An 8-candidate dense search through a session: the statistics phase
// must hit the shared dense feature Gram at least 7 times (one miss pays
// the Gram, every other candidate rescales), and every candidate must be
// bitwise identical to its standalone run.
TEST(DenseGramRescale, EightCandidateDenseSearchSharesTheGram) {
  const Dataset data = testing::SmallDenseLogistic(20000, /*dim=*/400,
                                                   /*seed=*/9);
  BlinkConfig config = testing::FastConfig(11);
  config.stats_sample_size = 128;  // p = 400 > n_s: dense Gram path
  const std::vector<Candidate> candidates =
      HyperparamSearch::LogGrid(1e-4, 1e-1, 8);
  const auto factory = [](const Candidate& c) {
    return std::make_shared<LogisticRegressionSpec>(c.l2);
  };

  TrainingSession session(Dataset(data), config);
  SearchOptions options;
  options.contract = testing::kTightContract;
  HyperparamSearch search(&session, options);
  const SearchOutcome outcome = search.Run(factory, candidates);

  const Coordinator coordinator(config);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CandidateResult& cr = outcome.candidates[i];
    ASSERT_TRUE(cr.status.ok()) << cr.status.ToString();
    const LogisticRegressionSpec spec(candidates[i].l2);
    const auto standalone =
        coordinator.Train(spec, data, testing::kTightContract);
    ASSERT_TRUE(standalone.ok());
    testing::ExpectBitwiseEqual(cr.result, *standalone, "dense search");
  }

  const auto& gram_stats = outcome.session_stats.gram_cache;
  // All 8 candidates share one initial-statistics Gram: 1 miss + 7 hits
  // (final-phase re-estimations may add misses of their own on top).
  EXPECT_GE(gram_stats.hits, 7u);
  EXPECT_GE(gram_stats.misses, 1u);
}

// The dense rescale kernels feed deterministic chunk layouts: bitwise
// identical statistics at 1, 2, and 8 threads.
TEST(DenseGramRescale, StatisticsBitwiseIdenticalAcrossThreadCounts) {
  const Dataset data = SmallDenseLogistic(300, 400, 7);
  const Vector theta = Trainedish(data, 5);
  const LogisticRegressionSpec spec(1e-3);

  testing::ExpectThreadCountInvariant(
      [&] {
        Rng rng(31);
        auto sampler =
            ComputeStatistics(spec, theta, data, GramPathOptions(true), &rng);
        EXPECT_TRUE(sampler.ok());
        Rng draw_rng(77);
        return sampler->Draw(1.0, &draw_rng);
      },
      {1, 2, 8}, "dense statistics thread sweep");
}

}  // namespace
}  // namespace blinkml
