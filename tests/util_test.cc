#include <cmath>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/failpoints.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace blinkml {
namespace {

// ---------- check.h ----------

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(BLINKML_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalse) {
  EXPECT_THROW(BLINKML_CHECK(false), CheckError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    BLINKML_CHECK_MSG(false, "the context");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("the context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(Check, ComparisonMacrosIncludeOperands) {
  try {
    const int a = 3, b = 7;
    BLINKML_CHECK_EQ(a, b);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=7"), std::string::npos);
  }
}

TEST(Check, AllComparisonDirections) {
  EXPECT_NO_THROW(BLINKML_CHECK_LT(1, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_LE(2, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_GT(3, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_GE(2, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_NE(1, 2));
  EXPECT_THROW(BLINKML_CHECK_LT(2, 2), CheckError);
  EXPECT_THROW(BLINKML_CHECK_GT(2, 2), CheckError);
  EXPECT_THROW(BLINKML_CHECK_NE(2, 2), CheckError);
}

// ---------- status.h ----------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotConverged), "NotConverged");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(r.value(), CheckError);
}

TEST(Result, ConstructingFromOkStatusIsAnError) {
  EXPECT_THROW(Result<int> r(Status::OK()), CheckError);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  BLINKML_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterEven(8).value(), 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterEven(3).ok());
}

// ---------- stats.h ----------

TEST(Stats, MeanVarianceStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(Mean({}), CheckError);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(Stats, QuantileRejectsBadLevel) {
  EXPECT_THROW(Quantile({1.0}, -0.1), CheckError);
  EXPECT_THROW(Quantile({1.0}, 1.1), CheckError);
}

TEST(Stats, QuantileSingleElement) {
  // Any level over a singleton returns the element, exactly.
  EXPECT_DOUBLE_EQ(Quantile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(Quantile({7.5}, 0.37), 7.5);
  EXPECT_DOUBLE_EQ(Quantile({7.5}, 1.0), 7.5);
}

TEST(Stats, QuantileTiesInterpolateToTheTiedValue) {
  // Interpolation between two equal order statistics must return that
  // value bit-for-bit, not a rounded midpoint.
  const std::vector<double> xs = {1.0, 2.0, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);  // pos = 1.0, exact
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.375), 2.0);  // pos = 1.5, between ties
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.0);
  // All-tied input is constant at every level.
  const std::vector<double> ties = {3.0, 3.0, 3.0};
  for (double q = 0.0; q <= 1.0; q += 0.125) {
    EXPECT_DOUBLE_EQ(Quantile(ties, q), 3.0) << "q=" << q;
  }
}

TEST(Stats, QuantileEndpointsAreMinAndMax) {
  // q = 0 and q = 1 pin to the extremes regardless of input order.
  const std::vector<double> xs = {4.0, -2.0, 9.0, 0.5};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 9.0);
}

TEST(Stats, UpperOrderStatisticSingleElement) {
  // rank = ceil(q * 1) clamps to 1 for every level, including q = 0.
  EXPECT_DOUBLE_EQ(UpperOrderStatistic({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(UpperOrderStatistic({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(UpperOrderStatistic({42.0}, 1.0), 42.0);
}

TEST(Stats, UpperOrderStatisticTies) {
  // Ranks falling inside a run of ties return the tied value; the rank
  // just past the run steps to the next distinct value.
  const std::vector<double> xs = {1.0, 2.0, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.4), 2.0);   // rank 2
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.8), 2.0);   // rank 4
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.81), 5.0);  // rank 5
}

TEST(Stats, UpperOrderStatisticIsConservative) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  // ceil(0.5 * 5) = 3rd order statistic.
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.0), 10.0);  // clamped to 1st
  // The defining property (what Lemma 2 needs): the empirical fraction of
  // observations <= the returned value is at least q.
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double bound = UpperOrderStatistic(xs, q);
    int below = 0;
    for (double x : xs) {
      if (x <= bound) ++below;
    }
    EXPECT_GE(below / static_cast<double>(xs.size()), q) << "q=" << q;
  }
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {0.5, -1.0, 2.25, 3.0, -0.75, 4.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(Stats, RunningStatsEmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), CheckError);
  EXPECT_THROW(rs.min(), CheckError);
}

// ---------- string_util.h ----------

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

TEST(StringUtil, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0us");
  EXPECT_EQ(HumanSeconds(0.0123), "12.30ms");
  EXPECT_EQ(HumanSeconds(3.5), "3.50s");
  EXPECT_EQ(HumanSeconds(195.0), "3m15s");
}

TEST(StringUtil, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-45000), "-45,000");
}

// ---------- timer.h ----------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // millis are 1000x seconds
}

TEST(Timer, ScopedTimerAccumulates) {
  double total = 0.0;
  {
    ScopedTimer st(&total);
  }
  {
    ScopedTimer st(&total);
  }
  EXPECT_GE(total, 0.0);
}

// ---------- logging.h ----------

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed message must not crash.
  BLINKML_LOG(INFO) << "should be invisible";
  SetLogLevel(before);
}

// ---------- failpoints.h ----------

class FailpointsTest : public ::testing::Test {
 protected:
  // Each test starts and ends disarmed (and overrides any env arming).
  void SetUp() override { fail::Failpoints::Global().DisarmAll(); }
  void TearDown() override { fail::Failpoints::Global().DisarmAll(); }
};

TEST_F(FailpointsTest, DisarmedPointNeverFires) {
  fail::FaultAction action;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(BLINKML_FAILPOINT("test.point", &action));
  }
  EXPECT_EQ(fail::Failpoints::Global().Hits("test.point"), 0u);
}

TEST_F(FailpointsTest, FiresOnNthHitOnly) {
  fail::FaultSchedule schedule;
  schedule.start_hit = 3;
  schedule.every = 1;
  schedule.max_fires = 1;
  schedule.action.kind = fail::FaultKind::kError;
  schedule.action.error_code = 7;
  fail::Failpoints::Global().Arm("test.nth", schedule);

  fail::FaultAction action;
  EXPECT_FALSE(BLINKML_FAILPOINT("test.nth", &action));
  EXPECT_FALSE(BLINKML_FAILPOINT("test.nth", &action));
  EXPECT_TRUE(BLINKML_FAILPOINT("test.nth", &action));
  EXPECT_EQ(action.kind, fail::FaultKind::kError);
  EXPECT_EQ(action.error_code, 7);
  // limit:1 exhausted — never fires again.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(BLINKML_FAILPOINT("test.nth", &action));
  }
  EXPECT_EQ(fail::Failpoints::Global().Hits("test.nth"), 13u);
  EXPECT_EQ(fail::Failpoints::Global().Fires("test.nth"), 1u);
}

TEST_F(FailpointsTest, EveryKFiresPeriodically) {
  fail::FaultSchedule schedule;
  schedule.every = 3;
  schedule.action.kind = fail::FaultKind::kPartial;
  schedule.action.arg = 16;
  fail::Failpoints::Global().Arm("test.every", schedule);

  int fires = 0;
  fail::FaultAction action;
  for (int i = 0; i < 9; ++i) {
    if (BLINKML_FAILPOINT("test.every", &action)) ++fires;
  }
  // start_hit=1, every=3 -> hits 1, 4, 7.
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(action.kind, fail::FaultKind::kPartial);
  EXPECT_EQ(action.arg, 16u);
}

TEST_F(FailpointsTest, DeterministicAcrossRearm) {
  fail::FaultSchedule schedule;
  schedule.start_hit = 2;
  schedule.every = 2;
  auto run = [&] {
    fail::Failpoints::Global().Arm("test.replay", schedule);
    std::string pattern;
    fail::FaultAction action;
    for (int i = 0; i < 8; ++i) {
      pattern += BLINKML_FAILPOINT("test.replay", &action) ? 'F' : '.';
    }
    return pattern;
  };
  const std::string first = run();
  EXPECT_EQ(first, ".F.F.F.F");
  // Re-arming resets the counters: the exact same sequence replays.
  EXPECT_EQ(run(), first);
}

TEST_F(FailpointsTest, SpecParsesScheduleGrammar) {
  const Status status = fail::Failpoints::Global().ArmFromSpec(
      "a.one=err:104@nth:2;b.two=partial:64@every:3,limit:5;c.three=delay:7");
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fail::Failpoints::Global().ArmedPoints().size(), 3u);

  fail::FaultAction action;
  EXPECT_FALSE(BLINKML_FAILPOINT("a.one", &action));
  EXPECT_TRUE(BLINKML_FAILPOINT("a.one", &action));
  EXPECT_EQ(action.kind, fail::FaultKind::kError);
  EXPECT_EQ(action.error_code, 104);
  EXPECT_FALSE(BLINKML_FAILPOINT("a.one", &action));

  EXPECT_TRUE(BLINKML_FAILPOINT("b.two", &action));
  EXPECT_EQ(action.kind, fail::FaultKind::kPartial);
  EXPECT_EQ(action.arg, 64u);

  EXPECT_TRUE(BLINKML_FAILPOINT("c.three", &action));
  EXPECT_EQ(action.kind, fail::FaultKind::kDelay);
  EXPECT_EQ(action.arg, 7u);
}

TEST_F(FailpointsTest, SpecRejectsMalformedInputAtomically) {
  EXPECT_FALSE(fail::Failpoints::Global().ArmFromSpec("justaname").ok());
  EXPECT_FALSE(fail::Failpoints::Global().ArmFromSpec("p=bogus:1").ok());
  EXPECT_FALSE(fail::Failpoints::Global().ArmFromSpec("p=err@nope:2").ok());
  // A bad entry anywhere arms nothing (all-or-nothing).
  EXPECT_FALSE(
      fail::Failpoints::Global().ArmFromSpec("good=err;bad").ok());
  EXPECT_EQ(fail::Failpoints::Global().ArmedPoints().size(), 0u);
}

TEST_F(FailpointsTest, DisarmRestoresTheFastPath) {
  fail::FaultSchedule schedule;
  fail::Failpoints::Global().Arm("test.off", schedule);
  EXPECT_EQ(fail::Failpoints::Global().ArmedPoints().size(), 1u);
  fail::Failpoints::Global().Disarm("test.off");
  EXPECT_EQ(fail::Failpoints::Global().ArmedPoints().size(), 0u);
  EXPECT_EQ(fail::g_armed_point_count.load(), 0);
  fail::FaultAction action;
  EXPECT_FALSE(BLINKML_FAILPOINT("test.off", &action));
}

}  // namespace
}  // namespace blinkml
