#include <cmath>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace blinkml {
namespace {

// ---------- check.h ----------

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(BLINKML_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalse) {
  EXPECT_THROW(BLINKML_CHECK(false), CheckError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    BLINKML_CHECK_MSG(false, "the context");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("the context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(Check, ComparisonMacrosIncludeOperands) {
  try {
    const int a = 3, b = 7;
    BLINKML_CHECK_EQ(a, b);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=7"), std::string::npos);
  }
}

TEST(Check, AllComparisonDirections) {
  EXPECT_NO_THROW(BLINKML_CHECK_LT(1, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_LE(2, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_GT(3, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_GE(2, 2));
  EXPECT_NO_THROW(BLINKML_CHECK_NE(1, 2));
  EXPECT_THROW(BLINKML_CHECK_LT(2, 2), CheckError);
  EXPECT_THROW(BLINKML_CHECK_GT(2, 2), CheckError);
  EXPECT_THROW(BLINKML_CHECK_NE(2, 2), CheckError);
}

// ---------- status.h ----------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotConverged), "NotConverged");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(r.value(), CheckError);
}

TEST(Result, ConstructingFromOkStatusIsAnError) {
  EXPECT_THROW(Result<int> r(Status::OK()), CheckError);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  BLINKML_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterEven(8).value(), 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterEven(3).ok());
}

// ---------- stats.h ----------

TEST(Stats, MeanVarianceStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(Mean({}), CheckError);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(Stats, QuantileRejectsBadLevel) {
  EXPECT_THROW(Quantile({1.0}, -0.1), CheckError);
  EXPECT_THROW(Quantile({1.0}, 1.1), CheckError);
}

TEST(Stats, UpperOrderStatisticIsConservative) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  // ceil(0.5 * 5) = 3rd order statistic.
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(UpperOrderStatistic(xs, 0.0), 10.0);  // clamped to 1st
  // The defining property (what Lemma 2 needs): the empirical fraction of
  // observations <= the returned value is at least q.
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double bound = UpperOrderStatistic(xs, q);
    int below = 0;
    for (double x : xs) {
      if (x <= bound) ++below;
    }
    EXPECT_GE(below / static_cast<double>(xs.size()), q) << "q=" << q;
  }
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {0.5, -1.0, 2.25, 3.0, -0.75, 4.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(Stats, RunningStatsEmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), CheckError);
  EXPECT_THROW(rs.min(), CheckError);
}

// ---------- string_util.h ----------

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

TEST(StringUtil, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0us");
  EXPECT_EQ(HumanSeconds(0.0123), "12.30ms");
  EXPECT_EQ(HumanSeconds(3.5), "3.50s");
  EXPECT_EQ(HumanSeconds(195.0), "3m15s");
}

TEST(StringUtil, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-45000), "-45,000");
}

// ---------- timer.h ----------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // millis are 1000x seconds
}

TEST(Timer, ScopedTimerAccumulates) {
  double total = 0.0;
  {
    ScopedTimer st(&total);
  }
  {
    ScopedTimer st(&total);
  }
  EXPECT_GE(total, 0.0);
}

// ---------- logging.h ----------

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed message must not crash.
  BLINKML_LOG(INFO) << "should be invisible";
  SetLogLevel(before);
}

}  // namespace
}  // namespace blinkml
