#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "models/logistic_regression.h"
#include "models/serialization.h"
#include "models/trainer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "blinkml_serialization";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, RoundTripPreservesEverything) {
  const Dataset data = MakeSyntheticLogistic(500, 6, 1);
  LogisticRegressionSpec spec(1e-3);
  const auto trained = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(trained.ok());

  const std::string path = Path("model.blink");
  ASSERT_TRUE(SaveModel(path, spec.name(), *trained, 0.05, 0.01).ok());

  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->model_class, "LogisticRegression");
  EXPECT_DOUBLE_EQ(loaded->epsilon, 0.05);
  EXPECT_DOUBLE_EQ(loaded->delta, 0.01);
  EXPECT_EQ(loaded->model.iterations, trained->iterations);
  EXPECT_EQ(loaded->model.converged, trained->converged);
  EXPECT_EQ(loaded->model.sample_size, trained->sample_size);
  EXPECT_DOUBLE_EQ(loaded->model.objective, trained->objective);
  // Bit-exact parameters (printed at 17 significant digits).
  testing::ExpectVectorNear(loaded->model.theta, trained->theta, 0.0);
}

TEST_F(SerializationTest, LoadedModelPredictsIdentically) {
  const Dataset data = MakeSyntheticLogistic(400, 5, 2);
  LogisticRegressionSpec spec(1e-3);
  const auto trained = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(trained.ok());
  const std::string path = Path("predict.blink");
  ASSERT_TRUE(SaveModel(path, spec.name(), *trained).ok());
  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(spec.Diff(loaded->model.theta, trained->theta, data),
                   0.0);
  EXPECT_DOUBLE_EQ(loaded->epsilon, -1.0);  // no contract recorded
}

TEST_F(SerializationTest, RejectsMissingFile) {
  const auto loaded = LoadModel(Path("nonexistent.blink"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SerializationTest, RejectsWrongMagic) {
  std::ofstream(Path("bad.blink")) << "not-a-model 1\n";
  const auto loaded = LoadModel(Path("bad.blink"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, RejectsWrongVersion) {
  std::ofstream(Path("v9.blink")) << "blinkml-model 9\nclass X\nparams 0\ntheta\n";
  EXPECT_FALSE(LoadModel(Path("v9.blink")).ok());
}

TEST_F(SerializationTest, RejectsTruncatedTheta) {
  std::ofstream(Path("trunc.blink"))
      << "blinkml-model 1\nclass LR\nparams 3\ntheta\n1.0\n2.0\n";
  const auto loaded = LoadModel(Path("trunc.blink"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(SerializationTest, RejectsMissingThetaSection) {
  std::ofstream(Path("nothe.blink"))
      << "blinkml-model 1\nclass LR\nparams 3\n";
  EXPECT_FALSE(LoadModel(Path("nothe.blink")).ok());
}

TEST_F(SerializationTest, RejectsMultiTokenClassName) {
  TrainedModel model;
  model.theta = Vector{1.0};
  EXPECT_FALSE(SaveModel(Path("x.blink"), "two words", model).ok());
}

TEST_F(SerializationTest, SkipsUnknownKeysForForwardCompatibility) {
  std::ofstream(Path("future.blink"))
      << "blinkml-model 1\nclass LR\nfuture_key future_value\nparams 2\n"
      << "theta\n1.5\n-2.5\n";
  const auto loaded = LoadModel(Path("future.blink"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->model.theta.size(), 2);
  EXPECT_DOUBLE_EQ(loaded->model.theta[1], -2.5);
}

TEST_F(SerializationTest, EmptyParameterVectorRoundTrips) {
  TrainedModel model;  // zero parameters
  ASSERT_TRUE(SaveModel(Path("empty.blink"), "Empty", model).ok());
  const auto loaded = LoadModel(Path("empty.blink"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->model.theta.size(), 0);
}

}  // namespace
}  // namespace blinkml
