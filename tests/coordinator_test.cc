#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/max_entropy.h"
#include "models/ppca.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

BlinkConfig FastConfig(std::uint64_t seed = 42) {
  BlinkConfig config;
  config.initial_sample_size = 1000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  config.seed = seed;
  return config;
}

TEST(Coordinator, RejectsBadContractAndTinyData) {
  const Coordinator coordinator(FastConfig());
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(5000, 4, 1);
  EXPECT_FALSE(coordinator.Train(spec, data, {0.05, 0.0}).ok());
  EXPECT_FALSE(coordinator.Train(spec, data, {-0.1, 0.5}).ok());
  const Dataset tiny = MakeSyntheticLogistic(5, 2, 2);
  EXPECT_FALSE(coordinator.Train(spec, tiny, {0.05, 0.05}).ok());
}

TEST(Coordinator, LooseContractReturnsInitialModel) {
  const Coordinator coordinator(FastConfig());
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(20000, 6, 3);
  const auto result = coordinator.Train(spec, data, {0.9, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_initial_only);
  EXPECT_EQ(result->sample_size, 1000);
  EXPECT_LE(result->final_epsilon, 0.9);
  EXPECT_EQ(result->timings.final_train, 0.0);
}

TEST(Coordinator, TightContractTrainsSecondModel) {
  const Coordinator coordinator(FastConfig());
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(20000, 6, 4);
  const auto result = coordinator.Train(spec, data, {0.01, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->used_initial_only);
  EXPECT_GT(result->sample_size, 1000);
  EXPECT_GT(result->size_estimate.sample_size, 0);
  EXPECT_GT(result->timings.final_train, 0.0);
  EXPECT_GT(result->initial_epsilon, 0.01);
}

TEST(Coordinator, HoldoutIsDisjointFromPoolAccounting) {
  const Coordinator coordinator(FastConfig());
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(20000, 4, 5);
  const auto result = coordinator.Train(spec, data, {0.5, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->holdout->num_rows() + result->full_size, data.num_rows());
  EXPECT_EQ(result->holdout->num_rows(), 1000);
}

TEST(Coordinator, TimingsArePopulated) {
  const Coordinator coordinator(FastConfig());
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(20000, 6, 6);
  const auto result = coordinator.Train(spec, data, {0.05, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->timings.initial_train, 0.0);
  EXPECT_GT(result->timings.statistics, 0.0);
  EXPECT_GT(result->timings.accuracy_estimation, 0.0);
  EXPECT_GT(result->timings.total, 0.0);
  EXPECT_GE(result->timings.total,
            result->timings.initial_train + result->timings.statistics);
}

TEST(Coordinator, DeterministicGivenSeed) {
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(20000, 5, 7);
  const Coordinator a(FastConfig(11));
  const Coordinator b(FastConfig(11));
  const auto ra = a.Train(spec, data, {0.05, 0.05});
  const auto rb = b.Train(spec, data, {0.05, 0.05});
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->sample_size, rb->sample_size);
  EXPECT_DOUBLE_EQ(ra->initial_epsilon, rb->initial_epsilon);
  testing::ExpectVectorNear(ra->model.theta, rb->model.theta, 0.0);
}

TEST(Coordinator, EpsilonZeroFallsBackToFullTraining) {
  const Coordinator coordinator(FastConfig());
  LogisticRegressionSpec spec;
  const Dataset data = MakeSyntheticLogistic(15000, 4, 8);
  const auto result = coordinator.Train(spec, data, {0.0, 0.05});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sample_size, result->full_size);
  EXPECT_DOUBLE_EQ(result->final_epsilon, 0.0);
}

// The headline statistical property (paper Section 5.3 / Figure 6): across
// repeated runs, the returned model agrees with the actually-trained full
// model within epsilon in at least ~(1 - delta) of runs.
class CoordinatorContractSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoordinatorContractSweep, ContractHoldsAgainstTrueFullModel) {
  struct CaseDef {
    std::shared_ptr<ModelSpec> spec;
    Dataset data;
    double epsilon;
  };
  const int which = GetParam();
  CaseDef c = [&]() -> CaseDef {
    switch (which) {
      case 0:
        return {std::make_shared<LinearRegressionSpec>(1e-3),
                MakeGasLike(30000, 100, /*dim=*/20), 0.05};
      case 1:
        return {std::make_shared<LogisticRegressionSpec>(1e-3),
                MakeHiggsLike(30000, 101, /*dim=*/20), 0.08};
      case 2:
        return {std::make_shared<MaxEntropySpec>(1e-3),
                MakeSyntheticMulticlass(30000, 8, 3, 102), 0.10};
      default:
        return {std::make_shared<PpcaSpec>(2),
                MakeSyntheticLowRank(30000, 10, 2, 103, /*noise=*/0.4),
                0.01};
    }
  }();

  int satisfied = 0;
  const int trials = 4;
  const ModelTrainer trainer;
  for (int t = 0; t < trials; ++t) {
    const Coordinator coordinator(FastConfig(1000 + t));
    const auto result =
        coordinator.Train(*c.spec, c.data, {c.epsilon, 0.1});
    ASSERT_TRUE(result.ok());
    // Train the actual full model on the same pool BlinkML used.
    // (Reconstruct it: holdout rows are excluded.)
    const auto full = trainer.Train(*c.spec, c.data);
    ASSERT_TRUE(full.ok());
    const double v =
        c.spec->Diff(result->model.theta, full->theta, *result->holdout);
    if (v <= c.epsilon + 0.01) ++satisfied;
  }
  // All trials should satisfy (conservative estimator + slack); allow one
  // failure to keep the test robust.
  EXPECT_GE(satisfied, trials - 1) << "case " << which;
}

INSTANTIATE_TEST_SUITE_P(AllModels, CoordinatorContractSweep,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace blinkml
