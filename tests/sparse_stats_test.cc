// Structure-sharing sparse statistics: per-example gradient coefficients,
// the rescale-vs-merge Gram equivalence, the FeatureGramCache, and the
// thread-count determinism of the new sparse kernels.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/statistics.h"
#include "data/feature_gram_cache.h"
#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/max_entropy.h"
#include "models/poisson_regression.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::SparseBinaryData;
using testing::Trainedish;

// ---------- Gradient coefficients ----------

TEST(GradientCoeffs, SparseGradientsMatchDenseForEveryGlm) {
  const Dataset binary = SparseBinaryData();
  const Vector theta = Trainedish(binary, 1);

  const LogisticRegressionSpec lr(1e-3);
  const LinearRegressionSpec lin(1e-3);
  const PoissonRegressionSpec poisson(1e-3);
  const std::vector<const ModelSpec*> specs = {&lr, &lin, &poisson};
  for (const ModelSpec* spec : specs) {
    ASSERT_TRUE(spec->has_gradient_coeffs()) << spec->name();
    const SparseMatrix q = spec->PerExampleGradientsSparse(theta, binary);
    // The scaled matrix aliases the sample's CSR structure — the
    // structure-sharing contract the statistics path relies on.
    EXPECT_TRUE(q.SharesStructureWith(binary.sparse())) << spec->name();
    Matrix dense;
    spec->PerExampleGradients(theta, binary, &dense);
    ExpectMatrixNear(q.ToDense(), dense, 0.0, spec->name().c_str());

    // Coefficients times rows reproduce the same matrix entry-for-entry.
    Vector coeffs;
    spec->PerExampleGradientCoeffs(theta, binary, &coeffs);
    ASSERT_EQ(coeffs.size(), binary.num_rows());
    ExpectMatrixNear(binary.sparse().ScaleRows(coeffs).ToDense(), dense, 0.0,
                     spec->name().c_str());
  }
}

TEST(GradientCoeffs, MaxEntropyKeepsTheMaterializingPath) {
  const MaxEntropySpec me(1e-3);
  EXPECT_FALSE(me.has_gradient_coeffs());
  EXPECT_TRUE(me.has_sparse_gradients());
  const Dataset yelp = MakeYelpLike(120, /*seed=*/3, /*dim=*/200);
  Rng rng(5);
  Vector theta(me.ParamDim(yelp));
  for (Vector::Index j = 0; j < theta.size(); ++j) {
    theta[j] = rng.Normal(0.0, 0.05);
  }
  const SparseMatrix q = me.PerExampleGradientsSparse(theta, yelp);
  EXPECT_FALSE(q.SharesStructureWith(yelp.sparse()));  // C*d-wide rows
  Matrix dense;
  me.PerExampleGradients(theta, yelp, &dense);
  ExpectMatrixNear(q.ToDense(), dense, 1e-15, "max entropy");
}

// ---------- Rescale vs merge ----------

// Dense oracle for both Gram computations: the rescaled feature Gram
// c_i c_j (X X^T)(i, j) must match the Gram of the scaled rows
// (diag(c) X)(diag(c) X)^T to floating-point rounding.
TEST(RescaleVsMerge, GramEntriesAgreeToTightRelativeTolerance) {
  const Dataset data = SparseBinaryData(200, 300);
  const Vector theta = Trainedish(data, 2);
  const LogisticRegressionSpec spec(1e-3);
  Vector coeffs;
  spec.PerExampleGradientCoeffs(theta, data, &coeffs);

  const Matrix x = data.sparse().ToDense();
  const Matrix gram_x = GramRows(x);
  const Matrix q = data.sparse().ScaleRows(coeffs).ToDense();
  const Matrix gram_merge = GramRows(q);

  double max_rel = 0.0;
  for (Matrix::Index i = 0; i < gram_x.rows(); ++i) {
    for (Matrix::Index j = 0; j < gram_x.cols(); ++j) {
      const double rescaled = coeffs[i] * coeffs[j] * gram_x(i, j);
      const double merged = gram_merge(i, j);
      const double scale = std::max(std::abs(merged), 1e-30);
      max_rel = std::max(max_rel, std::abs(rescaled - merged) / scale);
    }
  }
  EXPECT_LE(max_rel, 1e-12);
}

StatsOptions GramPathOptions(bool reuse) {
  StatsOptions options;
  options.stats_sample_size = 128;
  options.max_rank = 64;
  options.reuse_feature_gram = reuse;
  return options;
}

// End-to-end: ComputeStatistics with the rescale path on vs off produces
// samplers whose variances agree to 1e-12 relative tolerance (they are
// the same operator up to Gram rounding).
TEST(RescaleVsMerge, ObservedFisherSamplersAgree) {
  const Dataset data = SparseBinaryData();
  const Vector theta = Trainedish(data, 3);
  const LogisticRegressionSpec spec(1e-3);

  Rng rng_a(17), rng_b(17);
  const auto with_rescale =
      ComputeStatistics(spec, theta, data, GramPathOptions(true), &rng_a);
  const auto with_merge =
      ComputeStatistics(spec, theta, data, GramPathOptions(false), &rng_b);
  ASSERT_TRUE(with_rescale.ok());
  ASSERT_TRUE(with_merge.ok());
  EXPECT_EQ(with_rescale->rank(), with_merge->rank());

  const auto var_a = with_rescale->VarianceDiagonal();
  const auto var_b = with_merge->VarianceDiagonal();
  ASSERT_TRUE(var_a.ok());
  ASSERT_TRUE(var_b.ok());
  double max_var = 0.0;
  for (Vector::Index i = 0; i < var_b->size(); ++i) {
    max_var = std::max(max_var, std::abs((*var_b)[i]));
  }
  ASSERT_GT(max_var, 0.0);
  // The Gram matrices agree to ~1e-12 relative (test above); the
  // eigendecomposition between them and the variances gets a little
  // headroom on top of that.
  for (Vector::Index i = 0; i < var_a->size(); ++i) {
    EXPECT_NEAR((*var_a)[i], (*var_b)[i], 1e-10 * max_var) << "entry " << i;
  }
}

// ---------- FeatureGramCache ----------

Matrix SmallGram(double fill, Matrix::Index n = 4) {
  Matrix m(n, n);
  for (Matrix::Index i = 0; i < n; ++i) {
    for (Matrix::Index j = 0; j < n; ++j) m(i, j) = fill;
  }
  return m;
}

TEST(FeatureGramCacheTest, SharesByKeyAndCountsHits) {
  FeatureGramCache cache;
  int calls = 0;
  const FeatureGramCache::Key key{FeatureGramCache::Phase::kInitialStats, 42,
                                  1000};
  auto factory = [&] {
    ++calls;
    return SmallGram(1.0);
  };
  const auto a = cache.GetOrCreate(key, factory);
  const auto b = cache.GetOrCreate(key, factory);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().cached_bytes, 4u * 4u * sizeof(double));

  // Phase, seed, and parent size are all part of the key.
  cache.GetOrCreate({FeatureGramCache::Phase::kFinalStats, 42, 1000}, factory);
  cache.GetOrCreate({FeatureGramCache::Phase::kInitialStats, 43, 1000},
                    factory);
  cache.GetOrCreate({FeatureGramCache::Phase::kInitialStats, 42, 999},
                    factory);
  EXPECT_EQ(calls, 4);

  cache.Clear();
  EXPECT_EQ(cache.stats().cached_bytes, 0u);
  EXPECT_EQ(a->rows(), 4);  // live users keep their Gram
}

TEST(FeatureGramCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  FeatureGramCache cache;
  const std::uint64_t entry_bytes = 4 * 4 * sizeof(double);
  cache.set_max_cached_bytes(2 * entry_bytes);  // room for two entries
  const FeatureGramCache::Key a{FeatureGramCache::Phase::kInitialStats, 1, 10};
  const FeatureGramCache::Key b{FeatureGramCache::Phase::kInitialStats, 2, 10};
  const FeatureGramCache::Key c{FeatureGramCache::Phase::kInitialStats, 3, 10};
  int calls = 0;
  auto factory = [&] {
    ++calls;
    return SmallGram(static_cast<double>(calls));
  };
  cache.GetOrCreate(a, factory);
  cache.GetOrCreate(b, factory);
  cache.GetOrCreate(a, factory);  // refresh a: b is now least recent
  cache.GetOrCreate(c, factory);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().cached_bytes, 2 * entry_bytes);
  cache.GetOrCreate(a, factory);  // still cached
  EXPECT_EQ(calls, 3);
  cache.GetOrCreate(b, factory);  // was evicted: recomputed
  EXPECT_EQ(calls, 4);

  // An entry larger than the whole budget is returned but not retained.
  FeatureGramCache tiny;
  tiny.set_max_cached_bytes(8);
  const auto big = tiny.GetOrCreate(a, [&] { return SmallGram(9.0); });
  EXPECT_EQ(big->rows(), 4);
  EXPECT_EQ(tiny.stats().bypassed, 1u);
  EXPECT_EQ(tiny.stats().cached_bytes, 0u);
}

TEST(FeatureGramCacheTest, ConcurrentMissesForOneKeyAreSingleFlight) {
  FeatureGramCache cache;
  const FeatureGramCache::Key key{FeatureGramCache::Phase::kInitialStats, 5,
                                  64};
  std::atomic<int> calls{0};
  auto factory = [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return SmallGram(3.0);
  };
  std::shared_ptr<const Matrix> a, b;
  std::thread t1([&] { a = cache.GetOrCreate(key, factory); });
  std::thread t2([&] { b = cache.GetOrCreate(key, factory); });
  t1.join();
  t2.join();
  EXPECT_EQ(calls.load(), 1);  // one leader; the follower shared its Gram
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FeatureGramCacheTest, CachedStatisticsAreBitwiseIdentical) {
  const Dataset data = SparseBinaryData();
  const Vector theta = Trainedish(data, 4);
  const LogisticRegressionSpec spec(1e-3);

  FeatureGramCache cache;
  StatsOptions cached = GramPathOptions(true);
  cached.gram_cache = &cache;
  cached.gram_key = {FeatureGramCache::Phase::kInitialStats, 7,
                     data.num_rows()};

  Rng rng_a(23), rng_b(23), rng_c(23);
  const auto first = ComputeStatistics(spec, theta, data, cached, &rng_a);
  const auto second = ComputeStatistics(spec, theta, data, cached, &rng_b);
  const auto uncached =
      ComputeStatistics(spec, theta, data, GramPathOptions(true), &rng_c);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  const Vector z = testing::RandomVector(first->rank(), &rng_a);
  ExpectVectorNear(first->DrawWithZ(1.0, z), second->DrawWithZ(1.0, z), 0.0,
                   "cache hit vs miss");
  ExpectVectorNear(first->DrawWithZ(1.0, z), uncached->DrawWithZ(1.0, z), 0.0,
                   "cached vs local Gram");
}

// ---------- Thread-count determinism ----------

// The new sparse kernels (coefficients, ScaleRows, rescaled Gram) feed
// deterministic chunk layouts, so the whole statistics computation must be
// bitwise identical at 1, 2, and 8 threads.
TEST(SparseStatsDeterminism, StatisticsBitwiseIdenticalAcrossThreadCounts) {
  const Dataset data = SparseBinaryData();
  const Vector theta = Trainedish(data, 5);
  const LogisticRegressionSpec spec(1e-3);

  testing::ExpectThreadCountInvariant(
      [&] {
        Rng rng(31);
        auto sampler =
            ComputeStatistics(spec, theta, data, GramPathOptions(true), &rng);
        EXPECT_TRUE(sampler.ok());
        Rng draw_rng(77);
        return sampler->Draw(1.0, &draw_rng);
      },
      {1, 2, 8}, "sparse statistics thread sweep");
}

}  // namespace
}  // namespace blinkml
