#include <cmath>

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "data/generators.h"
#include "models/poisson_regression.h"
#include "models/trainer.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::RandomVector;

TEST(Poisson, BasicsAndValidation) {
  PoissonRegressionSpec spec(1e-3);
  EXPECT_EQ(spec.name(), "PoissonRegression");
  EXPECT_EQ(spec.task(), Task::kRegression);
  EXPECT_DOUBLE_EQ(spec.l2(), 1e-3);
  EXPECT_TRUE(spec.has_linear_scores());
  EXPECT_TRUE(spec.has_closed_form_hessian());
  EXPECT_TRUE(spec.has_sparse_gradients());
  EXPECT_THROW(PoissonRegressionSpec(-1.0), CheckError);
}

TEST(Poisson, CountGeneratorProducesNonNegativeIntegers) {
  const Dataset data = MakeSyntheticCounts(500, 6, 1);
  EXPECT_EQ(data.task(), Task::kRegression);
  double total = 0.0;
  for (Dataset::Index i = 0; i < data.num_rows(); ++i) {
    const double y = data.label(i);
    EXPECT_GE(y, 0.0);
    EXPECT_EQ(y, std::floor(y));
    total += y;
  }
  EXPECT_GT(total, 0.0);  // not all zero
}

TEST(Poisson, CountGeneratorRateScale) {
  const Dataset low = MakeSyntheticCounts(3000, 4, 2, /*rate_scale=*/0.5);
  const Dataset high = MakeSyntheticCounts(3000, 4, 3, /*rate_scale=*/8.0);
  auto mean_label = [](const Dataset& d) {
    double s = 0.0;
    for (Dataset::Index i = 0; i < d.num_rows(); ++i) s += d.label(i);
    return s / static_cast<double>(d.num_rows());
  };
  EXPECT_GT(mean_label(high), 4.0 * mean_label(low));
}

TEST(Poisson, GradientMatchesFiniteDifferences) {
  const Dataset data = MakeSyntheticCounts(80, 5, 4);
  PoissonRegressionSpec spec(1e-2);
  Rng rng(5);
  Vector theta = RandomVector(5, &rng);
  theta *= 0.2;
  Vector grad;
  spec.Gradient(theta, data, &grad);
  const double h = 1e-6;
  for (int j = 0; j < 5; ++j) {
    Vector tp = theta, tm = theta;
    tp[j] += h;
    tm[j] -= h;
    const double fd =
        (spec.Objective(tp, data) - spec.Objective(tm, data)) / (2.0 * h);
    EXPECT_NEAR(grad[j], fd, 1e-5 * std::max(1.0, std::fabs(fd)));
  }
}

TEST(Poisson, PerExampleGradientsAverageToFullGradient) {
  const Dataset data = MakeSyntheticCounts(60, 4, 6);
  PoissonRegressionSpec spec(5e-3);
  Rng rng(7);
  Vector theta = RandomVector(4, &rng);
  theta *= 0.2;
  Matrix q;
  spec.PerExampleGradients(theta, data, &q);
  Vector mean(4);
  for (Matrix::Index i = 0; i < q.rows(); ++i) {
    for (int j = 0; j < 4; ++j) mean[j] += q(i, j);
  }
  mean *= 1.0 / static_cast<double>(q.rows());
  Axpy(spec.l2(), theta, &mean);
  Vector grad;
  spec.Gradient(theta, data, &grad);
  testing::ExpectVectorNear(mean, grad, 1e-9);
}

TEST(Poisson, ClosedFormHessianMatchesFiniteDifference) {
  const Dataset data = MakeSyntheticCounts(60, 3, 8);
  PoissonRegressionSpec spec(1e-2);
  Rng rng(9);
  Vector theta = RandomVector(3, &rng);
  theta *= 0.2;
  const auto h = spec.ClosedFormHessian(theta, data);
  ASSERT_TRUE(h.ok());
  const double step = 1e-6;
  for (int j = 0; j < 3; ++j) {
    Vector tp = theta, tm = theta;
    tp[j] += step;
    tm[j] -= step;
    Vector gp, gm;
    spec.Gradient(tp, data, &gp);
    spec.Gradient(tm, data, &gm);
    for (int r = 0; r < 3; ++r) {
      EXPECT_NEAR((*h)(r, j), (gp[r] - gm[r]) / (2.0 * step),
                  1e-4 * std::max(1.0, std::fabs((*h)(r, j))));
    }
  }
}

TEST(Poisson, RecoverRatesOnGeneratedData) {
  // Trained on enough data, predicted rates should track true counts: the
  // average absolute error should be near the Poisson noise floor.
  const Dataset data = MakeSyntheticCounts(20000, 6, 10, /*rate_scale=*/3.0);
  PoissonRegressionSpec spec(1e-4);
  // The synthetic bias is folded into the labels, not the features, so
  // append a constant column to let the model absorb it.
  Matrix x(data.num_rows(), 7);
  for (Dataset::Index i = 0; i < data.num_rows(); ++i) {
    for (int j = 0; j < 6; ++j) x(i, j) = data.dense()(i, j);
    x(i, 6) = 1.0;
  }
  const Dataset with_bias(std::move(x), Vector(data.labels()),
                          Task::kRegression);
  const auto model = ModelTrainer().Train(spec, with_bias);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->converged);
  Vector pred;
  spec.Predict(model->theta, with_bias, &pred);
  double mean_rate = 0.0, mean_abs_err = 0.0;
  for (Dataset::Index i = 0; i < with_bias.num_rows(); ++i) {
    mean_rate += pred[i];
    mean_abs_err += std::fabs(pred[i] - with_bias.label(i));
  }
  mean_rate /= static_cast<double>(with_bias.num_rows());
  mean_abs_err /= static_cast<double>(with_bias.num_rows());
  EXPECT_GT(mean_rate, 2.0);
  // Poisson noise floor: E|y - rate| ~ sqrt(rate); allow 1.5x.
  EXPECT_LT(mean_abs_err, 1.5 * std::sqrt(mean_rate));
}

TEST(Poisson, SparseGradientsMatchDense) {
  // Build a sparse count dataset by sparsifying features.
  const Dataset dense = MakeSyntheticCounts(50, 10, 11);
  Matrix x = dense.dense();
  for (Matrix::Index i = 0; i < x.rows(); ++i) {
    for (Matrix::Index j = 0; j < x.cols(); ++j) {
      if ((i + j) % 3 != 0) x(i, j) = 0.0;
    }
  }
  const Dataset sparse(SparseMatrix::FromDense(x), Vector(dense.labels()),
                       Task::kRegression);
  PoissonRegressionSpec spec(1e-3);
  Rng rng(12);
  Vector theta = RandomVector(10, &rng);
  theta *= 0.1;
  Matrix dense_grads;
  spec.PerExampleGradients(theta, sparse, &dense_grads);
  testing::ExpectMatrixNear(
      spec.PerExampleGradientsSparse(theta, sparse).ToDense(), dense_grads,
      1e-12);
}

TEST(Poisson, DiffIsNormalizedRateDifference) {
  const Dataset data = MakeSyntheticCounts(200, 4, 13);
  PoissonRegressionSpec spec(1e-3);
  Rng rng(14);
  Vector t1 = RandomVector(4, &rng);
  t1 *= 0.1;
  EXPECT_NEAR(spec.Diff(t1, t1, data), 0.0, 1e-12);
  Vector t2 = t1;
  t2[0] += 0.05;
  const double v = spec.Diff(t1, t2, data);
  EXPECT_GT(v, 0.0);
  EXPECT_NEAR(v, spec.Diff(t2, t1, data), 1e-12);
  // Consistent with DiffFromScores.
  EXPECT_NEAR(v,
              spec.DiffFromScores(spec.Scores(t1, data),
                                  spec.Scores(t2, data), data),
              1e-12);
}

TEST(Poisson, SafeAtExtremeParameters) {
  // Objective stays finite under extreme linear predictors (the optimizer
  // can probe such points during line search).
  const Dataset data = MakeSyntheticCounts(20, 3, 15);
  PoissonRegressionSpec spec(1e-3);
  const Vector huge{300.0, 300.0, 300.0};
  const double f = spec.Objective(huge, data);
  EXPECT_TRUE(std::isfinite(f));
  Vector grad;
  spec.Gradient(huge, data, &grad);
  for (int j = 0; j < 3; ++j) EXPECT_TRUE(std::isfinite(grad[j]));
}

TEST(Poisson, EndToEndCoordinatorContract) {
  // Include an intercept column so the generator's base rate is
  // representable (a misspecified mean structure would put the task
  // outside the MLE framework the guarantee assumes).
  const Dataset raw = MakeSyntheticCounts(40000, 8, 16, /*rate_scale=*/2.0);
  Matrix x(raw.num_rows(), 9);
  for (Dataset::Index i = 0; i < raw.num_rows(); ++i) {
    for (int j = 0; j < 8; ++j) x(i, j) = raw.dense()(i, j);
    x(i, 8) = 1.0;
  }
  const Dataset data(std::move(x), Vector(raw.labels()), Task::kRegression);
  PoissonRegressionSpec spec(1e-3);
  BlinkConfig config;
  config.initial_sample_size = 2000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  config.seed = 17;
  const Coordinator coordinator(config);
  const auto result = coordinator.Train(spec, data, {0.05, 0.05});
  ASSERT_TRUE(result.ok());
  const auto full = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(full.ok());
  const double v =
      spec.Diff(result->model.theta, full->theta, *result->holdout);
  EXPECT_LE(v, 0.05 + 0.02);
}

}  // namespace
}  // namespace blinkml
