#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;
using testing::RandomSpd;
using testing::RandomSymmetric;
using testing::RandomVector;

// ---------- Cholesky ----------

TEST(Cholesky, FactorsKnownMatrix) {
  const Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  const auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol->L();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-14);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-14);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-14);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::Factor(Matrix(2, 3)).ok());
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  const auto chol = Cholesky::Factor(a);
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kInvalidArgument);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
  const Matrix a = Matrix::Diagonal(Vector{2.0, 8.0});
  const auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(16.0), 1e-12);
}

class CholeskySizes : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizes, ReconstructsAndSolves) {
  const int n = GetParam();
  Rng rng(200 + n);
  const Matrix a = RandomSpd(n, &rng);
  const auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  // L L^T == A.
  ExpectMatrixNear(MatMulT(chol->L(), chol->L()), a, 1e-9 * n, "L L^T");
  // Solve round trip.
  const Vector x = RandomVector(n, &rng);
  const Vector b = MatVec(a, x);
  ExpectVectorNear(chol->Solve(b), x, 1e-7, "solve");
  // Inverse: A A^-1 == I.
  ExpectMatrixNear(MatMul(a, chol->Inverse()), Matrix::Identity(n),
                   1e-8 * n, "inverse");
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 10, 32, 64));

// ---------- Symmetric eigendecomposition ----------

TEST(EigenSym, DiagonalMatrix) {
  const Matrix a = Matrix::Diagonal(Vector{3.0, -1.0, 2.0});
  const auto eig = EigenSym(a);
  ASSERT_TRUE(eig.ok());
  ExpectVectorNear(eig->eigenvalues, Vector{-1.0, 2.0, 3.0}, 1e-12);
}

TEST(EigenSym, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  const auto eig = EigenSym(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenSym, RejectsNonSquare) {
  EXPECT_FALSE(EigenSym(Matrix(2, 3)).ok());
}

TEST(EigenSym, HandlesSizeOneAndEmpty) {
  const auto one = EigenSym(Matrix{{5.0}});
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(one->eigenvalues[0], 5.0);
  const auto empty = EigenSym(Matrix(0, 0));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->eigenvalues.size(), 0);
}

TEST(EigenSym, RepeatedEigenvalues) {
  const Matrix a = Matrix::Identity(4) * 2.0;
  const auto eig = EigenSym(a);
  ASSERT_TRUE(eig.ok());
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(eig->eigenvalues[i], 2.0, 1e-12);
}

class EigenSymSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigenSymSizes, ReconstructionAndOrthogonality) {
  const int n = GetParam();
  Rng rng(300 + n);
  const Matrix a = RandomSymmetric(n, &rng);
  const auto eig = EigenSym(a);
  ASSERT_TRUE(eig.ok());
  const Matrix& v = eig->eigenvectors;
  // Eigenvalues ascending.
  for (int i = 1; i < n; ++i) {
    EXPECT_LE(eig->eigenvalues[i - 1], eig->eigenvalues[i] + 1e-12);
  }
  // V orthonormal.
  ExpectMatrixNear(MatTMul(v, v), Matrix::Identity(n), 1e-9 * n, "V^T V");
  // V diag(w) V^T == A.
  const Matrix recon =
      MatMulT(MatMul(v, Matrix::Diagonal(eig->eigenvalues)), v);
  ExpectMatrixNear(recon, a, 1e-9 * n, "reconstruction");
  // Trace preserved.
  double trace_a = 0.0, sum_w = 0.0;
  for (int i = 0; i < n; ++i) {
    trace_a += a(i, i);
    sum_w += eig->eigenvalues[i];
  }
  EXPECT_NEAR(trace_a, sum_w, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymSizes,
                         ::testing::Values(2, 3, 4, 8, 17, 50, 128));

TEST(EigenSym, ValuesOnlyMatchesFull) {
  Rng rng(42);
  const Matrix a = RandomSymmetric(20, &rng);
  const auto full = EigenSym(a);
  const auto values = EigenSymValues(a);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(values.ok());
  ExpectVectorNear(full->eigenvalues, *values, 1e-10);
}

TEST(EigenSym, ToleratesSlightAsymmetry) {
  Rng rng(43);
  Matrix a = RandomSymmetric(10, &rng);
  a(3, 7) += 1e-13;  // round-off-scale asymmetry
  EXPECT_TRUE(EigenSym(a).ok());
}

// Regression: the tridiagonalization's partial-slot buffer must cover the
// chunk counts of every Householder step's sub-range, which are not
// monotone in the range size. n = 600 is in the regime where sizing by
// the largest range under-allocates (60 slots vs the 64 a 512-row step
// uses) — this overflowed the heap before MaxChunksForRanges.
TEST(EigenSym, NonMonotoneChunkCountSizesAreSafe) {
  Rng rng(606);
  const Matrix a = RandomSymmetric(600, &rng);
  const auto eig = EigenSym(a);
  ASSERT_TRUE(eig.ok());
  // Light sanity: eigenvalues ascending, eigenvector columns unit norm.
  for (Matrix::Index i = 1; i < 600; ++i) {
    EXPECT_LE(eig->eigenvalues[i - 1], eig->eigenvalues[i]);
  }
  double norm = 0.0;
  for (Matrix::Index r = 0; r < 600; ++r) {
    norm += eig->eigenvectors(r, 0) * eig->eigenvectors(r, 0);
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

// The Householder tridiagonalization runs its row loops through the
// parallel runtime; the chunk layout is a pure function of the matrix
// size, so serial and parallel execution must agree bitwise at any
// thread count (runtime/parallel.h determinism contract).
TEST(EigenSym, SerialAndParallelAgreeBitwise) {
  Rng rng(777);
  // 192 rows: above the inline threshold, so worker lanes really run.
  const Matrix a = RandomSymmetric(192, &rng);

  SymmetricEigen serial;
  {
    RuntimeOptions options;
    options.enabled = false;
    RuntimeScope scope(options);
    auto eig = EigenSym(a);
    ASSERT_TRUE(eig.ok());
    serial = std::move(*eig);
  }

  ThreadPool pool(8);
  for (const int threads : {2, 3, 8}) {
    RuntimeOptions options;
    options.pool = &pool;
    options.num_threads = threads;
    RuntimeScope scope(options);
    auto eig = EigenSym(a);
    ASSERT_TRUE(eig.ok());
    EXPECT_EQ(MaxAbsDiff(eig->eigenvalues, serial.eigenvalues), 0.0)
        << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(eig->eigenvectors, serial.eigenvectors), 0.0)
        << threads << " threads";
  }
}

// The QL iteration's Givens rotation accumulation is row-parallel over
// the transposed eigenvector storage. A matrix with tightly clustered
// eigenvalues forces many QL sweeps (and thus many rotations), so this
// stresses that path specifically; serial and parallel runs must agree
// bitwise at any thread count.
TEST(EigenSym, QlRotationAccumulationSerialParallelBitwise) {
  Rng rng(909);
  // Q diag(l) Q^T with clustered eigenvalues: l_i in {1, 1+1e-9, 2, ...}.
  const Matrix base = RandomSymmetric(256, &rng);
  auto base_eig = EigenSym(base);
  ASSERT_TRUE(base_eig.ok());
  Matrix clustered(256, 256);
  for (Matrix::Index i = 0; i < 256; ++i) {
    const double l = 1.0 + static_cast<double>(i / 32) +
                     1e-9 * static_cast<double>(i % 32);
    for (Matrix::Index r = 0; r < 256; ++r) {
      for (Matrix::Index c = 0; c < 256; ++c) {
        clustered(r, c) += l * base_eig->eigenvectors(r, i) *
                           base_eig->eigenvectors(c, i);
      }
    }
  }

  SymmetricEigen serial;
  {
    RuntimeOptions options;
    options.enabled = false;
    RuntimeScope scope(options);
    auto eig = EigenSym(clustered);
    ASSERT_TRUE(eig.ok());
    serial = std::move(*eig);
  }
  ThreadPool pool(8);
  for (const int threads : {2, 8}) {
    RuntimeOptions options;
    options.pool = &pool;
    options.num_threads = threads;
    RuntimeScope scope(options);
    auto eig = EigenSym(clustered);
    ASSERT_TRUE(eig.ok());
    EXPECT_EQ(MaxAbsDiff(eig->eigenvalues, serial.eigenvalues), 0.0)
        << threads << " threads";
    EXPECT_EQ(MaxAbsDiff(eig->eigenvectors, serial.eigenvectors), 0.0)
        << threads << " threads";
  }
}

// ---------- SVD ----------

TEST(GramSvd, KnownRankOne) {
  // Outer product u v^T has one nonzero singular value |u||v|.
  const Matrix a = {{2.0, 0.0}, {4.0, 0.0}, {4.0, 0.0}};
  const auto svd = GramSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 6.0, 1e-10);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-10);
}

TEST(GramSvd, RejectsEmpty) { EXPECT_FALSE(GramSvd(Matrix(0, 3)).ok()); }

class SvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, GramSvdReconstructs) {
  const auto [m, n] = GetParam();
  Rng rng(400 + m * 13 + n);
  const Matrix a = RandomMatrix(m, n, &rng);
  const auto svd = GramSvd(a);
  ASSERT_TRUE(svd.ok());
  const int r = std::min(m, n);
  ASSERT_EQ(svd->u.cols(), r);
  ASSERT_EQ(svd->v.cols(), r);
  // Descending non-negative singular values.
  for (int i = 1; i < r; ++i) {
    EXPECT_LE(svd->singular_values[i], svd->singular_values[i - 1] + 1e-12);
    EXPECT_GE(svd->singular_values[i], 0.0);
  }
  ExpectMatrixNear(SvdReconstruct(*svd), a, 1e-6, "U S V^T");
}

TEST_P(SvdShapes, JacobiSvdReconstructsAndMatchesGram) {
  const auto [m, n] = GetParam();
  Rng rng(500 + m * 13 + n);
  const Matrix a = RandomMatrix(m, n, &rng);
  const auto jac = JacobiSvd(a);
  const auto gram = GramSvd(a);
  ASSERT_TRUE(jac.ok());
  ASSERT_TRUE(gram.ok());
  ExpectMatrixNear(SvdReconstruct(*jac), a, 1e-9, "Jacobi U S V^T");
  const int r = std::min(m, n);
  for (int i = 0; i < r; ++i) {
    EXPECT_NEAR(jac->singular_values[i], gram->singular_values[i], 1e-6)
        << "sigma_" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(5, 5),
                                           std::make_pair(10, 4),
                                           std::make_pair(4, 10),
                                           std::make_pair(30, 7),
                                           std::make_pair(7, 30),
                                           std::make_pair(40, 40)));

TEST(Svd, RankDeficientMatrix) {
  // Two identical columns -> rank 1.
  Matrix a(5, 2);
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    const double v = rng.Normal();
    a(i, 0) = v;
    a(i, 1) = v;
  }
  const auto svd = GramSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->singular_values[0], 0.0);
  // Gram-based singular values are accurate to ~sqrt(machine eps) relative
  // to sigma_max (see svd.h); the zero singular value reflects that.
  EXPECT_NEAR(svd->singular_values[1], 0.0,
              1e-7 * svd->singular_values[0]);
  ExpectMatrixNear(SvdReconstruct(*svd), a, 1e-7);
}

TEST(Svd, SingularValuesMatchEigenvaluesOfGram) {
  Rng rng(8);
  const Matrix a = RandomMatrix(12, 6, &rng);
  const auto svd = GramSvd(a);
  const auto eig = EigenSym(GramCols(a));
  ASSERT_TRUE(svd.ok());
  ASSERT_TRUE(eig.ok());
  for (int i = 0; i < 6; ++i) {
    const double lambda = eig->eigenvalues[5 - i];  // descending
    EXPECT_NEAR(svd->singular_values[i] * svd->singular_values[i], lambda,
                1e-8);
  }
}

// ---------- LU ----------

TEST(Lu, SolvesKnownSystem) {
  const Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const auto lu = Lu::Factor(a);
  ASSERT_TRUE(lu.ok());
  ExpectVectorNear(lu->Solve(Vector{5.0, 10.0}), Vector{1.0, 3.0}, 1e-12);
}

TEST(Lu, DeterminantMatchesKnown) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const auto lu = Lu::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -2.0, 1e-12);
}

TEST(Lu, RejectsSingular) {
  const Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(Lu::Factor(a).ok());
}

TEST(Lu, RejectsNonSquare) { EXPECT_FALSE(Lu::Factor(Matrix(2, 3)).ok()); }

TEST(Lu, HandlesPivotingRequiredMatrix) {
  // Zero on the initial diagonal forces a row swap.
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const auto lu = Lu::Factor(a);
  ASSERT_TRUE(lu.ok());
  ExpectVectorNear(lu->Solve(Vector{2.0, 3.0}), Vector{3.0, 2.0}, 1e-14);
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-14);
}

class LuSizes : public ::testing::TestWithParam<int> {};

TEST_P(LuSizes, SolveAndInverseRoundTrip) {
  const int n = GetParam();
  Rng rng(600 + n);
  const Matrix a = RandomMatrix(n, n, &rng);  // a.s. nonsingular
  const auto lu = Lu::Factor(a);
  ASSERT_TRUE(lu.ok());
  const Vector x = RandomVector(n, &rng);
  ExpectVectorNear(lu->Solve(MatVec(a, x)), x, 1e-6 * n);
  ExpectMatrixNear(MatMul(a, lu->Inverse()), Matrix::Identity(n), 1e-7 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes, ::testing::Values(1, 2, 5, 20, 50));

// ---------- QR ----------

TEST(Qr, RejectsWideMatrix) { EXPECT_FALSE(Qr::Factor(Matrix(2, 3)).ok()); }

TEST(Qr, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = i + 1.0;
    a(i, 1) = 2.0 * (i + 1.0);  // column 1 = 2 * column 0
  }
  const auto qr = Qr::Factor(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_FALSE(qr->Solve(Vector{1.0, 2.0, 3.0, 4.0}).ok());
}

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapes, LeastSquaresMatchesNormalEquations) {
  const auto [m, n] = GetParam();
  Rng rng(700 + m * 13 + n);
  const Matrix a = RandomMatrix(m, n, &rng);
  const Vector b = RandomVector(m, &rng);
  const auto qr = Qr::Factor(a);
  ASSERT_TRUE(qr.ok());
  const auto x = qr->Solve(b);
  ASSERT_TRUE(x.ok());
  // Normal-equations oracle: (A^T A) x = A^T b.
  const auto chol = Cholesky::Factor(GramCols(a));
  ASSERT_TRUE(chol.ok());
  const Vector expected = chol->Solve(MatTVec(a, b));
  ExpectVectorNear(*x, expected, 1e-7, "least squares");
  // Q orthonormal, Q R == A.
  const Matrix q = qr->ThinQ();
  ExpectMatrixNear(MatTMul(q, q), Matrix::Identity(n), 1e-10, "Q^T Q");
  ExpectMatrixNear(MatMul(q, qr->R()), a, 1e-10, "QR");
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(5, 5),
                                           std::make_pair(10, 3),
                                           std::make_pair(50, 10),
                                           std::make_pair(100, 30)));

}  // namespace
}  // namespace blinkml
