#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/max_entropy.h"
#include "models/model_spec.h"
#include "models/poisson_regression.h"
#include "models/ppca.h"
#include "models/trainer.h"
#include "linalg/cholesky.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

using testing::ExpectVectorNear;
using testing::RandomVector;

// A (spec, dataset) pair for the parameterized sweeps below.
struct SpecCase {
  const char* name;
  std::shared_ptr<ModelSpec> spec;
  Dataset data;
};

std::vector<SpecCase> AllSpecCases() {
  std::vector<SpecCase> cases;
  cases.push_back({"LinDense",
                   std::make_shared<LinearRegressionSpec>(1e-3),
                   MakeSyntheticLinear(60, 5, 100)});
  cases.push_back({"LinNoReg",
                   std::make_shared<LinearRegressionSpec>(0.0),
                   MakeSyntheticLinear(60, 4, 101)});
  cases.push_back({"LRDense",
                   std::make_shared<LogisticRegressionSpec>(1e-3),
                   MakeSyntheticLogistic(60, 5, 102)});
  cases.push_back({"LRSparse",
                   std::make_shared<LogisticRegressionSpec>(1e-2),
                   MakeSyntheticLogistic(60, 12, 103, /*sparsity=*/0.4)});
  cases.push_back({"ME3Class",
                   std::make_shared<MaxEntropySpec>(1e-3),
                   MakeSyntheticMulticlass(60, 4, 3, 104)});
  cases.push_back({"PPCA",
                   std::make_shared<PpcaSpec>(2),
                   MakeSyntheticLowRank(80, 6, 2, 105)});
  cases.push_back({"Poisson",
                   std::make_shared<PoissonRegressionSpec>(1e-2),
                   MakeSyntheticCounts(60, 5, 106)});
  return cases;
}

class SpecSweep : public ::testing::TestWithParam<int> {
 protected:
  SpecCase Case() const {
    return AllSpecCases()[static_cast<std::size_t>(GetParam())];
  }
};

// Gradient check: the analytic gradient must match central finite
// differences of the objective. This validates the whole MLE plumbing —
// objective, gradient, and parameter packing — for every model class.
TEST_P(SpecSweep, GradientMatchesFiniteDifferences) {
  const SpecCase c = Case();
  Rng rng(1000 + GetParam());
  Vector theta = c.spec->InitialTheta(c.data);
  // Perturb away from any special point.
  for (Vector::Index i = 0; i < theta.size(); ++i) {
    theta[i] += 0.15 * rng.Normal();
  }
  Vector grad;
  c.spec->Gradient(theta, c.data, &grad);
  ASSERT_EQ(grad.size(), theta.size());
  const double h = 1e-6;
  // Check a subset of coordinates (all for small models).
  const Vector::Index stride = std::max<Vector::Index>(1, theta.size() / 25);
  for (Vector::Index j = 0; j < theta.size(); j += stride) {
    Vector tp = theta, tm = theta;
    tp[j] += h;
    tm[j] -= h;
    const double fd =
        (c.spec->Objective(tp, c.data) - c.spec->Objective(tm, c.data)) /
        (2.0 * h);
    EXPECT_NEAR(grad[j], fd, 1e-4 * std::max(1.0, std::fabs(fd)))
        << c.name << " coordinate " << j;
  }
}

// The average of per-example gradients plus the regularizer gradient must
// equal the full gradient (Equation 3 of the paper).
TEST_P(SpecSweep, PerExampleGradientsAverageToFullGradient) {
  const SpecCase c = Case();
  Rng rng(2000 + GetParam());
  Vector theta = c.spec->InitialTheta(c.data);
  for (Vector::Index i = 0; i < theta.size(); ++i) {
    theta[i] += 0.1 * rng.Normal();
  }
  Matrix q;
  c.spec->PerExampleGradients(theta, c.data, &q);
  ASSERT_EQ(q.rows(), c.data.num_rows());
  ASSERT_EQ(q.cols(), theta.size());
  Vector mean(theta.size());
  for (Matrix::Index i = 0; i < q.rows(); ++i) {
    for (Matrix::Index j = 0; j < q.cols(); ++j) mean[j] += q(i, j);
  }
  mean *= 1.0 / static_cast<double>(q.rows());
  // r(theta) = beta * theta for the GLMs, zero for PPCA.
  Axpy(c.spec->l2(), theta, &mean);
  Vector grad;
  c.spec->Gradient(theta, c.data, &grad);
  ExpectVectorNear(mean, grad, 1e-8, c.name);
}

// Sparse per-example gradients must match the dense ones.
TEST_P(SpecSweep, SparseGradientsMatchDense) {
  const SpecCase c = Case();
  if (!c.spec->has_sparse_gradients()) GTEST_SKIP();
  Rng rng(3000 + GetParam());
  Vector theta = c.spec->InitialTheta(c.data);
  for (Vector::Index i = 0; i < theta.size(); ++i) {
    theta[i] += 0.1 * rng.Normal();
  }
  Matrix dense;
  c.spec->PerExampleGradients(theta, c.data, &dense);
  const SparseMatrix sparse =
      c.spec->PerExampleGradientsSparse(theta, c.data);
  testing::ExpectMatrixNear(sparse.ToDense(), dense, 1e-12, c.name);
}

// diff(m, m) == 0 and diff is symmetric.
TEST_P(SpecSweep, DiffIsAMetricOnIdenticalAndSwappedModels) {
  const SpecCase c = Case();
  Rng rng(4000 + GetParam());
  Vector t1 = c.spec->InitialTheta(c.data);
  for (Vector::Index i = 0; i < t1.size(); ++i) t1[i] += 0.3 * rng.Normal();
  Vector t2 = t1;
  for (Vector::Index i = 0; i < t2.size(); ++i) t2[i] += 0.3 * rng.Normal();
  EXPECT_NEAR(c.spec->Diff(t1, t1, c.data), 0.0, 1e-12) << c.name;
  EXPECT_NEAR(c.spec->Diff(t1, t2, c.data), c.spec->Diff(t2, t1, c.data),
              1e-9)
      << c.name;
  EXPECT_GE(c.spec->Diff(t1, t2, c.data), 0.0) << c.name;
}

// Scores must be linear in theta (the estimators rely on this).
TEST_P(SpecSweep, ScoresAreLinearInTheta) {
  const SpecCase c = Case();
  if (!c.spec->has_linear_scores()) GTEST_SKIP();
  Rng rng(5000 + GetParam());
  const Vector::Index p = c.spec->ParamDim(c.data);
  const Vector t1 = RandomVector(p, &rng);
  const Vector t2 = RandomVector(p, &rng);
  Vector combo = t1;
  combo *= 2.0;
  Axpy(-0.5, t2, &combo);
  Matrix expected = c.spec->Scores(t1, c.data);
  expected *= 2.0;
  Matrix s2 = c.spec->Scores(t2, c.data);
  s2 *= -0.5;
  expected += s2;
  testing::ExpectMatrixNear(c.spec->Scores(combo, c.data), expected, 1e-9,
                            c.name);
}

// DiffFromScores must agree with Diff.
TEST_P(SpecSweep, DiffFromScoresMatchesDiff) {
  const SpecCase c = Case();
  if (!c.spec->has_linear_scores()) GTEST_SKIP();
  Rng rng(6000 + GetParam());
  const Vector::Index p = c.spec->ParamDim(c.data);
  const Vector t1 = RandomVector(p, &rng);
  const Vector t2 = RandomVector(p, &rng);
  const double from_scores = c.spec->DiffFromScores(
      c.spec->Scores(t1, c.data), c.spec->Scores(t2, c.data), c.data);
  EXPECT_NEAR(from_scores, c.spec->Diff(t1, t2, c.data), 1e-12) << c.name;
}

// Training decreases the objective below the starting point's value and
// reaches (near-)zero gradient.
TEST_P(SpecSweep, TrainingConverges) {
  const SpecCase c = Case();
  const ModelTrainer trainer;
  const auto model = trainer.Train(*c.spec, c.data);
  ASSERT_TRUE(model.ok()) << c.name;
  EXPECT_TRUE(model->converged) << c.name;
  const double at_init =
      c.spec->Objective(c.spec->InitialTheta(c.data), c.data);
  EXPECT_LE(model->objective, at_init + 1e-9) << c.name;
  Vector grad;
  c.spec->Gradient(model->theta, c.data, &grad);
  EXPECT_LT(NormInf(grad), 1e-3) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecSweep, ::testing::Range(0, 7));

// ---------- Model-specific tests ----------

TEST(LinearRegression, MatchesClosedFormRidgeSolution) {
  const Dataset data = MakeSyntheticLinear(400, 6, 200, /*noise=*/0.3);
  const double beta = 0.01;
  LinearRegressionSpec spec(beta);
  const ModelTrainer trainer;
  const auto model = trainer.Train(spec, data);
  ASSERT_TRUE(model.ok());
  // Ridge oracle: (X^T X / n + beta I) theta = X^T y / n.
  Matrix gram = GramCols(data.dense());
  gram *= 1.0 / static_cast<double>(data.num_rows());
  gram.AddToDiagonal(beta);
  Vector xty = MatTVec(data.dense(), data.labels());
  xty *= 1.0 / static_cast<double>(data.num_rows());
  const auto chol = Cholesky::Factor(gram);
  ASSERT_TRUE(chol.ok());
  ExpectVectorNear(model->theta, chol->Solve(xty), 1e-4, "ridge");
}

TEST(LinearRegression, RejectsNegativeL2) {
  EXPECT_THROW(LinearRegressionSpec(-0.1), CheckError);
}

TEST(LinearRegression, ClosedFormHessianMatchesDefinition) {
  const Dataset data = MakeSyntheticLinear(50, 4, 201);
  LinearRegressionSpec spec(0.5);
  Rng rng(7);
  const auto h = spec.ClosedFormHessian(RandomVector(4, &rng), data);
  ASSERT_TRUE(h.ok());
  Matrix expected = GramCols(data.dense());
  expected *= 1.0 / 50.0;
  expected.AddToDiagonal(0.5);
  testing::ExpectMatrixNear(*h, *h, 0.0);
  testing::ExpectMatrixNear(*h, expected, 1e-10);
}

TEST(LogisticRegression, SigmoidIsStableAtExtremes) {
  EXPECT_NEAR(LogisticRegressionSpec::Sigmoid(0.0), 0.5, 1e-15);
  EXPECT_NEAR(LogisticRegressionSpec::Sigmoid(1000.0), 1.0, 1e-15);
  EXPECT_NEAR(LogisticRegressionSpec::Sigmoid(-1000.0), 0.0, 1e-15);
  // No overflow/NaN at extremes; positive wherever exp is representable.
  EXPECT_GT(LogisticRegressionSpec::Sigmoid(-700.0), 0.0);
  EXPECT_LT(LogisticRegressionSpec::Sigmoid(700.0), 1.0 + 1e-15);
  EXPECT_TRUE(std::isfinite(LogisticRegressionSpec::Sigmoid(-1e300)));
}

TEST(LogisticRegression, LearnsSeparableData) {
  // Well-separated classes: the trained model should classify nearly
  // everything correctly.
  Matrix x(200, 2);
  Vector y(200);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    x(i, 0) = (positive ? 3.0 : -3.0) + 0.5 * rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = positive ? 1.0 : 0.0;
  }
  const Dataset data(std::move(x), std::move(y), Task::kBinary);
  LogisticRegressionSpec spec(1e-3);
  const auto model = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(spec.GeneralizationError(model->theta, data), 0.02);
}

TEST(LogisticRegression, ClosedFormHessianMatchesFiniteDifference) {
  const Dataset data = MakeSyntheticLogistic(80, 3, 202);
  LogisticRegressionSpec spec(0.01);
  Rng rng(9);
  const Vector theta = RandomVector(3, &rng);
  const auto h = spec.ClosedFormHessian(theta, data);
  ASSERT_TRUE(h.ok());
  // Finite-difference the gradient.
  const double step = 1e-6;
  for (int j = 0; j < 3; ++j) {
    Vector tp = theta, tm = theta;
    tp[j] += step;
    tm[j] -= step;
    Vector gp, gm;
    spec.Gradient(tp, data, &gp);
    spec.Gradient(tm, data, &gm);
    for (int r = 0; r < 3; ++r) {
      EXPECT_NEAR((*h)(r, j), (gp[r] - gm[r]) / (2.0 * step), 1e-5);
    }
  }
}

TEST(MaxEntropy, SoftmaxSumsToOneAndIsStable) {
  const double scores[3] = {1000.0, 1001.0, 999.0};
  double probs[3];
  MaxEntropySpec::Softmax(scores, 3, probs);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[0], probs[2]);
}

TEST(MaxEntropy, BinaryCaseAgreesWithLogisticRegression) {
  // A 2-class max-entropy model and logistic regression must make the same
  // predictions (their decision boundaries coincide at the MLE).
  const Dataset data = MakeSyntheticLogistic(300, 4, 203);
  const Dataset multiclass(
      Matrix(data.dense()), Vector(data.labels()), Task::kMulticlass, 2);
  LogisticRegressionSpec lr(1e-4);
  MaxEntropySpec me(1e-4);
  const auto lr_model = ModelTrainer().Train(lr, data);
  const auto me_model = ModelTrainer().Train(me, multiclass);
  ASSERT_TRUE(lr_model.ok());
  ASSERT_TRUE(me_model.ok());
  Vector lr_pred, me_pred;
  lr.Predict(lr_model->theta, data, &lr_pred);
  me.Predict(me_model->theta, multiclass, &me_pred);
  int disagreements = 0;
  for (Dataset::Index i = 0; i < data.num_rows(); ++i) {
    if (lr_pred[i] != me_pred[i]) ++disagreements;
  }
  EXPECT_LE(disagreements, 3);  // identical up to boundary ties
}

TEST(MaxEntropy, LearnsWellSeparatedClasses) {
  const Dataset data = MakeSyntheticMulticlass(400, 6, 4, 204, /*spread=*/4.0);
  MaxEntropySpec spec(1e-3);
  const auto model = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(spec.GeneralizationError(model->theta, data), 0.05);
}

TEST(ModelSpec, GeneralizationErrorForClassifiers) {
  Matrix x = {{1.0}, {1.0}, {1.0}, {1.0}};
  Vector y{1.0, 1.0, 0.0, 0.0};
  const Dataset data(std::move(x), std::move(y), Task::kBinary);
  LogisticRegressionSpec spec;
  // theta = [1]: margin 1 > 0 -> predicts 1 everywhere -> 50% error.
  EXPECT_DOUBLE_EQ(spec.GeneralizationError(Vector{1.0}, data), 0.5);
}

TEST(ModelSpec, LabelScaleFallsBackOnDegenerateLabels) {
  Matrix x(3, 1);
  const Dataset constant(Matrix(x), Vector{2.0, 2.0, 2.0}, Task::kRegression);
  EXPECT_DOUBLE_EQ(LabelScale(constant), 1.0);
  const Dataset varied(std::move(x), Vector{0.0, 1.0, 2.0},
                       Task::kRegression);
  EXPECT_NEAR(LabelScale(varied), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(Trainer, RejectsEmptyDataset) {
  LinearRegressionSpec spec;
  const Dataset empty(Matrix(0, 3), Vector(), Task::kUnsupervised);
  EXPECT_FALSE(ModelTrainer().Train(spec, empty).ok());
}

TEST(Trainer, WarmStartReducesIterations) {
  const Dataset data = MakeSyntheticLogistic(500, 8, 205);
  LogisticRegressionSpec spec(1e-3);
  const auto cold = ModelTrainer().Train(spec, data);
  ASSERT_TRUE(cold.ok());
  TrainerOptions warm_options;
  warm_options.warm_start = cold->theta;
  const auto warm = ModelTrainer(warm_options).Train(spec, data);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(warm->iterations, std::max(1, cold->iterations / 2));
}

TEST(Trainer, ForcedOptimizerKindIsRespected) {
  // d=200 would normally select L-BFGS; force BFGS and confirm both reach
  // the same optimum.
  const Dataset data = MakeSyntheticLogistic(300, 120, 206);
  LogisticRegressionSpec spec(1e-2);
  TrainerOptions force_bfgs;
  force_bfgs.optimizer_kind = OptimizerKind::kBfgs;
  const auto a = ModelTrainer(force_bfgs).Train(spec, data);
  const auto b = ModelTrainer().Train(spec, data);  // policy: L-BFGS
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->objective, b->objective, 1e-6);
}

}  // namespace
}  // namespace blinkml
