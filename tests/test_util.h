// Shared helpers for the test suite.

#ifndef BLINKML_TESTS_TEST_UTIL_H_
#define BLINKML_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "random/rng.h"

namespace blinkml {
namespace testing {

/// Random matrix with i.i.d. N(0,1) entries.
inline Matrix RandomMatrix(Matrix::Index rows, Matrix::Index cols, Rng* rng) {
  Matrix m(rows, cols);
  for (Matrix::Index r = 0; r < rows; ++r) {
    for (Matrix::Index c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

/// Random symmetric positive-definite matrix A = B B^T + ridge I.
inline Matrix RandomSpd(Matrix::Index n, Rng* rng, double ridge = 0.5) {
  const Matrix b = RandomMatrix(n, n, rng);
  Matrix a = MatMulT(b, b);
  a.AddToDiagonal(ridge);
  return a;
}

/// Random symmetric (possibly indefinite) matrix.
inline Matrix RandomSymmetric(Matrix::Index n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix at = a.Transposed();
  a += at;
  a *= 0.5;
  return a;
}

/// Random vector with i.i.d. N(0,1) entries.
inline Vector RandomVector(Vector::Index n, Rng* rng) {
  Vector v(n);
  rng->FillNormal(&v);
  return v;
}

/// EXPECT that two matrices agree element-wise within tol.
inline void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol,
                             const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_LE(MaxAbsDiff(a, b), tol) << what;
}

/// EXPECT that two vectors agree element-wise within tol.
inline void ExpectVectorNear(const Vector& a, const Vector& b, double tol,
                             const char* what = "") {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_LE(MaxAbsDiff(a, b), tol) << what;
}

}  // namespace testing
}  // namespace blinkml

#endif  // BLINKML_TESTS_TEST_UTIL_H_
