// Shared test-harness library for the suite (compiled: test_util.cc).
//
// Collects what individual tests used to re-implement: random linear
// algebra helpers, the fixture datasets and configs the session/serving
// tests train on, bitwise-equality asserts for ApproxResult, and a
// thread-count sweep helper for the runtime's determinism contract.

#ifndef BLINKML_TESTS_TEST_UTIL_H_
#define BLINKML_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/contract.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "random/rng.h"

namespace blinkml {
namespace testing {

// ---- Random linear-algebra helpers ----

/// Random matrix with i.i.d. N(0,1) entries.
Matrix RandomMatrix(Matrix::Index rows, Matrix::Index cols, Rng* rng);

/// Random symmetric positive-definite matrix A = B B^T + ridge I.
Matrix RandomSpd(Matrix::Index n, Rng* rng, double ridge = 0.5);

/// Random symmetric (possibly indefinite) matrix.
Matrix RandomSymmetric(Matrix::Index n, Rng* rng);

/// Random vector with i.i.d. N(0,1) entries.
Vector RandomVector(Vector::Index n, Rng* rng);

// ---- Numeric asserts ----

/// EXPECT that two matrices agree element-wise within tol.
void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol,
                      const char* what = "");

/// EXPECT that two vectors agree element-wise within tol.
void ExpectVectorNear(const Vector& a, const Vector& b, double tol,
                      const char* what = "");

/// EXPECT that two training results are bitwise identical: sample sizes,
/// epsilon bounds, flags, and every parameter of the returned model.
void ExpectBitwiseEqual(const ApproxResult& a, const ApproxResult& b,
                        const char* what = "");

// ---- Fixture configs and datasets ----

/// A contract tight enough that every candidate on the fixture datasets
/// runs the full pipeline (size estimation + final training), so
/// equivalence checks cover every stage.
inline constexpr ApproximationContract kTightContract{0.01, 0.05};

/// A loose contract the fixture datasets' initial models satisfy outright
/// (the paper's common regime); statistics then run on the shared D_0.
inline constexpr ApproximationContract kLooseContract{0.08, 0.05};

/// Small Monte-Carlo budgets + 1000-row holdout/D_0: the whole pipeline
/// in well under a second per run.
BlinkConfig FastConfig(std::uint64_t seed = 42);

/// Dense binary-classification workload (MakeSyntheticLogistic under the
/// hood). Defaults fit session/coordinator equivalence tests; pass a dim
/// above the stats sample size (e.g. 300 x 400) for the dense
/// feature-Gram rescale path (p = dim > n_s).
Dataset SmallDenseLogistic(std::int64_t rows = 20000, std::int64_t dim = 6,
                           std::uint64_t seed = 3);

/// Sparse binary dataset sized so ObservedFisher takes the Gram path
/// (p = dim > n_s) with a handful of overlapping nonzeros per row.
Dataset SparseBinaryData(Dataset::Index rows = 400, Dataset::Index dim = 600,
                         std::uint64_t seed = 7,
                         Dataset::Index nnz_per_row = 20);

/// A plausible (not trained) parameter vector: small i.i.d. normal entries.
Vector Trainedish(const Dataset& data, std::uint64_t seed);

// ---- Thread-count sweeps ----

/// Runs `fn` with the runtime disabled (serial reference), then under a
/// shared pool capped at each count in `thread_counts`, and EXPECTs every
/// parallel result bitwise equal to the serial one — the runtime's
/// determinism contract (runtime/parallel.h). `fn` must be pure (same
/// output on every call at a fixed thread count).
void ExpectThreadCountInvariant(const std::function<Vector()>& fn,
                                std::vector<int> thread_counts = {1, 2, 8},
                                const char* what = "");

}  // namespace testing
}  // namespace blinkml

#endif  // BLINKML_TESTS_TEST_UTIL_H_
