// Tests for the parallel runtime: pool lifecycle, exception propagation,
// the determinism contract across thread counts, and end-to-end
// equivalence of the parallel statistics/estimation paths with serial
// execution.

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy_estimator.h"
#include "core/sample_size_estimator.h"
#include "core/statistics.h"
#include "data/generators.h"
#include "models/logistic_regression.h"
#include "models/trainer.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace blinkml {
namespace {

TEST(ThreadPool, StartupShutdownAndTaskExecution) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.parallelism(), 4);
    std::atomic<int> remaining{100};
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] {
        ++count;
        --remaining;
      });
    }
    // Destruction drains the queue before joining the workers.
    while (remaining.load() > 0) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  // ParallelFor on a 1-wide pool runs inline and still covers the range.
  RuntimeOptions options;
  options.pool = &pool;
  RuntimeScope scope(options);
  std::vector<int> hits(64, 0);
  ParallelFor(0, 64, [&](ParallelIndex b, ParallelIndex e) {
    for (ParallelIndex i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ChunkLayoutIsThreadCountIndependent) {
  const ChunkLayout a = ComputeChunks(1000, 8);
  EXPECT_EQ(a.chunk_size, 16);  // ceil(1000 / 64) = 16 > grain
  EXPECT_EQ(a.num_chunks, 63);
  const ChunkLayout b = ComputeChunks(100, 8);
  EXPECT_EQ(b.chunk_size, 8);
  EXPECT_EQ(b.num_chunks, 13);
  EXPECT_EQ(ComputeChunks(0, 8).num_chunks, 0);
}

// Memory-safety contract of MaxChunksForRanges: callers (the eigensolver's
// partial-slot buffer) allocate one buffer for MANY sub-ranges m <= n, and
// num_chunks is not monotone in the range size. Pointwise bound plus
// monotonicity of the bound together give: for all m <= n,
// ComputeChunks(m).num_chunks <= MaxChunksForRanges(n).
TEST(Parallel, MaxChunksForRangesBoundsEverySubRange) {
  for (const ParallelIndex grain : {1, 8, 64}) {
    ParallelIndex prev_bound = 0;
    for (ParallelIndex m = 1; m <= 4096; ++m) {
      const ParallelIndex bound = MaxChunksForRanges(m, grain);
      ASSERT_GE(bound, prev_bound) << "m=" << m << " grain=" << grain;
      ASSERT_LE(ComputeChunks(m, grain).num_chunks, bound)
          << "m=" << m << " grain=" << grain;
      prev_bound = bound;
    }
  }
  EXPECT_EQ(MaxChunksForRanges(0, 8), 0);
}

TEST(Parallel, ForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  RuntimeOptions options;
  options.pool = &pool;
  RuntimeScope scope(options);
  constexpr ParallelIndex kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, [&](ParallelIndex b, ParallelIndex e) {
    for (ParallelIndex i = b; i < e; ++i) ++hits[i];
  });
  for (ParallelIndex i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  RuntimeOptions options;
  options.pool = &pool;
  RuntimeScope scope(options);
  EXPECT_THROW(
      ParallelFor(0, 1000,
                  [&](ParallelIndex b, ParallelIndex) {
                    if (b >= 0) throw std::runtime_error("chunk failure");
                  }),
      std::runtime_error);
  // The pool survives a failed region and keeps executing work.
  std::vector<int> hits(32, 0);
  ParallelFor(0, 32, [&](ParallelIndex b, ParallelIndex e) {
    for (ParallelIndex i = b; i < e; ++i) hits[i] = 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, NestedRegionsRunInline) {
  ThreadPool pool(4);
  RuntimeOptions options;
  options.pool = &pool;
  RuntimeScope scope(options);
  std::atomic<int> total{0};
  ParallelFor(
      0, 256,
      [&](ParallelIndex b, ParallelIndex e) {
        EXPECT_TRUE(InParallelRegion());
        // Inner region must not deadlock waiting for occupied workers.
        ParallelFor(0, 8, [&](ParallelIndex ib, ParallelIndex ie) {
          total += static_cast<int>((ie - ib) * (e - b > 0 ? 1 : 0));
        });
      },
      /*grain=*/4);
  EXPECT_GT(total.load(), 0);
}

// Reduction result must be bitwise identical for 1, 2, and 8 threads
// (fixed chunk -> slot mapping, combined in chunk order).
TEST(Parallel, ReduceIsDeterministicAcrossThreadCounts) {
  // Summands with wildly varying magnitudes so any reassociation of the
  // combine order would change the bits.
  constexpr ParallelIndex kN = 4099;
  std::vector<double> xs(kN);
  Rng rng(7);
  for (auto& x : xs) x = rng.Normal() * std::pow(10.0, rng.Uniform(-8, 8));

  auto sum_with_threads = [&](int threads) {
    ThreadPool pool(threads);
    RuntimeOptions options;
    options.pool = &pool;
    RuntimeScope scope(options);
    return ParallelReduce(
        ParallelIndex{0}, kN, 0.0,
        [&](ParallelIndex b, ParallelIndex e) {
          double s = 0.0;
          for (ParallelIndex i = b; i < e; ++i) s += xs[i];
          return s;
        },
        [](double acc, double part) { return acc + part; });
  };

  const double s1 = sum_with_threads(1);
  const double s2 = sum_with_threads(2);
  const double s8 = sum_with_threads(8);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s8);

  // Disabling the runtime keeps the chunk layout and hence the bits.
  RuntimeOptions serial;
  serial.enabled = false;
  RuntimeScope scope(serial);
  const double s0 = ParallelReduce(
      ParallelIndex{0}, kN, 0.0,
      [&](ParallelIndex b, ParallelIndex e) {
        double s = 0.0;
        for (ParallelIndex i = b; i < e; ++i) s += xs[i];
        return s;
      },
      [](double acc, double part) { return acc + part; });
  EXPECT_EQ(s0, s1);
}

// Full-gradient evaluation (the trainers' hot loop) is bitwise
// reproducible across thread counts.
TEST(Parallel, ModelGradientDeterministicAcrossThreadCounts) {
  const Dataset data = MakeSyntheticLogistic(3000, 24, /*seed=*/3);
  const LogisticRegressionSpec spec(1e-3);
  Rng rng(11);
  const Vector theta = testing::RandomVector(24, &rng);

  auto gradient_with_threads = [&](int threads) {
    ThreadPool pool(threads);
    RuntimeOptions options;
    options.pool = &pool;
    RuntimeScope scope(options);
    Vector grad;
    spec.Gradient(theta, data, &grad);
    return grad;
  };

  const Vector g1 = gradient_with_threads(1);
  const Vector g2 = gradient_with_threads(2);
  const Vector g8 = gradient_with_threads(8);
  ASSERT_EQ(g1.size(), g8.size());
  for (Vector::Index i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(g1[i], g2[i]);
    EXPECT_EQ(g1[i], g8[i]);
  }
}

struct StatisticsRun {
  Vector variances;
  double accuracy_epsilon = 0.0;
  Dataset::Index sample_size = 0;
};

// One full statistics + estimation pass under the given runtime options.
StatisticsRun RunStatistics(const RuntimeOptions& options,
                            Matrix::Index stats_sample) {
  RuntimeScope scope(options);
  const Dataset data = MakeSyntheticLogistic(2000, 20, /*seed=*/5);
  const LogisticRegressionSpec spec(1e-2);
  const auto model = ModelTrainer().Train(spec, data);
  BLINKML_CHECK(model.ok());

  StatsOptions stats_options;
  stats_options.method = StatsMethod::kObservedFisher;
  stats_options.stats_sample_size = stats_sample;
  Rng stats_rng(17);
  auto sampler = ComputeStatistics(spec, model->theta, data, stats_options,
                                   &stats_rng);
  BLINKML_CHECK(sampler.ok());

  StatisticsRun run;
  auto diag = sampler->VarianceDiagonal();
  BLINKML_CHECK(diag.ok());
  run.variances = std::move(*diag);

  const Dataset holdout = MakeSyntheticLogistic(500, 20, /*seed=*/6);
  AccuracyOptions acc_options;
  acc_options.num_samples = 128;
  Rng acc_rng(23);
  auto acc = EstimateAccuracy(spec, model->theta, data.num_rows(),
                              10 * data.num_rows(), *sampler, holdout,
                              acc_options, &acc_rng);
  BLINKML_CHECK(acc.ok());
  run.accuracy_epsilon = acc->epsilon;

  SampleSizeOptions size_options;
  size_options.num_samples = 64;
  size_options.epsilon = acc->epsilon / 4.0;
  Rng size_rng(29);
  auto size = EstimateSampleSize(spec, model->theta, data.num_rows(),
                                 10 * data.num_rows(), *sampler, holdout,
                                 size_options, &size_rng);
  BLINKML_CHECK(size.ok());
  run.sample_size = size->sample_size;
  return run;
}

// ComputeStatistics and the two Monte-Carlo estimators agree between
// serial execution and 1/2/8-thread parallel execution to 1e-10 relative
// tolerance, on both the small-dimension (p <= n_s) and Gram (p > n_s)
// ObservedFisher paths.
TEST(Parallel, StatisticsEquivalentSerialVsParallel) {
  for (const Matrix::Index stats_sample : {Matrix::Index{256},   // p <= n_s
                                           Matrix::Index{16}}) {  // p > n_s
    RuntimeOptions serial;
    serial.enabled = false;
    const StatisticsRun base = RunStatistics(serial, stats_sample);

    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      RuntimeOptions options;
      options.pool = &pool;
      options.num_threads = threads;
      const StatisticsRun run = RunStatistics(options, stats_sample);

      ASSERT_EQ(base.variances.size(), run.variances.size());
      for (Vector::Index i = 0; i < base.variances.size(); ++i) {
        const double scale = std::max(std::abs(base.variances[i]), 1e-300);
        EXPECT_LE(std::abs(base.variances[i] - run.variances[i]) / scale,
                  1e-10)
            << "variance " << i << " with " << threads << " threads";
      }
      const double eps_scale = std::max(std::abs(base.accuracy_epsilon),
                                        1e-300);
      EXPECT_LE(std::abs(base.accuracy_epsilon - run.accuracy_epsilon) /
                    eps_scale,
                1e-10);
      EXPECT_EQ(base.sample_size, run.sample_size);
    }
  }
}

}  // namespace
}  // namespace blinkml
