// Networked serving front (src/net/): a Train/Search/Predict round trip
// through the socket must be bitwise identical to the same SessionManager
// call in-process at any server runner-thread count; malformed frames
// must be answered with error frames without killing the server;
// deadline-expired and over-quota requests must be rejected with their
// distinct statuses without disturbing concurrent jobs.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "util/failpoints.h"
#include "net/codec.h"
#include "net/job_queue.h"
#include "net/protocol.h"
#include "net/quotas.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "tests/test_util.h"

namespace blinkml {
namespace net {
namespace {

std::string SocketPath(const char* tag) {
  return ::testing::TempDir() + "blinkml_net_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

WireConfig FastWireConfig(std::uint64_t seed) {
  WireConfig config;
  config.seed = seed;
  config.initial_sample_size = 1000;
  config.holdout_size = 1000;
  config.accuracy_samples = 256;
  config.size_samples = 128;
  return config;
}

RegisterDatasetRequest LogisticRegistration(const std::string& tenant,
                                            const std::string& name) {
  RegisterDatasetRequest request;
  request.tenant = tenant;
  request.name = name;
  request.generator = WireGenerator::kSyntheticLogistic;
  request.rows = 4000;
  request.dim = 5;
  request.data_seed = 3;
  request.config = FastWireConfig(11);
  return request;
}

void ExpectModelBitwise(const TrainedModel& a, const TrainedModel& b,
                        const char* what) {
  ASSERT_EQ(a.theta.size(), b.theta.size()) << what;
  for (Vector::Index i = 0; i < a.theta.size(); ++i) {
    EXPECT_EQ(a.theta[i], b.theta[i]) << what << " theta[" << i << "]";
  }
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.sample_size, b.sample_size) << what;
}

// --- Round trips -------------------------------------------------------

// The acceptance bar: a Train + Predict through the socket must return the
// exact bits the in-process SessionManager produces, at 1/2/8 server
// runner threads.
TEST(BlinkServer, TrainPredictRoundTripBitwiseAtAnyRunnerThreadCount) {
  const RegisterDatasetRequest registration =
      LogisticRegistration("tenant-a", "wire-logistic");

  // In-process reference: same factory, same config, same request.
  SessionManager reference;
  ASSERT_TRUE(reference
                  .RegisterDataset(
                      registration.name,
                      [registration] {
                        return std::move(*MakeWireDataset(registration));
                      },
                      ToBlinkConfig(registration.config))
                  .ok());
  TrainRequest reference_train;
  reference_train.dataset = registration.name;
  reference_train.spec = *MakeSpecByName("LogisticRegression", 1e-3);
  reference_train.contract = {0.01, 0.05};
  const auto reference_result =
      reference.SubmitTrain(reference_train).get();
  ASSERT_TRUE(reference_result.ok())
      << reference_result.status().ToString();

  // Reference predictions on a deterministic probe matrix.
  const Dataset probe_data = *MakeWireDataset(registration);
  const Dataset::Index probe_rows = 16;
  std::vector<double> probe(static_cast<std::size_t>(probe_rows) * 5);
  for (Dataset::Index r = 0; r < probe_rows; ++r) {
    for (Dataset::Index c = 0; c < 5; ++c) {
      probe[static_cast<std::size_t>(r * 5 + c)] =
          probe_data.dense()(r, c);
    }
  }

  for (const int threads : {1, 2, 8}) {
    SessionManager manager(ServeOptions{0, threads});
    ServerOptions options;
    options.unix_path = SocketPath("roundtrip");
    options.runner_threads = threads;
    BlinkServer server(&manager, options);
    ASSERT_TRUE(server.Start().ok());

    auto client = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    const auto registered = client->RegisterDataset(registration);
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    EXPECT_EQ(registered->dataset_bytes, probe_data.MemoryBytes());

    TrainRequestWire train;
    train.tenant = "tenant-a";
    train.dataset = registration.name;
    train.model_class = "LogisticRegression";
    train.l2 = 1e-3;
    train.epsilon = 0.01;
    train.delta = 0.05;
    const auto trained = client->Train(train);
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();

    ExpectModelBitwise(trained->model, reference_result->model,
                       "served train");
    EXPECT_EQ(trained->sample_size, reference_result->sample_size);
    EXPECT_EQ(trained->full_size, reference_result->full_size);
    EXPECT_EQ(trained->initial_epsilon, reference_result->initial_epsilon);
    EXPECT_EQ(trained->final_epsilon, reference_result->final_epsilon);
    EXPECT_EQ(trained->used_initial_only,
              reference_result->used_initial_only);
    EXPECT_EQ(trained->contract_satisfied,
              reference_result->contract_satisfied);
    EXPECT_EQ(trained->initial_iterations,
              reference_result->initial_iterations);
    EXPECT_EQ(trained->final_iterations,
              reference_result->final_iterations);

    // Ship the served model straight back for predictions; compare with
    // the spec's in-process Predict on the same rows.
    PredictRequestWire predict;
    predict.tenant = "tenant-a";
    predict.model_class = "LogisticRegression";
    predict.model = trained->model;
    predict.rows = probe_rows;
    predict.dim = 5;
    predict.features = probe;
    const auto predicted = client->Predict(predict);
    ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();

    Matrix probe_matrix(probe_rows, 5);
    std::memcpy(probe_matrix.data(), probe.data(),
                probe.size() * sizeof(double));
    const Dataset probe_set(std::move(probe_matrix), Vector(probe_rows),
                            Task::kBinary);
    Vector expected;
    (*MakeSpecByName("LogisticRegression", 1e-3))
        ->Predict(reference_result->model.theta, probe_set, &expected);
    ASSERT_EQ(predicted->predictions.size(),
              static_cast<std::size_t>(expected.size()));
    for (Vector::Index i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(predicted->predictions[static_cast<std::size_t>(i)],
                expected[i])
          << "prediction " << i << " at " << threads << " threads";
    }

    server.Stop();
  }
}

TEST(BlinkServer, SearchRoundTripBitwise) {
  const RegisterDatasetRequest registration =
      LogisticRegistration("tenant-s", "wire-search");

  SessionManager reference;
  ASSERT_TRUE(reference
                  .RegisterDataset(
                      registration.name,
                      [registration] {
                        return std::move(*MakeWireDataset(registration));
                      },
                      ToBlinkConfig(registration.config))
                  .ok());
  SearchRequest reference_search;
  reference_search.dataset = registration.name;
  reference_search.factory = [](const Candidate& c) {
    return *MakeSpecByName("LogisticRegression", c.l2);
  };
  reference_search.candidates = HyperparamSearch::LogGrid(1e-4, 1e-1, 3);
  reference_search.options.contract = {0.01, 0.05};
  const auto reference_outcome =
      reference.SubmitSearch(reference_search).get();
  ASSERT_TRUE(reference_outcome.ok());

  SessionManager manager(ServeOptions{0, 2});
  ServerOptions options;
  options.unix_path = SocketPath("search");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->RegisterDataset(registration).ok());

  SearchRequestWire search;
  search.tenant = "tenant-s";
  search.dataset = registration.name;
  search.model_class = "LogisticRegression";
  for (const Candidate& c : reference_search.candidates) {
    search.candidates.push_back({c.l2, c.seed});
  }
  search.epsilon = 0.01;
  search.delta = 0.05;
  const auto outcome = client->Search(search);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  EXPECT_EQ(outcome->best_index, reference_outcome->best_index);
  ASSERT_EQ(outcome->candidates.size(),
            reference_outcome->candidates.size());
  for (std::size_t i = 0; i < outcome->candidates.size(); ++i) {
    const auto& served = outcome->candidates[i];
    const auto& expected = reference_outcome->candidates[i];
    ASSERT_EQ(served.status == WireStatus::kOk, expected.status.ok());
    EXPECT_EQ(served.l2, expected.candidate.l2);
    EXPECT_EQ(served.score, expected.score);
    EXPECT_EQ(served.final_epsilon, expected.result.final_epsilon);
    EXPECT_EQ(served.sample_size, expected.result.sample_size);
    ExpectModelBitwise(served.model, expected.result.model, "search");
  }
}

// --- Malformed input ---------------------------------------------------

class RawConnection {
 public:
  explicit RawConnection(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void SendRaw(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads one response frame and returns its envelope.
  ResponseEnvelope ReadEnvelope(std::uint64_t* request_id = nullptr) {
    Frame frame;
    const Status status = ReadFrame(fd_, &frame);
    EXPECT_TRUE(status.ok()) << status.ToString();
    ResponseEnvelope envelope;
    if (status.ok()) {
      WireReader reader(frame.payload.data(), frame.payload.size());
      EXPECT_TRUE(Decode(&reader, &envelope).ok());
      if (request_id != nullptr) *request_id = frame.header.request_id;
    }
    return envelope;
  }

  /// True when the server closed its end (EOF within the deadline).
  bool WaitForClose() {
    std::uint8_t byte;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
};

std::vector<std::uint8_t> FrameBytes(const FrameHeader& header,
                                     const std::vector<std::uint8_t>& payload,
                                     bool fix_len = true) {
  FrameHeader h = header;
  if (fix_len) h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(h, bytes.data());
  std::memcpy(bytes.data() + kFrameHeaderBytes, payload.data(),
              payload.size());
  return bytes;
}

std::vector<std::uint8_t> StatsPayload(const std::string& tenant) {
  StatsRequestWire request;
  request.tenant = tenant;
  WireWriter writer;
  Encode(request, &writer);
  return writer.bytes();
}

TEST(BlinkServer, MalformedFramesAnswerErrorsAndServerStaysUp) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("malformed");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  // Bad magic: unsynchronizable -> error frame, then the connection
  // closes.
  {
    RawConnection conn(options.unix_path);
    ASSERT_TRUE(conn.ok());
    FrameHeader header;
    header.verb = Verb::kStats;
    header.request_id = 7;
    std::vector<std::uint8_t> bytes =
        FrameBytes(header, StatsPayload("raw"));
    bytes[0] ^= 0xFF;
    conn.SendRaw(bytes);
    const ResponseEnvelope envelope = conn.ReadEnvelope();
    EXPECT_EQ(envelope.status, WireStatus::kMalformedFrame);
    EXPECT_TRUE(conn.WaitForClose());
  }

  // Oversized payload length: also framing corruption.
  {
    RawConnection conn(options.unix_path);
    ASSERT_TRUE(conn.ok());
    FrameHeader header;
    header.verb = Verb::kStats;
    header.payload_len = kMaxPayloadBytes + 1;
    std::vector<std::uint8_t> bytes(kFrameHeaderBytes);
    EncodeFrameHeader(header, bytes.data());
    conn.SendRaw(bytes);
    const ResponseEnvelope envelope = conn.ReadEnvelope();
    EXPECT_EQ(envelope.status, WireStatus::kMalformedFrame);
    EXPECT_TRUE(conn.WaitForClose());
  }

  // Truncated header + hangup: nothing to answer; the server must just
  // reap the connection.
  {
    RawConnection conn(options.unix_path);
    ASSERT_TRUE(conn.ok());
    conn.SendRaw({0x4B, 0x4E, 0x4C});
  }

  // Unknown verb: in-frame error; the SAME connection keeps working.
  {
    RawConnection conn(options.unix_path);
    ASSERT_TRUE(conn.ok());
    FrameHeader header;
    header.verb = static_cast<Verb>(99);
    header.request_id = 21;
    conn.SendRaw(FrameBytes(header, StatsPayload("raw")));
    std::uint64_t echoed = 0;
    ResponseEnvelope envelope = conn.ReadEnvelope(&echoed);
    EXPECT_EQ(envelope.status, WireStatus::kUnknownVerb);
    EXPECT_EQ(echoed, 21u);

    header.verb = Verb::kStats;
    header.request_id = 22;
    conn.SendRaw(FrameBytes(header, StatsPayload("raw")));
    envelope = conn.ReadEnvelope(&echoed);
    EXPECT_EQ(envelope.status, WireStatus::kOk);
    EXPECT_EQ(echoed, 22u);
  }

  // Version mismatch: error frame with the request id echoed; connection
  // stays alive.
  {
    RawConnection conn(options.unix_path);
    ASSERT_TRUE(conn.ok());
    FrameHeader header;
    header.version = kWireVersion + 1;
    header.verb = Verb::kStats;
    header.request_id = 33;
    conn.SendRaw(FrameBytes(header, StatsPayload("raw")));
    std::uint64_t echoed = 0;
    ResponseEnvelope envelope = conn.ReadEnvelope(&echoed);
    EXPECT_EQ(envelope.status, WireStatus::kVersionMismatch);
    EXPECT_EQ(echoed, 33u);

    header.version = kWireVersion;
    header.request_id = 34;
    conn.SendRaw(FrameBytes(header, StatsPayload("raw")));
    envelope = conn.ReadEnvelope(&echoed);
    EXPECT_EQ(envelope.status, WireStatus::kOk);
  }

  // Undecodable payload (tenant peek fails): kDecodeError, alive.
  {
    RawConnection conn(options.unix_path);
    ASSERT_TRUE(conn.ok());
    FrameHeader header;
    header.verb = Verb::kTrain;
    header.request_id = 40;
    conn.SendRaw(FrameBytes(header, {0x01, 0x02}));
    ResponseEnvelope envelope = conn.ReadEnvelope();
    EXPECT_EQ(envelope.status, WireStatus::kDecodeError);

    header.verb = Verb::kStats;
    header.request_id = 41;
    conn.SendRaw(FrameBytes(header, StatsPayload("raw")));
    envelope = conn.ReadEnvelope();
    EXPECT_EQ(envelope.status, WireStatus::kOk);
  }

  // After all of that abuse, a fresh client still gets full service, and
  // the counters saw every rejection.
  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const auto stats = client->Stats("raw");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->server.rejected_malformed, 2u);
  EXPECT_EQ(stats->server.rejected_unknown_verb, 1u);
  EXPECT_EQ(stats->server.rejected_version, 1u);
  EXPECT_EQ(stats->server.rejected_decode, 1u);
}

// A Predict whose rows * dim wraps 64-bit arithmetic must be answered as
// a decode error, not attempted as an allocation: 2^31 rows x 2^30 dims
// multiply to 2^61 doubles whose byte size is 0 mod 2^64, so a guard
// that multiplies instead of dividing would wave it through.
TEST(BlinkServer, PredictRowsTimesDimOverflowIsADecodeError) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("overflow");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  PredictRequestWire predict;
  predict.tenant = "raw";
  predict.model_class = "LogisticRegression";
  predict.model.theta = Vector(2);
  predict.rows = 1;
  predict.dim = 1;
  predict.features = {1.0};
  WireWriter writer;
  ASSERT_TRUE(Encode(predict, &writer).ok());
  std::vector<std::uint8_t> payload = writer.Take();

  // The payload ends with rows (i64), dim (i64), then the doubles.
  const auto patch_u64 = [&payload](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      payload[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  patch_u64(payload.size() - 24, std::uint64_t{1} << 31);  // rows
  patch_u64(payload.size() - 16, std::uint64_t{1} << 30);  // dim

  RawConnection conn(options.unix_path);
  ASSERT_TRUE(conn.ok());
  FrameHeader header;
  header.verb = Verb::kPredict;
  header.request_id = 50;
  conn.SendRaw(FrameBytes(header, payload));
  std::uint64_t echoed = 0;
  const ResponseEnvelope envelope = conn.ReadEnvelope(&echoed);
  EXPECT_EQ(envelope.status, WireStatus::kDecodeError);
  EXPECT_EQ(echoed, 50u);

  // The connection and the server both survive.
  header.verb = Verb::kStats;
  header.request_id = 51;
  conn.SendRaw(FrameBytes(header, StatsPayload("raw")));
  EXPECT_EQ(conn.ReadEnvelope().status, WireStatus::kOk);
}

// Multi-MB responses must survive the server's non-blocking connection
// fds: a response larger than the free socket send-buffer space sees
// EAGAIN mid-frame, which has to poll-and-resume rather than tear the
// connection down.
TEST(BlinkServer, MultiMegabytePredictRoundTripsBitwise) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("bigresp");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());

  const Dataset::Index rows = 400000;
  const Dataset::Index dim = 2;
  std::vector<double> features(static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < features.size(); ++i) {
    features[i] = 1e-3 * static_cast<double>(i % 997);
  }
  Matrix matrix(rows, dim);
  std::memcpy(matrix.data(), features.data(),
              features.size() * sizeof(double));
  const Dataset data(std::move(matrix), Vector(rows), Task::kBinary);

  const auto spec = *MakeSpecByName("LogisticRegression", 1e-3);
  PredictRequestWire predict;
  predict.tenant = "big";
  predict.model_class = "LogisticRegression";
  predict.model.theta = Vector(spec->ParamDim(data));
  for (Vector::Index i = 0; i < predict.model.theta.size(); ++i) {
    predict.model.theta[i] = 0.25 * static_cast<double>(i + 1);
  }
  predict.rows = rows;
  predict.dim = dim;
  predict.features = features;

  // ~6.4 MB request, ~3.2 MB response — both far beyond kernel socket
  // buffers.
  const auto predicted = client->Predict(predict);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();

  Vector expected;
  spec->Predict(predict.model.theta, data, &expected);
  ASSERT_EQ(predicted->predictions.size(),
            static_cast<std::size_t>(expected.size()));
  for (Vector::Index i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(predicted->predictions[static_cast<std::size_t>(i)],
              expected[i])
        << "prediction " << i;
  }
}

// --- Scheduling --------------------------------------------------------

TEST(BlinkServer, DeadlineExpiredJobsRejectedWithDistinctStatus) {
  SessionManager manager(ServeOptions{0, 1});
  ServerOptions options;
  options.unix_path = SocketPath("deadline");
  options.runner_threads = 1;
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  RegisterDatasetRequest registration =
      LogisticRegistration("tenant-d", "wire-deadline");
  registration.rows = 20000;
  registration.dim = 12;
  auto setup = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(setup->RegisterDataset(registration).ok());

  // One connection, two frames in one write: a Train that occupies the
  // single runner for many milliseconds (it lazily generates 20000 x 12
  // rows first), and a Stats request with a 1 ms deadline. FIFO order
  // guarantees the Stats job waits behind the Train, so its deadline is
  // long gone when the runner reaches it — deterministically, with no
  // sleeps in the test.
  RawConnection conn(options.unix_path);
  ASSERT_TRUE(conn.ok());
  TrainRequestWire train;
  train.tenant = "tenant-d";
  train.dataset = registration.name;
  train.model_class = "LogisticRegression";
  train.epsilon = 0.01;
  train.delta = 0.05;
  WireWriter train_payload;
  Encode(train, &train_payload);
  FrameHeader train_header;
  train_header.verb = Verb::kTrain;
  train_header.request_id = 1;
  FrameHeader stats_header;
  stats_header.verb = Verb::kStats;
  stats_header.request_id = 2;
  stats_header.deadline_ms = 1;
  std::vector<std::uint8_t> burst =
      FrameBytes(train_header, train_payload.bytes());
  const std::vector<std::uint8_t> stats_frame =
      FrameBytes(stats_header, StatsPayload("tenant-d"));
  burst.insert(burst.end(), stats_frame.begin(), stats_frame.end());
  conn.SendRaw(burst);

  // The runner answers in pop order: the (undisturbed) training first,
  // then the expired Stats.
  std::uint64_t echoed = 0;
  ResponseEnvelope envelope = conn.ReadEnvelope(&echoed);
  EXPECT_EQ(envelope.status, WireStatus::kOk);
  EXPECT_EQ(echoed, 1u);
  envelope = conn.ReadEnvelope(&echoed);
  EXPECT_EQ(envelope.status, WireStatus::kDeadlineExceeded);
  EXPECT_EQ(echoed, 2u);

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const auto after = client->Stats("tenant-d");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->server.rejected_deadline, 1u);
}

TEST(BlinkServer, QuotaRejectionsAreDistinctAndScopedToTheTenant) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("quota");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  // Tenant with a one-request burst and a glacial refill.
  TenantQuotaOptions throttled;
  throttled.requests_per_second = 1e-3;
  throttled.burst = 1.0;
  server.quotas().SetTenantOptions("throttled", throttled);

  // Tenant whose byte quota fits nothing.
  TenantQuotaOptions tiny;
  tiny.max_outstanding_bytes = 4;
  tiny.over_quota_retry_ms = 250;
  server.quotas().SetTenantOptions("tiny", tiny);

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->Stats("throttled").ok());
  const auto limited = client->Stats("throttled");
  ASSERT_FALSE(limited.ok());
  EXPECT_NE(limited.status().message().find("RateLimited"),
            std::string::npos);
  EXPECT_GT(client->last_retry_after_ms(), 0u);

  const auto over = client->Stats("tiny");
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("OverQuota"), std::string::npos);
  EXPECT_EQ(client->last_retry_after_ms(), 250u);

  // Unthrottled tenants on the same server are untouched.
  const auto other = client->Stats("other");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->server.rejected_rate, 1u);
  EXPECT_EQ(other->server.rejected_quota, 1u);
}

TEST(BlinkServer, RegisteredDatasetBytesCountAgainstTheByteQuota) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("resident");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  // Room for the dataset plus small request payloads — but nothing
  // sizable on top of the resident charge (4000 x 6 doubles is ~192 KB).
  const RegisterDatasetRequest registration =
      LogisticRegistration("hoarder", "wire-resident");
  const std::uint64_t dataset_bytes =
      MakeWireDataset(registration)->MemoryBytes();
  TenantQuotaOptions quota;
  quota.max_outstanding_bytes = dataset_bytes + 1024;
  server.quotas().SetTenantOptions("hoarder", quota);

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const auto registered = client->RegisterDataset(registration);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_EQ(registered->dataset_bytes, dataset_bytes);
  EXPECT_EQ(server.quotas().ResidentBytes("hoarder"), dataset_bytes);

  // A second dataset would double the resident charge: rejected by the
  // pre-materialization check, leaving the charge untouched.
  const auto second = client->RegisterDataset(
      LogisticRegistration("hoarder", "wire-resident-2"));
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("OverQuota"), std::string::npos);
  EXPECT_EQ(server.quotas().ResidentBytes("hoarder"), dataset_bytes);

  // Any payload bigger than the quota's slack is rejected at enqueue
  // admission because the resident bytes count against the same cap.
  PredictRequestWire predict;
  predict.tenant = "hoarder";
  predict.model_class = "LogisticRegression";
  predict.model.theta = Vector(6);
  predict.rows = 256;
  predict.dim = 5;
  predict.features.assign(256 * 5, 1.0);
  const auto rejected = client->Predict(predict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("OverQuota"),
            std::string::npos);
}

TEST(BlinkServer, OversizedRegisterDatasetRejectedBeforeMaterialization) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("oversized");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  TenantQuotaOptions quota;
  quota.max_outstanding_bytes = 32ull * 1024 * 1024;
  server.quotas().SetTenantOptions("bounded", quota);

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());

  // ~88 MB estimated from a few-hundred-byte request: the tenant's byte
  // quota rejects it from the wire parameters alone — the server must
  // never attempt the allocation.
  RegisterDatasetRequest big = LogisticRegistration("bounded", "big");
  big.rows = 1000000;
  big.dim = 10;
  const auto over = client->RegisterDataset(big);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("OverQuota"), std::string::npos);
  EXPECT_GT(client->last_retry_after_ms(), 0u);
  EXPECT_EQ(server.quotas().ResidentBytes("bounded"), 0u);

  // ~80 TB: beyond even an unlimited byte quota, the server-wide
  // per-dataset cap rejects it (before the quota check — a capped
  // request can never succeed, so "retry later" would mislead).
  RegisterDatasetRequest huge = LogisticRegistration("unbounded", "huge");
  huge.rows = 1000000000;
  huge.dim = 10000;
  const auto capped = client->RegisterDataset(huge);
  ASSERT_FALSE(capped.ok());
  EXPECT_NE(capped.status().message().find("per-dataset cap"),
            std::string::npos);

  // The server is unharmed and the same tenants can still register data
  // that fits.
  const auto small =
      client->RegisterDataset(LogisticRegistration("bounded", "small"));
  ASSERT_TRUE(small.ok()) << small.status().ToString();
}

TEST(BlinkServer, StatsVerbReportsManagerAndServerCounters) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("stats");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->RegisterDataset(LogisticRegistration("t", "wire-stats")).ok());
  TrainRequestWire train;
  train.tenant = "t";
  train.dataset = "wire-stats";
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  ASSERT_TRUE(client->Train(train).ok());

  const auto stats = client->Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->manager.jobs_submitted, 1u);
  EXPECT_EQ(stats->manager.jobs_completed, 1u);
  EXPECT_EQ(stats->manager.live_sessions, 1);
  EXPECT_EQ(stats->manager.loaded_datasets, 1);
  EXPECT_EQ(stats->manager.loads_in_progress, 0);
  EXPECT_GT(stats->manager.cached_bytes, 0u);
  EXPECT_GE(stats->server.frames_received, 3u);
  EXPECT_GE(stats->server.jobs_enqueued, 3u);

  const auto evicted = client->EvictIdle("t");
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted->sessions_evicted, 1);
}

// --- Resilience: shed, connection cap, idle reap, health ---------------

/// Tests below arm failpoints; keep every test hermetic (and immune to a
/// BLINKML_FAILPOINTS env schedule leaking in).
struct ScopedFailpoints {
  ScopedFailpoints() { fail::Failpoints::Global().DisarmAll(); }
  ~ScopedFailpoints() { fail::Failpoints::Global().DisarmAll(); }
};

std::vector<std::uint8_t> TrainPayload(const std::string& tenant,
                                       const std::string& dataset) {
  TrainRequestWire train;
  train.tenant = tenant;
  train.dataset = dataset;
  train.model_class = "LogisticRegression";
  train.epsilon = 0.05;
  train.delta = 0.05;
  WireWriter writer;
  Encode(train, &writer);
  return writer.bytes();
}

TEST(BlinkServer, ShedsAtQueueHighWaterWithRetryHint) {
  ScopedFailpoints guard;
  // Hold the single runner on the first job so the queue backs up.
  ASSERT_TRUE(fail::Failpoints::Global()
                  .ArmFromSpec("manager.train=delay:300@limit:2")
                  .ok());
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("shed");
  options.runner_threads = 1;
  options.shed_queue_depth = 1;
  options.shed_retry_ms = 77;
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  RawConnection conn(options.unix_path);
  ASSERT_TRUE(conn.ok());
  const std::vector<std::uint8_t> payload = TrainPayload("t", "nope");
  FrameHeader header;
  header.verb = Verb::kTrain;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    header.request_id = id;
    conn.SendRaw(FrameBytes(header, payload));
  }
  // The first job occupies the runner (held by the delay failpoint);
  // by the time frame 3 is admitted the queue holds at least one job, so
  // frame 3 must shed — rejected BEFORE enqueue, with the configured
  // hint, regardless of how frames 1/2 interleave with the runner.
  std::map<std::uint64_t, ResponseEnvelope> by_id;
  for (int i = 0; i < 3; ++i) {
    std::uint64_t id = 0;
    const ResponseEnvelope envelope = conn.ReadEnvelope(&id);
    by_id[id] = envelope;
  }
  ASSERT_EQ(by_id.count(3), 1u);
  EXPECT_EQ(by_id[3].status, WireStatus::kOverloaded);
  EXPECT_EQ(by_id[3].retry_after_ms, 77u);
  EXPECT_TRUE(IsRetryableWireStatus(by_id[3].status));

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const auto stats = client->Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->server.rejected_shed, 1u);
}

TEST(BlinkServer, ConnectionCapRejectsWithStructuredFrameAtAccept) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("conncap");
  options.max_connections = 1;
  options.shed_retry_ms = 33;
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto first = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Stats("t").ok());  // the slot is genuinely usable

  // One over the cap: a structured kOverloaded frame, then EOF — never a
  // silent drop.
  RawConnection second(options.unix_path);
  ASSERT_TRUE(second.ok());
  const ResponseEnvelope envelope = second.ReadEnvelope();
  EXPECT_EQ(envelope.status, WireStatus::kOverloaded);
  EXPECT_EQ(envelope.retry_after_ms, 33u);
  EXPECT_TRUE(second.WaitForClose());

  // The in-cap connection is untouched, and a freed slot is reusable.
  EXPECT_TRUE(first->Stats("t").ok());
  const auto stats = first->Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->server.rejected_max_connections, 1u);
  first = Result<BlinkClient>(Status::IOError("dropped"));  // close slot
  // connect() itself succeeds even over the cap (the reject is an error
  // frame at accept), so poll until the IO thread has noticed the freed
  // slot.
  bool reused = false;
  for (int i = 0; i < 100 && !reused; ++i) {
    auto third = BlinkClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(third.ok());
    reused = third->Stats("t").ok();
    if (!reused) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(reused);
}

TEST(BlinkServer, IdleConnectionsAreReapedWithoutAnExtraThread) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("idle");
  options.idle_timeout_ms = 60;
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  RawConnection idle(options.unix_path);
  ASSERT_TRUE(idle.ok());
  // Never sends a byte: the IO loop's poll-timeout reaper must close it.
  EXPECT_TRUE(idle.WaitForClose());

  // The server keeps serving fresh connections afterwards.
  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const auto stats = client->Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->server.idle_reaped, 1u);
}

TEST(BlinkServer, HealthProbeReportsShedAndDrainState) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("health");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  const auto health = client->Health("t");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->accepting);
  EXPECT_FALSE(health->shedding);
  EXPECT_GE(health->open_connections, 1);
  EXPECT_EQ(health->rejected_shed, 0u);
}

// Satellite: the retry-after hint from a rejection must not leak past
// the next successful call.
TEST(BlinkClient, RetryAfterHintResetsOnSuccess) {
  SessionManager manager;
  ServerOptions options;
  options.unix_path = SocketPath("hintreset");
  BlinkServer server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  TenantQuotaOptions throttled;
  throttled.requests_per_second = 1e-3;
  throttled.burst = 1.0;
  server.quotas().SetTenantOptions("throttled", throttled);

  auto client = BlinkClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Stats("throttled").ok());
  ASSERT_FALSE(client->Stats("throttled").ok());
  EXPECT_GT(client->last_retry_after_ms(), 0u);
  EXPECT_EQ(client->last_wire_status(), WireStatus::kRateLimited);

  ASSERT_TRUE(client->Stats("free").ok());
  EXPECT_EQ(client->last_retry_after_ms(), 0u);
  EXPECT_EQ(client->last_wire_status(), WireStatus::kOk);
}

// --- Protocol unit tests -----------------------------------------------

// The server's connection fds are non-blocking; a frame that overruns a
// full send buffer must poll for POLLOUT and resume, not fail with
// EAGAIN. Tiny socket buffers plus a reader that sleeps first make the
// EAGAIN deterministic.
TEST(Protocol, WriteFramePollsThroughAFullSendBufferOnANonBlockingFd) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const int small = 8 * 1024;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(0, ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK));

  std::vector<std::uint8_t> payload(2 * 1024 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  FrameHeader header;
  header.verb = Verb::kPredict;
  header.request_id = 99;

  Frame received;
  Status read_status = Status::OK();
  std::thread reader([&] {
    // Let the writer fill the send buffer and hit EAGAIN before any byte
    // is drained.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    read_status = ReadFrame(fds[1], &received);
  });
  const Status write_status =
      WriteFrame(fds[0], header, payload.data(), payload.size());
  reader.join();
  EXPECT_TRUE(write_status.ok()) << write_status.ToString();
  ASSERT_TRUE(read_status.ok()) << read_status.ToString();
  EXPECT_EQ(received.header.request_id, 99u);
  ASSERT_EQ(received.payload.size(), payload.size());
  EXPECT_TRUE(received.payload == payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

// Satellite: the write-stall timeout is a WriteOptions knob (the server
// passes ServerOptions::write_stall_timeout_ms through), and a stall is
// distinguishable from other IO errors via the out-param.
TEST(Protocol, WriteStallTimeoutIsConfigurableAndReportsTheStall) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const int small = 8 * 1024;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(0, ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK));

  // Nobody ever reads fds[1]: the frame must give up after the
  // configured stall timeout, not the 30s default.
  std::vector<std::uint8_t> payload(4 * 1024 * 1024);
  FrameHeader header;
  header.verb = Verb::kPredict;
  header.request_id = 1;
  WriteOptions options;
  options.stall_timeout_ms = 100;
  bool stalled = false;
  const auto start = std::chrono::steady_clock::now();
  const Status status = WriteFrame(fds[0], header, payload.data(),
                                   payload.size(), options, &stalled);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(stalled);
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 5000);  // gave up at ~the knob, nowhere near 30s
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, ReaderDoublesRejectsCountsWhoseByteSizeWraps) {
  std::vector<std::uint8_t> buf(64, 0);
  WireReader reader(buf.data(), buf.size());
  std::vector<double> out;
  // count * sizeof(double) == 0 mod 2^64: a multiplying bounds check
  // would pass and resize() would attempt a 2^61-element allocation.
  reader.Doubles(std::size_t{1} << 61, &out);
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(out.empty());
}

// --- JobQueue unit tests -----------------------------------------------

TEST(JobQueue, DrainsInPriorityOrderFifoWithinPriority) {
  JobQueue queue;
  std::vector<int> order;
  auto push = [&](int id, std::int32_t priority) {
    JobQueue::Job job;
    job.priority = priority;
    job.run = [&order, id] { order.push_back(id); };
    ASSERT_TRUE(queue.Push(std::move(job)));
  };
  push(1, 0);
  push(2, 5);
  push(3, 0);
  push(4, 5);
  push(5, -1);

  queue.Shutdown();
  JobQueue::Job job;
  while (queue.Pop(&job)) job.run();
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3, 5}));
}

TEST(JobQueue, BoundedPushRejectsWhenFull) {
  JobQueue queue(2);
  JobQueue::Job job;
  job.run = [] {};
  ASSERT_TRUE(queue.Push(JobQueue::Job{0, {}, false, {}, [] {}, [] {}}));
  ASSERT_TRUE(queue.Push(JobQueue::Job{0, {}, false, {}, [] {}, [] {}}));
  EXPECT_FALSE(queue.Push(JobQueue::Job{0, {}, false, {}, [] {}, [] {}}));
  queue.Shutdown();
  EXPECT_FALSE(queue.Push(JobQueue::Job{0, {}, false, {}, [] {}, [] {}}));
}

TEST(JobQueue, ExpiredChecksTheDeadline) {
  JobQueue::Job job;
  EXPECT_FALSE(JobQueue::Expired(job));  // no deadline
  job.has_deadline = true;
  job.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);
  EXPECT_TRUE(JobQueue::Expired(job));
  job.deadline = std::chrono::steady_clock::now() +
                 std::chrono::seconds(60);
  EXPECT_FALSE(JobQueue::Expired(job));
}

// --- TenantQuotas unit tests (fake clock) ------------------------------

TEST(TenantQuotas, TokenBucketRefillsAtTheConfiguredRate) {
  std::uint64_t now_micros = 0;
  TenantQuotaOptions defaults;
  defaults.requests_per_second = 10.0;
  defaults.burst = 2.0;
  TenantQuotas quotas(defaults, [&now_micros] { return now_micros; });

  // Burst of 2, then empty.
  EXPECT_TRUE(quotas.Admit("t", 0).admitted());
  EXPECT_TRUE(quotas.Admit("t", 0).admitted());
  const AdmissionDecision rejected = quotas.Admit("t", 0);
  EXPECT_EQ(rejected.status, WireStatus::kRateLimited);
  // 10 req/s = a token every 100 ms.
  EXPECT_EQ(rejected.retry_after_ms, 100u);

  now_micros += 50 * 1000;  // half a token
  EXPECT_EQ(quotas.Admit("t", 0).retry_after_ms, 50u);
  now_micros += 50 * 1000;  // full token
  EXPECT_TRUE(quotas.Admit("t", 0).admitted());

  // Refill caps at burst even after a long idle stretch.
  now_micros += 3600u * 1000 * 1000;
  EXPECT_TRUE(quotas.Admit("t", 0).admitted());
  EXPECT_TRUE(quotas.Admit("t", 0).admitted());
  EXPECT_EQ(quotas.Admit("t", 0).status, WireStatus::kRateLimited);
}

TEST(TenantQuotas, ByteQuotaChargesOutstandingAndResident) {
  TenantQuotaOptions defaults;
  defaults.max_outstanding_bytes = 100;
  defaults.over_quota_retry_ms = 70;
  TenantQuotas quotas(defaults, [] { return std::uint64_t{0}; });

  EXPECT_TRUE(quotas.Admit("t", 60).admitted());
  EXPECT_EQ(quotas.OutstandingBytes("t"), 60u);
  const AdmissionDecision rejected = quotas.Admit("t", 50);
  EXPECT_EQ(rejected.status, WireStatus::kOverQuota);
  EXPECT_EQ(rejected.retry_after_ms, 70u);

  quotas.Release("t", 60);
  EXPECT_TRUE(quotas.Admit("t", 50).admitted());
  quotas.Release("t", 50);

  // Resident charges shrink what requests may use.
  quotas.ChargeResident("t", 90);
  EXPECT_EQ(quotas.ResidentBytes("t"), 90u);
  EXPECT_EQ(quotas.Admit("t", 20).status, WireStatus::kOverQuota);
  EXPECT_TRUE(quotas.Admit("t", 10).admitted());
  quotas.Release("t", 10);
  quotas.ChargeResident("t", -90);
  EXPECT_EQ(quotas.ResidentBytes("t"), 0u);

  // Tenants are independent.
  EXPECT_TRUE(quotas.Admit("other", 100).admitted());
}

TEST(TenantQuotas, ByteRejectionDoesNotBurnARateToken) {
  TenantQuotaOptions defaults;
  defaults.requests_per_second = 10.0;
  defaults.burst = 1.0;
  defaults.max_outstanding_bytes = 10;
  TenantQuotas quotas(defaults, [] { return std::uint64_t{0}; });

  EXPECT_EQ(quotas.Admit("t", 50).status, WireStatus::kOverQuota);
  // The bucket still has its token: a request that fits passes.
  EXPECT_TRUE(quotas.Admit("t", 5).admitted());
}

}  // namespace
}  // namespace net
}  // namespace blinkml
