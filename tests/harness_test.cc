// Self-checks for the benchmark harness: the workload definitions must
// respect the method's regime requirements (DESIGN.md Section 5.1) or the
// experiment results would be invalid. Run at tiny scale so the guards are
// cheap.

#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/bench_common.h"

namespace blinkml {
namespace bench {
namespace {

std::vector<Workload> TinyWorkloads() {
  // 1% scale: generator floors keep every dataset at >= 1000 rows.
  return MakePaperWorkloads(0.01);
}

TEST(Harness, AllEightPaperWorkloadsPresent) {
  const auto workloads = TinyWorkloads();
  ASSERT_EQ(workloads.size(), 8u);
  std::vector<std::string> names;
  for (const auto& w : workloads) names.push_back(w.name);
  EXPECT_EQ(names[0], "Lin, Gas");
  EXPECT_EQ(names[1], "Lin, Power");
  EXPECT_EQ(names[2], "LR, Criteo");
  EXPECT_EQ(names[3], "LR, HIGGS");
  EXPECT_EQ(names[4], "ME, MNIST");
  EXPECT_EQ(names[5], "ME, Yelp");
  EXPECT_EQ(names[6], "PPCA, MNIST");
  EXPECT_EQ(names[7], "PPCA, HIGGS");
}

TEST(Harness, WorkloadsStayInsideAsymptoticRegime) {
  // For dense feature matrices, n_0 must exceed the parameter count by a
  // comfortable margin (DESIGN.md Section 5.1) — the invariant whose
  // violation produced silently-broken bounds during development. Sparse
  // workloads (hashed CTR, bag-of-words) are exempt: their effective
  // dimension per example is the row nnz (~40-300), far below n_0, which
  // is how the paper's own Criteo (p ~ 1M) and Yelp (p ~ 500K) runs with
  // n_0 = 10K stay inside the regime.
  for (const auto& w : TinyWorkloads()) {
    if (w.data.is_sparse()) {
      const double avg_nnz = static_cast<double>(w.data.sparse().nnz()) /
                             static_cast<double>(w.data.num_rows());
      EXPECT_GE(static_cast<double>(w.initial_sample_size), 10.0 * avg_nnz)
          << w.name;
      continue;
    }
    const auto p = w.spec->ParamDim(w.data);
    EXPECT_GE(w.initial_sample_size, 2 * p)
        << w.name << ": n_0 = " << w.initial_sample_size << ", p = " << p;
  }
}

TEST(Harness, TagFilterSelectsSubsets) {
  EXPECT_EQ(MakePaperWorkloads(0.01, "Lin").size(), 2u);
  EXPECT_EQ(MakePaperWorkloads(0.01, "LR").size(), 2u);
  EXPECT_EQ(MakePaperWorkloads(0.01, "ME").size(), 2u);
  EXPECT_EQ(MakePaperWorkloads(0.01, "PPCA").size(), 2u);
  EXPECT_EQ(MakePaperWorkloads(0.01, "nope").size(), 0u);
}

TEST(Harness, TasksAndSparsityMatchThePaper) {
  const auto workloads = TinyWorkloads();
  EXPECT_EQ(workloads[0].data.task(), Task::kRegression);
  EXPECT_EQ(workloads[1].data.task(), Task::kRegression);
  EXPECT_EQ(workloads[2].data.task(), Task::kBinary);
  EXPECT_TRUE(workloads[2].data.is_sparse());  // Criteo
  EXPECT_EQ(workloads[3].data.task(), Task::kBinary);
  EXPECT_EQ(workloads[4].data.task(), Task::kMulticlass);
  EXPECT_EQ(workloads[4].data.num_classes(), 10);  // MNIST
  EXPECT_EQ(workloads[5].data.task(), Task::kMulticlass);
  EXPECT_TRUE(workloads[5].data.is_sparse());  // Yelp
  EXPECT_EQ(workloads[5].data.num_classes(), 5);
  EXPECT_EQ(workloads[6].data.task(), Task::kUnsupervised);
  EXPECT_EQ(workloads[7].data.task(), Task::kUnsupervised);
}

TEST(Harness, AccuracyLevelsMatchThePaperSweeps) {
  const auto workloads = TinyWorkloads();
  // GLMs sweep 80-99% (8 levels); PPCA sweeps 90-99.99% (7 levels).
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(workloads[i].accuracy_levels.size(), 8u) << i;
    EXPECT_DOUBLE_EQ(workloads[i].accuracy_levels.front(), 0.80);
    EXPECT_DOUBLE_EQ(workloads[i].accuracy_levels.back(), 0.99);
  }
  for (std::size_t i = 6; i < 8; ++i) {
    EXPECT_EQ(workloads[i].accuracy_levels.size(), 7u) << i;
    EXPECT_DOUBLE_EQ(workloads[i].accuracy_levels.front(), 0.90);
    EXPECT_DOUBLE_EQ(workloads[i].accuracy_levels.back(), 0.9999);
  }
}

TEST(Harness, AccuracyLabelFormatting) {
  EXPECT_EQ(AccuracyLabel(0.80), "80%");
  EXPECT_EQ(AccuracyLabel(0.95), "95%");
  EXPECT_EQ(AccuracyLabel(0.995), "99.5%");
  EXPECT_EQ(AccuracyLabel(0.9995), "99.95%");
  EXPECT_EQ(AccuracyLabel(1.0), "100%");
}

TEST(Harness, ScaleEnvParsing) {
  // Only exercised when the variable is absent: default is 1.0 (the test
  // runner does not set it).
  if (std::getenv("BLINKML_SCALE") == nullptr) {
    EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  }
  if (std::getenv("BLINKML_REPEATS") == nullptr) {
    EXPECT_EQ(RepeatsFromEnv(7), 7);
  }
}

TEST(Harness, ParseBenchFlagsRejectsUnknownFlagsWithUsage) {
  // A typo must never silently run the default configuration.
  char prog[] = "bench_x";
  char bogus[] = "--jsno";
  char* argv[] = {prog, bogus};
  EXPECT_EXIT(ParseBenchFlags(2, argv, "BENCH_x.json"),
              ::testing::ExitedWithCode(2), "unknown flag --jsno");

  char bad_value[] = "--threads=banana";
  char* argv2[] = {prog, bad_value};
  EXPECT_EXIT(ParseBenchFlags(2, argv2, "BENCH_x.json"),
              ::testing::ExitedWithCode(2), "positive integer");
}

TEST(Harness, ParseBenchFlagsHandlesRegisteredExtraFlags) {
  int requests = 5;
  const std::vector<ExtraIntFlag> extra = {
      {"requests", "requests per client", &requests}};

  char prog[] = "bench_x";
  char flag[] = "--requests=64";
  char* argv[] = {prog, flag};
  const BenchFlags flags = ParseBenchFlags(2, argv, "BENCH_x.json", extra);
  EXPECT_EQ(requests, 64);
  EXPECT_FALSE(flags.json);

  // Unregistered extras still die, and the usage lists the extra flag.
  char bogus[] = "--requets=64";
  char* argv2[] = {prog, bogus};
  EXPECT_EXIT(ParseBenchFlags(2, argv2, "BENCH_x.json", extra),
              ::testing::ExitedWithCode(2), "--requests=N");
}

TEST(Harness, PercentileUsesNearestRank) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_EQ(Percentile({42.0}, 99.0), 42.0);
  const std::vector<double> values = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_EQ(Percentile(values, 50.0), 3.0);
  EXPECT_EQ(Percentile(values, 90.0), 5.0);
  EXPECT_EQ(Percentile(values, 100.0), 5.0);
}

TEST(Harness, ConfigAdaptsStatisticsSampleToDimension) {
  const auto workloads = TinyWorkloads();
  for (const auto& w : workloads) {
    const BlinkConfig config = ConfigFor(w, 1);
    const auto p = w.spec->ParamDim(w.data);
    if (p > 1200) {
      EXPECT_EQ(config.stats_sample_size, 640) << w.name;
    } else {
      EXPECT_EQ(config.stats_sample_size, 1024) << w.name;
    }
    EXPECT_EQ(config.initial_sample_size, w.initial_sample_size);
  }
}

}  // namespace
}  // namespace bench
}  // namespace blinkml
