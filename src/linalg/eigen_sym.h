// Symmetric eigendecomposition A = V diag(w) V^T.
//
// Two-phase classical algorithm: Householder reduction to tridiagonal form
// followed by the implicit-shift QL iteration. O(n^3) overall, robust for
// the sizes this library needs (Gram matrices up to a few thousand rows,
// PPCA covariances up to ~1000 features).
//
// This is the backbone of three core paths:
//  * ObservedFisher: eigendecomposition of the gradient Gram matrix gives
//    the SVD factor of the per-example gradient matrix (paper Section 3.4);
//  * the covariance-free parameter sampler (paper Section 4.3);
//  * the PPCA closed-form MLE (top-q eigenpairs of the sample covariance).

#ifndef BLINKML_LINALG_EIGEN_SYM_H_
#define BLINKML_LINALG_EIGEN_SYM_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace blinkml {

/// Eigendecomposition of a symmetric matrix.
struct SymmetricEigen {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Column i of `eigenvectors` is the unit eigenvector for eigenvalues[i].
  Matrix eigenvectors;
};

/// Computes the full eigendecomposition of symmetric `a`.
///
/// `a` is symmetrized internally ((A + A^T)/2) so small asymmetries from
/// accumulated round-off are tolerated. Fails with NotConverged if the QL
/// iteration exceeds its sweep budget (pathological inputs only).
Result<SymmetricEigen> EigenSym(const Matrix& a);

/// Eigenvalues only (skips eigenvector accumulation; ~2x faster).
Result<Vector> EigenSymValues(const Matrix& a);

}  // namespace blinkml

#endif  // BLINKML_LINALG_EIGEN_SYM_H_
