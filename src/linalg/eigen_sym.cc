#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "runtime/parallel.h"
#include "util/string_util.h"

namespace blinkml {

namespace {

using Index = Matrix::Index;

double Hypot(double a, double b) { return std::hypot(a, b); }

// Row ranges below this size run their chunk loops inline: the pool
// handoff costs more than the O(rows * n) work of a Householder step.
// Both paths go through ParallelForChunks — the inline one under a
// disabled runtime scope — so there is exactly one chunk-to-range
// mapping, and the threshold (a pure function of the range size) never
// changes results; see the determinism contract in runtime/parallel.h.
constexpr ParallelIndex kParallelEigenRows = 128;

void ForEigenChunks(
    ParallelIndex rows, const ChunkLayout& layout,
    const std::function<void(ParallelIndex, ParallelIndex, ParallelIndex)>&
        body) {
  if (rows >= kParallelEigenRows) {
    ParallelForChunks(0, rows, layout, body);
  } else {
    RuntimeOptions serial;
    serial.enabled = false;
    RuntimeScope scope(serial);
    ParallelForChunks(0, rows, layout, body);
  }
}

// Householder reduction of symmetric z (n x n, modified in place) to
// tridiagonal form. On exit: d holds the diagonal, e the sub-diagonal
// (e[0] unused), and — when want_vectors — z holds the orthogonal matrix Q
// of the similarity transform Q^T A Q = T.
//
// Loops are arranged so every O(n^3) inner loop walks matrix rows
// contiguously (k-outer accumulation instead of column dot products);
// this matters: the naive formulation is ~10x slower at n = 1024.
void Tridiagonalize(Matrix* z_mat, Vector* d_vec, Vector* e_vec,
                    bool want_vectors) {
  Matrix& z = *z_mat;
  Vector& d = *d_vec;
  Vector& e = *e_vec;
  const Index n = z.rows();

  // Per-chunk partial rows for the parallel accumulations below (e := A v
  // and g := v^T Z). The steps' row ranges shrink from n-1 to 1 and the
  // chunk count is not monotone in the range size, so size the buffer by
  // the bound over every sub-range, not by the largest layout alone.
  const ParallelIndex max_chunks =
      MaxChunksForRanges(static_cast<ParallelIndex>(n), kFineGrain);
  std::vector<double> partials(
      static_cast<std::size_t>(std::max<ParallelIndex>(max_chunks, 1) * n));

  for (Index i = n - 1; i >= 1; --i) {
    const Index l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    const double* zi = z.row_data(i);
    if (l > 0) {
      for (Index k = 0; k <= l; ++k) scale += std::fabs(zi[k]);
      if (scale == 0.0) {
        e[i] = zi[l];
      } else {
        double* zi_mut = z.row_data(i);
        const double inv_scale = 1.0 / scale;
        for (Index k = 0; k <= l; ++k) {
          zi_mut[k] *= inv_scale;
          h += zi_mut[k] * zi_mut[k];
        }
        double f = zi_mut[l];
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        zi_mut[l] = f - g;
        // e[0..l] := (A v) / h where v is the Householder vector stored in
        // row i. Only the lower triangle of A is valid; accumulate with
        // row-contiguous sweeps: for each row j, its contribution to
        // e[0..j] uses row j directly, and its contribution to e[j] from
        // rows k > j is gathered when visiting those rows. Row chunks run
        // in parallel, each into its own partial slot; slots combine in
        // chunk order, so the result is identical for any thread count.
        const ParallelIndex rows = static_cast<ParallelIndex>(l) + 1;
        const ChunkLayout layout = ComputeChunks(rows, kFineGrain);
        ForEigenChunks(
            rows, layout,
            [&](ParallelIndex chunk, ParallelIndex jb, ParallelIndex je) {
              double* pe = partials.data() + chunk * n;
              std::fill(pe, pe + rows, 0.0);
              for (ParallelIndex j = jb; j < je; ++j) {
                const double* zj = z.row_data(j);
                const double vj = zi_mut[j];
                double acc = 0.0;
                for (ParallelIndex k = 0; k < j; ++k) {
                  acc += zj[k] * zi_mut[k];  // A(j,k) * v_k
                  pe[k] += zj[k] * vj;       // A(k,j) * v_j, symmetric image
                }
                pe[j] += acc + zj[j] * vj;
              }
            });
        for (Index k = 0; k <= l; ++k) e[k] = 0.0;
        for (ParallelIndex c = 0; c < layout.num_chunks; ++c) {
          const double* pe = partials.data() + c * n;
          for (Index k = 0; k <= l; ++k) e[k] += pe[k];
        }
        f = 0.0;
        const double inv_h = 1.0 / h;
        for (Index j = 0; j <= l; ++j) {
          e[j] *= inv_h;
          f += e[j] * zi_mut[j];
        }
        const double hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) e[j] -= hh * zi_mut[j];
        // Rank-2 update A := A - v w^T - w v^T on the lower triangle,
        // row-contiguous. Rows are independent, so the parallel split is
        // bitwise identical to the serial sweep.
        ForEigenChunks(
            rows, layout,
            [&](ParallelIndex, ParallelIndex jb, ParallelIndex je) {
              for (ParallelIndex j = jb; j < je; ++j) {
                const double vj = zi_mut[j];
                const double wj = e[j];
                double* zj = z.row_data(j);
                for (ParallelIndex k = 0; k <= j; ++k) {
                  zj[k] -= vj * e[k] + wj * zi_mut[k];
                }
              }
            });
      }
    } else {
      e[i] = zi[l];
    }
    d[i] = h;
  }

  if (want_vectors) d[0] = 0.0;
  e[0] = 0.0;

  for (Index i = 0; i < n; ++i) {
    if (want_vectors) {
      const Index l = i - 1;
      if (d[i] != 0.0) {
        // Accumulate the transform: for the leading l+1 block,
        // Z := (I - v v^T / h) Z with v in row i. Row-contiguous form:
        // g[j] = sum_k v_k Z(k, j) computed k-outer, then
        // Z(k, j) -= g[j] * v_k, also k-outer.
        const double* vi = z.row_data(i);
        const ParallelIndex rows = static_cast<ParallelIndex>(l) + 1;
        const ChunkLayout layout = ComputeChunks(rows, kFineGrain);
        // g[j] = sum_k v_k Z(k, j), k-outer per chunk into a partial slot;
        // slots combine in chunk order (thread-count independent).
        ForEigenChunks(
            rows, layout,
            [&](ParallelIndex chunk, ParallelIndex kb, ParallelIndex ke) {
              double* pg = partials.data() + chunk * n;
              std::fill(pg, pg + rows, 0.0);
              for (ParallelIndex k = kb; k < ke; ++k) {
                const double vk = vi[k];
                if (vk == 0.0) continue;
                const double* zk = z.row_data(k);
                for (ParallelIndex j = 0; j < rows; ++j) {
                  pg[j] += vk * zk[j];
                }
              }
            });
        std::vector<double> g(static_cast<std::size_t>(l + 1), 0.0);
        for (ParallelIndex c = 0; c < layout.num_chunks; ++c) {
          const double* pg = partials.data() + c * n;
          for (ParallelIndex j = 0; j < rows; ++j) {
            g[static_cast<std::size_t>(j)] += pg[j];
          }
        }
        // vi entries were scaled by 1/h when stored column-wise in the
        // classical algorithm; here divide once during the update. Rows of
        // Z are independent, so the parallel split is bitwise identical to
        // the serial sweep.
        const double inv_h = 1.0 / d[i];
        ForEigenChunks(
            rows, layout,
            [&](ParallelIndex, ParallelIndex kb, ParallelIndex ke) {
              for (ParallelIndex k = kb; k < ke; ++k) {
                const double vk = vi[k] * inv_h;
                if (vk == 0.0) continue;
                double* zk = z.row_data(k);
                for (ParallelIndex j = 0; j < rows; ++j) {
                  zk[j] -= vk * g[static_cast<std::size_t>(j)];
                }
              }
            });
      }
      d[i] = z(i, i);
      z(i, i) = 1.0;
      for (Index j = 0; j < i; ++j) {
        z(j, i) = 0.0;
        z(i, j) = 0.0;
      }
    } else {
      d[i] = z(i, i);
    }
  }
}

// Applies a deferred chain of Givens rotations to zt: rotation j rotates
// Z columns (i, i+1) with i = m - 1 - j, which in the transposed storage
// is rows (i, i+1). Elements interact only within one k (a zt column), so
// the chain is applied per k-chunk in parallel — one coarse region per
// sweep instead of one pool handoff per O(n)-flop rotation — and the
// per-element operation sequence is exactly the serial one (bitwise
// identical at any thread count; runtime/parallel.h).
void ApplyRotationChain(Matrix* zt_mat, Index m,
                        const std::vector<double>& rot_s,
                        const std::vector<double>& rot_c) {
  Matrix& zt = *zt_mat;
  const auto cols = static_cast<ParallelIndex>(zt.cols());
  const auto count = static_cast<Index>(rot_s.size());
  auto apply = [&](ParallelIndex kb, ParallelIndex ke) {
    for (Index j = 0; j < count; ++j) {
      const Index i = m - 1 - j;
      const double s = rot_s[static_cast<std::size_t>(j)];
      const double c = rot_c[static_cast<std::size_t>(j)];
      double* row_i = zt.row_data(i);
      double* row_i1 = zt.row_data(i + 1);
      for (ParallelIndex k = kb; k < ke; ++k) {
        const double t = row_i1[k];
        row_i1[k] = s * row_i[k] + c * t;
        row_i[k] = c * row_i[k] - s * t;
      }
    }
  };
  if (cols >= kParallelEigenRows) {
    ParallelForChunks(0, cols, ComputeChunks(cols, kDefaultGrain),
                      [&](ParallelIndex, ParallelIndex kb, ParallelIndex ke) {
                        apply(kb, ke);
                      });
  } else {
    apply(0, cols);
  }
}

// Implicit-shift QL iteration on the tridiagonal (d, e). When want_vectors,
// accumulates the rotations into zt, which holds the eigenvector matrix
// TRANSPOSED (row r of zt is the r-th column of Z): a Givens rotation of
// columns (i, i+1) of Z touches two contiguous rows of zt. The d/e
// recurrence is sequential, so each sweep's rotation coefficients are
// recorded and the zt accumulation is applied afterwards as one batched,
// column-parallel chain (ApplyRotationChain).
Status QlImplicit(Vector* d_vec, Vector* e_vec, Matrix* zt_mat,
                  bool want_vectors) {
  Vector& d = *d_vec;
  Vector& e = *e_vec;
  Matrix& zt = *zt_mat;
  const Index n = d.size();
  constexpr int kMaxSweeps = 50;

  for (Index i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  std::vector<double> rot_s;
  std::vector<double> rot_c;
  if (want_vectors) {
    rot_s.reserve(static_cast<std::size_t>(n));
    rot_c.reserve(static_cast<std::size_t>(n));
  }

  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    Index m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 ||
            std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (++iter > kMaxSweeps) {
          return Status::NotConverged(
              StrFormat("QL iteration exceeded %d sweeps", kMaxSweeps));
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        rot_s.clear();
        rot_c.clear();
        for (Index i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = Hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // No rotation this iteration: the chain recorded so far is
            // exactly what the element-wise serial version had applied.
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (want_vectors) {
            rot_s.push_back(s);
            rot_c.push_back(c);
          }
        }
        if (want_vectors && !rot_s.empty()) {
          ApplyRotationChain(&zt, m, rot_s, rot_c);
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return Status::OK();
}

// Sorts eigenvalues ascending, permuting the (transposed) eigenvector rows
// to match, and returns the eigenvectors in conventional column form.
void SortAndTranspose(Vector* d, Matrix* zt, Matrix* z_out,
                      bool want_vectors) {
  const Index n = d->size();
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](Index a, Index b) { return (*d)[a] < (*d)[b]; });
  Vector sorted_d(n);
  for (Index i = 0; i < n; ++i) sorted_d[i] = (*d)[order[i]];
  *d = std::move(sorted_d);
  if (want_vectors) {
    *z_out = Matrix(n, n);
    for (Index i = 0; i < n; ++i) {
      const double* src = zt->row_data(order[i]);
      for (Index r = 0; r < n; ++r) (*z_out)(r, i) = src[r];
    }
  }
}

Result<SymmetricEigen> EigenSymImpl(const Matrix& a, bool want_vectors) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSym requires a square matrix");
  }
  const Index n = a.rows();
  if (n == 0) {
    return SymmetricEigen{Vector(), Matrix()};
  }
  // Work on the symmetrized copy to absorb round-off asymmetry.
  Matrix z(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) z(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  Vector d(n);
  Vector e(n);
  if (n == 1) {
    d[0] = z(0, 0);
    z(0, 0) = 1.0;
    return SymmetricEigen{std::move(d), std::move(z)};
  }
  Tridiagonalize(&z, &d, &e, want_vectors);
  // QL works on the transposed accumulation (see QlImplicit).
  Matrix zt;
  if (want_vectors) zt = z.Transposed();
  BLINKML_RETURN_NOT_OK(QlImplicit(&d, &e, &zt, want_vectors));
  Matrix vectors;
  SortAndTranspose(&d, &zt, &vectors, want_vectors);
  return SymmetricEigen{std::move(d), std::move(vectors)};
}

}  // namespace

Result<SymmetricEigen> EigenSym(const Matrix& a) {
  return EigenSymImpl(a, /*want_vectors=*/true);
}

Result<Vector> EigenSymValues(const Matrix& a) {
  BLINKML_ASSIGN_OR_RETURN(SymmetricEigen eig,
                           EigenSymImpl(a, /*want_vectors=*/false));
  return std::move(eig.eigenvalues);
}

}  // namespace blinkml
