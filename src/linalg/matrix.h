// Dense row-major double-precision matrix with the operations the BlinkML
// core needs: products (cache-blocked), transposes, row/column access,
// Gram matrices, and symmetric utilities.

#ifndef BLINKML_LINALG_MATRIX_H_
#define BLINKML_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vector.h"
#include "util/check.h"

namespace blinkml {

class Matrix {
 public:
  using Index = std::ptrdiff_t;

  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    BLINKML_CHECK_GE(rows, 0);
    BLINKML_CHECK_GE(cols, 0);
  }
  /// Row-major construction from nested initializer lists (for tests).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(Index n);
  /// Square matrix with `diag` on the diagonal.
  static Matrix Diagonal(const Vector& diag);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }

  double operator()(Index r, Index c) const {
    BLINKML_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  double& operator()(Index r, Index c) {
    BLINKML_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  /// Pointer to the start of row r.
  const double* row_data(Index r) const { return data() + r * cols_; }
  double* row_data(Index r) { return data() + r * cols_; }

  /// Copies row r into a Vector.
  Vector Row(Index r) const;
  /// Copies column c into a Vector.
  Vector Col(Index c) const;
  void SetRow(Index r, const Vector& v);
  void SetCol(Index c, const Vector& v);

  void Fill(double v);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Adds s to every diagonal element (square not required; uses min dim).
  void AddToDiagonal(double s);

  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max absolute element.
  double MaxAbs() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B (cache-blocked ikj kernel).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing A^T.
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector MatVec(const Matrix& a, const Vector& x);

/// y = A^T * x without materializing A^T.
Vector MatTVec(const Matrix& a, const Vector& x);

/// Symmetric Gram matrix A * A^T (rows x rows); exploits symmetry.
Matrix GramRows(const Matrix& a);

/// Symmetric Gram matrix A^T * A (cols x cols); exploits symmetry.
Matrix GramCols(const Matrix& a);

/// Max absolute element-wise difference; shapes must match.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

/// Normwise relative difference MaxAbsDiff(a, b) / max|b| (tiny-floored):
/// the kernel-vs-oracle tolerance metric (tests/kernels_test.cc,
/// bench_kernels) — one definition so bench and tests gate on the same
/// number.
double MaxRelDiff(const Matrix& a, const Matrix& b);

/// (1/size) * Frobenius norm of (a - b): the per-entry covariance error
/// metric of paper Figure 9b.
double MeanFrobeniusError(const Matrix& a, const Matrix& b);

}  // namespace blinkml

#endif  // BLINKML_LINALG_MATRIX_H_
