// LU factorization with partial pivoting; general square solver.
//
// Used where symmetric positive definiteness is not guaranteed (e.g. the
// InverseGradients Hessian estimate H ~= R P^{-1}, which is only
// approximately symmetric before symmetrization).

#ifndef BLINKML_LINALG_LU_H_
#define BLINKML_LINALG_LU_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace blinkml {

class Lu {
 public:
  /// Factors a square matrix; fails with InvalidArgument on exact/near
  /// singularity.
  static Result<Lu> Factor(const Matrix& a);

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// Dense inverse (prefer Solve when possible).
  Matrix Inverse() const;

  /// det(A).
  double Determinant() const;

 private:
  Lu(Matrix lu, std::vector<Matrix::Index> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}

  Matrix lu_;                        // packed L (unit diag) and U
  std::vector<Matrix::Index> perm_;  // row permutation
  int sign_;                         // permutation parity
};

}  // namespace blinkml

#endif  // BLINKML_LINALG_LU_H_
