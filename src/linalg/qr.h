// Householder QR factorization and least-squares solver.
//
// Used by the linear-regression closed-form oracle in tests and available
// as a public building block.

#ifndef BLINKML_LINALG_QR_H_
#define BLINKML_LINALG_QR_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace blinkml {

class Qr {
 public:
  /// Factors an m x n matrix with m >= n.
  static Result<Qr> Factor(const Matrix& a);

  /// Minimizes ||A x - b||_2; fails with InvalidArgument if A is
  /// numerically rank-deficient.
  Result<Vector> Solve(const Vector& b) const;

  /// The upper-triangular factor R (n x n).
  Matrix R() const;

  /// Explicit thin Q (m x n); O(m n^2).
  Matrix ThinQ() const;

 private:
  Qr(Matrix qr, Vector tau) : qr_(std::move(qr)), tau_(std::move(tau)) {}

  // Packed Householder vectors below the diagonal of qr_, R on and above.
  Matrix qr_;
  Vector tau_;
};

}  // namespace blinkml

#endif  // BLINKML_LINALG_QR_H_
