// Dense double-precision vector.
//
// A thin, contiguous container with the numeric operations the rest of the
// library needs (dot, norms, axpy, scaling). Kept deliberately simple: no
// expression templates; hot compound operations have dedicated fused
// functions instead.

#ifndef BLINKML_LINALG_VECTOR_H_
#define BLINKML_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/check.h"

namespace blinkml {

class Vector {
 public:
  using Index = std::ptrdiff_t;

  Vector() = default;
  /// Zero-initialized vector of the given size.
  explicit Vector(Index n) : data_(CheckedSize(n), 0.0) {}
  Vector(Index n, double fill) : data_(CheckedSize(n), fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double operator[](Index i) const {
    BLINKML_DCHECK(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  double& operator[](Index i) {
    BLINKML_DCHECK(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  const std::vector<double>& values() const { return data_; }

  /// Sets every element to `v`.
  void Fill(double v);

  /// Resizes, zero-filling new elements.
  void Resize(Index n);

  // -- Arithmetic (element-wise; sizes must match) --
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(Vector a, double s) { return a *= s; }
  friend Vector operator*(double s, Vector a) { return a *= s; }
  friend Vector operator/(Vector a, double s) { return a /= s; }

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  static std::size_t CheckedSize(Index n) {
    BLINKML_CHECK_GE(n, 0);
    return static_cast<std::size_t>(n);
  }

  std::vector<double> data_;
};

/// Inner product <a, b>; sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// Squared Euclidean norm.
double SquaredNorm2(const Vector& v);

/// Max-absolute-value norm; 0 for the empty vector.
double NormInf(const Vector& v);

/// y += alpha * x (fused multiply-add; sizes must match).
void Axpy(double alpha, const Vector& x, Vector* y);

/// Cosine similarity <a,b>/(|a||b|); checks both norms are nonzero.
double CosineSimilarity(const Vector& a, const Vector& b);

/// Element-wise maximum absolute difference.
double MaxAbsDiff(const Vector& a, const Vector& b);

/// Normwise relative difference MaxAbsDiff(a, b) / NormInf(b)
/// (tiny-floored); see the Matrix overload in linalg/matrix.h.
double MaxRelDiff(const Vector& a, const Vector& b);

}  // namespace blinkml

#endif  // BLINKML_LINALG_VECTOR_H_
