#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen_sym.h"

namespace blinkml {

namespace {
using Index = Matrix::Index;

// Orders an eigendecomposition of a Gram matrix into descending singular
// values, clamping tiny negative eigenvalues (round-off) to zero.
void EigenToSingular(const SymmetricEigen& eig, Vector* s, Matrix* vecs) {
  const Index r = eig.eigenvalues.size();
  s->Resize(r);
  *vecs = Matrix(eig.eigenvectors.rows(), r);
  // Eigenvalues come back ascending; reverse to descending.
  for (Index i = 0; i < r; ++i) {
    const Index src = r - 1 - i;
    const double lambda = std::max(0.0, eig.eigenvalues[src]);
    (*s)[i] = std::sqrt(lambda);
    for (Index row = 0; row < vecs->rows(); ++row) {
      (*vecs)(row, i) = eig.eigenvectors(row, src);
    }
  }
}

}  // namespace

Result<Svd> GramSvd(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("GramSvd of an empty matrix");
  }
  Svd out;
  if (m <= n) {
    // Eigendecompose A A^T (m x m): A A^T = U S^2 U^T, then V = A^T U S^-1.
    BLINKML_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSym(GramRows(a)));
    EigenToSingular(eig, &out.singular_values, &out.u);
    out.v = Matrix(n, m);
    Matrix atu = MatTMul(a, out.u);  // n x m
    for (Index i = 0; i < m; ++i) {
      const double s = out.singular_values[i];
      if (s > 0.0) {
        const double inv = 1.0 / s;
        for (Index row = 0; row < n; ++row) out.v(row, i) = atu(row, i) * inv;
      }
      // Null-space columns are left zero: they carry zero singular value and
      // are never used by callers (the sampler skips zero directions).
    }
  } else {
    // Eigendecompose A^T A (n x n): A^T A = V S^2 V^T, then U = A V S^-1.
    BLINKML_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSym(GramCols(a)));
    EigenToSingular(eig, &out.singular_values, &out.v);
    out.u = Matrix(m, n);
    Matrix av = MatMul(a, out.v);  // m x n
    for (Index i = 0; i < n; ++i) {
      const double s = out.singular_values[i];
      if (s > 0.0) {
        const double inv = 1.0 / s;
        for (Index row = 0; row < m; ++row) out.u(row, i) = av(row, i) * inv;
      }
    }
  }
  return out;
}

Result<Svd> JacobiSvd(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("JacobiSvd of an empty matrix");
  }
  // Work on the tall orientation so the one-sided sweep is over columns.
  const bool transposed = m < n;
  Matrix w = transposed ? a.Transposed() : a;  // rows >= cols
  const Index rows = w.rows();
  const Index cols = w.cols();
  Matrix v = Matrix::Identity(cols);

  constexpr int kMaxSweeps = 60;
  const double eps = 1e-15;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (Index p = 0; p < cols - 1; ++p) {
      for (Index q = p + 1; q < cols; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (Index i = 0; i < rows; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            std::copysign(1.0, zeta) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (Index i = 0; i < rows; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (Index i = 0; i < cols; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms of w are the singular values; normalize to get U.
  Vector s(cols);
  Matrix u(rows, cols);
  for (Index j = 0; j < cols; ++j) {
    double norm = 0.0;
    for (Index i = 0; i < rows; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    s[j] = norm;
    if (norm > 0.0) {
      const double inv = 1.0 / norm;
      for (Index i = 0; i < rows; ++i) u(i, j) = w(i, j) * inv;
    }
  }
  // Sort descending.
  std::vector<Index> order(static_cast<std::size_t>(cols));
  for (Index i = 0; i < cols; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&](Index x, Index y) { return s[x] > s[y]; });
  Svd out;
  out.singular_values.Resize(cols);
  out.u = Matrix(rows, cols);
  out.v = Matrix(cols, cols);
  for (Index i = 0; i < cols; ++i) {
    const Index src = order[static_cast<std::size_t>(i)];
    out.singular_values[i] = s[src];
    for (Index r = 0; r < rows; ++r) out.u(r, i) = u(r, src);
    for (Index r = 0; r < cols; ++r) out.v(r, i) = v(r, src);
  }
  if (transposed) std::swap(out.u, out.v);
  return out;
}

Matrix SvdReconstruct(const Svd& svd) {
  Matrix us = svd.u;
  for (Index r = 0; r < us.rows(); ++r) {
    for (Index c = 0; c < us.cols(); ++c) us(r, c) *= svd.singular_values[c];
  }
  return MatMulT(us, svd.v);
}

}  // namespace blinkml
