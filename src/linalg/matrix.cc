#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

namespace blinkml {

// Every parallel loop in this file assigns each output element to exactly
// one chunk and accumulates it in the serial order, so results are bitwise
// identical to the serial loops for any thread count and any chunk layout.
//
// The product/Gram/matvec entry points dispatch on the ambient
// RuntimeOptions::kernel_level: kBlocked (the default) runs the tiled
// kernels in linalg/kernels.cc, kNaive the original loops below — the
// opt-out oracle the kernels are tested against (tests/kernels_test.cc).

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<std::size_t>(rows_ * cols_));
  for (const auto& row : rows) {
    BLINKML_CHECK_EQ(static_cast<Index>(row.size()), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (Index i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::Row(Index r) const {
  BLINKML_CHECK(r >= 0 && r < rows_);
  Vector v(cols_);
  std::copy(row_data(r), row_data(r) + cols_, v.data());
  return v;
}

Vector Matrix::Col(Index c) const {
  BLINKML_CHECK(c >= 0 && c < cols_);
  Vector v(rows_);
  for (Index r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(Index r, const Vector& v) {
  BLINKML_CHECK(r >= 0 && r < rows_);
  BLINKML_CHECK_EQ(v.size(), cols_);
  std::copy(v.data(), v.data() + cols_, row_data(r));
}

void Matrix::SetCol(Index c, const Vector& v) {
  BLINKML_CHECK(c >= 0 && c < cols_);
  BLINKML_CHECK_EQ(v.size(), rows_);
  for (Index r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Matrix& Matrix::operator+=(const Matrix& other) {
  BLINKML_CHECK_EQ(rows_, other.rows_);
  BLINKML_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  BLINKML_CHECK_EQ(rows_, other.rows_);
  BLINKML_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

void Matrix::AddToDiagonal(double s) {
  const Index n = std::min(rows_, cols_);
  for (Index i = 0; i < n; ++i) (*this)(i, i) += s;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    const double* src = row_data(r);
    for (Index c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  BLINKML_CHECK_EQ(a.cols(), b.rows());
  if (CurrentKernelLevel() == KernelLevel::kBlocked) {
    return kernels::MatMul(a, b);
  }
  using Index = Matrix::Index;
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // ikj ordering: the inner loop streams over contiguous rows of B and C.
  // Parallel over row blocks of C: each output row is produced by exactly
  // one chunk with the serial accumulation order.
  constexpr Index kBlock = 64;
  ParallelFor(0, m, [&](Index r0, Index r1) {
    for (Index p0 = 0; p0 < k; p0 += kBlock) {
      const Index p1 = std::min(p0 + kBlock, k);
      for (Index i = r0; i < r1; ++i) {
        double* crow = c.row_data(i);
        const double* arow = a.row_data(i);
        for (Index p = p0; p < p1; ++p) {
          const double aip = arow[p];
          if (aip == 0.0) continue;
          const double* brow = b.row_data(p);
          for (Index j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  }, kBlock);
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  BLINKML_CHECK_EQ(a.rows(), b.rows());
  using Index = Matrix::Index;
  const Index m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (Index p = 0; p < k; ++p) {
    const double* arow = a.row_data(p);
    const double* brow = b.row_data(p);
    for (Index i = 0; i < m; ++i) {
      const double aip = arow[i];
      if (aip == 0.0) continue;
      double* crow = c.row_data(i);
      for (Index j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
  return c;
}

Matrix MatMulT(const Matrix& a, const Matrix& b) {
  BLINKML_CHECK_EQ(a.cols(), b.cols());
  using Index = Matrix::Index;
  const Index m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (Index i = 0; i < m; ++i) {
    const double* arow = a.row_data(i);
    double* crow = c.row_data(i);
    for (Index j = 0; j < n; ++j) {
      const double* brow = b.row_data(j);
      double s = 0.0;
      for (Index p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  BLINKML_CHECK_EQ(a.cols(), x.size());
  if (CurrentKernelLevel() == KernelLevel::kBlocked) {
    return kernels::MatVec(a, x);
  }
  using Index = Matrix::Index;
  Vector y(a.rows());
  for (Index r = 0; r < a.rows(); ++r) {
    const double* arow = a.row_data(r);
    double s = 0.0;
    for (Index c = 0; c < a.cols(); ++c) s += arow[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  BLINKML_CHECK_EQ(a.rows(), x.size());
  if (CurrentKernelLevel() == KernelLevel::kBlocked) {
    return kernels::MatTVec(a, x);
  }
  using Index = Matrix::Index;
  Vector y(a.cols());
  double* py = y.data();
  for (Index r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* arow = a.row_data(r);
    for (Index c = 0; c < a.cols(); ++c) py[c] += xr * arow[c];
  }
  return y;
}

Matrix GramRows(const Matrix& a) {
  const bool blocked = CurrentKernelLevel() == KernelLevel::kBlocked;
  obs::SpanScope span("kernel:GramRows", "kernel", "rows",
                      static_cast<long long>(a.rows()));
  kernels::NoteKernelDispatch("GramRows", blocked);
  if (blocked) {
    return kernels::GramRows(a);
  }
  using Index = Matrix::Index;
  const Index n = a.rows(), d = a.cols();
  Matrix g(n, n);
  // Each (i, j >= i) entry is one independent dot product; the mirrored
  // (j, i) write belongs to the same chunk, so chunks touch disjoint
  // entry pairs. Row i costs O(n - i); the fine grain plus the runtime's
  // strided lane assignment keep the lanes balanced.
  ParallelFor(0, n, [&](Index i0, Index i1) {
    for (Index i = i0; i < i1; ++i) {
      const double* ri = a.row_data(i);
      for (Index j = i; j < n; ++j) {
        const double* rj = a.row_data(j);
        double s = 0.0;
        for (Index c = 0; c < d; ++c) s += ri[c] * rj[c];
        g(i, j) = s;
        g(j, i) = s;
      }
    }
  }, kFineGrain);
  return g;
}

Matrix GramCols(const Matrix& a) {
  const bool blocked = CurrentKernelLevel() == KernelLevel::kBlocked;
  obs::SpanScope span("kernel:GramCols", "kernel", "rows",
                      static_cast<long long>(a.rows()));
  kernels::NoteKernelDispatch("GramCols", blocked);
  if (blocked) {
    return kernels::GramCols(a);
  }
  using Index = Matrix::Index;
  const Index n = a.rows(), d = a.cols();
  Matrix g(d, d);
  // Entry (i, j) accumulates over the rows of A in ascending order under
  // both loops below, so the result is bitwise identical regardless of
  // lane count or chunking.
  const int lanes = CurrentParallelism();
  if (lanes <= 1) {
    // Serial: rank-1 updates row by row (streams A exactly once).
    for (Index r = 0; r < n; ++r) {
      const double* row = a.row_data(r);
      for (Index i = 0; i < d; ++i) {
        const double v = row[i];
        if (v == 0.0) continue;
        double* grow = g.row_data(i);
        for (Index j = i; j < d; ++j) grow[j] += v * row[j];
      }
    }
  } else {
    // Parallel over output rows of G (column pairs of A): each chunk
    // streams every row of A but writes only its own rows of G. Two chunks
    // per lane balance the triangular row costs while keeping the total
    // streaming of A bounded by ~2x lanes (not once per fine chunk).
    const Index grain = std::max<Index>(1, (d + 2 * lanes - 1) / (2 * lanes));
    ParallelFor(0, d, [&](Index i0, Index i1) {
      for (Index r = 0; r < n; ++r) {
        const double* row = a.row_data(r);
        for (Index i = i0; i < i1; ++i) {
          const double v = row[i];
          if (v == 0.0) continue;
          double* grow = g.row_data(i);
          for (Index j = i; j < d; ++j) grow[j] += v * row[j];
        }
      }
    }, grain);
  }
  for (Index i = 0; i < d; ++i) {
    for (Index j = i + 1; j < d; ++j) g(j, i) = g(i, j);
  }
  return g;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  BLINKML_CHECK_EQ(a.rows(), b.rows());
  BLINKML_CHECK_EQ(a.cols(), b.cols());
  double m = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (Matrix::Index i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

double MaxRelDiff(const Matrix& a, const Matrix& b) {
  return MaxAbsDiff(a, b) / std::max(b.MaxAbs(), 1e-300);
}

double MeanFrobeniusError(const Matrix& a, const Matrix& b) {
  BLINKML_CHECK_EQ(a.rows(), b.rows());
  BLINKML_CHECK_EQ(a.cols(), b.cols());
  BLINKML_CHECK_GT(a.size(), 0);
  Matrix d = a;
  d -= b;
  return d.FrobeniusNorm() / static_cast<double>(a.size());
}

}  // namespace blinkml
