// Compressed-sparse-row (CSR) matrix with a shared structure.
//
// Used for the high-dimensional workloads (Criteo-like hashed categorical
// features, Yelp-like bag-of-words): feature matrices where d is in the
// tens of thousands but each row touches only a handful of columns. Only
// the operations the library needs are provided: matvec, transposed matvec,
// row iteration, row-subset extraction (for sampling), and row rescaling.
//
// The sparsity structure (row_ptr + col_idx) lives behind a shared_ptr,
// separate from the values. Matrices produced by ScaleRows / WithValues
// alias the source's structure instead of copying it — the form every
// single-output GLM's per-example gradient matrix takes (diag(c) X shares
// X's structure exactly), so the statistics path never duplicates the
// index arrays, which dominate CSR memory. Construction, FromDense, and
// TakeRows are chunk-parallel over rows with a deterministic layout
// (per-row output ranges are precomputed, so results are identical at any
// thread count; see runtime/parallel.h).

#ifndef BLINKML_LINALG_SPARSE_H_
#define BLINKML_LINALG_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/check.h"

namespace blinkml {

/// One (column, value) entry of a sparse row.
struct SparseEntry {
  std::int64_t col;
  double value;
};

class SparseMatrix {
 public:
  using Index = std::int64_t;

  SparseMatrix() = default;

  /// Builds from per-row entry lists. Entries within a row must have valid
  /// column indices; they are sorted by column on construction.
  SparseMatrix(Index cols, std::vector<std::vector<SparseEntry>> rows);

  /// Builds directly from CSR arrays (row_ptr has rows+1 entries).
  SparseMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
               std::vector<Index> col_idx, std::vector<double> values);

  Index rows() const { return structure().rows; }
  Index cols() const { return structure().cols; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  /// Number of entries in row r.
  Index RowNnz(Index r) const {
    BLINKML_DCHECK(r >= 0 && r < rows());
    const auto& s = structure();
    return s.row_ptr[static_cast<std::size_t>(r) + 1] -
           s.row_ptr[static_cast<std::size_t>(r)];
  }

  /// Raw access for kernels: columns/values of row r.
  const Index* RowCols(Index r) const {
    const auto& s = structure();
    return s.col_idx.data() + s.row_ptr[static_cast<std::size_t>(r)];
  }
  const double* RowValues(Index r) const {
    return values_.data() + structure().row_ptr[static_cast<std::size_t>(r)];
  }

  /// y = A x.
  Vector Apply(const Vector& x) const;

  /// y = A^T x.
  Vector ApplyTransposed(const Vector& x) const;

  /// Dot product of row r with a dense vector.
  double RowDot(Index r, const Vector& x) const;

  /// Dot product of row r with a raw dense array of length >= cols().
  double RowDot(Index r, const double* x) const;

  /// y += alpha * row_r (scatter).
  void AddRowTo(Index r, double alpha, Vector* y) const;
  void AddRowTo(Index r, double alpha, double* y) const;

  /// diag(coeffs) * this: row i scaled by coeffs[i]. The result ALIASES
  /// this matrix's structure (no index copy) — the per-example gradient
  /// form of every single-output GLM. O(nnz) over the values, in parallel.
  SparseMatrix ScaleRows(const Vector& coeffs) const;

  /// Same structure with caller-provided values (length must equal nnz()).
  SparseMatrix WithValues(std::vector<double> values) const;

  /// True when both matrices alias one structure object (ScaleRows /
  /// WithValues lineage), as opposed to merely having equal layouts.
  bool SharesStructureWith(const SparseMatrix& other) const {
    return structure_ == other.structure_ && structure_ != nullptr;
  }

  /// New matrix keeping only the given rows, in the given order.
  SparseMatrix TakeRows(const std::vector<Index>& rows) const;

  /// Dense copy (for tests / small matrices).
  Matrix ToDense() const;

  /// Builds a CSR matrix from a dense one, dropping exact zeros.
  static SparseMatrix FromDense(const Matrix& dense);

 private:
  /// The shareable half of a CSR matrix: everything except the values.
  struct Structure {
    Index rows = 0;
    Index cols = 0;
    std::vector<Index> row_ptr = {0};
    std::vector<Index> col_idx;
  };

  static const std::shared_ptr<const Structure>& EmptyStructure();

  const Structure& structure() const {
    return structure_ ? *structure_ : *EmptyStructure();
  }

  SparseMatrix(std::shared_ptr<const Structure> structure,
               std::vector<double> values)
      : structure_(std::move(structure)), values_(std::move(values)) {}

  std::shared_ptr<const Structure> structure_;
  std::vector<double> values_;
};

/// Incremental CSR assembly into flat arrays — no per-row vector
/// allocation. Callers append entries to the open row, FinishRow() when a
/// row is complete (entries are sorted by column then), and Build() once.
/// Generators and loaders use this instead of materializing
/// vector<vector<SparseEntry>> intermediates.
class CsrBuilder {
 public:
  using Index = SparseMatrix::Index;

  /// Pre-sizes the arrays (optional; exact counts are not required).
  void Reserve(Index rows, Index nnz);

  /// Appends an entry to the open row.
  void Add(Index col, double value);

  /// Value slot of `col` in the open row, or nullptr (linear scan; for
  /// count accumulation as in bag-of-words rows).
  double* FindInOpenRow(Index col);

  /// The open row's entries so far (mutable values for re-weighting).
  Index open_row_nnz() const {
    return static_cast<Index>(col_idx_.size()) - row_ptr_.back();
  }
  const Index* open_row_cols() const {
    return col_idx_.data() + row_ptr_.back();
  }
  double* open_row_values() { return values_.data() + row_ptr_.back(); }

  /// Closes the open row, sorting its entries by column.
  void FinishRow();

  /// Finished rows so far.
  Index rows() const { return static_cast<Index>(row_ptr_.size()) - 1; }

  /// Shifts every column index by `delta` (e.g. 1-based input to 0-based).
  /// Must be called between FinishRow() and Build().
  void ShiftColumns(Index delta);

  /// Consumes the builder. Columns are validated against [0, cols).
  SparseMatrix Build(Index cols) &&;

 private:
  std::vector<Index> row_ptr_ = {0};
  std::vector<Index> col_idx_;
  std::vector<double> values_;
  std::vector<SparseEntry> scratch_;  // FinishRow sort buffer, reused
};

}  // namespace blinkml

#endif  // BLINKML_LINALG_SPARSE_H_
