// Compressed-sparse-row (CSR) matrix.
//
// Used for the high-dimensional workloads (Criteo-like hashed categorical
// features, Yelp-like bag-of-words): feature matrices where d is in the
// tens of thousands but each row touches only a handful of columns. Only
// the operations the library needs are provided: matvec, transposed matvec,
// row iteration, and row-subset extraction (for sampling).

#ifndef BLINKML_LINALG_SPARSE_H_
#define BLINKML_LINALG_SPARSE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/check.h"

namespace blinkml {

/// One (column, value) entry of a sparse row.
struct SparseEntry {
  std::int64_t col;
  double value;
};

class SparseMatrix {
 public:
  using Index = std::int64_t;

  SparseMatrix() = default;

  /// Builds from per-row entry lists. Entries within a row must have valid
  /// column indices; they are sorted by column on construction.
  SparseMatrix(Index cols, std::vector<std::vector<SparseEntry>> rows);

  /// Builds directly from CSR arrays (row_ptr has rows+1 entries).
  SparseMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
               std::vector<Index> col_idx, std::vector<double> values);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  /// Number of entries in row r.
  Index RowNnz(Index r) const {
    BLINKML_DCHECK(r >= 0 && r < rows_);
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// Raw access for kernels: columns/values of row r.
  const Index* RowCols(Index r) const {
    return col_idx_.data() + row_ptr_[static_cast<std::size_t>(r)];
  }
  const double* RowValues(Index r) const {
    return values_.data() + row_ptr_[static_cast<std::size_t>(r)];
  }

  /// y = A x.
  Vector Apply(const Vector& x) const;

  /// y = A^T x.
  Vector ApplyTransposed(const Vector& x) const;

  /// Dot product of row r with a dense vector.
  double RowDot(Index r, const Vector& x) const;

  /// Dot product of row r with a raw dense array of length >= cols().
  double RowDot(Index r, const double* x) const;

  /// y += alpha * row_r (scatter).
  void AddRowTo(Index r, double alpha, Vector* y) const;
  void AddRowTo(Index r, double alpha, double* y) const;

  /// New matrix keeping only the given rows, in the given order.
  SparseMatrix TakeRows(const std::vector<Index>& rows) const;

  /// Dense copy (for tests / small matrices).
  Matrix ToDense() const;

  /// Builds a CSR matrix from a dense one, dropping exact zeros.
  static SparseMatrix FromDense(const Matrix& dense);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_ = {0};
  std::vector<Index> col_idx_;
  std::vector<double> values_;
};

}  // namespace blinkml

#endif  // BLINKML_LINALG_SPARSE_H_
