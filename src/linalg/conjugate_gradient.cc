#include "linalg/conjugate_gradient.h"

#include <cmath>

namespace blinkml {

Result<CgResult> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply, const Vector& b,
    const CgOptions& options) {
  const Vector::Index n = b.size();
  if (n == 0) return Status::InvalidArgument("empty system");
  const double b_norm = Norm2(b);
  CgResult out;
  out.x = Vector(n);
  if (b_norm == 0.0) {
    out.converged = true;
    return out;  // x = 0 solves exactly
  }
  const int max_iterations =
      options.max_iterations > 0 ? options.max_iterations
                                 : 10 * static_cast<int>(n);
  const double target = options.tolerance * b_norm;

  Vector r = b;  // residual b - A x with x = 0
  Vector p = r;  // search direction
  double rr = SquaredNorm2(r);
  for (int it = 0; it < max_iterations; ++it) {
    if (std::sqrt(rr) <= target) {
      out.converged = true;
      break;
    }
    const Vector ap = apply(p);
    if (ap.size() != n) {
      return Status::InvalidArgument("apply returned wrong dimension");
    }
    const double p_ap = Dot(p, ap);
    if (!(p_ap > 0.0) || !std::isfinite(p_ap)) {
      return Status::InvalidArgument(
          "non-positive curvature: operator is not positive definite");
    }
    const double alpha = rr / p_ap;
    Axpy(alpha, p, &out.x);
    Axpy(-alpha, ap, &r);
    const double rr_next = SquaredNorm2(r);
    const double beta = rr_next / rr;
    // p = r + beta * p
    p *= beta;
    p += r;
    rr = rr_next;
    ++out.iterations;
  }
  out.residual_norm = std::sqrt(rr);
  out.converged = out.converged || out.residual_norm <= target;
  return out;
}

Result<CgResult> ConjugateGradient(const Matrix& a, const Vector& b,
                                   const CgOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CG requires a square matrix");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  return ConjugateGradient(
      [&a](const Vector& v) { return MatVec(a, v); }, b, options);
}

}  // namespace blinkml
