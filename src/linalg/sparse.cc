#include "linalg/sparse.h"

#include <algorithm>

namespace blinkml {

SparseMatrix::SparseMatrix(Index cols,
                           std::vector<std::vector<SparseEntry>> rows)
    : rows_(static_cast<Index>(rows.size())), cols_(cols) {
  BLINKML_CHECK_GE(cols, 0);
  row_ptr_.clear();
  row_ptr_.reserve(rows.size() + 1);
  row_ptr_.push_back(0);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.size();
  col_idx_.reserve(total);
  values_.reserve(total);
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                return a.col < b.col;
              });
    for (const SparseEntry& e : row) {
      BLINKML_CHECK_MSG(e.col >= 0 && e.col < cols_,
                        "sparse entry column out of range");
      col_idx_.push_back(e.col);
      values_.push_back(e.value);
    }
    row_ptr_.push_back(static_cast<Index>(col_idx_.size()));
  }
}

SparseMatrix::SparseMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
                           std::vector<Index> col_idx,
                           std::vector<double> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values)) {
  BLINKML_CHECK_EQ(static_cast<Index>(row_ptr_.size()), rows_ + 1);
  BLINKML_CHECK_EQ(col_idx_.size(), values_.size());
  BLINKML_CHECK_EQ(row_ptr_.back(), static_cast<Index>(values_.size()));
}

Vector SparseMatrix::Apply(const Vector& x) const {
  BLINKML_CHECK_EQ(static_cast<Index>(x.size()), cols_);
  Vector y(rows_);
  for (Index r = 0; r < rows_; ++r) y[r] = RowDot(r, x.data());
  return y;
}

Vector SparseMatrix::ApplyTransposed(const Vector& x) const {
  BLINKML_CHECK_EQ(static_cast<Index>(x.size()), rows_);
  Vector y(cols_);
  double* py = y.data();
  for (Index r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    AddRowTo(r, xr, py);
  }
  return y;
}

double SparseMatrix::RowDot(Index r, const Vector& x) const {
  BLINKML_CHECK_EQ(static_cast<Index>(x.size()), cols_);
  return RowDot(r, x.data());
}

double SparseMatrix::RowDot(Index r, const double* x) const {
  BLINKML_DCHECK(r >= 0 && r < rows_);
  const Index n = RowNnz(r);
  const Index* cols = RowCols(r);
  const double* vals = RowValues(r);
  double s = 0.0;
  for (Index i = 0; i < n; ++i) s += vals[i] * x[cols[i]];
  return s;
}

void SparseMatrix::AddRowTo(Index r, double alpha, Vector* y) const {
  BLINKML_CHECK_EQ(static_cast<Index>(y->size()), cols_);
  AddRowTo(r, alpha, y->data());
}

void SparseMatrix::AddRowTo(Index r, double alpha, double* y) const {
  BLINKML_DCHECK(r >= 0 && r < rows_);
  const Index n = RowNnz(r);
  const Index* cols = RowCols(r);
  const double* vals = RowValues(r);
  for (Index i = 0; i < n; ++i) y[cols[i]] += alpha * vals[i];
}

SparseMatrix SparseMatrix::TakeRows(const std::vector<Index>& rows) const {
  std::vector<Index> row_ptr;
  row_ptr.reserve(rows.size() + 1);
  row_ptr.push_back(0);
  std::size_t total = 0;
  for (Index r : rows) {
    BLINKML_CHECK_MSG(r >= 0 && r < rows_, "TakeRows index out of range");
    total += static_cast<std::size_t>(RowNnz(r));
  }
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(total);
  values.reserve(total);
  for (Index r : rows) {
    const Index n = RowNnz(r);
    const Index* cols = RowCols(r);
    const double* vals = RowValues(r);
    col_idx.insert(col_idx.end(), cols, cols + n);
    values.insert(values.end(), vals, vals + n);
    row_ptr.push_back(static_cast<Index>(col_idx.size()));
  }
  return SparseMatrix(static_cast<Index>(rows.size()), cols_,
                      std::move(row_ptr), std::move(col_idx),
                      std::move(values));
}

Matrix SparseMatrix::ToDense() const {
  Matrix m(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    const Index n = RowNnz(r);
    const Index* cols = RowCols(r);
    const double* vals = RowValues(r);
    for (Index i = 0; i < n; ++i) m(r, cols[i]) = vals[i];
  }
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense) {
  std::vector<Index> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(dense.rows()) + 1);
  row_ptr.push_back(0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  for (Matrix::Index r = 0; r < dense.rows(); ++r) {
    const double* row = dense.row_data(r);
    for (Matrix::Index c = 0; c < dense.cols(); ++c) {
      if (row[c] != 0.0) {
        col_idx.push_back(c);
        values.push_back(row[c]);
      }
    }
    row_ptr.push_back(static_cast<Index>(col_idx.size()));
  }
  return SparseMatrix(dense.rows(), dense.cols(), std::move(row_ptr),
                      std::move(col_idx), std::move(values));
}

}  // namespace blinkml
