#include "linalg/sparse.h"

#include <algorithm>
#include <utility>

#include "linalg/kernels.h"
#include "runtime/parallel.h"

namespace blinkml {

namespace {

// Validates one finished CSR row range against the column bound.
void CheckColumns(const SparseMatrix::Index* cols, SparseMatrix::Index nnz,
                  SparseMatrix::Index bound) {
  for (SparseMatrix::Index i = 0; i < nnz; ++i) {
    BLINKML_CHECK_MSG(cols[i] >= 0 && cols[i] < bound,
                      "sparse entry column out of range");
  }
}

}  // namespace

const std::shared_ptr<const SparseMatrix::Structure>&
SparseMatrix::EmptyStructure() {
  static const std::shared_ptr<const Structure> empty =
      std::make_shared<const Structure>();
  return empty;
}

SparseMatrix::SparseMatrix(Index cols,
                           std::vector<std::vector<SparseEntry>> rows) {
  BLINKML_CHECK_GE(cols, 0);
  auto s = std::make_shared<Structure>();
  s->rows = static_cast<Index>(rows.size());
  s->cols = cols;
  s->row_ptr.resize(rows.size() + 1);
  s->row_ptr[0] = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    s->row_ptr[r + 1] = s->row_ptr[r] + static_cast<Index>(rows[r].size());
  }
  const std::size_t total = static_cast<std::size_t>(s->row_ptr.back());
  s->col_idx.resize(total);
  values_.resize(total);
  // Output ranges are fixed by the prefix sums above, so rows sort and
  // copy into disjoint slices in parallel — identical at any thread count.
  ParallelFor(0, s->rows, [&](Index b, Index e) {
    for (Index r = b; r < e; ++r) {
      auto& row = rows[static_cast<std::size_t>(r)];
      std::sort(row.begin(), row.end(),
                [](const SparseEntry& a, const SparseEntry& b) {
                  return a.col < b.col;
                });
      Index out = s->row_ptr[static_cast<std::size_t>(r)];
      for (const SparseEntry& entry : row) {
        BLINKML_CHECK_MSG(entry.col >= 0 && entry.col < cols,
                          "sparse entry column out of range");
        s->col_idx[static_cast<std::size_t>(out)] = entry.col;
        values_[static_cast<std::size_t>(out)] = entry.value;
        ++out;
      }
    }
  });
  structure_ = std::move(s);
}

SparseMatrix::SparseMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
                           std::vector<Index> col_idx,
                           std::vector<double> values)
    : values_(std::move(values)) {
  BLINKML_CHECK_EQ(static_cast<Index>(row_ptr.size()), rows + 1);
  BLINKML_CHECK_EQ(col_idx.size(), values_.size());
  BLINKML_CHECK_EQ(row_ptr.back(), static_cast<Index>(values_.size()));
  auto s = std::make_shared<Structure>();
  s->rows = rows;
  s->cols = cols;
  s->row_ptr = std::move(row_ptr);
  s->col_idx = std::move(col_idx);
  structure_ = std::move(s);
}

// Both matvecs dispatch on the ambient kernel level: kBlocked runs the
// parallel/unrolled kernels (linalg/kernels.cc), kNaive the serial loops
// below (the oracle — see tests/kernels_test.cc).

Vector SparseMatrix::Apply(const Vector& x) const {
  BLINKML_CHECK_EQ(static_cast<Index>(x.size()), cols());
  if (CurrentKernelLevel() == KernelLevel::kBlocked) {
    return kernels::Apply(*this, x);
  }
  Vector y(rows());
  for (Index r = 0; r < rows(); ++r) y[r] = RowDot(r, x.data());
  return y;
}

Vector SparseMatrix::ApplyTransposed(const Vector& x) const {
  BLINKML_CHECK_EQ(static_cast<Index>(x.size()), rows());
  if (CurrentKernelLevel() == KernelLevel::kBlocked) {
    return kernels::ApplyTransposed(*this, x);
  }
  Vector y(cols());
  double* py = y.data();
  for (Index r = 0; r < rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    AddRowTo(r, xr, py);
  }
  return y;
}

double SparseMatrix::RowDot(Index r, const Vector& x) const {
  BLINKML_CHECK_EQ(static_cast<Index>(x.size()), cols());
  return RowDot(r, x.data());
}

double SparseMatrix::RowDot(Index r, const double* x) const {
  BLINKML_DCHECK(r >= 0 && r < rows());
  const Index n = RowNnz(r);
  const Index* cols = RowCols(r);
  const double* vals = RowValues(r);
  double s = 0.0;
  for (Index i = 0; i < n; ++i) s += vals[i] * x[cols[i]];
  return s;
}

void SparseMatrix::AddRowTo(Index r, double alpha, Vector* y) const {
  BLINKML_CHECK_EQ(static_cast<Index>(y->size()), cols());
  AddRowTo(r, alpha, y->data());
}

void SparseMatrix::AddRowTo(Index r, double alpha, double* y) const {
  BLINKML_DCHECK(r >= 0 && r < rows());
  const Index n = RowNnz(r);
  const Index* cols = RowCols(r);
  const double* vals = RowValues(r);
  for (Index i = 0; i < n; ++i) y[cols[i]] += alpha * vals[i];
}

SparseMatrix SparseMatrix::ScaleRows(const Vector& coeffs) const {
  BLINKML_CHECK_EQ(static_cast<Index>(coeffs.size()), rows());
  const Structure& s = structure();
  std::vector<double> scaled(values_.size());
  ParallelFor(0, s.rows, [&](Index b, Index e) {
    for (Index r = b; r < e; ++r) {
      const double c = coeffs[r];
      const Index begin = s.row_ptr[static_cast<std::size_t>(r)];
      const Index end = s.row_ptr[static_cast<std::size_t>(r) + 1];
      for (Index i = begin; i < end; ++i) {
        scaled[static_cast<std::size_t>(i)] =
            c * values_[static_cast<std::size_t>(i)];
      }
    }
  });
  return SparseMatrix(structure_ ? structure_ : EmptyStructure(),
                      std::move(scaled));
}

SparseMatrix SparseMatrix::WithValues(std::vector<double> values) const {
  BLINKML_CHECK_EQ(values.size(), values_.size());
  return SparseMatrix(structure_ ? structure_ : EmptyStructure(),
                      std::move(values));
}

SparseMatrix SparseMatrix::TakeRows(const std::vector<Index>& rows) const {
  auto out = std::make_shared<Structure>();
  out->rows = static_cast<Index>(rows.size());
  out->cols = cols();
  out->row_ptr.resize(rows.size() + 1);
  out->row_ptr[0] = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Index r = rows[i];
    BLINKML_CHECK_MSG(r >= 0 && r < this->rows(),
                      "TakeRows index out of range");
    out->row_ptr[i + 1] = out->row_ptr[i] + RowNnz(r);
  }
  const std::size_t total = static_cast<std::size_t>(out->row_ptr.back());
  out->col_idx.resize(total);
  std::vector<double> values(total);
  ParallelFor(0, out->rows, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) {
      const Index r = rows[static_cast<std::size_t>(i)];
      const Index n = RowNnz(r);
      const Index* cols = RowCols(r);
      const double* vals = RowValues(r);
      const Index dst = out->row_ptr[static_cast<std::size_t>(i)];
      std::copy(cols, cols + n,
                out->col_idx.data() + static_cast<std::size_t>(dst));
      std::copy(vals, vals + n, values.data() + static_cast<std::size_t>(dst));
    }
  });
  return SparseMatrix(std::move(out), std::move(values));
}

Matrix SparseMatrix::ToDense() const {
  Matrix m(rows(), cols());
  for (Index r = 0; r < rows(); ++r) {
    const Index n = RowNnz(r);
    const Index* cols = RowCols(r);
    const double* vals = RowValues(r);
    for (Index i = 0; i < n; ++i) m(r, cols[i]) = vals[i];
  }
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense) {
  const Index rows = dense.rows();
  const Index cols = dense.cols();
  auto s = std::make_shared<Structure>();
  s->rows = rows;
  s->cols = cols;
  s->row_ptr.resize(static_cast<std::size_t>(rows) + 1);
  s->row_ptr[0] = 0;
  // Pass 1: per-row nonzero counts (parallel), then the serial prefix sum
  // that fixes every row's output range.
  std::vector<Index> counts(static_cast<std::size_t>(rows), 0);
  ParallelFor(0, rows, [&](Index b, Index e) {
    for (Index r = b; r < e; ++r) {
      const double* row = dense.row_data(r);
      Index nnz = 0;
      for (Index c = 0; c < cols; ++c) {
        if (row[c] != 0.0) ++nnz;
      }
      counts[static_cast<std::size_t>(r)] = nnz;
    }
  });
  for (Index r = 0; r < rows; ++r) {
    s->row_ptr[static_cast<std::size_t>(r) + 1] =
        s->row_ptr[static_cast<std::size_t>(r)] +
        counts[static_cast<std::size_t>(r)];
  }
  const std::size_t total = static_cast<std::size_t>(s->row_ptr.back());
  s->col_idx.resize(total);
  std::vector<double> values(total);
  // Pass 2: fill the disjoint ranges in parallel.
  ParallelFor(0, rows, [&](Index b, Index e) {
    for (Index r = b; r < e; ++r) {
      const double* row = dense.row_data(r);
      Index out = s->row_ptr[static_cast<std::size_t>(r)];
      for (Index c = 0; c < cols; ++c) {
        if (row[c] != 0.0) {
          s->col_idx[static_cast<std::size_t>(out)] = c;
          values[static_cast<std::size_t>(out)] = row[c];
          ++out;
        }
      }
    }
  });
  return SparseMatrix(std::move(s), std::move(values));
}

void CsrBuilder::Reserve(Index rows, Index nnz) {
  row_ptr_.reserve(static_cast<std::size_t>(rows) + 1);
  col_idx_.reserve(static_cast<std::size_t>(nnz));
  values_.reserve(static_cast<std::size_t>(nnz));
}

void CsrBuilder::Add(Index col, double value) {
  col_idx_.push_back(col);
  values_.push_back(value);
}

double* CsrBuilder::FindInOpenRow(Index col) {
  const Index begin = row_ptr_.back();
  const Index end = static_cast<Index>(col_idx_.size());
  for (Index i = begin; i < end; ++i) {
    if (col_idx_[static_cast<std::size_t>(i)] == col) {
      return &values_[static_cast<std::size_t>(i)];
    }
  }
  return nullptr;
}

void CsrBuilder::FinishRow() {
  const Index begin = row_ptr_.back();
  const Index end = static_cast<Index>(col_idx_.size());
  bool sorted = true;
  for (Index i = begin + 1; i < end; ++i) {
    if (col_idx_[static_cast<std::size_t>(i - 1)] >
        col_idx_[static_cast<std::size_t>(i)]) {
      sorted = false;
      break;
    }
  }
  if (!sorted) {
    scratch_.clear();
    for (Index i = begin; i < end; ++i) {
      scratch_.push_back({col_idx_[static_cast<std::size_t>(i)],
                          values_[static_cast<std::size_t>(i)]});
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                return a.col < b.col;
              });
    for (Index i = begin; i < end; ++i) {
      const SparseEntry& entry = scratch_[static_cast<std::size_t>(i - begin)];
      col_idx_[static_cast<std::size_t>(i)] = entry.col;
      values_[static_cast<std::size_t>(i)] = entry.value;
    }
  }
  row_ptr_.push_back(end);
}

void CsrBuilder::ShiftColumns(Index delta) {
  for (Index& c : col_idx_) c += delta;
}

SparseMatrix CsrBuilder::Build(Index cols) && {
  BLINKML_CHECK_GE(cols, 0);
  BLINKML_CHECK_MSG(row_ptr_.back() == static_cast<Index>(col_idx_.size()),
                    "CsrBuilder::Build with an unfinished row");
  CheckColumns(col_idx_.data(), static_cast<Index>(col_idx_.size()), cols);
  const Index num_rows = rows();  // before the moves below
  return SparseMatrix(num_rows, cols, std::move(row_ptr_),
                      std::move(col_idx_), std::move(values_));
}

}  // namespace blinkml
