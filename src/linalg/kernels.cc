#include "linalg/kernels.h"

#include <algorithm>

#include "obs/metrics.h"
#include "runtime/parallel.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define BLINKML_KERNELS_AVX2 1
#include <immintrin.h>
#endif

namespace blinkml {
namespace kernels {

void NoteKernelDispatch(const char* kernel, bool blocked) {
  obs::Registry::Global()
      .Counter("kernel_calls_total",
               {{"kernel", kernel}, {"level", blocked ? "blocked" : "naive"}})
      ->Inc();
}

namespace {

using DIndex = Matrix::Index;
using SIndex = SparseMatrix::Index;

// Chunk count for the reduction-shaped transposed matvecs: a pure function
// of the work (nnz scattered) and the output width, so the partial layout
// never depends on the thread count. Each chunk's scatter work must cover
// a few rounds of its own partial's zero+merge traffic.
ParallelIndex TransposedChunks(ParallelIndex work, ParallelIndex width) {
  if (width <= 0) return 1;
  const ParallelIndex by_work = work / (4 * width);
  return std::max<ParallelIndex>(
      1, std::min<ParallelIndex>(by_work, kMaxGradientChunks));
}

// One row of BatchMarginsSparse for a column group of compile-time width
// W at offset c0 of the interleaved pack (stride k). Chain o of column t
// accumulates exactly the p % 4 == o products in ascending order and the
// chains merge as (s0+s1)+(s2+s3): bitwise SparseDotUnrolled per column.
// The constant trip counts are what let the compiler keep the W
// accumulators vectorized instead of bouncing them through the stack.
template <int W>
void BatchRowGather(const SIndex* cols, const double* vals, SIndex nnz,
                    const double* pack, DIndex k, DIndex c0, double* orow) {
  double acc[4][W];
  for (int t = 0; t < W; ++t) {
    acc[0][t] = acc[1][t] = acc[2][t] = acc[3][t] = 0.0;
  }
  SIndex p = 0;
  for (; p + 4 <= nnz; p += 4) {
    const double v0 = vals[p], v1 = vals[p + 1];
    const double v2 = vals[p + 2], v3 = vals[p + 3];
    const double* b0 = pack + cols[p] * k + c0;
    const double* b1 = pack + cols[p + 1] * k + c0;
    const double* b2 = pack + cols[p + 2] * k + c0;
    const double* b3 = pack + cols[p + 3] * k + c0;
    for (int t = 0; t < W; ++t) {
      acc[0][t] += v0 * b0[t];
      acc[1][t] += v1 * b1[t];
      acc[2][t] += v2 * b2[t];
      acc[3][t] += v3 * b3[t];
    }
  }
  for (int t = 0; t < W; ++t) {
    double s = (acc[0][t] + acc[1][t]) + (acc[2][t] + acc[3][t]);
    for (SIndex q = p; q < nnz; ++q) {
      s += vals[q] * pack[static_cast<std::size_t>(cols[q] * k + c0 + t)];
    }
    orow[c0 + t] = s;
  }
}

#if BLINKML_KERNELS_AVX2

// AVX2 DotUnrolled: the 4 scalar chains are the 4 lanes of one ymm
// register (element k lands in lane k % 4, exactly the chain it lands in
// scalar), merged with the same scalar (s0+s1)+(s2+s3) and the same
// scalar tail. No FMA — separate mul/add keeps each lane's rounding
// identical to the scalar chain — so the result is bitwise DotUnrolled.
__attribute__((target("avx2"))) double DotUnrolledAvx2(const double* a,
                                                       const double* b,
                                                       DIndex n) {
  __m256d acc = _mm256_setzero_pd();
  DIndex k = 0;
  for (; k + 4 <= n; k += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; k < n; ++k) s += a[k] * b[k];
  return s;
}

// AVX2 BatchRowGather for a full kMultiVec group: lanes are the group's
// 8 COLUMNS (two ymm halves), one register pair per scalar chain, so each
// column's chain contents and the (a0+a1)+(a2+a3) merge match the scalar
// template per lane. The nnz tail appends entry products to the merged
// sums in ascending order, as the scalar per-column tail loop does.
__attribute__((target("avx2"))) void BatchRowGatherAvx2(
    const SIndex* cols, const double* vals, SIndex nnz, const double* pack,
    DIndex k, DIndex c0, double* orow) {
  __m256d a0l = _mm256_setzero_pd(), a0h = _mm256_setzero_pd();
  __m256d a1l = _mm256_setzero_pd(), a1h = _mm256_setzero_pd();
  __m256d a2l = _mm256_setzero_pd(), a2h = _mm256_setzero_pd();
  __m256d a3l = _mm256_setzero_pd(), a3h = _mm256_setzero_pd();
  SIndex p = 0;
  for (; p + 4 <= nnz; p += 4) {
    const __m256d v0 = _mm256_set1_pd(vals[p]);
    const __m256d v1 = _mm256_set1_pd(vals[p + 1]);
    const __m256d v2 = _mm256_set1_pd(vals[p + 2]);
    const __m256d v3 = _mm256_set1_pd(vals[p + 3]);
    const double* b0 = pack + cols[p] * k + c0;
    const double* b1 = pack + cols[p + 1] * k + c0;
    const double* b2 = pack + cols[p + 2] * k + c0;
    const double* b3 = pack + cols[p + 3] * k + c0;
    a0l = _mm256_add_pd(a0l, _mm256_mul_pd(v0, _mm256_loadu_pd(b0)));
    a0h = _mm256_add_pd(a0h, _mm256_mul_pd(v0, _mm256_loadu_pd(b0 + 4)));
    a1l = _mm256_add_pd(a1l, _mm256_mul_pd(v1, _mm256_loadu_pd(b1)));
    a1h = _mm256_add_pd(a1h, _mm256_mul_pd(v1, _mm256_loadu_pd(b1 + 4)));
    a2l = _mm256_add_pd(a2l, _mm256_mul_pd(v2, _mm256_loadu_pd(b2)));
    a2h = _mm256_add_pd(a2h, _mm256_mul_pd(v2, _mm256_loadu_pd(b2 + 4)));
    a3l = _mm256_add_pd(a3l, _mm256_mul_pd(v3, _mm256_loadu_pd(b3)));
    a3h = _mm256_add_pd(a3h, _mm256_mul_pd(v3, _mm256_loadu_pd(b3 + 4)));
  }
  __m256d sl =
      _mm256_add_pd(_mm256_add_pd(a0l, a1l), _mm256_add_pd(a2l, a3l));
  __m256d sh =
      _mm256_add_pd(_mm256_add_pd(a0h, a1h), _mm256_add_pd(a2h, a3h));
  for (; p < nnz; ++p) {
    const __m256d v = _mm256_set1_pd(vals[p]);
    const double* bq = pack + cols[p] * k + c0;
    sl = _mm256_add_pd(sl, _mm256_mul_pd(v, _mm256_loadu_pd(bq)));
    sh = _mm256_add_pd(sh, _mm256_mul_pd(v, _mm256_loadu_pd(bq + 4)));
  }
  _mm256_storeu_pd(orow + c0, sl);
  _mm256_storeu_pd(orow + c0 + 4, sh);
}

#endif  // BLINKML_KERNELS_AVX2

// Resolved once per kernel entry (on the calling thread or inside a lane —
// worker lanes see the caller's ambient RuntimeOptions, so either spot
// reads the same scope).
bool UseAvx2() {
#if BLINKML_KERNELS_AVX2
  return CurrentKernelIsa() == KernelIsa::kAvx2;
#else
  return false;
#endif
}

using DotFn = double (*)(const double*, const double*, DIndex);

DotFn SelectDot() {
#if BLINKML_KERNELS_AVX2
  if (UseAvx2()) return &DotUnrolledAvx2;
#endif
  return &DotUnrolled;
}

// Runtime-width tail groups (fewer than kMultiVec columns left).
void BatchRowGatherTail(const SIndex* cols, const double* vals, SIndex nnz,
                        const double* pack, DIndex k, DIndex c0, DIndex width,
                        double* orow) {
  switch (width) {
    case 1: return BatchRowGather<1>(cols, vals, nnz, pack, k, c0, orow);
    case 2: return BatchRowGather<2>(cols, vals, nnz, pack, k, c0, orow);
    case 3: return BatchRowGather<3>(cols, vals, nnz, pack, k, c0, orow);
    case 4: return BatchRowGather<4>(cols, vals, nnz, pack, k, c0, orow);
    case 5: return BatchRowGather<5>(cols, vals, nnz, pack, k, c0, orow);
    case 6: return BatchRowGather<6>(cols, vals, nnz, pack, k, c0, orow);
    case 7: return BatchRowGather<7>(cols, vals, nnz, pack, k, c0, orow);
    default: return BatchRowGather<8>(cols, vals, nnz, pack, k, c0, orow);
  }
}

// Dense counterpart of BatchRowGather: W margins of one feature row, the
// row loaded once per group, each column bitwise DotUnrolled.
template <int W>
void BatchRowDense(const double* row, DIndex d, const double* const* th,
                   double* out) {
  double acc[4][W];
  for (int t = 0; t < W; ++t) {
    acc[0][t] = acc[1][t] = acc[2][t] = acc[3][t] = 0.0;
  }
  DIndex p = 0;
  for (; p + 4 <= d; p += 4) {
    const double a0 = row[p], a1 = row[p + 1];
    const double a2 = row[p + 2], a3 = row[p + 3];
    for (int t = 0; t < W; ++t) {
      acc[0][t] += a0 * th[t][p];
      acc[1][t] += a1 * th[t][p + 1];
      acc[2][t] += a2 * th[t][p + 2];
      acc[3][t] += a3 * th[t][p + 3];
    }
  }
  for (int t = 0; t < W; ++t) {
    double s = (acc[0][t] + acc[1][t]) + (acc[2][t] + acc[3][t]);
    for (DIndex q = p; q < d; ++q) s += row[q] * th[t][q];
    out[t] = s;
  }
}

void BatchRowDenseTail(const double* row, DIndex d, const double* const* th,
                       DIndex width, double* out) {
  switch (width) {
    case 1: return BatchRowDense<1>(row, d, th, out);
    case 2: return BatchRowDense<2>(row, d, th, out);
    case 3: return BatchRowDense<3>(row, d, th, out);
    case 4: return BatchRowDense<4>(row, d, th, out);
    case 5: return BatchRowDense<5>(row, d, th, out);
    case 6: return BatchRowDense<6>(row, d, th, out);
    case 7: return BatchRowDense<7>(row, d, th, out);
    default: return BatchRowDense<8>(row, d, th, out);
  }
}

// W dots of one dense row against W vectors interleaved into a pack
// (pack[p * W + t] = vec_t[p]): the row is loaded once for the whole
// group and every step touches one contiguous W-slab per unrolled lane.
// Chain o of column t accumulates exactly the p % 4 == o products in
// ascending order, merged (s0+s1)+(s2+s3) then the scalar tail — bitwise
// DotUnrolled(row, vec_t) per column. Backs MatVecMulti.
template <int W>
void BatchRowPacked(const double* row, DIndex d, const double* pack,
                    double* out) {
  double acc[4][W];
  for (int t = 0; t < W; ++t) {
    acc[0][t] = acc[1][t] = acc[2][t] = acc[3][t] = 0.0;
  }
  DIndex p = 0;
  for (; p + 4 <= d; p += 4) {
    const double a0 = row[p], a1 = row[p + 1];
    const double a2 = row[p + 2], a3 = row[p + 3];
    const double* b = pack + static_cast<std::size_t>(p) * W;
    for (int t = 0; t < W; ++t) {
      acc[0][t] += a0 * b[t];
      acc[1][t] += a1 * b[W + t];
      acc[2][t] += a2 * b[2 * W + t];
      acc[3][t] += a3 * b[3 * W + t];
    }
  }
  for (int t = 0; t < W; ++t) {
    double s = (acc[0][t] + acc[1][t]) + (acc[2][t] + acc[3][t]);
    for (DIndex q = p; q < d; ++q) {
      s += row[q] * pack[static_cast<std::size_t>(q) * W + t];
    }
    out[t] = s;
  }
}

void BatchRowPackedTail(const double* row, DIndex d, const double* pack,
                        DIndex width, double* out) {
  switch (width) {
    case 1: return BatchRowPacked<1>(row, d, pack, out);
    case 2: return BatchRowPacked<2>(row, d, pack, out);
    case 3: return BatchRowPacked<3>(row, d, pack, out);
    case 4: return BatchRowPacked<4>(row, d, pack, out);
    case 5: return BatchRowPacked<5>(row, d, pack, out);
    case 6: return BatchRowPacked<6>(row, d, pack, out);
    case 7: return BatchRowPacked<7>(row, d, pack, out);
    default: return BatchRowPacked<8>(row, d, pack, out);
  }
}

#if BLINKML_KERNELS_AVX2

// AVX2 BatchRowPacked for a full kMultiVec group: lanes are the 8
// columns, one ymm pair per chain, same merge and tail order per lane as
// the scalar template. No FMA.
__attribute__((target("avx2"))) void BatchRowPackedAvx2(const double* row,
                                                        DIndex d,
                                                        const double* pack,
                                                        double* out) {
  __m256d a0l = _mm256_setzero_pd(), a0h = _mm256_setzero_pd();
  __m256d a1l = _mm256_setzero_pd(), a1h = _mm256_setzero_pd();
  __m256d a2l = _mm256_setzero_pd(), a2h = _mm256_setzero_pd();
  __m256d a3l = _mm256_setzero_pd(), a3h = _mm256_setzero_pd();
  DIndex p = 0;
  for (; p + 4 <= d; p += 4) {
    const __m256d v0 = _mm256_set1_pd(row[p]);
    const __m256d v1 = _mm256_set1_pd(row[p + 1]);
    const __m256d v2 = _mm256_set1_pd(row[p + 2]);
    const __m256d v3 = _mm256_set1_pd(row[p + 3]);
    const double* b = pack + static_cast<std::size_t>(p) * 8;
    a0l = _mm256_add_pd(a0l, _mm256_mul_pd(v0, _mm256_loadu_pd(b)));
    a0h = _mm256_add_pd(a0h, _mm256_mul_pd(v0, _mm256_loadu_pd(b + 4)));
    a1l = _mm256_add_pd(a1l, _mm256_mul_pd(v1, _mm256_loadu_pd(b + 8)));
    a1h = _mm256_add_pd(a1h, _mm256_mul_pd(v1, _mm256_loadu_pd(b + 12)));
    a2l = _mm256_add_pd(a2l, _mm256_mul_pd(v2, _mm256_loadu_pd(b + 16)));
    a2h = _mm256_add_pd(a2h, _mm256_mul_pd(v2, _mm256_loadu_pd(b + 20)));
    a3l = _mm256_add_pd(a3l, _mm256_mul_pd(v3, _mm256_loadu_pd(b + 24)));
    a3h = _mm256_add_pd(a3h, _mm256_mul_pd(v3, _mm256_loadu_pd(b + 28)));
  }
  __m256d sl =
      _mm256_add_pd(_mm256_add_pd(a0l, a1l), _mm256_add_pd(a2l, a3l));
  __m256d sh =
      _mm256_add_pd(_mm256_add_pd(a0h, a1h), _mm256_add_pd(a2h, a3h));
  for (; p < d; ++p) {
    const __m256d v = _mm256_set1_pd(row[p]);
    const double* b = pack + static_cast<std::size_t>(p) * 8;
    sl = _mm256_add_pd(sl, _mm256_mul_pd(v, _mm256_loadu_pd(b)));
    sh = _mm256_add_pd(sh, _mm256_mul_pd(v, _mm256_loadu_pd(b + 4)));
  }
  _mm256_storeu_pd(out, sl);
  _mm256_storeu_pd(out + 4, sh);
}

#endif  // BLINKML_KERNELS_AVX2

// --- Multi-z scatter rows (MatTVecMulti / ApplyTransposedMultiBlocked).
//
// One row's contribution to a d x B partial: part[c * B + b] +=
// trow[b] * arow[c]. Per (c, b) this is the single adds of B independent
// MatTVec columns in the same row order, with the operands in the
// single-vector kernel's product order (x_r * a_rc with multiplication's
// bitwise commutativity); lanes/columns never mix.

void ScatterRowMulti(const double* trow, DIndex bwidth, const double* arow,
                     DIndex d, double* part) {
  for (DIndex c = 0; c < d; ++c) {
    const double ac = arow[c];
    double* prow = part + static_cast<std::size_t>(c) * bwidth;
    for (DIndex b = 0; b < bwidth; ++b) prow[b] += trow[b] * ac;
  }
}

void ScatterSparseRowMulti(const SIndex* cols, const double* vals, SIndex nnz,
                           const double* trow, DIndex bwidth, double* part) {
  for (SIndex e = 0; e < nnz; ++e) {
    const double val = vals[e];
    double* prow = part + static_cast<std::size_t>(cols[e]) * bwidth;
    for (DIndex b = 0; b < bwidth; ++b) prow[b] += trow[b] * val;
  }
}

#if BLINKML_KERNELS_AVX2

__attribute__((target("avx2"))) void ScatterRowMulti8Avx2(const double* trow,
                                                          const double* arow,
                                                          DIndex d,
                                                          double* part) {
  const __m256d tl = _mm256_loadu_pd(trow);
  const __m256d th = _mm256_loadu_pd(trow + 4);
  for (DIndex c = 0; c < d; ++c) {
    const __m256d ac = _mm256_set1_pd(arow[c]);
    double* prow = part + static_cast<std::size_t>(c) * 8;
    _mm256_storeu_pd(
        prow, _mm256_add_pd(_mm256_loadu_pd(prow), _mm256_mul_pd(tl, ac)));
    _mm256_storeu_pd(prow + 4, _mm256_add_pd(_mm256_loadu_pd(prow + 4),
                                             _mm256_mul_pd(th, ac)));
  }
}

__attribute__((target("avx2"))) void ScatterSparseRowMulti8Avx2(
    const SIndex* cols, const double* vals, SIndex nnz, const double* trow,
    double* part) {
  const __m256d tl = _mm256_loadu_pd(trow);
  const __m256d th = _mm256_loadu_pd(trow + 4);
  for (SIndex e = 0; e < nnz; ++e) {
    const __m256d v = _mm256_set1_pd(vals[e]);
    double* prow = part + static_cast<std::size_t>(cols[e]) * 8;
    _mm256_storeu_pd(
        prow, _mm256_add_pd(_mm256_loadu_pd(prow), _mm256_mul_pd(tl, v)));
    _mm256_storeu_pd(prow + 4, _mm256_add_pd(_mm256_loadu_pd(prow + 4),
                                             _mm256_mul_pd(th, v)));
  }
}

#endif  // BLINKML_KERNELS_AVX2

// Sorted-column merge dot of rows i and j — the oracle arithmetic, reused
// for light SparseGram tiles so they match the merge path exactly.
double MergeDot(const SparseMatrix& q, SIndex i, SIndex j) {
  const SIndex nnz_i = q.RowNnz(i), nnz_j = q.RowNnz(j);
  const SIndex* cols_i = q.RowCols(i);
  const SIndex* cols_j = q.RowCols(j);
  const double* vals_i = q.RowValues(i);
  const double* vals_j = q.RowValues(j);
  double s = 0.0;
  SIndex a = 0, b = 0;
  while (a < nnz_i && b < nnz_j) {
    if (cols_i[a] < cols_j[b]) {
      ++a;
    } else if (cols_i[a] > cols_j[b]) {
      ++b;
    } else {
      s += vals_i[a] * vals_j[b];
      ++a;
      ++b;
    }
  }
  return s;
}

// 2x2 register-tiled Gram block: fills the UPPER entries g(i, j) for i in
// [i0, i1), j in [max(j0, i), j1). Each dot runs two accumulator chains
// (even/odd k) merged as sa + sb — a fixed order per entry. The mirrored
// lower entries are filled per block afterwards (MirrorBlock): strided
// stores stay out of the FLOP loop and land on a cache-resident block.
void GramBlockUpper(const Matrix& a, DIndex i0, DIndex i1, DIndex j0,
                    DIndex j1, Matrix* g) {
  const DIndex d = a.cols();
  for (DIndex i = i0; i < i1; i += 2) {
    const bool two_i = i + 1 < i1;
    const double* ri0 = a.row_data(i);
    const double* ri1 = two_i ? a.row_data(i + 1) : ri0;
    double* gi0 = g->row_data(i);
    double* gi1 = two_i ? g->row_data(i + 1) : gi0;
    DIndex j = std::max(j0, i);
    for (; j + 2 <= j1; j += 2) {
      const double* rj0 = a.row_data(j);
      const double* rj1 = a.row_data(j + 1);
      double s00a = 0.0, s00b = 0.0, s01a = 0.0, s01b = 0.0;
      double s10a = 0.0, s10b = 0.0, s11a = 0.0, s11b = 0.0;
      DIndex k = 0;
      for (; k + 2 <= d; k += 2) {
        const double a0 = ri0[k], a0b = ri0[k + 1];
        const double a1 = ri1[k], a1b = ri1[k + 1];
        const double b0 = rj0[k], b0b = rj0[k + 1];
        const double b1 = rj1[k], b1b = rj1[k + 1];
        s00a += a0 * b0;
        s00b += a0b * b0b;
        s01a += a0 * b1;
        s01b += a0b * b1b;
        s10a += a1 * b0;
        s10b += a1b * b0b;
        s11a += a1 * b1;
        s11b += a1b * b1b;
      }
      double s00 = s00a + s00b, s01 = s01a + s01b;
      double s10 = s10a + s10b, s11 = s11a + s11b;
      for (; k < d; ++k) {
        s00 += ri0[k] * rj0[k];
        s01 += ri0[k] * rj1[k];
        s10 += ri1[k] * rj0[k];
        s11 += ri1[k] * rj1[k];
      }
      gi0[j] = s00;
      gi0[j + 1] = s01;
      if (two_i) {
        // (i+1, j) sits on the diagonal's lower side when j == i; the
        // value equals the mirrored upper entry bitwise (identical
        // products, identical order), so the row-i+1 slot that matters,
        // (i+1, i+1) = s11, is all the mirror pass will read.
        if (j >= i + 1) gi1[j] = s10;
        gi1[j + 1] = s11;
      }
    }
    for (; j < j1; ++j) {
      const double* rj = a.row_data(j);
      double s0a = 0.0, s0b = 0.0, s1a = 0.0, s1b = 0.0;
      DIndex k = 0;
      for (; k + 2 <= d; k += 2) {
        s0a += ri0[k] * rj[k];
        s0b += ri0[k + 1] * rj[k + 1];
        s1a += ri1[k] * rj[k];
        s1b += ri1[k + 1] * rj[k + 1];
      }
      double s0 = s0a + s0b, s1 = s1a + s1b;
      for (; k < d; ++k) {
        s0 += ri0[k] * rj[k];
        s1 += ri1[k] * rj[k];
      }
      gi0[j] = s0;
      if (two_i && j >= i + 1) gi1[j] = s1;
    }
  }
}

// Copies the upper block (i0..i1) x (j0..j1) to its mirror below the
// diagonal. Runs in the chunk that produced the block, so ownership of
// every (i, j) pair stays with one chunk.
void MirrorBlock(DIndex i0, DIndex i1, DIndex j0, DIndex j1, Matrix* g) {
  for (DIndex i = i0; i < i1; ++i) {
    const double* src = g->row_data(i);
    for (DIndex j = std::max(j0, i + 1); j < j1; ++j) {
      (*g)(j, i) = src[j];
    }
  }
}

}  // namespace

double DotUnrolled(const double* a, const double* b, DIndex n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  DIndex k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += a[k] * b[k];
    s1 += a[k + 1] * b[k + 1];
    s2 += a[k + 2] * b[k + 2];
    s3 += a[k + 3] * b[k + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; k < n; ++k) s += a[k] * b[k];
  return s;
}

double SparseDotUnrolled(const SIndex* cols, const double* vals, SIndex nnz,
                         const double* x) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  SIndex k = 0;
  for (; k + 4 <= nnz; k += 4) {
    s0 += vals[k] * x[cols[k]];
    s1 += vals[k + 1] * x[cols[k + 1]];
    s2 += vals[k + 2] * x[cols[k + 2]];
    s3 += vals[k + 3] * x[cols[k + 3]];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; k < nnz; ++k) s += vals[k] * x[cols[k]];
  return s;
}

Matrix GramRows(const Matrix& a) {
  const DIndex n = a.rows();
  Matrix g(n, n);
  const DIndex nb = (n + kDenseBlock - 1) / kDenseBlock;
  // One chunk item = one block row of the upper triangle; the strided lane
  // assignment balances the triangular block-row costs.
  ParallelFor(0, nb, [&](DIndex b0, DIndex b1) {
    for (DIndex bi = b0; bi < b1; ++bi) {
      const DIndex i0 = bi * kDenseBlock;
      const DIndex i1 = std::min(i0 + kDenseBlock, n);
      for (DIndex bj = bi; bj < nb; ++bj) {
        const DIndex j0 = bj * kDenseBlock;
        const DIndex j1 = std::min(j0 + kDenseBlock, n);
        GramBlockUpper(a, i0, i1, j0, j1, &g);
        MirrorBlock(i0, i1, j0, j1, &g);
      }
    }
  }, /*grain=*/1);
  return g;
}

Matrix GramCols(const Matrix& a) {
  const DIndex n = a.rows(), d = a.cols();
  Matrix g(d, d);
  // Entry (i, j) accumulates over 4-row panels of A in ascending row
  // order — a pure function of n, never of the chunking, so any grain is
  // safe (each chunk owns its output rows outright). Two chunks per lane
  // balance the triangular row costs, as in the naive path.
  const int lanes = CurrentParallelism();
  const DIndex grain =
      std::max<DIndex>(1, (d + 2 * lanes - 1) / (2 * lanes));
  ParallelFor(0, d, [&](DIndex i0, DIndex i1) {
    DIndex r = 0;
    for (; r + 4 <= n; r += 4) {
      const double* r0 = a.row_data(r);
      const double* r1 = a.row_data(r + 1);
      const double* r2 = a.row_data(r + 2);
      const double* r3 = a.row_data(r + 3);
      for (DIndex i = i0; i < i1; ++i) {
        const double v0 = r0[i], v1 = r1[i], v2 = r2[i], v3 = r3[i];
        if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
        double* grow = g.row_data(i);
        for (DIndex j = i; j < d; ++j) {
          grow[j] += v0 * r0[j] + v1 * r1[j] + v2 * r2[j] + v3 * r3[j];
        }
      }
    }
    for (; r < n; ++r) {
      const double* row = a.row_data(r);
      for (DIndex i = i0; i < i1; ++i) {
        const double v = row[i];
        if (v == 0.0) continue;
        double* grow = g.row_data(i);
        for (DIndex j = i; j < d; ++j) grow[j] += v * row[j];
      }
    }
  }, grain);
  for (DIndex i = 0; i < d; ++i) {
    for (DIndex j = i + 1; j < d; ++j) g(j, i) = g(i, j);
  }
  return g;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  BLINKML_CHECK_EQ(a.cols(), b.rows());
  const DIndex m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // ikj with the p loop register-tiled 4-wide inside 64-deep panels: each
  // C row is loaded/stored once per 4 rows of B instead of once per row,
  // and the panel keeps the active B rows L2-resident. Accumulation into
  // c(i, j) runs panels ascending, p ascending within — fixed order.
  constexpr DIndex kPanel = 64;
  ParallelFor(0, m, [&](DIndex r0, DIndex r1) {
    for (DIndex p0 = 0; p0 < k; p0 += kPanel) {
      const DIndex p1 = std::min(p0 + kPanel, k);
      for (DIndex i = r0; i < r1; ++i) {
        double* crow = c.row_data(i);
        const double* arow = a.row_data(i);
        DIndex p = p0;
        for (; p + 4 <= p1; p += 4) {
          const double a0 = arow[p], a1 = arow[p + 1];
          const double a2 = arow[p + 2], a3 = arow[p + 3];
          if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
          const double* b0 = b.row_data(p);
          const double* b1 = b.row_data(p + 1);
          const double* b2 = b.row_data(p + 2);
          const double* b3 = b.row_data(p + 3);
          for (DIndex j = 0; j < n; ++j) {
            crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; p < p1; ++p) {
          const double aip = arow[p];
          if (aip == 0.0) continue;
          const double* brow = b.row_data(p);
          for (DIndex j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  }, kPanel);
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  BLINKML_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  const double* px = x.data();
  const DotFn dot = SelectDot();
  ParallelFor(0, a.rows(), [&](DIndex b, DIndex e) {
    for (DIndex r = b; r < e; ++r) {
      y[r] = dot(a.row_data(r), px, a.cols());
    }
  });
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  BLINKML_CHECK_EQ(a.rows(), x.size());
  const DIndex n = a.rows(), d = a.cols();
  if (n == 0) return Vector(d);  // no chunks: the reduce would return {}
  // Per-chunk partial outputs merged element-wise in chunk order: for any
  // output entry the contributions stay grouped by ascending row blocks,
  // so the result is identical for every thread count (and differs from
  // the naive serial scatter only by the fixed partial-merge association).
  const ParallelIndex chunks = TransposedChunks(n * d, d);
  const ParallelIndex grain = (n + chunks - 1) / chunks;
  return ParallelReduce(
      ParallelIndex{0}, static_cast<ParallelIndex>(n), Vector(),
      [&](ParallelIndex b, ParallelIndex e) {
        Vector part(d);
        double* py = part.data();
        for (ParallelIndex r = b; r < e; ++r) {
          const double xr = x[r];
          if (xr == 0.0) continue;
          const double* arow = a.row_data(r);
          for (DIndex c = 0; c < d; ++c) py[c] += xr * arow[c];
        }
        return part;
      },
      [](Vector acc, Vector& part) {
        if (acc.size() == 0) return std::move(part);
        acc += part;
        return acc;
      },
      grain);
}

Matrix MatVecMulti(const Matrix& a, const Matrix& zs) {
  BLINKML_CHECK_EQ(a.cols(), zs.cols());
  const DIndex n = a.rows(), d = a.cols();
  const DIndex k = zs.rows();
  Matrix out(n, k);
  if (k == 0 || n == 0) return out;
  const bool avx2 = UseAvx2();
  // One group of up to kMultiVec vectors at a time: interleave the group
  // into a pack (pack[p * width + t] = z_t[p]) so each row of A is loaded
  // once per group and the inner step reads one contiguous slab.
  std::vector<double> pack;
  for (DIndex c0 = 0; c0 < k; c0 += kMultiVec) {
    const DIndex width = std::min<DIndex>(kMultiVec, k - c0);
    pack.assign(static_cast<std::size_t>(d) * width, 0.0);
    for (DIndex t = 0; t < width; ++t) {
      const double* zrow = zs.row_data(c0 + t);
      for (DIndex p = 0; p < d; ++p) {
        pack[static_cast<std::size_t>(p) * width + t] = zrow[p];
      }
    }
    const double* pk = pack.data();
    ParallelFor(0, n, [&](DIndex b, DIndex e) {
      for (DIndex i = b; i < e; ++i) {
        const double* row = a.row_data(i);
        double* orow = out.row_data(i) + c0;
        if (width == kMultiVec) {
#if BLINKML_KERNELS_AVX2
          if (avx2) {
            BatchRowPackedAvx2(row, d, pk, orow);
            continue;
          }
#endif
          BatchRowPacked<kMultiVec>(row, d, pk, orow);
        } else {
          BatchRowPackedTail(row, d, pk, width, orow);
        }
      }
    });
  }
  return out;
}

Matrix MatTVecMulti(const Matrix& a, const Matrix& t) {
  BLINKML_CHECK_EQ(a.rows(), t.rows());
  const DIndex n = a.rows(), d = a.cols();
  const DIndex k = t.cols();
  if (n == 0 || k == 0) return Matrix(d, k);
  const bool avx2 = UseAvx2();
  // The single-vector MatTVec's chunk layout — a pure function of A's
  // shape, independent of the batch width — with d x k partials merged in
  // chunk order: per column the contributions stay grouped by the same
  // ascending row blocks, so each column is bitwise MatTVec(a, t_col).
  // Rows whose whole t-row is zero are skipped (every column would skip);
  // a zero in a non-zero row contributes a +/-0.0 product, which cannot
  // change a finite accumulator's bits.
  const ParallelIndex chunks = TransposedChunks(n * d, d);
  const ParallelIndex grain = (n + chunks - 1) / chunks;
  return ParallelReduce(
      ParallelIndex{0}, static_cast<ParallelIndex>(n), Matrix(),
      [&](ParallelIndex b, ParallelIndex e) {
        Matrix part(d, k);
        double* pd = part.row_data(0);
        for (ParallelIndex r = b; r < e; ++r) {
          const double* trow = t.row_data(r);
          bool any = false;
          for (DIndex c = 0; c < k; ++c) {
            if (trow[c] != 0.0) {
              any = true;
              break;
            }
          }
          if (!any) continue;
          const double* arow = a.row_data(r);
#if BLINKML_KERNELS_AVX2
          if (avx2 && k == kMultiVec) {
            ScatterRowMulti8Avx2(trow, arow, d, pd);
            continue;
          }
#endif
          ScatterRowMulti(trow, k, arow, d, pd);
        }
        return part;
      },
      [](Matrix acc, Matrix& part) {
        if (acc.rows() == 0) return std::move(part);
        acc += part;
        return acc;
      },
      grain);
}

Matrix SparseGram(const SparseMatrix& q) {
  const SIndex n = q.rows();
  const SIndex cols = q.cols();
  Matrix g(n, n);
  if (cols > kSparseGramMaxCols) {
    // Scratch would not be cache- (or even memory-) reasonable; the merge
    // path needs no dense state.
    ParallelFor(0, n, [&](SIndex i0, SIndex i1) {
      for (SIndex i = i0; i < i1; ++i) {
        for (SIndex j = i; j < n; ++j) {
          const double s = MergeDot(q, i, j);
          g(i, j) = s;
          g(j, i) = s;
        }
      }
    }, kFineGrain);
    return g;
  }
  const SIndex tiles = (n + kSparseTile - 1) / kSparseTile;
  // One chunk item = one tile of rows; every (i, j) pair is owned by the
  // tile of min(i, j). The scratch is per-chunk state, but the values any
  // (i, j) reads from it are exactly row min(i,j)'s entries — chunking
  // never changes an entry's arithmetic.
  ParallelFor(0, tiles, [&](SIndex t0, SIndex t1) {
    std::vector<double> scratch;  // interleaved: scratch[col * tile + t]
    for (SIndex t = t0; t < t1; ++t) {
      const SIndex i0 = t * kSparseTile;
      const SIndex i1 = std::min<SIndex>(i0 + kSparseTile, n);
      SIndex tile_nnz = 0;
      for (SIndex i = i0; i < i1; ++i) tile_nnz += q.RowNnz(i);
      if (tile_nnz < kHeavyTileNnz) {
        for (SIndex i = i0; i < i1; ++i) {
          for (SIndex j = i; j < n; ++j) {
            const double s = MergeDot(q, i, j);
            g(i, j) = s;
            g(j, i) = s;
          }
        }
        continue;
      }
      if (scratch.empty()) {
        scratch.assign(static_cast<std::size_t>(cols) * kSparseTile, 0.0);
      }
      // Scatter the tile rows into the interleaved scratch...
      for (SIndex i = i0; i < i1; ++i) {
        const SIndex nnz = q.RowNnz(i);
        const SIndex* rc = q.RowCols(i);
        const double* rv = q.RowValues(i);
        const SIndex slot = i - i0;
        for (SIndex e = 0; e < nnz; ++e) {
          scratch[static_cast<std::size_t>(rc[e] * kSparseTile + slot)] =
              rv[e];
        }
      }
      // ...then every row j >= i0 gathers its dot against ALL tile rows in
      // one pass over its own entries (the column-intersection state is
      // paid once per tile, not once per pair).
      for (SIndex j = i0; j < n; ++j) {
        const SIndex nnz = q.RowNnz(j);
        const SIndex* rc = q.RowCols(j);
        const double* rv = q.RowValues(j);
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (SIndex e = 0; e < nnz; ++e) {
          const double v = rv[e];
          const double* base =
              scratch.data() +
              static_cast<std::size_t>(rc[e]) * kSparseTile;
          s0 += v * base[0];
          s1 += v * base[1];
          s2 += v * base[2];
          s3 += v * base[3];
        }
        const double s[kSparseTile] = {s0, s1, s2, s3};
        const SIndex last = std::min<SIndex>(i1 - 1, j);
        for (SIndex i = i0; i <= last; ++i) {
          g(i, j) = s[i - i0];
          g(j, i) = s[i - i0];
        }
      }
      // Clear only what the tile touched.
      for (SIndex i = i0; i < i1; ++i) {
        const SIndex nnz = q.RowNnz(i);
        const SIndex* rc = q.RowCols(i);
        for (SIndex e = 0; e < nnz; ++e) {
          double* base =
              scratch.data() +
              static_cast<std::size_t>(rc[e]) * kSparseTile;
          for (SIndex slot = 0; slot < kSparseTile; ++slot) base[slot] = 0.0;
        }
      }
    }
  }, /*grain=*/std::max<SIndex>(1, kFineGrain / kSparseTile));
  return g;
}

Vector Apply(const SparseMatrix& a, const Vector& x) {
  BLINKML_CHECK_EQ(static_cast<SIndex>(x.size()), a.cols());
  Vector y(a.rows());
  const double* px = x.data();
  ParallelFor(0, a.rows(), [&](SIndex b, SIndex e) {
    for (SIndex r = b; r < e; ++r) {
      y[r] = SparseDotUnrolled(a.RowCols(r), a.RowValues(r), a.RowNnz(r), px);
    }
  });
  return y;
}

Vector ApplyTransposed(const SparseMatrix& a, const Vector& x) {
  BLINKML_CHECK_EQ(static_cast<SIndex>(x.size()), a.rows());
  const SIndex n = a.rows();
  const SIndex d = a.cols();
  if (n == 0) return Vector(d);  // no chunks: the reduce would return {}
  const ParallelIndex chunks = TransposedChunks(a.nnz(), d);
  const ParallelIndex grain = (n + chunks - 1) / chunks;
  return ParallelReduce(
      ParallelIndex{0}, static_cast<ParallelIndex>(n), Vector(),
      [&](ParallelIndex b, ParallelIndex e) {
        Vector part(d);
        double* py = part.data();
        for (ParallelIndex r = b; r < e; ++r) {
          const double xr = x[r];
          if (xr == 0.0) continue;
          a.AddRowTo(r, xr, py);
        }
        return part;
      },
      [](Vector acc, Vector& part) {
        if (acc.size() == 0) return std::move(part);
        acc += part;
        return acc;
      },
      grain);
}

Matrix ApplyTransposedMulti(const SparseMatrix& a, const Matrix& v) {
  BLINKML_CHECK_EQ(a.rows(), v.rows());
  const SIndex n = a.rows();
  const DIndex r = v.cols();
  const SIndex d = a.cols();
  Matrix out(d, r);
  // One pass over the rows per GROUP of kMultiVec columns: the row's
  // cols/vals are loaded once and scattered into all group columns, an
  // index-load amortization no per-column pass can get. Per output entry
  // the contributions still arrive in ascending row order — bitwise equal
  // to r naive per-column transposed applies. Groups are independent
  // output stripes, so they parallelize with no partials.
  const DIndex groups = (r + kMultiVec - 1) / kMultiVec;
  ParallelFor(0, groups, [&](DIndex g0, DIndex g1) {
    // Column-major stripe accumulator: stripe[j * width + t] for output
    // column c0 + t (out itself is d x r row-major, wrong stride for the
    // inner scatter).
    std::vector<double> stripe;
    for (DIndex g = g0; g < g1; ++g) {
      const DIndex c0 = g * kMultiVec;
      const DIndex width = std::min<DIndex>(kMultiVec, r - c0);
      stripe.assign(static_cast<std::size_t>(d) * width, 0.0);
      for (SIndex i = 0; i < n; ++i) {
        const SIndex nnz = a.RowNnz(i);
        const SIndex* cols = a.RowCols(i);
        const double* vals = a.RowValues(i);
        const double* vrow = v.row_data(i) + c0;
        for (SIndex e = 0; e < nnz; ++e) {
          const double val = vals[e];
          double* dst = stripe.data() +
                        static_cast<std::size_t>(cols[e]) * width;
          for (DIndex t = 0; t < width; ++t) dst[t] += val * vrow[t];
        }
      }
      for (SIndex j = 0; j < d; ++j) {
        const double* src =
            stripe.data() + static_cast<std::size_t>(j) * width;
        double* dst = out.row_data(j) + c0;
        for (DIndex t = 0; t < width; ++t) dst[t] = src[t];
      }
    }
  }, /*grain=*/1);
  return out;
}

Matrix ApplyTransposedMultiBlocked(const SparseMatrix& a, const Matrix& t) {
  BLINKML_CHECK_EQ(a.rows(), static_cast<SIndex>(t.rows()));
  const SIndex n = a.rows();
  const SIndex d = a.cols();
  const DIndex k = t.cols();
  if (n == 0 || k == 0) return Matrix(d, k);
  const bool avx2 = UseAvx2();
  // Same reduction shape as the blocked single-vector ApplyTransposed
  // (chunks from (nnz, cols) alone), widened to d x k partials: column b
  // is bitwise ApplyTransposed(a, t_col_b). Zero-row skip as in
  // MatTVecMulti.
  const ParallelIndex chunks = TransposedChunks(a.nnz(), d);
  const ParallelIndex grain = (n + chunks - 1) / chunks;
  return ParallelReduce(
      ParallelIndex{0}, static_cast<ParallelIndex>(n), Matrix(),
      [&](ParallelIndex b, ParallelIndex e) {
        Matrix part(d, k);
        double* pd = part.row_data(0);
        for (ParallelIndex r = b; r < e; ++r) {
          const double* trow = t.row_data(r);
          bool any = false;
          for (DIndex c = 0; c < k; ++c) {
            if (trow[c] != 0.0) {
              any = true;
              break;
            }
          }
          if (!any) continue;
#if BLINKML_KERNELS_AVX2
          if (avx2 && k == kMultiVec) {
            ScatterSparseRowMulti8Avx2(a.RowCols(r), a.RowValues(r),
                                       a.RowNnz(r), trow, pd);
            continue;
          }
#endif
          ScatterSparseRowMulti(a.RowCols(r), a.RowValues(r), a.RowNnz(r),
                                trow, k, pd);
        }
        return part;
      },
      [](Matrix acc, Matrix& part) {
        if (acc.rows() == 0) return std::move(part);
        acc += part;
        return acc;
      },
      grain);
}

void DenseMargins(const Matrix& x, const double* theta, DIndex b, DIndex e,
                  double* out) {
  const DIndex d = x.cols();
  const DotFn dot = SelectDot();
  for (DIndex i = b; i < e; ++i) {
    out[i - b] = dot(x.row_data(i), theta, d);
  }
}

void SparseMargins(const SparseMatrix& x, const double* theta, SIndex b,
                   SIndex e, double* out) {
  for (SIndex i = b; i < e; ++i) {
    out[i - b] =
        SparseDotUnrolled(x.RowCols(i), x.RowValues(i), x.RowNnz(i), theta);
  }
}

Matrix BatchMarginsDense(const Matrix& x,
                         const std::vector<const Vector*>& thetas) {
  const auto k = static_cast<DIndex>(thetas.size());
  const DIndex d = x.cols();
  Matrix margins(x.rows(), k);
  // Column groups of kMultiVec candidates share each load of the feature
  // row (BatchRowDense; every entry bitwise DotUnrolled(row, theta_t)).
  static_assert(kMultiVec == 8, "BatchRowDenseTail's default case");
  ParallelFor(0, x.rows(), [&](DIndex b, DIndex e) {
    const double* th[kMultiVec];
    for (DIndex i = b; i < e; ++i) {
      const double* row = x.row_data(i);
      double* orow = margins.row_data(i);
      for (DIndex c0 = 0; c0 < k; c0 += kMultiVec) {
        const DIndex width = std::min<DIndex>(kMultiVec, k - c0);
        for (DIndex t = 0; t < width; ++t) {
          th[t] = thetas[static_cast<std::size_t>(c0 + t)]->data();
        }
        if (width == kMultiVec) {
          BatchRowDense<kMultiVec>(row, d, th, orow + c0);
        } else {
          BatchRowDenseTail(row, d, th, width, orow + c0);
        }
      }
    }
  });
  return margins;
}

Matrix BatchMarginsSparse(const SparseMatrix& x,
                          const std::vector<const Vector*>& thetas) {
  const auto k = static_cast<DIndex>(thetas.size());
  const SIndex d = x.cols();
  Matrix margins(x.rows(), k);
  // Interleave the candidate vectors once (pack[c * k + t] = theta_t[c]):
  // a row entry then gathers one kMultiVec-contiguous slab per column
  // group instead of k scattered singles, and the row's cols/vals loads
  // are paid once per group — the CSR gather dot is load-port-bound, so
  // this is where the batched win comes from. Skipped (per-column
  // unrolled dots) when the pack would not be cache-reasonable.
  const bool pack_ok =
      k > 1 && d * static_cast<SIndex>(k) <= (SIndex{1} << 22);
  std::vector<double> pack;
  if (pack_ok) {
    pack.resize(static_cast<std::size_t>(d) * k);
    ParallelFor(0, d, [&](SIndex c0, SIndex c1) {
      for (SIndex c = c0; c < c1; ++c) {
        double* slot = pack.data() + static_cast<std::size_t>(c) * k;
        for (DIndex t = 0; t < k; ++t) {
          slot[t] = (*thetas[static_cast<std::size_t>(t)])[c];
        }
      }
    }, /*grain=*/1024);
  }
  static_assert(kMultiVec == 8, "BatchRowGatherTail's default case");
  const bool avx2 = UseAvx2();
  ParallelFor(0, x.rows(), [&](SIndex b, SIndex e) {
    for (SIndex i = b; i < e; ++i) {
      const SIndex nnz = x.RowNnz(i);
      const SIndex* cols = x.RowCols(i);
      const double* vals = x.RowValues(i);
      double* orow = margins.row_data(i);
      if (!pack_ok) {
        for (DIndex c = 0; c < k; ++c) {
          orow[c] = SparseDotUnrolled(
              cols, vals, nnz, thetas[static_cast<std::size_t>(c)]->data());
        }
        continue;
      }
      DIndex c0 = 0;
      for (; c0 + kMultiVec <= k; c0 += kMultiVec) {
#if BLINKML_KERNELS_AVX2
        if (avx2) {
          BatchRowGatherAvx2(cols, vals, nnz, pack.data(), k, c0, orow);
          continue;
        }
#endif
        BatchRowGather<kMultiVec>(cols, vals, nnz, pack.data(), k, c0, orow);
      }
      if (c0 < k) {
        BatchRowGatherTail(cols, vals, nnz, pack.data(), k, c0, k - c0, orow);
      }
    }
  });
  return margins;
}

}  // namespace kernels
}  // namespace blinkml
