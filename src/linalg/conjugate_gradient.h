// Conjugate-gradient solver for symmetric positive-definite systems given
// only a matrix-vector product (matrix-free). Complements the dense
// factorizations: for regularized Hessian systems H x = b with
// H = J + beta I and J available only as a factor (the ObservedFisher
// representation), CG solves in O(iterations * apply-cost) without ever
// forming H.

#ifndef BLINKML_LINALG_CONJUGATE_GRADIENT_H_
#define BLINKML_LINALG_CONJUGATE_GRADIENT_H_

#include <functional>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace blinkml {

struct CgOptions {
  /// Stop when ||r|| <= tolerance * ||b||.
  double tolerance = 1e-10;
  /// 0 = 10x the system dimension. (CG reaches the solution in n steps in
  /// exact arithmetic; rounding on ill-conditioned systems needs slack.)
  int max_iterations = 0;
};

struct CgResult {
  Vector x;
  double residual_norm = 0.0;  // final ||A x - b||
  int iterations = 0;
  bool converged = false;
};

/// Solves A x = b for SPD A given as a matvec callback.
/// Fails with InvalidArgument if a direction of non-positive curvature is
/// encountered (A not positive definite).
Result<CgResult> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply, const Vector& b,
    const CgOptions& options = {});

/// Convenience overload for an explicit dense SPD matrix.
Result<CgResult> ConjugateGradient(const Matrix& a, const Vector& b,
                                   const CgOptions& options = {});

}  // namespace blinkml

#endif  // BLINKML_LINALG_CONJUGATE_GRADIENT_H_
