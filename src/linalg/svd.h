// Thin singular value decomposition A = U diag(s) V^T.
//
// Two implementations:
//  * GramSvd — eigendecomposition of the smaller of A A^T / A^T A; cost
//    O(min(m,n)^2 * max(m,n)). This is the workhorse used by ObservedFisher
//    (paper Section 3.4: only the factor of J is ever needed, never the
//    d x d covariance itself). Precision of small singular values is
//    limited to ~sqrt(machine epsilon) relative to the largest — adequate
//    here because directions with negligible singular value contribute
//    negligible sampler variance.
//  * JacobiSvd — one-sided Jacobi orthogonalization; slower but fully
//    accurate; used for small matrices and as the test oracle.

#ifndef BLINKML_LINALG_SVD_H_
#define BLINKML_LINALG_SVD_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace blinkml {

/// Thin SVD: for an m x n matrix with r = min(m, n), U is m x r,
/// singular_values has r entries (descending, non-negative), V is n x r.
struct Svd {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// Thin SVD via the Gram-matrix eigendecomposition (see file comment).
Result<Svd> GramSvd(const Matrix& a);

/// Thin SVD via one-sided Jacobi rotations (accurate; O(m n^2) per sweep).
Result<Svd> JacobiSvd(const Matrix& a);

/// Reconstructs U diag(s) V^T (test helper).
Matrix SvdReconstruct(const Svd& svd);

}  // namespace blinkml

#endif  // BLINKML_LINALG_SVD_H_
