// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
//
// Used by the dense statistics paths (ClosedForm / InverseGradients) to
// invert the regularized Hessian H, and by the dense multivariate-normal
// sampler (L maps standard normals to N(0, A)).

#ifndef BLINKML_LINALG_CHOLESKY_H_
#define BLINKML_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace blinkml {

class Cholesky {
 public:
  /// Factors `a` (symmetric positive definite). Fails with InvalidArgument
  /// if `a` is not square or a non-positive pivot is encountered (i.e. `a`
  /// is not numerically positive definite).
  static Result<Cholesky> Factor(const Matrix& a);

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// Solves L y = b (forward substitution).
  Vector SolveLower(const Vector& b) const;

  /// Solves L^T x = y (back substitution).
  Vector SolveUpper(const Vector& y) const;

  /// Dense inverse A^{-1} (prefer Solve when possible).
  Matrix Inverse() const;

  /// log(det A) = 2 * sum_i log L_ii.
  double LogDet() const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace blinkml

#endif  // BLINKML_LINALG_CHOLESKY_H_
