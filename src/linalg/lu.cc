#include "linalg/lu.h"

#include <cmath>

#include "util/string_util.h"

namespace blinkml {

using Index = Matrix::Index;

Result<Lu> Lu::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const Index n = a.rows();
  Matrix lu = a;
  std::vector<Index> perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  int sign = 1;

  for (Index k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    Index pivot = k;
    double best = std::fabs(lu(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return Status::InvalidArgument(
          StrFormat("matrix is singular at column %lld",
                    static_cast<long long>(k)));
    }
    if (pivot != k) {
      for (Index c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[static_cast<std::size_t>(k)],
                perm[static_cast<std::size_t>(pivot)]);
      sign = -sign;
    }
    const double inv = 1.0 / lu(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      double* ri = lu.row_data(i);
      const double* rk = lu.row_data(k);
      for (Index c = k + 1; c < n; ++c) ri[c] -= factor * rk[c];
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

Vector Lu::Solve(const Vector& b) const {
  const Index n = lu_.rows();
  BLINKML_CHECK_EQ(b.size(), n);
  Vector x(n);
  // Apply permutation, then forward substitution with unit-diagonal L.
  for (Index i = 0; i < n; ++i) {
    double s = b[perm_[static_cast<std::size_t>(i)]];
    const double* row = lu_.row_data(i);
    for (Index k = 0; k < i; ++k) s -= row[k] * x[k];
    x[i] = s;
  }
  // Back substitution with U.
  for (Index i = n - 1; i >= 0; --i) {
    double s = x[i];
    const double* row = lu_.row_data(i);
    for (Index k = i + 1; k < n; ++k) s -= row[k] * x[k];
    x[i] = s / row[i];
  }
  return x;
}

Matrix Lu::Solve(const Matrix& b) const {
  BLINKML_CHECK_EQ(b.rows(), lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (Index c = 0; c < b.cols(); ++c) x.SetCol(c, Solve(b.Col(c)));
  return x;
}

Matrix Lu::Inverse() const { return Solve(Matrix::Identity(lu_.rows())); }

double Lu::Determinant() const {
  double det = sign_;
  for (Index i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace blinkml
