// Deterministic compute kernels for the linear-algebra hot paths.
//
// Every end-to-end BlinkML run is dominated by a handful of dense/sparse
// kernels: the observed-Fisher Gram over the gradient matrix Q, the Grams
// inside the sampler and eigensolver, the CSR matvecs behind every sampler
// draw, and the per-row margin dots of the GLM training/scoring loops.
// This module provides register-tiled, cache-blocked, manually unrolled
// implementations of those kernels; the naive scalar loops stay in their
// original homes (linalg/matrix.cc, linalg/sparse.cc, core/statistics.cc)
// as the opt-out oracle, selected by RuntimeOptions::kernel_level.
//
// Determinism contract (the same one runtime/parallel.h makes): every
// kernel's block schedule and accumulation order is a pure function of the
// problem shape — never of the thread count, the pool, or the chunk a lane
// happens to run. Parallel loops only partition OUTPUT ownership (each
// output element is produced wholly by one chunk, in a fixed order), and
// the one reduction-shaped kernel (transposed matvec) uses a chunk layout
// derived from the shape alone with partials merged serially in chunk
// order. Consequently results are bitwise identical at 1/2/N threads and
// with the runtime disabled. They may differ from the naive loops by
// rounding (multiple accumulator chains reassociate the sums); the bench
// and tests pin that difference below 1e-12 relative.
//
// Unrolled-dot consistency: BatchMargins' column 0 is self-checked
// bitwise against a single Predict pass by the hyperparameter search's
// batched scoring. All margin-shaped kernels therefore compute every dot
// with the ONE canonical unrolled dot (DotUnrolled / SparseDotUnrolled);
// register tiling across candidates or rows never changes a dot's own
// summation order.
//
// ISA dispatch: RuntimeOptions::kernel_isa selects AVX2 variants of the
// hottest inner loops (the canonical dot, the batched gather/packed row
// kernels, and the multi-z scatter slabs). The vector variants keep the
// scalar association exactly — the 4 unrolled chains become the 4 lanes
// of one ymm register merged in the same (s0+s1)+(s2+s3) order (or one
// lane per batched column), and FMA is never used — so AVX2 output is
// bitwise identical to the scalar blocked output. kNaive ignores the ISA
// entirely and stays the tolerance oracle.

#ifndef BLINKML_LINALG_KERNELS_H_
#define BLINKML_LINALG_KERNELS_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/vector.h"

namespace blinkml {
namespace kernels {

// --- Block schedule constants (fixed: part of the determinism contract).

/// Square output block of the dense Gram kernels: a 64-row panel of a
/// paper-sized operand (d <= ~1k) stays L2-resident while the paired
/// block streams against it.
inline constexpr Matrix::Index kDenseBlock = 64;

/// Rows per SparseGram tile: one scatter of a tile serves the
/// column-intersection of every pair (tile row, later row), and the
/// interleaved scratch keeps a tile's slots on one cache line per column.
inline constexpr SparseMatrix::Index kSparseTile = 4;

/// A tile whose total nnz is below this runs the plain pairwise sorted
/// merges instead (scatter + clear would not amortize over light rows).
inline constexpr SparseMatrix::Index kHeavyTileNnz = 64;

/// SparseGram falls back to the merge path entirely when the column count
/// would make the per-chunk scratch unreasonable (cols * tile * 8 bytes).
inline constexpr SparseMatrix::Index kSparseGramMaxCols = 1 << 19;

/// Column-group width of the multi-vector kernels (batched margins,
/// multi-column transposed apply): one load of a row's indices/values
/// serves kMultiVec output columns, the amortization that makes these
/// kernels beat the per-vector loops even on one core (a CSR gather dot
/// is load-port-bound, not FLOP-bound, so single-vector ILP cannot).
inline constexpr Matrix::Index kMultiVec = 8;

// --- Canonical unrolled dots (see the consistency note above).

/// Four-accumulator dot product; fixed reassociation
/// (s0+s1)+(s2+s3) then the scalar tail.
double DotUnrolled(const double* a, const double* b, Matrix::Index n);

/// Four-accumulator sparse-times-dense gather dot.
double SparseDotUnrolled(const SparseMatrix::Index* cols, const double* vals,
                         SparseMatrix::Index nnz, const double* x);

/// Observability hook for the coarse dispatch wrappers (Matrix::GramRows
/// etc.): bumps kernel_calls_total{kernel=...,level=naive|blocked} in the
/// global obs registry. Called once per Gram/MatMul dispatch — never per
/// row — so the registry lookup cost is invisible next to the kernel.
void NoteKernelDispatch(const char* kernel, bool blocked);

// --- Dense kernels.

/// A A^T with 2x2 register tiles over kDenseBlock output blocks; parallel
/// over block rows of the upper triangle.
Matrix GramRows(const Matrix& a);

/// A^T A accumulated over 4-row panels of A; parallel over output rows.
Matrix GramCols(const Matrix& a);

/// A * B, ikj order with 4-wide p-register-tiling inside 64-row p-panels;
/// parallel over rows of C.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// A x with unrolled row dots; parallel over rows.
Vector MatVec(const Matrix& a, const Vector& x);

/// A^T x via per-chunk partial outputs merged in fixed chunk order.
Vector MatTVec(const Matrix& a, const Vector& x);

// --- Multi-z kernels (batched Monte-Carlo draws; ParamSampler::DrawBatch).

/// A zs^T for a batch of B vectors given as the ROWS of zs (B x a.cols()):
/// out is a.rows() x B with out.col(b) == MatVec(a, zs.row(b)) bitwise.
/// The B vectors are interleaved into a pack once so each row of A is
/// loaded once per group and every gather lands on one contiguous slab;
/// each output entry's accumulation is exactly the canonical DotUnrolled.
Matrix MatVecMulti(const Matrix& a, const Matrix& zs);

/// A^T T for a dense T (a.rows() x B, column b = vector b): out is
/// a.cols() x B with out.col(b) == MatTVec(a, t.col(b)) bitwise. Uses the
/// single-vector kernel's chunk layout — TransposedChunks(rows*cols,
/// cols), a pure function of A's shape, independent of B — with d x B
/// partials merged in chunk order, so per column the partial-merge
/// association is identical to MatTVec's.
Matrix MatTVecMulti(const Matrix& a, const Matrix& t);

// --- Sparse kernels.

/// Q Q^T: heavy row tiles are scattered once into an interleaved dense
/// scratch and every later row gathers kSparseTile dots from it in one
/// pass over its entries; light tiles keep the pairwise sorted merges.
Matrix SparseGram(const SparseMatrix& q);

/// A x with unrolled gather dots; parallel over rows.
Vector Apply(const SparseMatrix& a, const Vector& x);

/// A^T x via per-chunk partial outputs merged in fixed chunk order. The
/// chunk count is a pure function of (nnz, cols): scatters below ~4 rounds
/// of the output vector run as one chunk (a partial per chunk must
/// amortize its own zero+merge traffic).
Vector ApplyTransposed(const SparseMatrix& a, const Vector& x);

/// A^T V for a dense V (n x r): one pass over the rows per kMultiVec
/// column group, scattering each entry into the whole group (index loads
/// amortized r-fold within a group). Per output entry contributions stay
/// in ascending row order — bitwise equal to r naive ApplyTransposed
/// calls. Groups parallelize as independent output stripes. Backs
/// ParamSampler::DenseCovariance.
Matrix ApplyTransposedMulti(const SparseMatrix& a, const Matrix& v);

/// A^T T like ApplyTransposedMulti, but with the BLOCKED single-vector
/// kernel's reduction shape: chunk layout TransposedChunks(nnz, cols)
/// (independent of B), per-chunk d x B partials merged in chunk order.
/// Column b is bitwise equal to ApplyTransposed(a, t.col(b)) — the
/// association DrawWithZ's sparse-Gram backend produces — which
/// ApplyTransposedMulti (ascending-row = naive association) is not.
Matrix ApplyTransposedMultiBlocked(const SparseMatrix& a, const Matrix& t);

// --- GLM margin kernels (consumed by models/glm_parallel.h).

/// out[i - b] = <row i, theta> for i in [b, e), via DotUnrolled.
void DenseMargins(const Matrix& x, const double* theta, Matrix::Index b,
                  Matrix::Index e, double* out);

/// Sparse counterpart via SparseDotUnrolled.
void SparseMargins(const SparseMatrix& x, const double* theta,
                   SparseMatrix::Index b, SparseMatrix::Index e, double* out);

/// margins(i, k) = <row i, theta_k>: one pass over the rows, every row
/// load (dense) / index+value load (sparse; candidates interleaved into a
/// pack so a gather lands on one contiguous slab per group) serves a
/// kMultiVec candidate group. Each entry's accumulation order is exactly
/// the canonical unrolled dot, so column k equals a single-margin pass
/// for theta_k bitwise — the batched-scoring self-check's invariant.
Matrix BatchMarginsDense(const Matrix& x,
                         const std::vector<const Vector*>& thetas);
Matrix BatchMarginsSparse(const SparseMatrix& x,
                          const std::vector<const Vector*>& thetas);

}  // namespace kernels
}  // namespace blinkml

#endif  // BLINKML_LINALG_KERNELS_H_
