#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

namespace blinkml {

void Vector::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Vector::Resize(Index n) {
  BLINKML_CHECK_GE(n, 0);
  data_.resize(static_cast<std::size_t>(n), 0.0);
}

Vector& Vector::operator+=(const Vector& other) {
  BLINKML_CHECK_EQ(size(), other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  BLINKML_CHECK_EQ(size(), other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  BLINKML_CHECK_MSG(s != 0.0, "division by zero");
  return (*this) *= (1.0 / s);
}

double Dot(const Vector& a, const Vector& b) {
  BLINKML_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const Vector::Index n = a.size();
  for (Vector::Index i = 0; i < n; ++i) s += pa[i] * pb[i];
  return s;
}

double SquaredNorm2(const Vector& v) { return Dot(v, v); }

double Norm2(const Vector& v) { return std::sqrt(SquaredNorm2(v)); }

double NormInf(const Vector& v) {
  double m = 0.0;
  for (Vector::Index i = 0; i < v.size(); ++i) m = std::max(m, std::fabs(v[i]));
  return m;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  BLINKML_CHECK_EQ(x.size(), y->size());
  double* py = y->data();
  const double* px = x.data();
  const Vector::Index n = x.size();
  for (Vector::Index i = 0; i < n; ++i) py[i] += alpha * px[i];
}

double CosineSimilarity(const Vector& a, const Vector& b) {
  const double na = Norm2(a);
  const double nb = Norm2(b);
  BLINKML_CHECK_MSG(na > 0.0 && nb > 0.0,
                    "cosine similarity of zero vector is undefined");
  return Dot(a, b) / (na * nb);
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  BLINKML_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (Vector::Index i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

double MaxRelDiff(const Vector& a, const Vector& b) {
  return MaxAbsDiff(a, b) / std::max(NormInf(b), 1e-300);
}

}  // namespace blinkml
