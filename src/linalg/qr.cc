#include "linalg/qr.h"

#include <cmath>

namespace blinkml {

using Index = Matrix::Index;

Result<Qr> Qr::Factor(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols");
  }
  Matrix qr = a;
  Vector tau(n);
  for (Index k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (Index i = k; i < m; ++i) norm += qr(i, k) * qr(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    const double alpha = (qr(k, k) >= 0.0) ? -norm : norm;
    // v = x - alpha e1, normalized so v[0] = 1 (stored implicitly).
    const double v0 = qr(k, k) - alpha;
    for (Index i = k + 1; i < m; ++i) qr(i, k) /= v0;
    tau[k] = -v0 / alpha;  // beta such that H = I - beta v v^T
    qr(k, k) = alpha;
    // Apply H to the remaining columns.
    for (Index j = k + 1; j < n; ++j) {
      double s = qr(k, j);
      for (Index i = k + 1; i < m; ++i) s += qr(i, k) * qr(i, j);
      s *= tau[k];
      qr(k, j) -= s;
      for (Index i = k + 1; i < m; ++i) qr(i, j) -= s * qr(i, k);
    }
  }
  return Qr(std::move(qr), std::move(tau));
}

Result<Vector> Qr::Solve(const Vector& b) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  BLINKML_CHECK_EQ(b.size(), m);
  Vector y = b;
  // y = Q^T b via the stored Householder reflectors.
  for (Index k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (Index i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (Index i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  // Back substitution with R; a diagonal entry negligibly small relative
  // to the largest one signals numerical rank deficiency.
  double max_diag = 0.0;
  for (Index i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::fabs(qr_(i, i)));
  }
  const double threshold = 1e-12 * max_diag;
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (Index j = i + 1; j < n; ++j) s -= qr_(i, j) * x[j];
    const double rii = qr_(i, i);
    if (std::fabs(rii) <= threshold) {
      return Status::InvalidArgument("rank-deficient least-squares system");
    }
    x[i] = s / rii;
  }
  return x;
}

Matrix Qr::R() const {
  const Index n = qr_.cols();
  Matrix r(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Matrix Qr::ThinQ() const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  Matrix q(m, n);
  for (Index i = 0; i < n; ++i) q(i, i) = 1.0;
  // Accumulate reflectors in reverse order: Q = H_0 H_1 ... H_{n-1} I_thin.
  for (Index k = n - 1; k >= 0; --k) {
    if (tau_[k] == 0.0) continue;
    for (Index j = 0; j < n; ++j) {
      double s = q(k, j);
      for (Index i = k + 1; i < m; ++i) s += qr_(i, k) * q(i, j);
      s *= tau_[k];
      q(k, j) -= s;
      for (Index i = k + 1; i < m; ++i) q(i, j) -= s * qr_(i, k);
    }
  }
  return q;
}

}  // namespace blinkml
