#include "linalg/cholesky.h"

#include <cmath>

#include "util/string_util.h"

namespace blinkml {

Result<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  using Index = Matrix::Index;
  const Index n = a.rows();
  Matrix l(n, n);
  for (Index j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* lj = l.row_data(j);
    for (Index k = 0; k < j; ++k) diag -= lj[k] * lj[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::InvalidArgument(StrFormat(
          "matrix is not positive definite (pivot %lld = %g)",
          static_cast<long long>(j), diag));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (Index i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l.row_data(i);
      for (Index k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s * inv;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::SolveLower(const Vector& b) const {
  using Index = Matrix::Index;
  const Index n = l_.rows();
  BLINKML_CHECK_EQ(b.size(), n);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.row_data(i);
    for (Index k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

Vector Cholesky::SolveUpper(const Vector& y) const {
  using Index = Matrix::Index;
  const Index n = l_.rows();
  BLINKML_CHECK_EQ(y.size(), n);
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double s = y[i];
    // Traverse column i of L below the diagonal == row entries of L^T.
    for (Index k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Vector Cholesky::Solve(const Vector& b) const {
  return SolveUpper(SolveLower(b));
}

Matrix Cholesky::Solve(const Matrix& b) const {
  BLINKML_CHECK_EQ(b.rows(), l_.rows());
  Matrix x(b.rows(), b.cols());
  for (Matrix::Index c = 0; c < b.cols(); ++c) {
    x.SetCol(c, Solve(b.Col(c)));
  }
  return x;
}

Matrix Cholesky::Inverse() const {
  return Solve(Matrix::Identity(l_.rows()));
}

double Cholesky::LogDet() const {
  double s = 0.0;
  for (Matrix::Index i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace blinkml
