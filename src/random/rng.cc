#include "random/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace blinkml {

namespace {

// SplitMix64: seeds the xoshiro state; also used by Split().
std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  BLINKML_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  BLINKML_CHECK_GT(n, 0u);
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t threshold = (0 - n) % n;
  while (true) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  // Marsaglia polar method.
  while (true) {
    const double u = 2.0 * Uniform() - 1.0;
    const double v = 2.0 * Uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      spare_normal_ = v * factor;
      has_spare_ = true;
      return u * factor;
    }
  }
}

double Rng::Normal(double mean, double stddev) {
  BLINKML_CHECK_GE(stddev, 0.0);
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  BLINKML_CHECK(p >= 0.0 && p <= 1.0);
  return Uniform() < p;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  BLINKML_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    BLINKML_CHECK_GE(w, 0.0);
    total += w;
  }
  BLINKML_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

long Rng::Poisson(double lambda) {
  BLINKML_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // synthetic workload generators which only need plausible count shapes.
    const double x = Normal(lambda, std::sqrt(lambda));
    return std::max(0L, std::lround(x));
  }
  const double limit = std::exp(-lambda);
  long k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

void Rng::FillNormal(Vector* out) {
  FillNormal(out->data(), out->size());
}

void Rng::FillNormal(double* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = Normal();
}

Rng Rng::Split() {
  // A fresh stream seeded from two outputs of this one.
  const std::uint64_t a = Next();
  const std::uint64_t b = Next();
  return Rng(a ^ Rotl(b, 32) ^ 0xA3EC647659359ACDull);
}

std::vector<std::int64_t> RandomPermutation(std::int64_t n, Rng* rng) {
  BLINKML_CHECK_GE(n, 0);
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::int64_t i = n - 1; i > 0; --i) {
    const std::int64_t j = static_cast<std::int64_t>(
        rng->UniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

std::vector<std::int64_t> SampleWithoutReplacement(std::int64_t n,
                                                   std::int64_t k, Rng* rng) {
  BLINKML_CHECK_GE(n, 0);
  BLINKML_CHECK(k >= 0 && k <= n);
  if (k == 0) return {};
  // Dense regime: partial Fisher-Yates over the full range.
  if (k * 3 >= n) {
    std::vector<std::int64_t> pool(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
    for (std::int64_t i = 0; i < k; ++i) {
      const std::int64_t j =
          i + static_cast<std::int64_t>(
                  rng->UniformInt(static_cast<std::uint64_t>(n - i)));
      std::swap(pool[static_cast<std::size_t>(i)],
                pool[static_cast<std::size_t>(j)]);
    }
    pool.resize(static_cast<std::size_t>(k));
    return pool;
  }
  // Sparse regime: Floyd's algorithm, O(k) memory.
  std::unordered_set<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = n - k; j < n; ++j) {
    const std::int64_t t = static_cast<std::int64_t>(
        rng->UniformInt(static_cast<std::uint64_t>(j + 1)));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  // Floyd's output has a position bias; shuffle for a uniformly random order.
  for (std::int64_t i = k - 1; i > 0; --i) {
    const std::int64_t j = static_cast<std::int64_t>(
        rng->UniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(out[static_cast<std::size_t>(i)],
              out[static_cast<std::size_t>(j)]);
  }
  return out;
}

std::vector<Rng> SplitRngPerChunk(const ChunkLayout& layout, Rng* base) {
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(layout.num_chunks));
  for (ParallelIndex c = 0; c < layout.num_chunks; ++c) {
    rngs.push_back(base->Split());
  }
  return rngs;
}

}  // namespace blinkml
