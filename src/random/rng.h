// Deterministic pseudo-random number generation.
//
// The library ships its own generator (xoshiro256++) and its own
// distribution transforms so that experiment results are bit-reproducible
// across standard-library implementations (libstdc++'s std::normal_distribution
// is implementation-defined). Every randomized component takes an explicit
// seed; nothing reads global entropy.

#ifndef BLINKML_RANDOM_RNG_H_
#define BLINKML_RANDOM_RNG_H_

#include <cstdint>
#include <vector>

#include "linalg/vector.h"
#include "runtime/parallel.h"

namespace blinkml {

/// xoshiro256++ generator: 256-bit state, period 2^256 - 1, passes BigCrush.
class Rng {
 public:
  /// Seeds the state from a 64-bit seed via SplitMix64 (any seed is fine,
  /// including 0).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform in [0, 1) with 53 bits of precision.
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive. Uses rejection sampling
  /// (no modulo bias).
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via the Marsaglia polar method (caches the spare).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Categorical draw from unnormalized non-negative weights.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Poisson draw (Knuth's method for small lambda, normal approximation
  /// above 64).
  long Poisson(double lambda);

  /// Fills `out` with i.i.d. standard normals.
  void FillNormal(Vector* out);

  /// Fills out[0..n) with i.i.d. standard normals. Consumes the identical
  /// stream as n calls to Normal() — the Marsaglia spare carries across
  /// calls, so filling a batched z-block row-by-row draws the same bits
  /// as the per-draw FillNormal(Vector*) sequence it replaces.
  void FillNormal(double* out, std::int64_t n);

  /// A fresh generator with state decorrelated from this one (for spawning
  /// per-component streams from one master seed).
  Rng Split();

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// Random permutation of {0, ..., n-1} (Fisher-Yates).
std::vector<std::int64_t> RandomPermutation(std::int64_t n, Rng* rng);

/// k distinct indices uniformly from {0, ..., n-1}, in random order.
/// O(k) memory; partial Fisher-Yates over a lazily materialized range when
/// k is a large fraction of n, Floyd's algorithm otherwise.
std::vector<std::int64_t> SampleWithoutReplacement(std::int64_t n,
                                                   std::int64_t k, Rng* rng);

/// One Rng stream per chunk of `layout`, split off `base` in chunk order —
/// the pairing the runtime determinism contract requires of parallel
/// Monte-Carlo loops. Use with the layout overload of ParallelForChunks so
/// the indexing and the loop share one layout:
///
///   const ChunkLayout layout = ComputeChunks(k, kFineGrain);
///   std::vector<Rng> rngs = SplitRngPerChunk(layout, rng);
///   ParallelForChunks(0, k, layout, [&](chunk, b, e) { rngs[chunk]...; });
std::vector<Rng> SplitRngPerChunk(const ChunkLayout& layout, Rng* base);

}  // namespace blinkml

#endif  // BLINKML_RANDOM_RNG_H_
