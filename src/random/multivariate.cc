#include "random/multivariate.h"

#include "linalg/cholesky.h"
#include "linalg/kernels.h"
#include "runtime/runtime_options.h"

namespace blinkml {

Vector FactorMvnSampler::Draw(Rng* rng) const {
  Vector z(w_.cols());
  rng->FillNormal(&z);
  return DrawWithZ(z);
}

Vector FactorMvnSampler::DrawWithZ(const Vector& z) const {
  BLINKML_CHECK_EQ(z.size(), w_.cols());
  return MatVec(w_, z);
}

Matrix FactorMvnSampler::DrawBatchWithZ(const Matrix& zs) const {
  BLINKML_CHECK_EQ(zs.cols(), w_.cols());
  if (CurrentKernelLevel() == KernelLevel::kBlocked) {
    return kernels::MatVecMulti(w_, zs);
  }
  Matrix out(w_.rows(), zs.rows());
  for (Matrix::Index b = 0; b < zs.rows(); ++b) {
    out.SetCol(b, DrawWithZ(zs.Row(b)));
  }
  return out;
}

Result<DenseMvnSampler> DenseMvnSampler::Create(const Matrix& covariance) {
  if (covariance.rows() != covariance.cols()) {
    return Status::InvalidArgument("covariance must be square");
  }
  double max_diag = 0.0;
  for (Matrix::Index i = 0; i < covariance.rows(); ++i) {
    max_diag = std::max(max_diag, covariance(i, i));
  }
  double jitter = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    Matrix c = covariance;
    if (jitter > 0.0) c.AddToDiagonal(jitter);
    Result<Cholesky> chol = Cholesky::Factor(c);
    if (chol.ok()) {
      return DenseMvnSampler(chol->L());
    }
    jitter = (jitter == 0.0) ? 1e-12 * std::max(max_diag, 1.0) : jitter * 100.0;
  }
  return Status::InvalidArgument(
      "covariance is not positive semi-definite (jitter retries exhausted)");
}

Vector DenseMvnSampler::Draw(Rng* rng) const {
  Vector z(l_.rows());
  rng->FillNormal(&z);
  return DrawWithZ(z);
}

Vector DenseMvnSampler::DrawWithZ(const Vector& z) const {
  BLINKML_CHECK_EQ(z.size(), l_.rows());
  // Lower-triangular matvec.
  const Matrix::Index n = l_.rows();
  Vector out(n);
  for (Matrix::Index i = 0; i < n; ++i) {
    const double* row = l_.row_data(i);
    double s = 0.0;
    for (Matrix::Index j = 0; j <= i; ++j) s += row[j] * z[j];
    out[i] = s;
  }
  return out;
}

}  // namespace blinkml
