// Multivariate normal sampling.
//
// Two forms are provided, mirroring the two sampler paths in the paper:
//  * dense: given a covariance matrix, factor once (Cholesky with a
//    diagonal-jitter retry for semi-definite inputs) and draw L z;
//  * factor: given any p x r matrix W with W W^T = Sigma, draw W z directly
//    — this is the covariance-free path of paper Section 4.3 (L = U Lambda).

#ifndef BLINKML_RANDOM_MULTIVARIATE_H_
#define BLINKML_RANDOM_MULTIVARIATE_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "random/rng.h"
#include "util/status.h"

namespace blinkml {

/// Draws from N(mean, Sigma) given a factor W with W W^T = Sigma.
class FactorMvnSampler {
 public:
  /// `factor` is p x r; draws cost O(p r).
  explicit FactorMvnSampler(Matrix factor) : w_(std::move(factor)) {}

  Matrix::Index dim() const { return w_.rows(); }
  Matrix::Index rank() const { return w_.cols(); }

  /// Draws W z with fresh z ~ N(0, I_r).
  Vector Draw(Rng* rng) const;

  /// Draws W z for a caller-supplied z (common-random-numbers support:
  /// the sample-size search reuses the same z across candidate sizes).
  Vector DrawWithZ(const Vector& z) const;

  /// Batched draws: row b of `zs` (B x r) is draw b's z. Returns p x B
  /// with column b bitwise equal to DrawWithZ(zs.row(b)) — under the
  /// blocked kernels one pass over W serves the whole batch
  /// (kernels::MatVecMulti); the naive level keeps the per-draw loop.
  Matrix DrawBatchWithZ(const Matrix& zs) const;

 private:
  Matrix w_;
};

/// Dense-covariance sampler: factors Sigma = L L^T once.
class DenseMvnSampler {
 public:
  /// Factors `covariance`. If the matrix is only positive *semi*-definite
  /// (common: rank-deficient J when d > n), retries with growing diagonal
  /// jitter up to 1e-8 * max diagonal, which perturbs draws negligibly.
  static Result<DenseMvnSampler> Create(const Matrix& covariance);

  Matrix::Index dim() const { return l_.rows(); }

  Vector Draw(Rng* rng) const;
  Vector DrawWithZ(const Vector& z) const;

 private:
  explicit DenseMvnSampler(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  // lower-triangular Cholesky factor
};

}  // namespace blinkml

#endif  // BLINKML_RANDOM_MULTIVARIATE_H_
