// File loaders: CSV (dense) and LIBSVM (sparse).
//
// These exist so the library can run on the paper's real datasets when they
// are available; the benchmark harnesses default to the synthetic
// generators (see generators.h).

#ifndef BLINKML_DATA_LOADER_H_
#define BLINKML_DATA_LOADER_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace blinkml {

/// Options for CSV loading.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line.
  bool has_header = true;
  /// Column index (0-based) holding the label; -1 = last column.
  int label_column = -1;
};

/// Loads a dense dataset from a CSV file of numeric columns.
/// The task is inferred: labels that are all 0/1 -> kBinary; all
/// non-negative small integers -> kMulticlass; otherwise kRegression.
Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options = {});

/// Writes a dense dataset to CSV (feature columns then label).
Status SaveCsv(const Dataset& data, const std::string& path);

/// Loads a sparse dataset in LIBSVM format: "label idx:val idx:val ...".
/// Indices may be 0- or 1-based (auto-detected); `dim` forces the feature
/// dimension (0 = infer from the max index seen).
Result<Dataset> LoadLibsvm(const std::string& path, std::int64_t dim = 0);

/// Writes a sparse (or dense) dataset in LIBSVM format with 1-based indices.
Status SaveLibsvm(const Dataset& data, const std::string& path);

}  // namespace blinkml

#endif  // BLINKML_DATA_LOADER_H_
