// Synthetic workload generators mirroring the paper's six datasets.
//
// The real datasets (Gas, Power, Criteo, HIGGS, MNIST8M, Yelp) are multi-GB
// downloads unavailable offline, so each generator produces a synthetic
// equivalent with the same *shape*: matched feature dimension (scaled for
// the two extreme-dimensional sparse sets), matched task, labels drawn from
// a ground-truth model of the same family plus noise, and realistic feature
// structure (correlated sensors, heavy-tailed document lengths, hashed
// categorical one-hots). BlinkML's guarantees are model-relative — they
// depend on MLE asymptotics, dimension, and conditioning, not on where the
// bytes came from — so these preserve the behaviours the evaluation
// measures. See DESIGN.md Section 4.
//
// All generators are deterministic given the seed.

#ifndef BLINKML_DATA_GENERATORS_H_
#define BLINKML_DATA_GENERATORS_H_

#include <cstdint>

#include "data/dataset.h"

namespace blinkml {

/// Gas-sensor-like regression (paper: 4.2M x 57 dense).
/// Correlated "sensor channels": an AR(1)-mixed Gaussian design with a dense
/// ground-truth linear model and moderate observation noise.
Dataset MakeGasLike(std::int64_t n, std::uint64_t seed, std::int64_t dim = 57);

/// Household-power-like regression (paper: 2.1M x 114 dense).
/// Stronger feature correlation (block structure) and heteroscedastic noise,
/// which makes the parameter covariance less isotropic than Gas.
Dataset MakePowerLike(std::int64_t n, std::uint64_t seed,
                      std::int64_t dim = 114);

/// HIGGS-like binary classification (paper: 11M x 28 dense).
/// Labels from a ground-truth logistic model with Bayes error ~ 25-30%
/// (HIGGS is a famously hard set; full-data test accuracy ~ 0.76 AUC-ish).
Dataset MakeHiggsLike(std::int64_t n, std::uint64_t seed,
                      std::int64_t dim = 28);

/// Criteo-like click-through binary classification (paper: 45.8M x 998,922
/// sparse). Hashed categorical one-hots with a power-law column popularity
/// plus a handful of dense numeric counters; ~3% positive rate like CTR
/// data. `dim` defaults to 20,000 (scaled from 1M; see DESIGN.md).
Dataset MakeCriteoLike(std::int64_t n, std::uint64_t seed,
                       std::int64_t dim = 20000,
                       std::int64_t nnz_per_row = 39);

/// MNIST-like 10-class dense classification (paper: 8M x 784 dense).
/// Class-conditional Gaussian "digit prototypes" on a pixel grid with
/// additive noise; pixel intensities clipped to [0, 1]. `dim` must be a
/// perfect square (default 784 = 28x28).
Dataset MakeMnistLike(std::int64_t n, std::uint64_t seed,
                      std::int64_t dim = 784, std::int64_t num_classes = 10);

/// Yelp-like 5-class review classification (paper: 5.3M x 100,000 sparse
/// bag-of-words). Zipfian vocabulary, Poisson document lengths, class-tilted
/// word frequencies. `dim` defaults to 5,000 (scaled from 100K).
Dataset MakeYelpLike(std::int64_t n, std::uint64_t seed,
                     std::int64_t dim = 5000);

/// Plain synthetic logistic-regression data with an isotropic Gaussian
/// design — the workhorse for unit tests and the dimension-sweep benchmark
/// (paper Figure 8 uses Criteo restricted to the first d features; we vary
/// d directly). `sparsity` in (0, 1] keeps that fraction of entries.
Dataset MakeSyntheticLogistic(std::int64_t n, std::int64_t dim,
                              std::uint64_t seed, double sparsity = 1.0,
                              double noise = 0.1);

/// Plain synthetic linear-regression data (dense Gaussian design).
Dataset MakeSyntheticLinear(std::int64_t n, std::int64_t dim,
                            std::uint64_t seed, double noise = 0.5);

/// Plain synthetic multiclass data (Gaussian class centroids).
Dataset MakeSyntheticMulticlass(std::int64_t n, std::int64_t dim,
                                std::int64_t num_classes, std::uint64_t seed,
                                double spread = 1.0);

/// Low-rank-plus-noise data for PPCA: x = W z + eps with W of the given
/// rank, matching the PPCA generative model exactly.
Dataset MakeSyntheticLowRank(std::int64_t n, std::int64_t dim,
                             std::int64_t rank, std::uint64_t seed,
                             double noise = 0.3);

/// Count-data for Poisson regression: y ~ Poisson(exp(theta*^T x)) with a
/// Gaussian design scaled so rates stay in a realistic range (roughly
/// 0.1 - 50 events). `rate_scale` shifts the base rate.
Dataset MakeSyntheticCounts(std::int64_t n, std::int64_t dim,
                            std::uint64_t seed, double rate_scale = 1.0);

}  // namespace blinkml

#endif  // BLINKML_DATA_GENERATORS_H_
