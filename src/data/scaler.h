// Feature standardization (zero mean, unit variance per column).
//
// Fitted on a training split and applied to held-out data with the same
// parameters, as any leakage-free pipeline requires. Dense datasets only:
// centering a sparse matrix would densify it (for sparse data the library
// follows the common practice of leaving bag-of-words/one-hot features
// unscaled).

#ifndef BLINKML_DATA_SCALER_H_
#define BLINKML_DATA_SCALER_H_

#include "data/dataset.h"
#include "util/status.h"

namespace blinkml {

class Standardizer {
 public:
  /// Learns per-column mean and standard deviation from `data` (dense).
  /// Columns with zero variance get scale 1 (they become identically 0).
  static Result<Standardizer> Fit(const Dataset& data);

  /// Returns a transformed copy; dimension must match the fitted data.
  Result<Dataset> Transform(const Dataset& data) const;

  const Vector& mean() const { return mean_; }
  const Vector& scale() const { return scale_; }

 private:
  Standardizer(Vector mean, Vector scale)
      : mean_(std::move(mean)), scale_(std::move(scale)) {}
  Vector mean_;
  Vector scale_;
};

}  // namespace blinkml

#endif  // BLINKML_DATA_SCALER_H_
