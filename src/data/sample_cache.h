// Thread-safe cache of materialized row subsets of one base dataset.
//
// BlinkML's samples are materialized copies (dataset.h); a multi-model
// session re-draws the same holdout, initial sample, and full-pool subsets
// for every candidate. The cache keys a materialization by the triple that
// determines its rows deterministically — (purpose, seed, size) — and
// hands the same std::shared_ptr<const Dataset> to every requester, so a
// k-candidate search pays each copy once instead of k times.
//
// A cache belongs to one base dataset (the session's); keys carry no
// dataset identity. Misses run the factory under the lock, so concurrent
// requests for the same key materialize exactly once (sampling is cheap
// relative to the trainings that follow; serializing it is deliberate).

#ifndef BLINKML_DATA_SAMPLE_CACHE_H_
#define BLINKML_DATA_SAMPLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "data/dataset.h"

namespace blinkml {

class SampleCache {
 public:
  /// What a cached subset is for; part of the key so equal-sized subsets
  /// drawn from different Rng streams never collide.
  enum class Purpose : std::uint8_t {
    kHoldout = 0,        // the holdout split
    kInitialSample = 1,  // D_0
    kFinalSample = 2,    // the final model's size-n sample
    kFullPool = 3,       // the whole pool (n >= full_n fallback)
    kCustom = 4,         // caller-defined subsets
  };

  struct Key {
    Purpose purpose = Purpose::kCustom;
    std::uint64_t seed = 0;       // master seed the subset derives from
    Dataset::Index size = 0;      // subset row count requested
    bool operator==(const Key& other) const {
      return purpose == other.purpose && seed == other.seed &&
             size == other.size;
    }
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Misses materialized but NOT retained because the cache was at its
    /// row budget (callers still get their dataset, unshared).
    std::uint64_t bypassed = 0;
    /// Total rows held by cached datasets (what re-copying would cost per
    /// additional run).
    Dataset::Index cached_rows = 0;
    /// Approximate bytes held by cached datasets (Dataset::MemoryBytes);
    /// what the serving layer's session-eviction budget charges.
    std::uint64_t cached_bytes = 0;
  };

  using Factory = std::function<Dataset()>;

  /// Retention budget: once cached_rows would exceed this, further misses
  /// are materialized but not retained (0 = unlimited). Bounds a
  /// long-lived session's memory; correctness is unaffected because keys
  /// determine rows, so an unshared copy is identical to a shared one.
  void set_max_cached_rows(Dataset::Index max_rows);

  /// The cached dataset for `key`, materializing it with `factory` on the
  /// first request. The factory must be a pure function of the key (same
  /// key => same rows); this holds for every sampler in the pipeline
  /// because subsets are drawn from seed-determined Rng streams.
  ///
  /// `retained` (optional) reports whether the returned dataset's bytes
  /// are covered by this cache's accounting: true on hits and retained
  /// misses, false when the row budget forced a bypass. Callers that keep
  /// the dataset anyway (the memoized training prefixes) use it to count
  /// those bytes themselves — see TrainingSession::CacheBytes.
  std::shared_ptr<const Dataset> GetOrCreate(const Key& key,
                                             const Factory& factory,
                                             bool* retained = nullptr);

  /// Drops every cached subset (the shared_ptrs keep live users valid).
  void Clear();

  Stats stats() const;

  /// Lock-free read of Stats::cached_bytes. GetOrCreate runs its factory
  /// under the cache mutex (deliberately — see file comment), so byte
  /// accounting that must not stall behind an in-flight materialization
  /// (the serving layer's budget enforcement) reads this instead of
  /// stats().
  std::uint64_t cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      // splitmix-style mix of the three fields.
      std::uint64_t h = static_cast<std::uint64_t>(key.purpose) * 0x9E3779B9ull;
      h ^= key.seed + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h ^= static_cast<std::uint64_t>(key.size) + 0x9E3779B97F4A7C15ull +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const Dataset>, KeyHash> cache_;
  Stats stats_;
  /// Mirror of stats_.cached_bytes, written under mu_ (see cached_bytes()).
  std::atomic<std::uint64_t> cached_bytes_{0};
  Dataset::Index max_cached_rows_ = 0;
};

}  // namespace blinkml

#endif  // BLINKML_DATA_SAMPLE_CACHE_H_
