#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace blinkml {

namespace {

using Index = Dataset::Index;

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// Ground-truth weights with a few strong coordinates and a decaying tail,
// which is what trained GLMs on real data tend to look like.
Vector DecayingWeights(Index dim, double scale, Rng* rng) {
  Vector w(dim);
  for (Index j = 0; j < dim; ++j) {
    const double magnitude = scale / std::sqrt(1.0 + static_cast<double>(j));
    w[j] = rng->Normal(0.0, magnitude);
  }
  return w;
}

}  // namespace

Dataset MakeGasLike(std::int64_t n, std::uint64_t seed, std::int64_t dim) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  Rng rng(seed);
  const Vector theta = DecayingWeights(dim, 1.0, &rng);
  Matrix x(n, dim);
  Vector y(n);
  // AR(1) across the feature index simulates neighbouring-sensor
  // correlation: x_j = rho * x_{j-1} + sqrt(1-rho^2) * fresh.
  const double rho = 0.6;
  const double fresh_scale = std::sqrt(1.0 - rho * rho);
  for (Index i = 0; i < n; ++i) {
    double* row = x.row_data(i);
    double prev = rng.Normal();
    row[0] = prev;
    for (Index j = 1; j < dim; ++j) {
      prev = rho * prev + fresh_scale * rng.Normal();
      row[j] = prev;
    }
    double dot = 0.0;
    for (Index j = 0; j < dim; ++j) dot += row[j] * theta[j];
    y[i] = dot + rng.Normal(0.0, 0.8);
  }
  return Dataset(std::move(x), std::move(y), Task::kRegression);
}

Dataset MakePowerLike(std::int64_t n, std::uint64_t seed, std::int64_t dim) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  Rng rng(seed);
  const Vector theta = DecayingWeights(dim, 0.8, &rng);
  // Block-correlated design: features within a block share a latent factor.
  const Index block = 8;
  Matrix x(n, dim);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double* row = x.row_data(i);
    double factor = 0.0;
    for (Index j = 0; j < dim; ++j) {
      if (j % block == 0) factor = rng.Normal();
      row[j] = 0.7 * factor + 0.7 * rng.Normal();
    }
    double dot = 0.0;
    for (Index j = 0; j < dim; ++j) dot += row[j] * theta[j];
    // Heteroscedastic noise: variance grows with the signal magnitude,
    // as household power consumption does with total load.
    const double noise_sd = 0.5 + 0.2 * std::fabs(dot) / (1.0 + std::fabs(dot));
    y[i] = dot + rng.Normal(0.0, noise_sd);
  }
  return Dataset(std::move(x), std::move(y), Task::kRegression);
}

Dataset MakeHiggsLike(std::int64_t n, std::uint64_t seed, std::int64_t dim) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  Rng rng(seed);
  Vector theta = DecayingWeights(dim, 0.6, &rng);
  // Real HIGGS features are correlated kinematic quantities derived from
  // underlying particle momenta; mirror that with shared latent factors of
  // decaying strength. The latent rank (12) exceeds the q = 10 the PPCA
  // workloads use, so the covariance spectrum has structure (and gaps)
  // through the factor count — as the real data's correlated features do;
  // isotropic features would make PPCA factors unidentifiable.
  const Index latents = std::min<Index>(12, dim);
  Matrix loadings(dim, latents);
  double strength = 1.2;
  std::vector<double> strengths;
  for (Index l = 0; l < latents; ++l) {
    strengths.push_back(strength);
    strength *= 0.85;  // geometric decay: every factor stays above the
                       // idiosyncratic noise with a clear gap to the next
  }
  for (Index j = 0; j < dim; ++j) {
    for (Index l = 0; l < latents; ++l) {
      loadings(j, l) = rng.Normal(0.0, strengths[static_cast<std::size_t>(l)]);
    }
  }
  // Expected margin offset from the chi-square features (their mean is
  // s_j^2 - 1 after the transform below); subtracting it keeps the label
  // rate balanced without touching the feature covariance structure.
  double margin_offset = 0.0;
  for (Index j = 0; j < dim; ++j) {
    if (j % 4 != 3) continue;
    double s2 = 0.25;  // idiosyncratic noise
    const double* load = loadings.row_data(j);
    for (Index l = 0; l < latents; ++l) s2 += load[l] * load[l];
    margin_offset += theta[j] * (s2 - 1.0) * 0.7071067811865476;
  }

  Matrix x(n, dim);
  Vector y(n);
  Vector z(latents);
  for (Index i = 0; i < n; ++i) {
    rng.FillNormal(&z);
    double* row = x.row_data(i);
    double dot = -margin_offset;
    for (Index j = 0; j < dim; ++j) {
      double shared = 0.0;
      const double* load = loadings.row_data(j);
      for (Index l = 0; l < latents; ++l) shared += load[l] * z[l];
      double v = shared + 0.5 * rng.Normal();
      // Every fourth feature is a derived chi-square-like quantity.
      if (j % 4 == 3) v = (v * v - 1.0) * 0.7071067811865476;
      row[j] = v;
      dot += v * theta[j];
    }
    // Moderate signal-to-noise: Bayes-optimal accuracy lands around 72-78%,
    // like the real HIGGS task.
    y[i] = rng.Bernoulli(Sigmoid(0.8 * dot)) ? 1.0 : 0.0;
  }
  return Dataset(std::move(x), std::move(y), Task::kBinary);
}

Dataset MakeCriteoLike(std::int64_t n, std::uint64_t seed, std::int64_t dim,
                       std::int64_t nnz_per_row) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  BLINKML_CHECK_GT(nnz_per_row, 0);
  BLINKML_CHECK_LE(nnz_per_row, dim);
  Rng rng(seed);
  // Ground-truth weights over the hashed space. The categorical weights
  // carry real signal (sigma 0.5): with the flattened popularity below,
  // each hashed column is observed rarely, so per-weight uncertainty from
  // a sample is comparable to the weight scale — the regime that makes
  // click prediction genuinely sample-hungry.
  Vector theta(dim);
  for (Index j = 0; j < dim; ++j) theta[j] = rng.Normal(0.0, 0.5);
  // Intercept-like shift keeps the positive rate CTR-low.
  const double bias = -3.0;

  CsrBuilder builder;
  builder.Reserve(n, n * nnz_per_row);
  Vector y(n);
  const Index num_dense = std::min<Index>(13, dim);  // Criteo's 13 counters
  for (Index i = 0; i < n; ++i) {
    double dot = bias;
    // Dense numeric counters: log-normal-ish, always present.
    for (Index j = 0; j < num_dense; ++j) {
      const double v = std::log1p(std::fabs(rng.Normal(0.0, 2.0)));
      builder.Add(j, v);
      dot += v * theta[j];
    }
    // Hashed categorical one-hots with mildly skewed popularity: column
    // index c = floor(U^1.5 * range). Hashing flattens the natural Zipf
    // head, so most columns are rare — each carrying a weight a sample
    // estimates noisily.
    for (Index f = num_dense; f < nnz_per_row; ++f) {
      const double u = rng.Uniform();
      const Index c = num_dense + static_cast<Index>(
          u * std::sqrt(u) * static_cast<double>(dim - num_dense));
      const Index col = std::min(c, dim - 1);
      // Duplicates within a row are rare; merge by skipping (harmless).
      if (builder.FindInOpenRow(col) != nullptr) continue;
      builder.Add(col, 1.0);
      dot += theta[col];
    }
    builder.FinishRow();
    // Click labels are intrinsically noisy (users click near-randomly a
    // fraction of the time); the extra flip noise keeps the task as
    // sample-hungry as real CTR data.
    bool click = rng.Bernoulli(Sigmoid(dot));
    if (rng.Bernoulli(0.08)) click = !click;
    y[i] = click ? 1.0 : 0.0;
  }
  return Dataset(std::move(builder).Build(dim), std::move(y), Task::kBinary);
}

Dataset MakeMnistLike(std::int64_t n, std::uint64_t seed, std::int64_t dim,
                      std::int64_t num_classes) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GE(num_classes, 2);
  const Index side = static_cast<Index>(std::llround(std::sqrt(
      static_cast<double>(dim))));
  BLINKML_CHECK_MSG(side * side == dim, "MNIST-like dim must be a square");
  Rng rng(seed);

  // Each class is a smooth random "stroke pattern": a sum of Gaussian blobs
  // on the side x side grid. Blobs give spatially correlated pixels, like
  // digit strokes.
  // Class prototypes share a common "stroke bank": each class mixes a few
  // strokes from a shared pool, so neighbouring classes overlap (like 4/9
  // or 3/8 in real MNIST) and classification is genuinely confusable.
  const int bank_size = 2 * static_cast<int>(num_classes);
  std::vector<Vector> bank;
  bank.reserve(static_cast<std::size_t>(bank_size));
  for (int s = 0; s < bank_size; ++s) {
    Vector stroke(dim);
    const double cx = rng.Uniform(0.2, 0.8) * static_cast<double>(side);
    const double cy = rng.Uniform(0.2, 0.8) * static_cast<double>(side);
    const double sigma = rng.Uniform(1.5, 3.5);
    for (Index py = 0; py < side; ++py) {
      for (Index px = 0; px < side; ++px) {
        const double dx = static_cast<double>(px) - cx;
        const double dy = static_cast<double>(py) - cy;
        stroke[py * side + px] =
            std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
      }
    }
    bank.push_back(std::move(stroke));
  }
  // Per-class stroke sets: two "own" strokes plus one shared with the next
  // class, with class-specific base amplitudes.
  struct ClassStrokes {
    int strokes[3];
    double amps[3];
  };
  std::vector<ClassStrokes> classes(static_cast<std::size_t>(num_classes));
  for (Index c = 0; c < num_classes; ++c) {
    auto& cs = classes[static_cast<std::size_t>(c)];
    cs.strokes[0] = static_cast<int>(2 * c) % bank_size;
    cs.strokes[1] = static_cast<int>(2 * c + 1) % bank_size;
    cs.strokes[2] = static_cast<int>(2 * (c + 1)) % bank_size;  // shared
    cs.amps[0] = rng.Uniform(0.5, 0.8);
    cs.amps[1] = rng.Uniform(0.35, 0.6);
    cs.amps[2] = rng.Uniform(0.25, 0.5);
  }

  Matrix x(n, dim);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    const Index c = static_cast<Index>(
        rng.UniformInt(static_cast<std::uint64_t>(num_classes)));
    const ClassStrokes& cs = classes[static_cast<std::size_t>(c)];
    double* row = x.row_data(i);
    // Per-image amplitude jitter (slant/thickness variation): this puts
    // genuine within-class variance along every stroke direction, so the
    // covariance spectrum has structure well past the class count — as
    // real digit images do.
    double jittered[3];
    for (int s = 0; s < 3; ++s) {
      jittered[s] = cs.amps[s] * (1.0 + 0.45 * rng.Normal());
    }
    for (Index j = 0; j < dim; ++j) {
      double v = rng.Normal(0.0, 0.35);
      for (int s = 0; s < 3; ++s) {
        v += jittered[s] *
             bank[static_cast<std::size_t>(cs.strokes[s])][j];
      }
      row[j] = std::clamp(v, 0.0, 1.5);
    }
    y[i] = static_cast<double>(c);
  }
  return Dataset(std::move(x), std::move(y), Task::kMulticlass, num_classes);
}

Dataset MakeYelpLike(std::int64_t n, std::uint64_t seed, std::int64_t dim) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 10);
  Rng rng(seed);
  const Index num_classes = 5;  // star ratings 0..4

  // Zipfian word popularity: P(word = w) proportional to 1/(w+10).
  std::vector<double> popularity(static_cast<std::size_t>(dim));
  for (Index w = 0; w < dim; ++w) {
    popularity[static_cast<std::size_t>(w)] =
        1.0 / static_cast<double>(w + 10);
  }
  // Per-class sentiment tilt: each word carries a latent polarity; classes
  // up-weight words whose polarity matches the rating.
  Vector polarity(dim);
  for (Index w = 0; w < dim; ++w) polarity[w] = rng.Normal(0.0, 1.0);

  CsrBuilder builder;
  builder.Reserve(n, n * 60);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    const Index c = static_cast<Index>(rng.UniformInt(num_classes));
    // Rating as polarity scale in [-1, 1]: 0 stars -> -1, 4 stars -> +1.
    const double tilt = (static_cast<double>(c) - 2.0) / 2.0;
    const long length = 20 + rng.Poisson(60.0);  // heavy-ish review lengths
    for (long t = 0; t < length; ++t) {
      // Rejection re-weighting: draw from popularity, accept with a
      // sentiment-dependent probability.
      Index w;
      while (true) {
        const double u = rng.Uniform();
        w = static_cast<Index>(u * u * u * static_cast<double>(dim));
        w = std::min(w, dim - 1);
        const double accept = Sigmoid(1.5 * tilt * polarity[w]);
        if (rng.Bernoulli(accept)) break;
      }
      double* count = builder.FindInOpenRow(w);
      if (count != nullptr) {
        *count += 1.0;
      } else {
        builder.Add(w, 1.0);
      }
    }
    // log(1 + count) term weighting, standard for bag-of-words GLMs.
    double* values = builder.open_row_values();
    const Index row_nnz = builder.open_row_nnz();
    for (Index e = 0; e < row_nnz; ++e) values[e] = std::log1p(values[e]);
    builder.FinishRow();
    y[i] = static_cast<double>(c);
  }
  return Dataset(std::move(builder).Build(dim), std::move(y),
                 Task::kMulticlass, num_classes);
}

Dataset MakeSyntheticLogistic(std::int64_t n, std::int64_t dim,
                              std::uint64_t seed, double sparsity,
                              double noise) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  BLINKML_CHECK(sparsity > 0.0 && sparsity <= 1.0);
  Rng rng(seed);
  Vector theta(dim);
  for (Index j = 0; j < dim; ++j) {
    theta[j] = rng.Normal(0.0, 2.0 / std::sqrt(static_cast<double>(dim) *
                                               sparsity));
  }
  auto label_of = [&](double dot) {
    const double flip = noise;
    const bool clean = rng.Bernoulli(Sigmoid(dot));
    return (rng.Bernoulli(flip) ? !clean : clean) ? 1.0 : 0.0;
  };
  if (sparsity >= 1.0) {
    Matrix x(n, dim);
    Vector y(n);
    for (Index i = 0; i < n; ++i) {
      double* row = x.row_data(i);
      double dot = 0.0;
      for (Index j = 0; j < dim; ++j) {
        row[j] = rng.Normal();
        dot += row[j] * theta[j];
      }
      y[i] = label_of(dot);
    }
    return Dataset(std::move(x), std::move(y), Task::kBinary);
  }
  const Index nnz = std::max<Index>(
      1, static_cast<Index>(std::llround(sparsity * static_cast<double>(dim))));
  CsrBuilder builder;
  builder.Reserve(n, n * nnz);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    auto cols = SampleWithoutReplacement(dim, nnz, &rng);
    std::sort(cols.begin(), cols.end());
    double dot = 0.0;
    for (Index c : cols) {
      const double v = rng.Normal();
      builder.Add(c, v);
      dot += v * theta[c];
    }
    builder.FinishRow();
    y[i] = label_of(dot);
  }
  return Dataset(std::move(builder).Build(dim), std::move(y), Task::kBinary);
}

Dataset MakeSyntheticLinear(std::int64_t n, std::int64_t dim,
                            std::uint64_t seed, double noise) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  Rng rng(seed);
  Vector theta(dim);
  for (Index j = 0; j < dim; ++j) theta[j] = rng.Normal();
  Matrix x(n, dim);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double* row = x.row_data(i);
    double dot = 0.0;
    for (Index j = 0; j < dim; ++j) {
      row[j] = rng.Normal();
      dot += row[j] * theta[j];
    }
    y[i] = dot + rng.Normal(0.0, noise);
  }
  return Dataset(std::move(x), std::move(y), Task::kRegression);
}

Dataset MakeSyntheticMulticlass(std::int64_t n, std::int64_t dim,
                                std::int64_t num_classes, std::uint64_t seed,
                                double spread) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  BLINKML_CHECK_GE(num_classes, 2);
  Rng rng(seed);
  std::vector<Vector> centroids;
  centroids.reserve(static_cast<std::size_t>(num_classes));
  for (Index c = 0; c < num_classes; ++c) {
    Vector mu(dim);
    for (Index j = 0; j < dim; ++j) mu[j] = rng.Normal(0.0, spread);
    centroids.push_back(std::move(mu));
  }
  Matrix x(n, dim);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    const Index c = static_cast<Index>(
        rng.UniformInt(static_cast<std::uint64_t>(num_classes)));
    const Vector& mu = centroids[static_cast<std::size_t>(c)];
    double* row = x.row_data(i);
    for (Index j = 0; j < dim; ++j) row[j] = mu[j] + rng.Normal();
    y[i] = static_cast<double>(c);
  }
  return Dataset(std::move(x), std::move(y), Task::kMulticlass, num_classes);
}

Dataset MakeSyntheticCounts(std::int64_t n, std::int64_t dim,
                            std::uint64_t seed, double rate_scale) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK_GT(dim, 0);
  BLINKML_CHECK_GT(rate_scale, 0.0);
  Rng rng(seed);
  // Weights scaled so theta^T x has standard deviation ~0.8: rates span
  // roughly a factor of 10 around the base rate without exploding.
  Vector theta(dim);
  for (Index j = 0; j < dim; ++j) {
    theta[j] = rng.Normal(0.0, 0.8 / std::sqrt(static_cast<double>(dim)));
  }
  const double bias = std::log(rate_scale) + 0.5;
  Matrix x(n, dim);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double* row = x.row_data(i);
    double eta = bias;
    for (Index j = 0; j < dim; ++j) {
      row[j] = rng.Normal();
      eta += row[j] * theta[j];
    }
    y[i] = static_cast<double>(rng.Poisson(std::exp(eta)));
  }
  return Dataset(std::move(x), std::move(y), Task::kRegression);
}

Dataset MakeSyntheticLowRank(std::int64_t n, std::int64_t dim,
                             std::int64_t rank, std::uint64_t seed,
                             double noise) {
  BLINKML_CHECK_GT(n, 0);
  BLINKML_CHECK(rank > 0 && rank <= dim);
  Rng rng(seed);
  // Loading matrix with decaying column strengths so the spectrum is
  // well-separated (makes PPCA identifiable).
  Matrix w(dim, rank);
  for (Index j = 0; j < dim; ++j) {
    for (Index r = 0; r < rank; ++r) {
      w(j, r) = rng.Normal(0.0, 2.0 / std::sqrt(static_cast<double>(r + 1)));
    }
  }
  Matrix x(n, dim);
  Vector z(rank);
  for (Index i = 0; i < n; ++i) {
    rng.FillNormal(&z);
    double* row = x.row_data(i);
    for (Index j = 0; j < dim; ++j) {
      double s = 0.0;
      const double* wrow = w.row_data(j);
      for (Index r = 0; r < rank; ++r) s += wrow[r] * z[r];
      row[j] = s + rng.Normal(0.0, noise);
    }
  }
  return Dataset(std::move(x), Vector(), Task::kUnsupervised);
}

}  // namespace blinkml
