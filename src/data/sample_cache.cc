#include "data/sample_cache.h"

namespace blinkml {

void SampleCache::set_max_cached_rows(Dataset::Index max_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  max_cached_rows_ = max_rows;
}

std::shared_ptr<const Dataset> SampleCache::GetOrCreate(
    const Key& key, const Factory& factory, bool* retained) {
  std::lock_guard<std::mutex> lock(mu_);
  if (retained != nullptr) *retained = true;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto dataset = std::make_shared<const Dataset>(factory());
  if (max_cached_rows_ > 0 &&
      stats_.cached_rows + dataset->num_rows() > max_cached_rows_) {
    ++stats_.bypassed;
    if (retained != nullptr) *retained = false;
    return dataset;
  }
  stats_.cached_rows += dataset->num_rows();
  stats_.cached_bytes += dataset->MemoryBytes();
  cached_bytes_.store(stats_.cached_bytes, std::memory_order_relaxed);
  cache_.emplace(key, dataset);
  return dataset;
}

void SampleCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  stats_.cached_rows = 0;
  stats_.cached_bytes = 0;
  cached_bytes_.store(0, std::memory_order_relaxed);
}

SampleCache::Stats SampleCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace blinkml
