// Training-set abstraction.
//
// A Dataset is a feature matrix (dense or sparse, never both) plus a label
// vector and task metadata. Row subsets (samples, holdouts, splits) are
// materialized copies: BlinkML's samples are small relative to N by design,
// and copies keep the hot training loops free of indirection.

#ifndef BLINKML_DATA_DATASET_H_
#define BLINKML_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/vector.h"
#include "random/rng.h"
#include "util/check.h"

namespace blinkml {

/// The learning task a dataset's labels encode.
enum class Task {
  kRegression,      // real-valued labels
  kBinary,          // labels in {0, 1}
  kMulticlass,      // labels in {0, ..., num_classes-1}
  kUnsupervised,    // labels ignored (PPCA)
};

class Dataset {
 public:
  using Index = std::int64_t;

  Dataset() = default;

  /// Dense dataset; labels may be empty for unsupervised tasks.
  Dataset(Matrix features, Vector labels, Task task, Index num_classes = 0);

  /// Sparse dataset.
  Dataset(SparseMatrix features, Vector labels, Task task,
          Index num_classes = 0);

  Index num_rows() const { return num_rows_; }
  Index dim() const { return dim_; }
  Task task() const { return task_; }
  /// Number of classes for kMulticlass (2 for kBinary, 0 otherwise).
  Index num_classes() const { return num_classes_; }

  bool is_sparse() const { return is_sparse_; }
  const Matrix& dense() const {
    BLINKML_CHECK_MSG(!is_sparse_, "dataset is sparse");
    return dense_;
  }
  const SparseMatrix& sparse() const {
    BLINKML_CHECK_MSG(is_sparse_, "dataset is dense");
    return sparse_;
  }

  /// Approximate resident size in bytes (feature storage + labels). The
  /// currency of the serving layer's byte-budget accounting
  /// (data/sample_cache.h, serve/session_manager.h); sparse datasets that
  /// alias a shared CSR structure still count it in full.
  std::uint64_t MemoryBytes() const;

  bool has_labels() const { return labels_.size() > 0; }
  const Vector& labels() const { return labels_; }
  double label(Index i) const { return labels_[i]; }

  /// Dot product of feature row i with a dense parameter slice.
  double RowDot(Index i, const double* theta) const;

  /// out += alpha * x_i (dense scatter of feature row i).
  void AddRowTo(Index i, double alpha, double* out) const;

  /// New dataset with the given rows, in order.
  Dataset TakeRows(const std::vector<Index>& rows) const;

  /// Uniform random sample of k rows without replacement.
  Dataset SampleRows(Index k, Rng* rng) const;

  /// Splits into (first, second) with `first_fraction` of rows going to the
  /// first part, after a random shuffle.
  std::pair<Dataset, Dataset> Split(double first_fraction, Rng* rng) const;

 private:
  void ValidateLabels() const;

  bool is_sparse_ = false;
  Matrix dense_;
  SparseMatrix sparse_;
  Vector labels_;
  Task task_ = Task::kRegression;
  Index num_rows_ = 0;
  Index dim_ = 0;
  Index num_classes_ = 0;
};

}  // namespace blinkml

#endif  // BLINKML_DATA_DATASET_H_
