#include "data/feature_gram_cache.h"

namespace blinkml {

std::uint64_t FeatureGramCache::BytesOf(const Matrix& gram) {
  return static_cast<std::uint64_t>(gram.rows()) *
         static_cast<std::uint64_t>(gram.cols()) * sizeof(double);
}

void FeatureGramCache::set_max_cached_bytes(std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_cached_bytes_ = max_bytes;
  EvictFor(0);
}

std::shared_ptr<const Matrix> FeatureGramCache::GetOrCreate(
    const Key& key, const Factory& factory) {
  std::promise<std::shared_ptr<const Matrix>> promise;
  GramFuture wait_on;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      // Refresh recency: move the entry to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->gram;
    }
    auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      // Another thread is computing this key: share its result (a hit —
      // the Gram is computed once), waiting outside the lock so the
      // leader can publish and other keys can proceed.
      ++stats_.hits;
      wait_on = flight->second;
    } else {
      ++stats_.misses;
      leader = true;
      inflight_.emplace(key, promise.get_future().share());
    }
  }
  if (!leader) return wait_on.get();  // rethrows the leader's exception

  // Leader: run the expensive factory with no cache lock held, so misses
  // for other keys (and every hit) stay concurrent.
  std::shared_ptr<const Matrix> gram;
  try {
    gram = std::make_shared<const Matrix>(factory());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    const std::uint64_t bytes = BytesOf(*gram);
    if (max_cached_bytes_ > 0 && bytes > max_cached_bytes_) {
      ++stats_.bypassed;
    } else {
      EvictFor(bytes);
      lru_.push_front(Entry{key, gram, bytes});
      index_.emplace(key, lru_.begin());
      stats_.cached_bytes += bytes;
      cached_bytes_.store(stats_.cached_bytes, std::memory_order_relaxed);
    }
  }
  promise.set_value(gram);
  return gram;
}

void FeatureGramCache::EvictFor(std::uint64_t incoming) {
  if (max_cached_bytes_ == 0) return;
  while (!lru_.empty() && stats_.cached_bytes + incoming > max_cached_bytes_) {
    const Entry& victim = lru_.back();
    stats_.cached_bytes -= victim.bytes;
    cached_bytes_.store(stats_.cached_bytes, std::memory_order_relaxed);
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void FeatureGramCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.cached_bytes = 0;
  cached_bytes_.store(0, std::memory_order_relaxed);
}

FeatureGramCache::Stats FeatureGramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace blinkml
