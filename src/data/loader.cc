#include "data/loader.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace blinkml {

namespace {

using Index = Dataset::Index;

// Infers the task from the label values.
std::pair<Task, Index> InferTask(const Vector& labels) {
  bool all_01 = true;
  bool all_small_ints = true;
  double max_label = 0.0;
  for (Vector::Index i = 0; i < labels.size(); ++i) {
    const double y = labels[i];
    if (y != 0.0 && y != 1.0) all_01 = false;
    if (y != std::floor(y) || y < 0.0 || y > 1000.0) all_small_ints = false;
    max_label = std::max(max_label, y);
  }
  if (all_01) return {Task::kBinary, 2};
  if (all_small_ints) {
    return {Task::kMulticlass, static_cast<Index>(max_label) + 1};
  }
  return {Task::kRegression, 0};
}

Result<double> ParseDouble(std::string_view field) {
  double value = 0.0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument(
        StrFormat("cannot parse '%.*s' as a number",
                  static_cast<int>(field.size()), field.data()));
  }
  return value;
}

}  // namespace

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::string line;
  if (options.has_header && !std::getline(in, line)) {
    return Status::IOError("empty file " + path);
  }
  std::vector<std::vector<double>> rows;
  std::size_t num_cols = 0;
  std::size_t line_no = options.has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields =
        Split(stripped, options.delimiter);
    if (num_cols == 0) {
      num_cols = fields.size();
      if (num_cols < 2) {
        return Status::InvalidArgument(
            "CSV needs at least one feature column and one label column");
      }
    } else if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), num_cols));
    }
    std::vector<double> row;
    row.reserve(num_cols);
    for (const std::string& f : fields) {
      BLINKML_ASSIGN_OR_RETURN(double v, ParseDouble(StripWhitespace(f)));
      row.push_back(v);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  const int label_col = options.label_column < 0
                            ? static_cast<int>(num_cols) - 1
                            : options.label_column;
  if (label_col >= static_cast<int>(num_cols)) {
    return Status::InvalidArgument("label column out of range");
  }
  const Index n = static_cast<Index>(rows.size());
  const Index d = static_cast<Index>(num_cols) - 1;
  Matrix x(n, d);
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    const auto& row = rows[static_cast<std::size_t>(i)];
    Index out_col = 0;
    for (std::size_t c = 0; c < num_cols; ++c) {
      if (static_cast<int>(c) == label_col) {
        y[i] = row[c];
      } else {
        x(i, out_col++) = row[c];
      }
    }
  }
  const auto [task, classes] = InferTask(y);
  return Dataset(std::move(x), std::move(y), task, classes);
}

Status SaveCsv(const Dataset& data, const std::string& path) {
  if (data.is_sparse()) {
    return Status::InvalidArgument("SaveCsv supports dense datasets only");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const Matrix& x = data.dense();
  for (Matrix::Index c = 0; c < x.cols(); ++c) out << "f" << c << ",";
  out << "label\n";
  out.precision(17);
  for (Matrix::Index i = 0; i < x.rows(); ++i) {
    for (Matrix::Index c = 0; c < x.cols(); ++c) out << x(i, c) << ",";
    out << (data.has_labels() ? data.label(i) : 0.0) << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Dataset> LoadLibsvm(const std::string& path, std::int64_t dim) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  // Stream straight into flat CSR arrays — no per-row vector churn. The
  // 1-based shift (unknown until the whole file is read) is applied to
  // the builder's column array before Build.
  CsrBuilder builder;
  std::vector<double> labels;
  Index max_index = -1;
  Index min_index = std::numeric_limits<Index>::max();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream ls{std::string(stripped)};
    double label = 0.0;
    if (!(ls >> label)) {
      return Status::InvalidArgument(
          StrFormat("line %zu: missing label", line_no));
    }
    std::string tok;
    while (ls >> tok) {
      const std::size_t colon = tok.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("line %zu: token '%s' is not idx:val", line_no,
                      tok.c_str()));
      }
      BLINKML_ASSIGN_OR_RETURN(double idx_d,
                               ParseDouble(tok.substr(0, colon)));
      BLINKML_ASSIGN_OR_RETURN(double val, ParseDouble(tok.substr(colon + 1)));
      const Index idx = static_cast<Index>(idx_d);
      if (idx < 0) {
        return Status::InvalidArgument(
            StrFormat("line %zu: negative feature index", line_no));
      }
      max_index = std::max(max_index, idx);
      min_index = std::min(min_index, idx);
      builder.Add(idx, val);
    }
    builder.FinishRow();
    labels.push_back(label);
  }
  if (labels.empty()) return Status::InvalidArgument("no data rows in " + path);
  // LIBSVM files are conventionally 1-based; shift if no 0 index was seen.
  const Index offset = (min_index >= 1) ? 1 : 0;
  if (offset == 1) {
    builder.ShiftColumns(-1);
    max_index -= 1;
  }
  Index d = dim > 0 ? dim : max_index + 1;
  if (max_index >= d) {
    return Status::InvalidArgument(
        StrFormat("feature index %lld exceeds dim %lld",
                  static_cast<long long>(max_index + offset),
                  static_cast<long long>(d)));
  }
  // Map {-1, +1} labels to {0, 1}.
  bool has_negative = false;
  for (double y : labels) {
    if (y == -1.0) has_negative = true;
  }
  Vector y(static_cast<Vector::Index>(labels.size()));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    double v = labels[i];
    if (has_negative) v = (v > 0.0) ? 1.0 : 0.0;
    y[static_cast<Vector::Index>(i)] = v;
  }
  const auto [task, classes] = InferTask(y);
  return Dataset(std::move(builder).Build(d), std::move(y), task, classes);
}

Status SaveLibsvm(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  for (Index i = 0; i < data.num_rows(); ++i) {
    out << (data.has_labels() ? data.label(i) : 0.0);
    if (data.is_sparse()) {
      const SparseMatrix& m = data.sparse();
      const auto nnz = m.RowNnz(i);
      const auto* cols = m.RowCols(i);
      const auto* vals = m.RowValues(i);
      for (Index k = 0; k < nnz; ++k) {
        out << " " << (cols[k] + 1) << ":" << vals[k];
      }
    } else {
      const Matrix& m = data.dense();
      for (Matrix::Index c = 0; c < m.cols(); ++c) {
        if (m(i, c) != 0.0) out << " " << (c + 1) << ":" << m(i, c);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace blinkml
