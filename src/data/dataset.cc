#include "data/dataset.h"

#include <cmath>
#include <utility>

namespace blinkml {

Dataset::Dataset(Matrix features, Vector labels, Task task, Index num_classes)
    : is_sparse_(false), dense_(std::move(features)),
      labels_(std::move(labels)), task_(task),
      num_rows_(dense_.rows()), dim_(dense_.cols()) {
  num_classes_ = (task == Task::kBinary) ? 2 : num_classes;
  ValidateLabels();
}

Dataset::Dataset(SparseMatrix features, Vector labels, Task task,
                 Index num_classes)
    : is_sparse_(true), sparse_(std::move(features)),
      labels_(std::move(labels)), task_(task),
      num_rows_(sparse_.rows()), dim_(sparse_.cols()) {
  num_classes_ = (task == Task::kBinary) ? 2 : num_classes;
  ValidateLabels();
}

void Dataset::ValidateLabels() const {
  if (task_ == Task::kUnsupervised) return;
  BLINKML_CHECK_MSG(labels_.size() == num_rows_,
                    "label count must match row count");
  if (task_ == Task::kBinary) {
    for (Index i = 0; i < num_rows_; ++i) {
      BLINKML_CHECK_MSG(labels_[i] == 0.0 || labels_[i] == 1.0,
                        "binary labels must be 0 or 1");
    }
  } else if (task_ == Task::kMulticlass) {
    BLINKML_CHECK_GE(num_classes_, 2);
    for (Index i = 0; i < num_rows_; ++i) {
      const double y = labels_[i];
      BLINKML_CHECK_MSG(y == std::floor(y) && y >= 0.0 &&
                            y < static_cast<double>(num_classes_),
                        "multiclass labels must be integers in [0, C)");
    }
  }
}

std::uint64_t Dataset::MemoryBytes() const {
  std::uint64_t bytes =
      static_cast<std::uint64_t>(labels_.size()) * sizeof(double);
  if (is_sparse_) {
    bytes += static_cast<std::uint64_t>(sparse_.nnz()) *
             (sizeof(double) + sizeof(SparseMatrix::Index));
    bytes += static_cast<std::uint64_t>(num_rows_ + 1) *
             sizeof(SparseMatrix::Index);
  } else {
    bytes += static_cast<std::uint64_t>(num_rows_) *
             static_cast<std::uint64_t>(dim_) * sizeof(double);
  }
  return bytes;
}

double Dataset::RowDot(Index i, const double* theta) const {
  if (is_sparse_) return sparse_.RowDot(i, theta);
  const double* row = dense_.row_data(i);
  double s = 0.0;
  for (Index c = 0; c < dim_; ++c) s += row[c] * theta[c];
  return s;
}

void Dataset::AddRowTo(Index i, double alpha, double* out) const {
  if (is_sparse_) {
    sparse_.AddRowTo(i, alpha, out);
    return;
  }
  const double* row = dense_.row_data(i);
  for (Index c = 0; c < dim_; ++c) out[c] += alpha * row[c];
}

Dataset Dataset::TakeRows(const std::vector<Index>& rows) const {
  Vector labels;
  if (has_labels()) {
    labels.Resize(static_cast<Vector::Index>(rows.size()));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      BLINKML_CHECK_MSG(rows[i] >= 0 && rows[i] < num_rows_,
                        "TakeRows index out of range");
      labels[static_cast<Vector::Index>(i)] = labels_[rows[i]];
    }
  }
  if (is_sparse_) {
    return Dataset(sparse_.TakeRows(rows), std::move(labels), task_,
                   num_classes_);
  }
  Matrix out(static_cast<Matrix::Index>(rows.size()), dim_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    BLINKML_CHECK_MSG(rows[i] >= 0 && rows[i] < num_rows_,
                      "TakeRows index out of range");
    std::copy(dense_.row_data(rows[i]), dense_.row_data(rows[i]) + dim_,
              out.row_data(static_cast<Matrix::Index>(i)));
  }
  return Dataset(std::move(out), std::move(labels), task_, num_classes_);
}

Dataset Dataset::SampleRows(Index k, Rng* rng) const {
  BLINKML_CHECK(k >= 0 && k <= num_rows_);
  return TakeRows(SampleWithoutReplacement(num_rows_, k, rng));
}

std::pair<Dataset, Dataset> Dataset::Split(double first_fraction,
                                           Rng* rng) const {
  BLINKML_CHECK(first_fraction >= 0.0 && first_fraction <= 1.0);
  std::vector<Index> perm = RandomPermutation(num_rows_, rng);
  const Index k = static_cast<Index>(
      std::llround(first_fraction * static_cast<double>(num_rows_)));
  std::vector<Index> first(perm.begin(), perm.begin() + k);
  std::vector<Index> second(perm.begin() + k, perm.end());
  return {TakeRows(first), TakeRows(second)};
}

}  // namespace blinkml
