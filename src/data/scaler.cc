#include "data/scaler.h"

#include <cmath>

namespace blinkml {

Result<Standardizer> Standardizer::Fit(const Dataset& data) {
  if (data.is_sparse()) {
    return Status::InvalidArgument(
        "Standardizer supports dense datasets only");
  }
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  const Matrix& x = data.dense();
  const Matrix::Index n = x.rows();
  const Matrix::Index d = x.cols();
  Vector mean(d);
  Vector scale(d);
  for (Matrix::Index i = 0; i < n; ++i) {
    const double* row = x.row_data(i);
    for (Matrix::Index c = 0; c < d; ++c) mean[c] += row[c];
  }
  mean /= static_cast<double>(n);
  for (Matrix::Index i = 0; i < n; ++i) {
    const double* row = x.row_data(i);
    for (Matrix::Index c = 0; c < d; ++c) {
      const double delta = row[c] - mean[c];
      scale[c] += delta * delta;
    }
  }
  for (Matrix::Index c = 0; c < d; ++c) {
    const double var = scale[c] / static_cast<double>(n);
    scale[c] = var > 0.0 ? std::sqrt(var) : 1.0;
  }
  return Standardizer(std::move(mean), std::move(scale));
}

Result<Dataset> Standardizer::Transform(const Dataset& data) const {
  if (data.is_sparse()) {
    return Status::InvalidArgument(
        "Standardizer supports dense datasets only");
  }
  if (data.dim() != mean_.size()) {
    return Status::InvalidArgument("dimension mismatch with fitted scaler");
  }
  Matrix x = data.dense();
  for (Matrix::Index i = 0; i < x.rows(); ++i) {
    double* row = x.row_data(i);
    for (Matrix::Index c = 0; c < x.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) / scale_[c];
    }
  }
  Vector labels = data.labels();
  return Dataset(std::move(x), std::move(labels), data.task(),
                 data.num_classes());
}

}  // namespace blinkml
