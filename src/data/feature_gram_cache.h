// Thread-safe cache of feature Gram matrices shared across candidate
// models.
//
// For every single-output GLM the per-example gradient matrix over a
// statistics sample is diag(c) X, so the gradient Gram a candidate needs
// is an O(n^2) rescale of Gram(X) = X X^T — and Gram(X) depends only on
// which rows the statistics sample holds, not on the candidate's
// hyperparameters. Those rows are a pure function of (phase, seed,
// parent-sample size): the pipeline draws every subset from
// seed-determined Rng streams (core/pipeline.cc), exactly the property
// data/sample_cache.h relies on. A K-candidate search therefore pays the
// O(n^2 * overlap) sorted-merge Gram once per key and K - 1 cheap
// rescales (core/statistics.cc).
//
// Entries are n_s x n_s doubles (megabytes each), so unlike SampleCache
// this cache evicts: least-recently-used entries are dropped once the
// byte budget is exceeded. Misses are single-flight PER KEY: concurrent
// first requests for one key compute the Gram exactly once (followers
// wait on the leader's future), while misses for different keys — and
// hits — proceed concurrently, because the expensive factory runs
// outside the cache-wide lock.

#ifndef BLINKML_DATA_FEATURE_GRAM_CACHE_H_
#define BLINKML_DATA_FEATURE_GRAM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace blinkml {

class FeatureGramCache {
 public:
  /// Which statistics computation of a pipeline run the Gram belongs to.
  /// Part of the key because the two draws consume different Rng streams,
  /// so equal-sized samples from different phases hold different rows.
  enum class Phase : std::uint8_t {
    kInitialStats = 0,  // statistics at m_0 (on D_0)
    kFinalStats = 1,    // re-estimation at m_n (on the final sample)
  };

  struct Key {
    Phase phase = Phase::kInitialStats;
    std::uint64_t seed = 0;          // master seed of the run
    Dataset::Index parent_rows = 0;  // rows of the sample handed to
                                     // ComputeStatistics (the stats
                                     // sub-sample is drawn from it
                                     // deterministically)
    bool operator==(const Key& other) const {
      return phase == other.phase && seed == other.seed &&
             parent_rows == other.parent_rows;
    }
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Entries dropped by the LRU byte budget.
    std::uint64_t evictions = 0;
    /// Misses too large to retain under the budget (callers still get
    /// their Gram, unshared).
    std::uint64_t bypassed = 0;
    /// Bytes currently held by cached Grams.
    std::uint64_t cached_bytes = 0;
  };

  using Factory = std::function<Matrix()>;

  /// Retention budget in bytes (0 = unlimited). When an insert would
  /// exceed it, least-recently-used entries are evicted first; an entry
  /// larger than the whole budget is returned without being retained.
  void set_max_cached_bytes(std::uint64_t max_bytes);

  /// The cached Gram for `key`, materializing it with `factory` on the
  /// first request (single-flight per key; see file comment). The factory
  /// must be a pure function of the key (same key => same sample rows =>
  /// bitwise-identical Gram), which the pipeline's seed-determined
  /// sampling guarantees. A factory exception propagates to the leader
  /// and every waiting follower.
  std::shared_ptr<const Matrix> GetOrCreate(const Key& key,
                                            const Factory& factory);

  /// Drops every cached Gram (shared_ptrs keep live users valid).
  void Clear();

  Stats stats() const;

  /// Lock-free read of Stats::cached_bytes, for byte accounting that must
  /// not contend with the cache mutex (the serving layer's budget
  /// enforcement runs under its own manager lock).
  std::uint64_t cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t h = static_cast<std::uint64_t>(key.phase) * 0x9E3779B9ull;
      h ^= key.seed + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h ^= static_cast<std::uint64_t>(key.parent_rows) +
           0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    Key key;
    std::shared_ptr<const Matrix> gram;
    std::uint64_t bytes = 0;
  };

  static std::uint64_t BytesOf(const Matrix& gram);

  /// Evicts LRU entries until `incoming` more bytes fit the budget.
  /// Caller holds mu_.
  void EvictFor(std::uint64_t incoming);

  using GramFuture = std::shared_future<std::shared_ptr<const Matrix>>;

  mutable std::mutex mu_;
  /// Most-recently-used entries at the front.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  /// Misses currently being computed (leader holds no lock while running
  /// the factory; followers wait on the shared future).
  std::unordered_map<Key, GramFuture, KeyHash> inflight_;
  Stats stats_;
  /// Mirror of stats_.cached_bytes, written under mu_ (see cached_bytes()).
  std::atomic<std::uint64_t> cached_bytes_{0};
  std::uint64_t max_cached_bytes_ = 0;
};

}  // namespace blinkml

#endif  // BLINKML_DATA_FEATURE_GRAM_CACHE_H_
