// Wire protocol for the networked serving front (net/server.h).
//
// Every message is one length-prefixed binary frame:
//
//   offset size field        notes
//   ------ ---- -----        -----
//        0    4 magic        0x424C4E4B ("BLNK"), little-endian
//        4    2 version      kWireVersion; mismatches get kVersionMismatch
//        6    2 verb         Verb below; responses echo the request verb
//        8    8 request_id   caller-chosen correlation id, echoed back
//       16    4 priority     signed; higher drains first (0 in responses)
//       20    4 deadline_ms  relative deadline from server receipt
//                            (0 = none; 0 in responses)
//       24    4 payload_len  bytes following the header
//       28    - payload      verb-specific body (net/codec.h)
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern (bitwise exact — the transport must never perturb a result).
// Response payloads begin with a status envelope (code, message,
// retry_after_ms); request payloads begin with the tenant name. Framing
// errors that leave the stream unsynchronizable (bad magic, payload
// larger than the cap) close the connection after an error frame; every
// in-frame error (bad version, unknown verb, payload decode failure)
// answers an error frame and keeps the connection alive.

#ifndef BLINKML_NET_PROTOCOL_H_
#define BLINKML_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace blinkml {
namespace net {

inline constexpr std::uint32_t kWireMagic = 0x424C4E4Bu;  // "BLNK"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 28;
/// Frames advertising a larger payload are treated as framing corruption
/// (the connection closes after an error frame).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/// Request verbs. Responses echo the request's verb; kError is reserved
/// for errors with no decodable request verb (bad magic / truncated
/// header), where the server cannot echo anything meaningful.
enum class Verb : std::uint16_t {
  kError = 0,
  kRegisterDataset = 1,
  kTrain = 2,
  kSearch = 3,
  kPredict = 4,
  kStats = 5,
  kEvictIdle = 6,
  /// Text snapshot of the server's metrics registry (obs/metrics.h).
  kMetrics = 7,
  /// Liveness/overload probe, answered inline on the IO thread — it
  /// bypasses tenant quotas and the job queue, so probes keep working
  /// while the server sheds load or drains.
  kHealth = 8,
};

const char* VerbName(Verb verb);

/// Wire-level status of a response frame. The first block mirrors
/// util/status.h codes (job outcomes); the second names protocol- and
/// admission-level rejections that have no in-process equivalent.
enum class WireStatus : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kNotConverged = 4,
  kInfeasible = 5,
  kInternal = 6,
  // Protocol errors.
  kMalformedFrame = 16,
  kVersionMismatch = 17,
  kUnknownVerb = 18,
  kDecodeError = 19,
  // Scheduling / admission rejections.
  kDeadlineExceeded = 32,
  kRateLimited = 33,
  kOverQuota = 34,
  kQueueFull = 35,
  kShuttingDown = 36,
  /// Load shed: queue depth crossed the server's high-water mark (or the
  /// connection cap rejected the connect); carries a retry-after hint.
  kOverloaded = 37,
  /// Transient server-side failure (e.g. an injected fault); the job did
  /// not produce a result and the request is safe to retry.
  kUnavailable = 38,
};

const char* WireStatusName(WireStatus status);

/// True for statuses a client may retry verbatim: scheduling/admission
/// rejections and transient unavailability. The request provably did not
/// produce a (successful) result — and even a duplicated execution is
/// harmless, because job results are bitwise deterministic. Never true
/// for caller bugs (kInvalidArgument, protocol errors) or definitive job
/// outcomes (kNotConverged, kInfeasible, kInternal).
bool IsRetryableWireStatus(WireStatus status);

/// Maps a job Status onto the wire (OK stays OK; unknown codes become
/// kInternal).
WireStatus WireStatusFromStatus(const Status& status);

/// Reconstructs a client-side Status from a response envelope. Protocol
/// and admission codes map onto the closest util/status.h category with
/// the wire status name prefixed, so callers can still switch on it.
Status StatusFromWire(WireStatus status, const std::string& message);

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  Verb verb = Verb::kError;
  std::uint64_t request_id = 0;
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t payload_len = 0;
};

/// Serializes a header into exactly kFrameHeaderBytes at `out`.
void EncodeFrameHeader(const FrameHeader& header, std::uint8_t* out);

/// Parses kFrameHeaderBytes. Fails (kMalformedFrame semantics) on a bad
/// magic or a payload length above kMaxPayloadBytes; a bad VERSION is not
/// an error here — the caller answers kVersionMismatch with the request
/// id echoed, which requires the parsed header.
Status DecodeFrameHeader(const std::uint8_t* data, FrameHeader* out);

// --- Payload encoding ---------------------------------------------------

/// Append-only little-endian byte sink for payload bodies.
class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern: bitwise exact round trip.
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(const std::string& s);
  void Doubles(const double* data, std::size_t count);
  /// Raw bytes appended verbatim, no length prefix (splicing one writer's
  /// finished body after another's envelope).
  void Bytes(const std::uint8_t* data, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounded little-endian reader. Reads past the end set a sticky error
/// flag and return zeros; decode functions check ok() once at the end
/// instead of plumbing a Status through every field read.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  std::string Str();
  /// Reads `count` doubles into `out` (resized).
  void Doubles(std::size_t count, std::vector<double>* out);

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool Need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- Blocking frame transport (client + tests; the server's IO loop
// --- parses incrementally from its own buffers) -------------------------

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Default for WriteOptions::stall_timeout_ms (tens of seconds: multi-MB
/// responses routinely overrun kernel socket buffers, so waiting on
/// POLLOUT is normal operation — only a peer that stops draining
/// entirely should fail the write).
inline constexpr int kDefaultWriteStallTimeoutMs = 30000;

struct WriteOptions {
  /// How long a write blocked on a full send buffer waits for the peer
  /// to drain before the connection is declared dead (must be > 0).
  int stall_timeout_ms = kDefaultWriteStallTimeoutMs;
};

/// Writes header + payload with a full-write loop. EINTR-safe, and works
/// on non-blocking fds: a full send buffer polls for POLLOUT and resumes
/// (kIOError only if the peer stops draining for stall_timeout_ms).
/// `stalled` (optional) is set to whether the failure was a stall
/// timeout — the caller distinguishes a slow-reader drop (worth its own
/// metric) from an ordinary peer-gone error.
Status WriteFrame(int fd, const FrameHeader& header,
                  const std::uint8_t* payload, std::size_t payload_len,
                  const WriteOptions& options = {}, bool* stalled = nullptr);

/// Reads exactly one frame; kIOError on EOF/short read, kInvalidArgument
/// (malformed) on bad magic / oversized payload.
Status ReadFrame(int fd, Frame* out);

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_PROTOCOL_H_
