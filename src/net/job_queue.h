// Priority job queue for the networked serving front (net/server.h).
//
// Jobs carry a signed priority (higher drains first; equal priorities
// drain FIFO by arrival) and an optional absolute deadline. The queue
// itself never drops a job: runners pop in priority order and are
// expected to call `expire` instead of `run` on jobs whose deadline
// passed before execution started — an expired job is REJECTED WITH A
// DISTINCT STATUS (kDeadlineExceeded), never silently discarded, so the
// client always learns the fate of its request. Deadlines are checked at
// execution start only; a job that starts in time runs to completion.
//
// The queue is bounded (max_queued); Push fails on a full queue or after
// Shutdown, and the caller answers kQueueFull / kShuttingDown. Shutdown
// leaves already-queued jobs in place — Pop keeps returning them until
// the queue drains (the server's runners drain before joining, matching
// SessionManager's drain-on-destruction semantics).

#ifndef BLINKML_NET_JOB_QUEUE_H_
#define BLINKML_NET_JOB_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

namespace blinkml {
namespace net {

class JobQueue {
 public:
  using SteadyTime = std::chrono::steady_clock::time_point;

  struct Job {
    std::int32_t priority = 0;
    /// Valid iff has_deadline; absolute (steady clock).
    SteadyTime deadline{};
    bool has_deadline = false;
    /// Stamped by the producer at admission; the runner derives the
    /// queue-wait span / histogram from it (observability only).
    SteadyTime enqueued{};
    /// Executes the job and writes its response.
    std::function<void()> run;
    /// Rejects the job with kDeadlineExceeded (called instead of run when
    /// the deadline passed before execution).
    std::function<void()> expire;
  };

  /// max_queued == 0 means unbounded.
  explicit JobQueue(std::size_t max_queued = 0) : max_queued_(max_queued) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// False when the queue is full or shut down (the job was NOT taken).
  bool Push(Job job);

  /// Blocks for the next job in (priority desc, arrival asc) order.
  /// Returns false only after Shutdown() once the queue is empty.
  bool Pop(Job* out);

  /// True when the job's deadline passed (check before running).
  static bool Expired(const Job& job) {
    return job.has_deadline && std::chrono::steady_clock::now() > job.deadline;
  }

  /// Rejects new pushes and wakes every blocked Pop; queued jobs still
  /// drain.
  void Shutdown();

  std::size_t size() const;

 private:
  // A hand-rolled heap instead of std::priority_queue: top() returns a
  // const reference, which cannot move the popped Job's closures out.
  struct Entry {
    std::int32_t priority;
    std::uint64_t seq;
    Job job;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      // Max-heap on priority, min on seq (FIFO within a priority).
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  const std::size_t max_queued_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  bool shutdown_ = false;
};

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_JOB_QUEUE_H_
