#include "net/codec.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "data/generators.h"
#include "models/linear_regression.h"
#include "models/logistic_regression.h"
#include "models/poisson_regression.h"
#include "models/serialization.h"
#include "util/string_util.h"

namespace blinkml {
namespace net {

namespace {

Status ReaderStatus(const WireReader& in) {
  if (!in.ok()) return Status::InvalidArgument("truncated payload");
  return Status::OK();
}

/// Embeds a TrainedModel as the serialization.h text blob.
Status EncodeModelBlob(const std::string& model_class,
                       const TrainedModel& model, WireWriter* out) {
  BLINKML_ASSIGN_OR_RETURN(std::string text,
                           EncodeModelText(model_class, model));
  out->Str(text);
  return Status::OK();
}

Status DecodeModelBlob(WireReader* in, std::string* model_class,
                       TrainedModel* model) {
  const std::string text = in->Str();
  BLINKML_RETURN_NOT_OK(ReaderStatus(*in));
  BLINKML_ASSIGN_OR_RETURN(SavedModel saved, DecodeModelText(text));
  *model_class = std::move(saved.model_class);
  *model = std::move(saved.model);
  return Status::OK();
}

}  // namespace

void Encode(const ResponseEnvelope& v, WireWriter* out) {
  out->U16(static_cast<std::uint16_t>(v.status));
  out->Str(v.message);
  out->U32(v.retry_after_ms);
}

Status Decode(WireReader* in, ResponseEnvelope* out) {
  out->status = static_cast<WireStatus>(in->U16());
  out->message = in->Str();
  out->retry_after_ms = in->U32();
  return ReaderStatus(*in);
}

BlinkConfig ToBlinkConfig(const WireConfig& wire) {
  BlinkConfig config;
  config.seed = wire.seed;
  config.initial_sample_size = wire.initial_sample_size;
  config.holdout_size = wire.holdout_size;
  config.stats_sample_size = wire.stats_sample_size;
  config.accuracy_samples = wire.accuracy_samples;
  config.size_samples = wire.size_samples;
  return config;
}

namespace {

void Encode(const WireConfig& v, WireWriter* out) {
  out->U64(v.seed);
  out->I64(v.initial_sample_size);
  out->I64(v.holdout_size);
  out->I64(v.stats_sample_size);
  out->I32(v.accuracy_samples);
  out->I32(v.size_samples);
}

void DecodeInto(WireReader* in, WireConfig* out) {
  out->seed = in->U64();
  out->initial_sample_size = in->I64();
  out->holdout_size = in->I64();
  out->stats_sample_size = in->I64();
  out->accuracy_samples = in->I32();
  out->size_samples = in->I32();
}

}  // namespace

namespace {

std::uint64_t SaturatingMul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

}  // namespace

std::uint64_t EstimateWireDatasetBytes(const RegisterDatasetRequest& request) {
  if (request.rows <= 0 || request.dim <= 0) return 0;
  const std::uint64_t rows = static_cast<std::uint64_t>(request.rows);
  const std::uint64_t dim = static_cast<std::uint64_t>(request.dim);
  std::uint64_t per_row;
  if (request.generator == WireGenerator::kCriteoLike) {
    // CSR storage: a value + a column index per entry, plus the label.
    const std::uint64_t nnz =
        request.nnz_per_row > 0
            ? std::min(static_cast<std::uint64_t>(request.nnz_per_row), dim)
            : 0;
    per_row = SaturatingMul(nnz, sizeof(double) + sizeof(std::int64_t)) +
              sizeof(double);
  } else {
    // Dense row-major features plus the label.
    per_row = SaturatingMul(dim + 1, sizeof(double));
  }
  return SaturatingMul(rows, per_row);
}

Result<Dataset> MakeWireDataset(const RegisterDatasetRequest& request) {
  if (request.rows <= 0 || request.dim <= 0) {
    return Status::InvalidArgument(
        StrFormat("dataset needs positive rows/dim, got %lld x %lld",
                  static_cast<long long>(request.rows),
                  static_cast<long long>(request.dim)));
  }
  switch (request.generator) {
    case WireGenerator::kSyntheticLogistic:
      if (request.sparsity <= 0.0 || request.sparsity > 1.0) {
        return Status::InvalidArgument("sparsity must be in (0, 1]");
      }
      return MakeSyntheticLogistic(request.rows, request.dim,
                                   request.data_seed, request.sparsity,
                                   request.noise);
    case WireGenerator::kSyntheticLinear:
      return MakeSyntheticLinear(request.rows, request.dim, request.data_seed,
                                 request.noise);
    case WireGenerator::kCriteoLike:
      if (request.nnz_per_row <= 0) {
        return Status::InvalidArgument("nnz_per_row must be positive");
      }
      return MakeCriteoLike(request.rows, request.data_seed, request.dim,
                            request.nnz_per_row);
    case WireGenerator::kGasLike:
      return MakeGasLike(request.rows, request.data_seed, request.dim);
  }
  return Status::InvalidArgument(
      StrFormat("unknown dataset generator %u",
                static_cast<unsigned>(request.generator)));
}

void Encode(const RegisterDatasetRequest& v, WireWriter* out) {
  out->Str(v.tenant);
  out->Str(v.name);
  out->U16(static_cast<std::uint16_t>(v.generator));
  out->I64(v.rows);
  out->I64(v.dim);
  out->U64(v.data_seed);
  out->F64(v.sparsity);
  out->F64(v.noise);
  out->I64(v.nnz_per_row);
  Encode(v.config, out);
}

Status Decode(WireReader* in, RegisterDatasetRequest* out) {
  out->tenant = in->Str();
  out->name = in->Str();
  out->generator = static_cast<WireGenerator>(in->U16());
  out->rows = in->I64();
  out->dim = in->I64();
  out->data_seed = in->U64();
  out->sparsity = in->F64();
  out->noise = in->F64();
  out->nnz_per_row = in->I64();
  DecodeInto(in, &out->config);
  BLINKML_RETURN_NOT_OK(ReaderStatus(*in));
  switch (out->generator) {
    case WireGenerator::kSyntheticLogistic:
    case WireGenerator::kSyntheticLinear:
    case WireGenerator::kCriteoLike:
    case WireGenerator::kGasLike:
      break;
    default:
      return Status::InvalidArgument(
          StrFormat("unknown dataset generator %u",
                    static_cast<unsigned>(out->generator)));
  }
  if (out->name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  return Status::OK();
}

void Encode(const RegisterDatasetResponse& v, WireWriter* out) {
  out->U64(v.dataset_bytes);
}

Status Decode(WireReader* in, RegisterDatasetResponse* out) {
  out->dataset_bytes = in->U64();
  return ReaderStatus(*in);
}

void Encode(const TrainRequestWire& v, WireWriter* out) {
  out->Str(v.tenant);
  out->Str(v.dataset);
  out->Str(v.model_class);
  out->F64(v.l2);
  out->F64(v.epsilon);
  out->F64(v.delta);
  out->U64(v.seed);
}

Status Decode(WireReader* in, TrainRequestWire* out) {
  out->tenant = in->Str();
  out->dataset = in->Str();
  out->model_class = in->Str();
  out->l2 = in->F64();
  out->epsilon = in->F64();
  out->delta = in->F64();
  out->seed = in->U64();
  return ReaderStatus(*in);
}

Status Encode(const TrainResponseWire& v, WireWriter* out) {
  BLINKML_RETURN_NOT_OK(EncodeModelBlob(v.model_class, v.model, out));
  out->I64(v.sample_size);
  out->I64(v.full_size);
  out->F64(v.initial_epsilon);
  out->F64(v.final_epsilon);
  out->U8(v.used_initial_only ? 1 : 0);
  out->U8(v.contract_satisfied ? 1 : 0);
  out->I32(v.initial_iterations);
  out->I32(v.final_iterations);
  return Status::OK();
}

Status Decode(WireReader* in, TrainResponseWire* out) {
  BLINKML_RETURN_NOT_OK(DecodeModelBlob(in, &out->model_class, &out->model));
  out->sample_size = in->I64();
  out->full_size = in->I64();
  out->initial_epsilon = in->F64();
  out->final_epsilon = in->F64();
  out->used_initial_only = in->U8() != 0;
  out->contract_satisfied = in->U8() != 0;
  out->initial_iterations = in->I32();
  out->final_iterations = in->I32();
  return ReaderStatus(*in);
}

void Encode(const SearchRequestWire& v, WireWriter* out) {
  out->Str(v.tenant);
  out->Str(v.dataset);
  out->Str(v.model_class);
  out->U32(static_cast<std::uint32_t>(v.candidates.size()));
  for (const SearchCandidateWire& c : v.candidates) {
    out->F64(c.l2);
    out->U64(c.seed);
  }
  out->F64(v.epsilon);
  out->F64(v.delta);
  out->U64(v.seed);
}

Status Decode(WireReader* in, SearchRequestWire* out) {
  out->tenant = in->Str();
  out->dataset = in->Str();
  out->model_class = in->Str();
  const std::uint32_t count = in->U32();
  // Each candidate needs 16 payload bytes; the remaining() bound rejects
  // corrupted counts before the reserve can balloon.
  if (count * 16ull > in->remaining()) {
    return Status::InvalidArgument("truncated candidate list");
  }
  out->candidates.resize(count);
  for (SearchCandidateWire& c : out->candidates) {
    c.l2 = in->F64();
    c.seed = in->U64();
  }
  out->epsilon = in->F64();
  out->delta = in->F64();
  out->seed = in->U64();
  BLINKML_RETURN_NOT_OK(ReaderStatus(*in));
  if (out->candidates.empty()) {
    return Status::InvalidArgument("search needs at least one candidate");
  }
  return Status::OK();
}

Status Encode(const SearchResponseWire& v, WireWriter* out) {
  out->I32(v.best_index);
  out->U32(static_cast<std::uint32_t>(v.candidates.size()));
  for (const SearchCandidateResultWire& c : v.candidates) {
    out->U16(static_cast<std::uint16_t>(c.status));
    out->Str(c.message);
    out->F64(c.l2);
    out->F64(c.score);
    out->F64(c.final_epsilon);
    out->I64(c.sample_size);
    if (c.status == WireStatus::kOk) {
      BLINKML_RETURN_NOT_OK(EncodeModelBlob("model", c.model, out));
    }
  }
  return Status::OK();
}

Status Decode(WireReader* in, SearchResponseWire* out) {
  out->best_index = in->I32();
  const std::uint32_t count = in->U32();
  if (count * 34ull > in->remaining()) {
    return Status::InvalidArgument("truncated candidate results");
  }
  out->candidates.resize(count);
  for (SearchCandidateResultWire& c : out->candidates) {
    c.status = static_cast<WireStatus>(in->U16());
    c.message = in->Str();
    c.l2 = in->F64();
    c.score = in->F64();
    c.final_epsilon = in->F64();
    c.sample_size = in->I64();
    if (c.status == WireStatus::kOk) {
      std::string ignored_class;
      BLINKML_RETURN_NOT_OK(DecodeModelBlob(in, &ignored_class, &c.model));
    }
  }
  return ReaderStatus(*in);
}

Status Encode(const PredictRequestWire& v, WireWriter* out) {
  if (v.rows < 0 || v.dim < 0 ||
      v.features.size() !=
          static_cast<std::size_t>(v.rows) * static_cast<std::size_t>(v.dim)) {
    return Status::InvalidArgument("features must be rows x dim");
  }
  out->Str(v.tenant);
  out->Str(v.model_class);
  BLINKML_RETURN_NOT_OK(EncodeModelBlob(v.model_class, v.model, out));
  out->I64(v.rows);
  out->I64(v.dim);
  out->Doubles(v.features.data(), v.features.size());
  return Status::OK();
}

Status Decode(WireReader* in, PredictRequestWire* out) {
  out->tenant = in->Str();
  out->model_class = in->Str();
  std::string blob_class;
  BLINKML_RETURN_NOT_OK(DecodeModelBlob(in, &blob_class, &out->model));
  out->rows = in->I64();
  out->dim = in->I64();
  BLINKML_RETURN_NOT_OK(ReaderStatus(*in));
  if (out->rows <= 0 || out->dim <= 0) {
    return Status::InvalidArgument("predict needs positive rows and dim");
  }
  // rows * dim can wrap for adversarial sizes (each passes the > 0 check
  // up to 2^63); bound it against the bytes actually left in the payload
  // with divisions before forming the product.
  const std::size_t rows = static_cast<std::size_t>(out->rows);
  const std::size_t dim = static_cast<std::size_t>(out->dim);
  if (rows > in->remaining() / sizeof(double) / dim) {
    return Status::InvalidArgument(
        StrFormat("predict features truncated: %lld x %lld doubles do not "
                  "fit in the %llu payload bytes remaining",
                  static_cast<long long>(out->rows),
                  static_cast<long long>(out->dim),
                  static_cast<unsigned long long>(in->remaining())));
  }
  in->Doubles(rows * dim, &out->features);
  return ReaderStatus(*in);
}

void Encode(const PredictResponseWire& v, WireWriter* out) {
  out->U32(static_cast<std::uint32_t>(v.predictions.size()));
  out->Doubles(v.predictions.data(), v.predictions.size());
}

Status Decode(WireReader* in, PredictResponseWire* out) {
  const std::uint32_t count = in->U32();
  in->Doubles(count, &out->predictions);
  return ReaderStatus(*in);
}

void Encode(const StatsRequestWire& v, WireWriter* out) { out->Str(v.tenant); }

Status Decode(WireReader* in, StatsRequestWire* out) {
  out->tenant = in->Str();
  return ReaderStatus(*in);
}

void Encode(const StatsResponseWire& v, WireWriter* out) {
  const ServeStats& m = v.manager;
  out->U64(m.jobs_submitted);
  out->U64(m.jobs_completed);
  out->U64(m.jobs_failed);
  out->U64(m.sessions_created);
  out->U64(m.sessions_evicted);
  out->U64(m.datasets_loaded);
  out->U64(m.datasets_unloaded);
  out->U64(m.resident_bytes);
  out->U64(m.cached_bytes);
  out->I32(m.live_sessions);
  out->I32(m.loaded_datasets);
  out->I32(m.loads_in_progress);
  out->I32(m.queued_jobs);
  out->I32(m.active_jobs);
  const ServerStatsWire& s = v.server;
  out->U64(s.frames_received);
  out->U64(s.responses_sent);
  out->U64(s.jobs_enqueued);
  out->U64(s.rejected_malformed);
  out->U64(s.rejected_version);
  out->U64(s.rejected_unknown_verb);
  out->U64(s.rejected_decode);
  out->U64(s.rejected_deadline);
  out->U64(s.rejected_rate);
  out->U64(s.rejected_quota);
  out->U64(s.rejected_queue_full);
  out->U64(s.rejected_shed);
  out->U64(s.rejected_max_connections);
  out->U64(s.idle_reaped);
  out->U64(s.write_stalls);
  out->I32(s.open_connections);
  out->I32(s.queued_jobs);
}

Status Decode(WireReader* in, StatsResponseWire* out) {
  ServeStats& m = out->manager;
  m.jobs_submitted = in->U64();
  m.jobs_completed = in->U64();
  m.jobs_failed = in->U64();
  m.sessions_created = in->U64();
  m.sessions_evicted = in->U64();
  m.datasets_loaded = in->U64();
  m.datasets_unloaded = in->U64();
  m.resident_bytes = in->U64();
  m.cached_bytes = in->U64();
  m.live_sessions = in->I32();
  m.loaded_datasets = in->I32();
  m.loads_in_progress = in->I32();
  m.queued_jobs = in->I32();
  m.active_jobs = in->I32();
  ServerStatsWire& s = out->server;
  s.frames_received = in->U64();
  s.responses_sent = in->U64();
  s.jobs_enqueued = in->U64();
  s.rejected_malformed = in->U64();
  s.rejected_version = in->U64();
  s.rejected_unknown_verb = in->U64();
  s.rejected_decode = in->U64();
  s.rejected_deadline = in->U64();
  s.rejected_rate = in->U64();
  s.rejected_quota = in->U64();
  s.rejected_queue_full = in->U64();
  s.rejected_shed = in->U64();
  s.rejected_max_connections = in->U64();
  s.idle_reaped = in->U64();
  s.write_stalls = in->U64();
  s.open_connections = in->I32();
  s.queued_jobs = in->I32();
  return ReaderStatus(*in);
}

void Encode(const EvictIdleRequestWire& v, WireWriter* out) {
  out->Str(v.tenant);
}

Status Decode(WireReader* in, EvictIdleRequestWire* out) {
  out->tenant = in->Str();
  return ReaderStatus(*in);
}

void Encode(const EvictIdleResponseWire& v, WireWriter* out) {
  out->I32(v.sessions_evicted);
}

Status Decode(WireReader* in, EvictIdleResponseWire* out) {
  out->sessions_evicted = in->I32();
  return ReaderStatus(*in);
}

void Encode(const MetricsRequestWire& v, WireWriter* out) {
  out->Str(v.tenant);
}

Status Decode(WireReader* in, MetricsRequestWire* out) {
  out->tenant = in->Str();
  return ReaderStatus(*in);
}

void Encode(const MetricsResponseWire& v, WireWriter* out) {
  out->Str(v.text);
}

Status Decode(WireReader* in, MetricsResponseWire* out) {
  out->text = in->Str();
  return ReaderStatus(*in);
}

void Encode(const HealthRequestWire& v, WireWriter* out) {
  out->Str(v.tenant);
}

Status Decode(WireReader* in, HealthRequestWire* out) {
  out->tenant = in->Str();
  return ReaderStatus(*in);
}

void Encode(const HealthResponseWire& v, WireWriter* out) {
  out->U8(v.accepting ? 1 : 0);
  out->U8(v.shedding ? 1 : 0);
  out->I32(v.open_connections);
  out->I32(v.queued_jobs);
  out->U64(v.rejected_shed);
  out->U64(v.idle_reaped);
}

Status Decode(WireReader* in, HealthResponseWire* out) {
  out->accepting = in->U8() != 0;
  out->shedding = in->U8() != 0;
  out->open_connections = in->I32();
  out->queued_jobs = in->I32();
  out->rejected_shed = in->U64();
  out->idle_reaped = in->U64();
  return ReaderStatus(*in);
}

Status PeekTenant(const std::uint8_t* payload, std::size_t size,
                  std::string* tenant) {
  WireReader reader(payload, size);
  *tenant = reader.Str();
  if (!reader.ok()) {
    return Status::InvalidArgument("payload too short for a tenant name");
  }
  return Status::OK();
}

Status PeekRoutingKey(Verb verb, const std::uint8_t* payload,
                      std::size_t size, std::string* tenant,
                      std::string* dataset) {
  WireReader reader(payload, size);
  *tenant = reader.Str();
  dataset->clear();
  switch (verb) {
    case Verb::kRegisterDataset:
    case Verb::kTrain:
    case Verb::kSearch:
      *dataset = reader.Str();
      break;
    default:
      break;  // tenant-only key
  }
  if (!reader.ok()) {
    return Status::InvalidArgument("payload too short for a routing key");
  }
  return Status::OK();
}

Result<std::shared_ptr<ModelSpec>> MakeSpecByName(
    const std::string& model_class, double l2) {
  if (model_class == "LogisticRegression") {
    return std::shared_ptr<ModelSpec>(
        std::make_shared<LogisticRegressionSpec>(l2));
  }
  if (model_class == "LinearRegression") {
    return std::shared_ptr<ModelSpec>(
        std::make_shared<LinearRegressionSpec>(l2));
  }
  if (model_class == "PoissonRegression") {
    return std::shared_ptr<ModelSpec>(
        std::make_shared<PoissonRegressionSpec>(l2));
  }
  return Status::InvalidArgument("unknown model class: " + model_class);
}

Result<Task> TaskForModelClass(const std::string& model_class) {
  if (model_class == "LogisticRegression") return Task::kBinary;
  if (model_class == "LinearRegression") return Task::kRegression;
  if (model_class == "PoissonRegression") return Task::kRegression;
  return Status::InvalidArgument("unknown model class: " + model_class);
}

}  // namespace net
}  // namespace blinkml
