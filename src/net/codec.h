// Payload codecs for the wire protocol verbs (net/protocol.h).
//
// Each verb has a request/response struct pair with Encode/Decode
// functions over WireWriter/WireReader. Conventions:
//  * every request payload begins with the tenant name (the admission-
//    control key, net/quotas.h);
//  * every response payload begins with a ResponseEnvelope (wire status,
//    message, retry-after hint); the verb body follows only when the
//    status is kOk;
//  * model parameters travel as the models/serialization.h text format
//    embedded as a length-prefixed string — 17-significant-digit doubles
//    round-trip bitwise, so a served model is bit-identical to the
//    in-process one;
//  * raw numeric vectors (features, predictions) travel as IEEE-754 bit
//    patterns (WireWriter::F64), also bitwise exact.
//
// Decode functions fail with InvalidArgument on truncated payloads or
// out-of-range enums; the server answers such failures with a
// kDecodeError frame and keeps the connection alive.

#ifndef BLINKML_NET_CODEC_H_
#define BLINKML_NET_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "models/model_spec.h"
#include "models/trainer.h"
#include "net/protocol.h"
#include "serve/session_manager.h"
#include "util/status.h"

namespace blinkml {
namespace net {

/// Status envelope leading every response payload.
struct ResponseEnvelope {
  WireStatus status = WireStatus::kOk;
  std::string message;
  /// For kRateLimited / kOverQuota / kQueueFull: when to retry (0 = no
  /// hint).
  std::uint32_t retry_after_ms = 0;
};

void Encode(const ResponseEnvelope& envelope, WireWriter* out);
Status Decode(WireReader* in, ResponseEnvelope* out);

/// The BlinkConfig subset a tenant may set over the wire (everything else
/// keeps the server's defaults).
struct WireConfig {
  std::uint64_t seed = 42;
  std::int64_t initial_sample_size = 10000;
  std::int64_t holdout_size = 2000;
  std::int64_t stats_sample_size = 1024;
  std::int32_t accuracy_samples = 512;
  std::int32_t size_samples = 256;
};

BlinkConfig ToBlinkConfig(const WireConfig& wire);

/// Deterministic synthetic sources a remote tenant can register (the
/// wire cannot ship a DatasetFactory closure; it ships the generator's
/// parameters instead, and the server rebuilds the factory — reloads
/// after an eviction regenerate bitwise-identical data).
enum class WireGenerator : std::uint16_t {
  kSyntheticLogistic = 1,  // uses sparsity + noise
  kSyntheticLinear = 2,    // uses noise
  kCriteoLike = 3,         // uses nnz_per_row
  kGasLike = 4,
};

struct RegisterDatasetRequest {
  std::string tenant;
  std::string name;
  WireGenerator generator = WireGenerator::kSyntheticLogistic;
  std::int64_t rows = 0;
  std::int64_t dim = 0;
  std::uint64_t data_seed = 1;
  double sparsity = 1.0;
  double noise = 0.1;
  std::int64_t nnz_per_row = 39;
  WireConfig config;
};

struct RegisterDatasetResponse {
  /// Dataset::MemoryBytes of the registered data; charged against the
  /// tenant's resident-byte quota (net/quotas.h).
  std::uint64_t dataset_bytes = 0;
};

/// Builds the registered generator's factory output once (the server
/// calls this to size the quota charge and at every lazy reload).
Result<Dataset> MakeWireDataset(const RegisterDatasetRequest& request);

/// Size estimate (on the order of Dataset::MemoryBytes) of the dataset
/// MakeWireDataset would build, computed from the wire parameters alone
/// (saturating arithmetic, no allocation).
/// Admission control checks this BEFORE the server materializes anything
/// a tenant asked for: rows/dim are arbitrary wire int64s, and the tiny
/// request payload must not be able to trigger an unbounded server-side
/// allocation. 0 for non-positive rows/dim (MakeWireDataset rejects
/// those itself).
std::uint64_t EstimateWireDatasetBytes(const RegisterDatasetRequest& request);

struct TrainRequestWire {
  std::string tenant;
  std::string dataset;
  std::string model_class;  // MakeSpecByName
  double l2 = 1e-3;
  double epsilon = 0.05;
  double delta = 0.05;
  /// 0 = the dataset's configured seed (TrainRequest::seed semantics).
  std::uint64_t seed = 0;
};

struct TrainResponseWire {
  std::string model_class;
  TrainedModel model;
  std::int64_t sample_size = 0;
  std::int64_t full_size = 0;
  double initial_epsilon = 0.0;
  double final_epsilon = 0.0;
  bool used_initial_only = false;
  bool contract_satisfied = false;
  std::int32_t initial_iterations = 0;
  std::int32_t final_iterations = 0;
};

struct SearchCandidateWire {
  double l2 = 1e-3;
  std::uint64_t seed = 0;  // 0 = the session seed
};

struct SearchRequestWire {
  std::string tenant;
  std::string dataset;
  std::string model_class;
  std::vector<SearchCandidateWire> candidates;
  double epsilon = 0.05;
  double delta = 0.05;
  std::uint64_t seed = 0;
};

struct SearchCandidateResultWire {
  WireStatus status = WireStatus::kOk;
  std::string message;
  double l2 = 0.0;
  double score = 0.0;
  double final_epsilon = 0.0;
  std::int64_t sample_size = 0;
  /// Valid iff status == kOk.
  TrainedModel model;
};

struct SearchResponseWire {
  std::int32_t best_index = -1;
  std::vector<SearchCandidateResultWire> candidates;
};

struct PredictRequestWire {
  std::string tenant;
  std::string model_class;
  /// Only theta is used; ships a Train response's model straight back.
  TrainedModel model;
  std::int64_t rows = 0;
  std::int64_t dim = 0;
  /// Dense row-major rows x dim features.
  std::vector<double> features;
};

struct PredictResponseWire {
  std::vector<double> predictions;
};

struct StatsRequestWire {
  std::string tenant;
};

/// Server-side counters reported next to the SessionManager snapshot.
struct ServerStatsWire {
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t jobs_enqueued = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_version = 0;
  std::uint64_t rejected_unknown_verb = 0;
  std::uint64_t rejected_decode = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_rate = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_queue_full = 0;
  /// Load shed before enqueue (queue depth over the high-water mark).
  std::uint64_t rejected_shed = 0;
  /// Connections turned away at accept (max_connections cap).
  std::uint64_t rejected_max_connections = 0;
  /// Connections reaped by the idle deadline.
  std::uint64_t idle_reaped = 0;
  /// Responses abandoned because the peer stopped draining its socket
  /// for the write-stall timeout.
  std::uint64_t write_stalls = 0;
  std::int32_t open_connections = 0;
  std::int32_t queued_jobs = 0;
};

struct StatsResponseWire {
  ServeStats manager;
  ServerStatsWire server;
};

struct EvictIdleRequestWire {
  std::string tenant;
};

struct EvictIdleResponseWire {
  std::int32_t sessions_evicted = 0;
};

struct MetricsRequestWire {
  std::string tenant;
};

/// Text snapshot of the server's metrics registries (obs/metrics.h
/// TextSnapshot format: one `name{labels} value` line per metric).
struct MetricsResponseWire {
  std::string text;
};

struct HealthRequestWire {
  std::string tenant;
};

/// Shed/drain state, answered inline on the IO thread (no quota charge,
/// no queue hop) so probes keep working while the server is overloaded.
struct HealthResponseWire {
  /// False once Stop() began: the server is draining admitted jobs and
  /// will not accept new work.
  bool accepting = true;
  /// True while the queue depth sits at/above the shed high-water mark
  /// (new work is being rejected with kOverloaded + retry-after).
  bool shedding = false;
  std::int32_t open_connections = 0;
  std::int32_t queued_jobs = 0;
  /// Totals mirrored from ServerStatsWire, cheap enough for a probe.
  std::uint64_t rejected_shed = 0;
  std::uint64_t idle_reaped = 0;
};

void Encode(const RegisterDatasetRequest& v, WireWriter* out);
Status Decode(WireReader* in, RegisterDatasetRequest* out);
void Encode(const RegisterDatasetResponse& v, WireWriter* out);
Status Decode(WireReader* in, RegisterDatasetResponse* out);

void Encode(const TrainRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, TrainRequestWire* out);
Status Encode(const TrainResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, TrainResponseWire* out);

void Encode(const SearchRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, SearchRequestWire* out);
Status Encode(const SearchResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, SearchResponseWire* out);

Status Encode(const PredictRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, PredictRequestWire* out);
void Encode(const PredictResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, PredictResponseWire* out);

void Encode(const StatsRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, StatsRequestWire* out);
void Encode(const StatsResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, StatsResponseWire* out);

void Encode(const EvictIdleRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, EvictIdleRequestWire* out);
void Encode(const EvictIdleResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, EvictIdleResponseWire* out);

void Encode(const MetricsRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, MetricsRequestWire* out);
void Encode(const MetricsResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, MetricsResponseWire* out);

void Encode(const HealthRequestWire& v, WireWriter* out);
Status Decode(WireReader* in, HealthRequestWire* out);
void Encode(const HealthResponseWire& v, WireWriter* out);
Status Decode(WireReader* in, HealthResponseWire* out);

/// Reads the tenant name (the leading field of every request payload)
/// without consuming the rest — what admission control needs before the
/// runner decodes the body.
Status PeekTenant(const std::uint8_t* payload, std::size_t size,
                  std::string* tenant);

/// Reads the (tenant, dataset) routing key of a shard-routed verb without
/// decoding the body: RegisterDataset/Train/Search lead with two strings
/// (tenant, dataset-or-name). Predict and the aggregate verbs carry no
/// dataset; they peek an empty `dataset` (a tenant-only routing key).
/// What a shard router (shard/router.h) needs before picking an owner.
Status PeekRoutingKey(Verb verb, const std::uint8_t* payload,
                      std::size_t size, std::string* tenant,
                      std::string* dataset);

/// Builds a model spec from its wire name ("LogisticRegression",
/// "LinearRegression", "PoissonRegression" — the spec name() strings).
Result<std::shared_ptr<ModelSpec>> MakeSpecByName(
    const std::string& model_class, double l2);

/// The label task a model class predicts over (Predict needs a Dataset,
/// and Dataset validates labels against its task).
Result<Task> TaskForModelClass(const std::string& model_class);

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_CODEC_H_
