#include "net/quotas.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "util/string_util.h"

namespace blinkml {
namespace net {

namespace {

std::uint64_t SteadyMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TenantQuotas::TenantQuotas(TenantQuotaOptions defaults, ClockMicros clock)
    : defaults_(defaults), clock_(clock ? std::move(clock) : SteadyMicros) {}

void TenantQuotas::SetTenantOptions(const std::string& tenant,
                                    TenantQuotaOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  state.options = options;
  state.has_options = true;
  // Re-seed the bucket so a rate change applies cleanly from "full".
  state.bucket_started = false;
}

AdmissionDecision TenantQuotas::Admit(const std::string& tenant,
                                      std::uint64_t payload_bytes) {
  const std::uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  const TenantQuotaOptions& opts =
      state.has_options ? state.options : defaults_;

  // Bytes first: an over-quota rejection must not burn a rate token.
  if (opts.max_outstanding_bytes > 0) {
    const std::uint64_t in_use = state.outstanding_bytes +
                                 state.resident_bytes;
    if (in_use + payload_bytes > opts.max_outstanding_bytes) {
      AdmissionDecision decision;
      decision.status = WireStatus::kOverQuota;
      decision.retry_after_ms = opts.over_quota_retry_ms;
      decision.message = StrFormat(
          "tenant %s over byte quota: %llu in use + %llu requested > %llu",
          tenant.c_str(), static_cast<unsigned long long>(in_use),
          static_cast<unsigned long long>(payload_bytes),
          static_cast<unsigned long long>(opts.max_outstanding_bytes));
      return decision;
    }
  }

  if (opts.requests_per_second > 0.0) {
    const double burst = std::max(1.0, opts.burst);
    if (!state.bucket_started) {
      state.bucket_started = true;
      state.tokens = burst;
      state.last_refill_micros = now;
    } else {
      const double dt =
          static_cast<double>(now - state.last_refill_micros) * 1e-6;
      state.tokens = std::min(burst,
                              state.tokens + dt * opts.requests_per_second);
      state.last_refill_micros = now;
    }
    // Epsilon absorbs refill rounding: a bucket refilled for exactly one
    // token's worth of time must admit, not reject on 0.999999....
    if (state.tokens < 1.0 - 1e-9) {
      AdmissionDecision decision;
      decision.status = WireStatus::kRateLimited;
      const double wait_seconds =
          (1.0 - state.tokens) / opts.requests_per_second;
      decision.retry_after_ms = static_cast<std::uint32_t>(
          std::ceil(wait_seconds * 1e3));
      // A zero hint would read as "no hint"; the bucket always knows.
      decision.retry_after_ms = std::max(1u, decision.retry_after_ms);
      decision.message =
          StrFormat("tenant %s over rate limit (%.3g req/s)", tenant.c_str(),
                    opts.requests_per_second);
      return decision;
    }
    state.tokens -= 1.0;
  }

  state.outstanding_bytes += payload_bytes;
  return AdmissionDecision{};
}

void TenantQuotas::Release(const std::string& tenant,
                           std::uint64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  state.outstanding_bytes -= std::min(state.outstanding_bytes, payload_bytes);
}

void TenantQuotas::ChargeResident(const std::string& tenant,
                                  std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  if (delta >= 0) {
    state.resident_bytes += static_cast<std::uint64_t>(delta);
  } else {
    const std::uint64_t drop = static_cast<std::uint64_t>(-delta);
    state.resident_bytes -= std::min(state.resident_bytes, drop);
  }
}

AdmissionDecision TenantQuotas::CheckResident(const std::string& tenant,
                                              std::uint64_t bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  const TenantQuotaOptions& opts =
      (it != tenants_.end() && it->second.has_options) ? it->second.options
                                                       : defaults_;
  AdmissionDecision decision;
  if (opts.max_outstanding_bytes == 0) return decision;
  const std::uint64_t in_use =
      it == tenants_.end()
          ? 0
          : it->second.outstanding_bytes + it->second.resident_bytes;
  // Subtract rather than add: in_use + bytes can wrap (bytes may be a
  // saturated estimate), and in_use can already sit above the cap.
  const std::uint64_t free_bytes =
      opts.max_outstanding_bytes -
      std::min(in_use, opts.max_outstanding_bytes);
  if (bytes > free_bytes) {
    decision.status = WireStatus::kOverQuota;
    decision.retry_after_ms = opts.over_quota_retry_ms;
    decision.message = StrFormat(
        "tenant %s over byte quota: %llu in use + %llu resident requested "
        "> %llu",
        tenant.c_str(), static_cast<unsigned long long>(in_use),
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(opts.max_outstanding_bytes));
  }
  return decision;
}

std::uint64_t TenantQuotas::OutstandingBytes(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.outstanding_bytes;
}

std::uint64_t TenantQuotas::ResidentBytes(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.resident_bytes;
}

}  // namespace net
}  // namespace blinkml
