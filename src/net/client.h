// BlinkClient: blocking client for the networked serving front.
//
// One connection, one outstanding request at a time: each call encodes
// its payload, writes one frame, and blocks for the response frame,
// checking that the echoed request id matches (a mismatch means the
// stream desynchronized and surfaces as an error, never as silently
// swapped results). Thread-compatible, not thread-safe — callers wanting
// parallel requests open one client per thread (the server multiplexes
// any number of connections).
//
// Rejections map back onto util/status.h via StatusFromWire with the
// wire status name prefixed to the message (e.g. "RateLimited: ...");
// retry-after hints from the last rejection are kept on the client
// (last_retry_after_ms) and reset to 0 by a successful call.
//
// Resilience (set_retry_policy): a policy with max_attempts > 1 retries
// calls that failed with a retryable wire status
// (IsRetryableWireStatus: admission rejections, shed, transient
// unavailability — never InvalidArgument or other definitive outcomes)
// and, when `reconnect` is set, transport-level failures (the connection
// dropped mid-call: the client reconnects to the endpoint it was built
// from and re-sends). Re-sending is safe because job results are bitwise
// deterministic — a duplicated execution returns identical bytes.
// Backoff is bounded-exponential with DETERMINISTIC jitter derived from
// (request_id, attempt) — no wall clock, no global RNG — and never
// sleeps less than the server's retry_after_ms hint. All attempts of one
// logical call reuse the same request_id.

#ifndef BLINKML_NET_CLIENT_H_
#define BLINKML_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/protocol.h"
#include "util/status.h"

namespace blinkml {
namespace net {

/// Per-call scheduling knobs, carried in the frame header.
struct CallOptions {
  /// Higher drains first at the server's job queue.
  std::int32_t priority = 0;
  /// Relative deadline from server receipt; 0 = none. Expired jobs are
  /// rejected with kDeadlineExceeded before execution.
  std::uint32_t deadline_ms = 0;
};

/// Client-side retry behavior (off by default: max_attempts = 1).
struct RetryPolicy {
  /// Total attempts per logical call, first try included.
  int max_attempts = 1;
  /// Backoff before the first retry; doubles each retry (bounded by
  /// max_backoff_ms). The actual sleep is max(backoff + jitter,
  /// server retry_after_ms hint); jitter is deterministic from
  /// (request_id, attempt), in [0, backoff/2].
  std::uint32_t initial_backoff_ms = 2;
  std::uint32_t max_backoff_ms = 1000;
  /// Also retry transport-level failures (connection reset / EOF /
  /// desync) by reconnecting to the original endpoint and re-sending.
  bool reconnect = true;
};

/// Counters a retrying client accumulates (observability for tests,
/// benches, and callers judging endpoint health).
struct RetryStats {
  std::uint64_t retries = 0;     // re-sent attempts (all causes)
  std::uint64_t reconnects = 0;  // successful transport reconnects
};

class BlinkClient {
 public:
  static Result<BlinkClient> ConnectUnix(const std::string& path);
  static Result<BlinkClient> ConnectTcp(const std::string& host, int port);

  /// Bounded connect retry for racing a daemon that is still binding its
  /// socket: up to `attempts` tries, sleeping backoff_ms between
  /// (constant backoff; connect failures are not load signals). Replaces
  /// the ad-hoc retry loops the examples used to carry.
  static Result<BlinkClient> ConnectUnixRetry(const std::string& path,
                                              int attempts,
                                              std::uint32_t backoff_ms);
  static Result<BlinkClient> ConnectTcpRetry(const std::string& host,
                                             int port, int attempts,
                                             std::uint32_t backoff_ms);

  BlinkClient(BlinkClient&& other) noexcept;
  BlinkClient& operator=(BlinkClient&& other) noexcept;
  BlinkClient(const BlinkClient&) = delete;
  BlinkClient& operator=(const BlinkClient&) = delete;
  ~BlinkClient();

  Result<RegisterDatasetResponse> RegisterDataset(
      const RegisterDatasetRequest& request, CallOptions options = {});
  Result<TrainResponseWire> Train(const TrainRequestWire& request,
                                  CallOptions options = {});
  Result<SearchResponseWire> Search(const SearchRequestWire& request,
                                    CallOptions options = {});
  Result<PredictResponseWire> Predict(const PredictRequestWire& request,
                                      CallOptions options = {});
  Result<StatsResponseWire> Stats(const std::string& tenant,
                                  CallOptions options = {});
  Result<EvictIdleResponseWire> EvictIdle(const std::string& tenant,
                                          CallOptions options = {});
  /// Text snapshot of the server's metrics registries (obs/metrics.h
  /// format; manager-scoped serve_*/net_* metrics first, then the
  /// process-global pipeline/kernel/estimator metrics).
  Result<MetricsResponseWire> Metrics(const std::string& tenant,
                                      CallOptions options = {});
  /// Shed/drain state probe (answered on the server's IO thread; works
  /// under overload).
  Result<HealthResponseWire> Health(const std::string& tenant,
                                    CallOptions options = {});

  /// Caps how long a call blocks waiting for the response (SO_RCVTIMEO on
  /// the socket; 0 = wait forever, the default). A timeout surfaces as a
  /// transport-level IOError — retryable under a reconnect policy.
  /// Survives Reconnect(). What a liveness prober needs: a hung server
  /// must fail the probe, not hang the prober.
  Status set_recv_timeout_ms(int timeout_ms);

  /// Retry-after hint from the most recent rejected call (0 = none
  /// given; a successful call resets it to 0).
  std::uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  const RetryStats& retry_stats() const { return retry_stats_; }

  /// The wire status of the most recent non-OK response envelope
  /// (kOk if the last call succeeded or never reached an envelope).
  WireStatus last_wire_status() const { return last_wire_status_; }

 private:
  struct Endpoint {
    bool is_unix = false;
    std::string unix_path;
    std::string host;
    int port = 0;
  };

  BlinkClient(int fd, Endpoint endpoint)
      : fd_(fd), endpoint_(std::move(endpoint)) {}

  /// One logical call: writes a frame and blocks for its response,
  /// retrying per retry_policy_. On a kOk envelope the body bytes are
  /// left in *body for the caller to decode.
  Status Call(Verb verb, const WireWriter& payload, CallOptions options,
              std::vector<std::uint8_t>* body);

  /// A single attempt. `transport_error` distinguishes connection-level
  /// failures (retryable by reconnecting) from server envelopes.
  Status CallOnce(std::uint64_t request_id, Verb verb,
                  const WireWriter& payload, CallOptions options,
                  std::vector<std::uint8_t>* body, bool* transport_error);

  /// Re-dials endpoint_ and swaps the fd.
  Status Reconnect();

  /// Applies recv_timeout_ms_ to fd_ (called on set and after reconnect).
  Status ApplyRecvTimeout();

  template <typename Response>
  Result<Response> TypedCall(Verb verb, const WireWriter& payload,
                             CallOptions options);

  int fd_ = -1;
  Endpoint endpoint_;
  int recv_timeout_ms_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint32_t last_retry_after_ms_ = 0;
  WireStatus last_wire_status_ = WireStatus::kOk;
  RetryPolicy retry_policy_;
  RetryStats retry_stats_;
};

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_CLIENT_H_
