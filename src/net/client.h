// BlinkClient: blocking client for the networked serving front.
//
// One connection, one outstanding request at a time: each call encodes
// its payload, writes one frame, and blocks for the response frame,
// checking that the echoed request id matches (a mismatch means the
// stream desynchronized and surfaces as an error, never as silently
// swapped results). Thread-compatible, not thread-safe — callers wanting
// parallel requests open one client per thread (the server multiplexes
// any number of connections).
//
// Rejections map back onto util/status.h via StatusFromWire with the
// wire status name prefixed to the message (e.g. "RateLimited: ...");
// retry-after hints from the last rejection are kept on the client
// (last_retry_after_ms).

#ifndef BLINKML_NET_CLIENT_H_
#define BLINKML_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/protocol.h"
#include "util/status.h"

namespace blinkml {
namespace net {

/// Per-call scheduling knobs, carried in the frame header.
struct CallOptions {
  /// Higher drains first at the server's job queue.
  std::int32_t priority = 0;
  /// Relative deadline from server receipt; 0 = none. Expired jobs are
  /// rejected with kDeadlineExceeded before execution.
  std::uint32_t deadline_ms = 0;
};

class BlinkClient {
 public:
  static Result<BlinkClient> ConnectUnix(const std::string& path);
  static Result<BlinkClient> ConnectTcp(const std::string& host, int port);

  BlinkClient(BlinkClient&& other) noexcept;
  BlinkClient& operator=(BlinkClient&& other) noexcept;
  BlinkClient(const BlinkClient&) = delete;
  BlinkClient& operator=(const BlinkClient&) = delete;
  ~BlinkClient();

  Result<RegisterDatasetResponse> RegisterDataset(
      const RegisterDatasetRequest& request, CallOptions options = {});
  Result<TrainResponseWire> Train(const TrainRequestWire& request,
                                  CallOptions options = {});
  Result<SearchResponseWire> Search(const SearchRequestWire& request,
                                    CallOptions options = {});
  Result<PredictResponseWire> Predict(const PredictRequestWire& request,
                                      CallOptions options = {});
  Result<StatsResponseWire> Stats(const std::string& tenant,
                                  CallOptions options = {});
  Result<EvictIdleResponseWire> EvictIdle(const std::string& tenant,
                                          CallOptions options = {});
  /// Text snapshot of the server's metrics registries (obs/metrics.h
  /// format; manager-scoped serve_*/net_* metrics first, then the
  /// process-global pipeline/kernel/estimator metrics).
  Result<MetricsResponseWire> Metrics(const std::string& tenant,
                                      CallOptions options = {});

  /// Retry-after hint from the most recent rejected call (0 = none given;
  /// reset by every call).
  std::uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  explicit BlinkClient(int fd) : fd_(fd) {}

  /// Writes one frame and blocks for its response; on a kOk envelope the
  /// body bytes are left in *body for the caller to decode.
  Status Call(Verb verb, const WireWriter& payload, CallOptions options,
              std::vector<std::uint8_t>* body);

  template <typename Response>
  Result<Response> TypedCall(Verb verb, const WireWriter& payload,
                             CallOptions options);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint32_t last_retry_after_ms_ = 0;
};

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_CLIENT_H_
