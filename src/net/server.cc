#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "data/dataset.h"
#include "obs/trace.h"
#include "util/failpoints.h"
#include "util/string_util.h"

namespace blinkml {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(
        StrFormat("fcntl(O_NONBLOCK): %s", ::strerror(errno)));
  }
  return Status::OK();
}

/// Steady-clock milliseconds for connection activity stamps (monotonic;
/// only compared against itself).
std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ApplyInjectedDelay(const fail::FaultAction& action) {
  if (action.kind == fail::FaultKind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.arg));
  }
}

/// Field-wise equality of wire registrations (doubles compared bitwise:
/// the request came off the wire as bit patterns, so an identical retry
/// is bit-identical).
bool SameRegistration(const RegisterDatasetRequest& a,
                      const RegisterDatasetRequest& b) {
  return a.tenant == b.tenant && a.name == b.name &&
         a.generator == b.generator && a.rows == b.rows && a.dim == b.dim &&
         a.data_seed == b.data_seed &&
         std::memcmp(&a.sparsity, &b.sparsity, sizeof(double)) == 0 &&
         std::memcmp(&a.noise, &b.noise, sizeof(double)) == 0 &&
         a.nnz_per_row == b.nnz_per_row &&
         a.config.seed == b.config.seed &&
         a.config.initial_sample_size == b.config.initial_sample_size &&
         a.config.holdout_size == b.config.holdout_size &&
         a.config.stats_sample_size == b.config.stats_sample_size &&
         a.config.accuracy_samples == b.config.accuracy_samples &&
         a.config.size_samples == b.config.size_samples;
}

}  // namespace

BlinkServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

BlinkServer::BlinkServer(SessionManager* manager, ServerOptions options)
    : manager_(manager),
      options_(std::move(options)),
      quotas_(options_.default_quota),
      queue_(options_.max_queued_jobs),
      h_queue_wait_(manager_->metrics().Histogram("net_queue_wait_seconds")),
      g_net_queued_jobs_(manager_->metrics().Gauge("net_queued_jobs")),
      g_net_open_connections_(
          manager_->metrics().Gauge("net_open_connections")) {}

BlinkServer::~BlinkServer() { Stop(); }

Status BlinkServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument(
          StrFormat("unix socket path too long: %s",
                    options_.unix_path.c_str()));
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
    }
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      const Status status = Status::IOError(StrFormat(
          "bind(%s): %s", options_.unix_path.c_str(), ::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument(
          StrFormat("bad listen host: %s", options_.host.c_str()));
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      const Status status = Status::IOError(StrFormat(
          "bind(%s:%d): %s", options_.host.c_str(), options_.port,
          ::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const Status status =
        Status::IOError(StrFormat("listen: %s", ::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  Status status = SetNonBlocking(listen_fd_);
  if (!status.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    const Status pipe_status =
        Status::IOError(StrFormat("pipe: %s", ::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return pipe_status;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  (void)SetNonBlocking(wake_read_fd_);

  stopping_.store(false);
  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  const int runner_count = std::max(1, options_.runner_threads);
  runners_.reserve(static_cast<std::size_t>(runner_count));
  for (int i = 0; i < runner_count; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
  return Status::OK();
}

void BlinkServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  // Wake the poll() so the IO thread observes stopping_ and exits; it
  // stops accepting and reading, so no new jobs arrive after this point.
  const char byte = 'x';
  while (::write(wake_write_fd_, &byte, 1) < 0 && errno == EINTR) {
  }
  io_thread_.join();

  // Drain: runners keep popping until the queue empties, answering every
  // admitted job (run or expire), then exit.
  queue_.Shutdown();
  for (std::thread& runner : runners_) runner.join();
  runners_.clear();

  connections_.clear();
  open_connections_.store(0);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  started_ = false;
}

ServerStatsWire BlinkServer::stats() const {
  ServerStatsWire out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.open_connections = open_connections_.load();
  out.queued_jobs = static_cast<std::int32_t>(queue_.size());
  return out;
}

void BlinkServer::IoLoop() {
  std::vector<pollfd> poll_fds;
  std::vector<std::uint8_t> chunk(64 * 1024);

  while (!stopping_.load()) {
    poll_fds.clear();
    poll_fds.push_back({wake_read_fd_, POLLIN, 0});
    poll_fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      poll_fds.push_back({fd, POLLIN, 0});
    }

    // With an idle deadline configured, the poll timeout is the time to
    // the nearest reapable connection's deadline (otherwise block
    // indefinitely — the wake pipe handles shutdown).
    int timeout_ms = -1;
    if (options_.idle_timeout_ms > 0 && !connections_.empty()) {
      const std::int64_t now = NowMs();
      std::int64_t nearest = options_.idle_timeout_ms;
      for (const auto& [fd, conn] : connections_) {
        if (conn->inflight.load() > 0) continue;
        nearest = std::min(
            nearest, conn->last_activity_ms.load() +
                         options_.idle_timeout_ms - now);
      }
      timeout_ms = static_cast<int>(std::max<std::int64_t>(nearest, 0));
    }

    const int ready = ::poll(poll_fds.data(), poll_fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; Stop() still drains
    }
    if (stopping_.load()) break;

    if (poll_fds[0].revents != 0) {
      char buf[64];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }

    if (poll_fds[1].revents != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN (drained) or transient error
        fail::FaultAction fault;
        if (BLINKML_FAILPOINT("net.accept", &fault)) {
          NoteFault("net.accept");
          ApplyInjectedDelay(fault);
          if (fault.kind != fail::FaultKind::kDelay) {
            ::close(fd);  // injected accept failure: drop the connection
            continue;
          }
        }
        if (!SetNonBlocking(fd).ok()) {
          ::close(fd);
          continue;
        }
        if (options_.max_connections > 0 &&
            static_cast<int>(connections_.size()) >=
                options_.max_connections) {
          // Structured reject: one kOverloaded error frame with a
          // retry-after hint, then close — a client sees a parseable
          // rejection, not a silent RST.
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.rejected_max_connections;
          }
          NoteRejected("max_connections");
          RecordFailureEvent("max_connections");
          ResponseEnvelope envelope;
          envelope.status = WireStatus::kOverloaded;
          envelope.message =
              StrFormat("connection limit (%d) reached",
                        options_.max_connections);
          envelope.retry_after_ms = options_.shed_retry_ms;
          WireWriter payload;
          Encode(envelope, &payload);
          FrameHeader reject;
          reject.verb = Verb::kError;
          // The socket buffer of a fresh connection always fits one
          // small frame; a tiny stall timeout keeps a pathological peer
          // from pinning the IO thread.
          WriteOptions wopts;
          wopts.stall_timeout_ms = 100;
          (void)WriteFrame(fd, reject, payload.bytes().data(),
                           payload.bytes().size(), wopts);
          ::close(fd);
          continue;
        }
        auto conn = std::make_shared<Connection>(fd);
        conn->last_activity_ms.store(NowMs());
        connections_.emplace(fd, std::move(conn));
        open_connections_.fetch_add(1);
      }
    }

    for (std::size_t i = 2; i < poll_fds.size(); ++i) {
      if (poll_fds[i].revents == 0) continue;
      const auto it = connections_.find(poll_fds[i].fd);
      if (it == connections_.end()) continue;
      const ConnPtr conn = it->second;

      // Read-path fault injection: kError simulates the peer vanishing
      // mid-frame (teardown of exactly this connection); kPartial caps
      // this wakeup's read so frames arrive in deterministic dribbles,
      // exercising the incremental parser (poll is level-triggered, so
      // the remainder re-arms it).
      bool closed = false;
      std::size_t read_cap = chunk.size();
      fail::FaultAction fault;
      if (BLINKML_FAILPOINT("net.read_frame", &fault)) {
        NoteFault("net.read_frame");
        ApplyInjectedDelay(fault);
        if (fault.kind == fail::FaultKind::kError) {
          closed = true;
        } else if (fault.kind == fail::FaultKind::kPartial) {
          read_cap = static_cast<std::size_t>(std::max<std::uint64_t>(
              1, std::min<std::uint64_t>(fault.arg, read_cap)));
        }
      }
      while (!closed) {
        const ssize_t n = ::recv(conn->fd, chunk.data(), read_cap, 0);
        if (n > 0) {
          conn->in.insert(conn->in.end(), chunk.data(), chunk.data() + n);
          conn->last_activity_ms.store(NowMs());
          if (read_cap < chunk.size()) break;  // injected partial read
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        closed = true;  // EOF or hard error
        break;
      }
      if (!closed && !DrainConnectionBuffer(conn)) closed = true;
      if (closed) {
        conn->closed.store(true);
        connections_.erase(it);
        open_connections_.fetch_sub(1);
        // Queued jobs from this connection still hold their ConnPtr; their
        // writes no-op on the closed flag and the fd closes with the last
        // reference.
      }
    }

    if (options_.idle_timeout_ms > 0) {
      const std::int64_t now = NowMs();
      for (auto it = connections_.begin(); it != connections_.end();) {
        const ConnPtr& conn = it->second;
        if (conn->inflight.load() == 0 &&
            now - conn->last_activity_ms.load() >= options_.idle_timeout_ms) {
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.idle_reaped;
          }
          manager_->metrics().Counter("net_idle_reaped_total")->Inc();
          RecordFailureEvent("idle_reap");
          conn->closed.store(true);
          it = connections_.erase(it);
          open_connections_.fetch_sub(1);
        } else {
          ++it;
        }
      }
    }
  }
}

bool BlinkServer::DrainConnectionBuffer(const ConnPtr& conn) {
  std::size_t consumed = 0;
  bool keep_open = true;
  while (conn->in.size() - consumed >= kFrameHeaderBytes) {
    FrameHeader header;
    const Status status =
        DecodeFrameHeader(conn->in.data() + consumed, &header);
    if (!status.ok()) {
      // Unsynchronizable framing corruption: answer once, then close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frames_received;
        ++stats_.rejected_malformed;
      }
      NoteRejected("malformed");
      SendError(conn, header.request_id, Verb::kError,
                WireStatus::kMalformedFrame, status.message());
      keep_open = false;
      break;
    }
    if (conn->in.size() - consumed < kFrameHeaderBytes + header.payload_len) {
      break;  // incomplete frame; wait for more bytes
    }
    std::vector<std::uint8_t> payload(
        conn->in.begin() +
            static_cast<std::ptrdiff_t>(consumed + kFrameHeaderBytes),
        conn->in.begin() + static_cast<std::ptrdiff_t>(
                               consumed + kFrameHeaderBytes +
                               header.payload_len));
    consumed += kFrameHeaderBytes + header.payload_len;
    HandleFrame(conn, header, std::move(payload));
  }
  if (consumed > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return keep_open;
}

void BlinkServer::HandleFrame(const ConnPtr& conn, const FrameHeader& header,
                              std::vector<std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_received;
  }

  if (header.version != kWireVersion) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_version;
    }
    NoteRejected("version");
    SendError(conn, header.request_id, Verb::kError,
              WireStatus::kVersionMismatch,
              StrFormat("wire version %u, server speaks %u",
                        static_cast<unsigned>(header.version),
                        static_cast<unsigned>(kWireVersion)));
    return;
  }
  switch (header.verb) {
    case Verb::kHealth:
      // Answered inline on the IO thread: a health probe must work while
      // the queue is full, the tenant is over quota, or the server sheds
      // — the states it exists to report.
      HandleHealth(conn, header);
      return;
    case Verb::kRegisterDataset:
    case Verb::kTrain:
    case Verb::kSearch:
    case Verb::kPredict:
    case Verb::kStats:
    case Verb::kEvictIdle:
    case Verb::kMetrics:
      break;
    default: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_unknown_verb;
      }
      NoteRejected("unknown_verb");
      SendError(conn, header.request_id, Verb::kError,
                WireStatus::kUnknownVerb,
                StrFormat("unknown verb %u",
                          static_cast<unsigned>(header.verb)));
      return;
    }
  }

  std::string tenant;
  const Status peek = PeekTenant(payload.data(), payload.size(), &tenant);
  if (!peek.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_decode;
    }
    NoteRejected("decode");
    SendError(conn, header.request_id, header.verb, WireStatus::kDecodeError,
              peek.message());
    return;
  }

  // Load shed BEFORE the quota check: while the queue sits at the
  // high-water mark the server rejects in O(1) with an explicit hint —
  // and without burning the tenant's rate tokens on work it won't run.
  if (options_.shed_queue_depth > 0 &&
      queue_.size() >= options_.shed_queue_depth) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_shed;
    }
    NoteRejected("shed");
    RecordFailureEvent("shed");
    SendError(conn, header.request_id, header.verb, WireStatus::kOverloaded,
              StrFormat("load shed: %u jobs queued (high-water mark %u)",
                        static_cast<unsigned>(queue_.size()),
                        static_cast<unsigned>(options_.shed_queue_depth)),
              options_.shed_retry_ms);
    return;
  }

  const std::uint64_t payload_bytes = payload.size();
  const AdmissionDecision decision = quotas_.Admit(tenant, payload_bytes);
  if (!decision.admitted()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (decision.status == WireStatus::kRateLimited) {
        ++stats_.rejected_rate;
      } else {
        ++stats_.rejected_quota;
      }
    }
    NoteRejected(decision.status == WireStatus::kRateLimited ? "rate"
                                                             : "quota");
    SendError(conn, header.request_id, header.verb, decision.status,
              decision.message, decision.retry_after_ms);
    return;
  }

  // Admitted: this is where the request's observable life begins (the
  // net_requests_total counter and, under tracing, the queue_wait span —
  // see the header comment).
  manager_->metrics()
      .Counter("net_requests_total",
               {{"tenant", tenant}, {"verb", VerbName(header.verb)}})
      ->Inc();

  JobQueue::Job job;
  job.priority = header.priority;
  const JobQueue::SteadyTime admitted_at = std::chrono::steady_clock::now();
  job.enqueued = admitted_at;
  if (header.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline =
        admitted_at + std::chrono::milliseconds(header.deadline_ms);
  }
  // The run/expire closures both release the admission charge exactly
  // once (they are mutually exclusive by construction: the runner calls
  // one or the other).
  auto shared_payload = std::make_shared<std::vector<std::uint8_t>>(
      std::move(payload));
  job.run = [this, conn, header, shared_payload, tenant, payload_bytes,
             admitted_at] {
    // Queue wait = admission to pop, measured on the runner before any
    // decode work. Wall-clock observation only; never feeds back.
    const double wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      admitted_at)
            .count();
    h_queue_wait_->Observe(wait_seconds);
    obs::Tracer& tracer = obs::Tracer::Global();
    if (tracer.enabled()) {
      obs::TraceEvent event;
      event.name = "queue_wait";
      event.cat = "net";
      event.dur_us = wait_seconds * 1e6;
      event.ts_us = tracer.NowUs() - event.dur_us;
      event.request_id = header.request_id;
      event.tenant = tenant;
      event.verb = VerbName(header.verb);
      tracer.Record(std::move(event));
    }
    ExecuteJob(conn, header, tenant, *shared_payload);
    quotas_.Release(tenant, payload_bytes);
    conn->inflight.fetch_sub(1);
  };
  job.expire = [this, conn, header, tenant, payload_bytes] {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_deadline;
    }
    NoteRejected("deadline");
    SendError(conn, header.request_id, header.verb,
              WireStatus::kDeadlineExceeded,
              StrFormat("deadline (%u ms) expired before execution",
                        static_cast<unsigned>(header.deadline_ms)));
    quotas_.Release(tenant, payload_bytes);
    conn->inflight.fetch_sub(1);
  };

  // Counted before Push: a runner can pop and execute the job (a Stats
  // verb snapshots these counters) before a post-Push increment would
  // land.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_enqueued;
  }
  conn->inflight.fetch_add(1);
  if (!queue_.Push(std::move(job))) {
    const bool shutting_down = stopping_.load();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --stats_.jobs_enqueued;
      if (!shutting_down) ++stats_.rejected_queue_full;
    }
    if (!shutting_down) NoteRejected("queue_full");
    SendError(conn, header.request_id, header.verb,
              shutting_down ? WireStatus::kShuttingDown
                            : WireStatus::kQueueFull,
              shutting_down ? "server shutting down" : "job queue full",
              shutting_down ? 0 : options_.default_quota.over_quota_retry_ms);
    quotas_.Release(tenant, payload_bytes);
    conn->inflight.fetch_sub(1);
    return;
  }
}

void BlinkServer::RunnerLoop() {
  JobQueue::Job job;
  while (queue_.Pop(&job)) {
    if (JobQueue::Expired(job)) {
      job.expire();
    } else {
      job.run();
    }
    job = JobQueue::Job{};  // drop closures (ConnPtr refs) promptly
  }
}

void BlinkServer::NoteRejected(const char* reason) {
  manager_->metrics()
      .Counter("net_rejected_total", {{"reason", reason}})
      ->Inc();
}

void BlinkServer::RecordFailureEvent(const char* name) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!tracer.enabled()) return;
  obs::TraceEvent event;
  event.name = name;
  event.cat = "fault";
  event.ts_us = tracer.NowUs();
  event.dur_us = 0;
  tracer.Record(std::move(event));
}

void BlinkServer::NoteFault(const char* point) {
  manager_->metrics()
      .Counter("net_faults_injected_total", {{"point", point}})
      ->Inc();
  RecordFailureEvent(point);
}

void BlinkServer::HandleHealth(const ConnPtr& conn,
                               const FrameHeader& header) {
  HealthResponseWire health;
  health.accepting = !stopping_.load();
  const std::size_t depth = queue_.size();
  health.shedding = options_.shed_queue_depth > 0 &&
                    depth >= options_.shed_queue_depth;
  health.open_connections = open_connections_.load();
  health.queued_jobs = static_cast<std::int32_t>(depth);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    health.rejected_shed = stats_.rejected_shed;
    health.idle_reaped = stats_.idle_reaped;
  }
  WireWriter body;
  Encode(health, &body);
  SendResponse(conn, header.request_id, Verb::kHealth, ResponseEnvelope{},
               &body);
}

void BlinkServer::ExecuteJob(const ConnPtr& conn, const FrameHeader& header,
                             const std::string& tenant,
                             const std::vector<std::uint8_t>& payload) {
  // Everything below this point — SessionManager submit closures,
  // pipeline phases, kernel scopes — inherits this context (it is
  // captured into cross-thread closures and re-installed there), so every
  // span the request produces carries the same request_id.
  obs::TraceContext trace_ctx;
  trace_ctx.request_id = header.request_id;
  trace_ctx.tenant = tenant;
  trace_ctx.verb = VerbName(header.verb);
  trace_ctx.valid = true;
  obs::ScopedTraceContext scoped_trace(std::move(trace_ctx));
  obs::SpanScope verb_span(VerbName(header.verb), "net");

  ResponseEnvelope envelope;
  WireWriter body;
  try {
    switch (header.verb) {
      case Verb::kRegisterDataset:
        envelope = RunRegisterDataset(payload.data(), payload.size(), &body);
        break;
      case Verb::kTrain:
        envelope = RunTrain(payload.data(), payload.size(), &body);
        break;
      case Verb::kSearch:
        envelope = RunSearch(payload.data(), payload.size(), &body);
        break;
      case Verb::kPredict:
        envelope = RunPredict(payload.data(), payload.size(), &body);
        break;
      case Verb::kStats:
        envelope = RunStats(&body);
        break;
      case Verb::kEvictIdle:
        envelope = RunEvictIdle(&body);
        break;
      case Verb::kMetrics:
        envelope = RunMetrics(&body);
        break;
      default:
        envelope.status = WireStatus::kUnknownVerb;
        envelope.message = "unknown verb reached execution";
        break;
    }
  } catch (const std::exception& e) {
    // Job bodies may throw (dataset factories propagate through the
    // manager's futures); the connection must survive it.
    envelope = ResponseEnvelope{};
    envelope.status = WireStatus::kInternal;
    envelope.message = StrFormat("job threw: %s", e.what());
  } catch (...) {
    envelope = ResponseEnvelope{};
    envelope.status = WireStatus::kInternal;
    envelope.message = "job threw a non-exception";
  }
  SendResponse(conn, header.request_id, header.verb, envelope,
               envelope.status == WireStatus::kOk ? &body : nullptr);
}

void BlinkServer::SendResponse(const ConnPtr& conn, std::uint64_t request_id,
                               Verb verb, const ResponseEnvelope& envelope,
                               const WireWriter* body) {
  WireWriter payload;
  Encode(envelope, &payload);
  if (body != nullptr) {
    payload.Bytes(body->bytes().data(), body->bytes().size());
  }

  FrameHeader header;
  header.verb = verb;
  header.request_id = request_id;
  header.payload_len = static_cast<std::uint32_t>(payload.bytes().size());

  if (conn->closed.load()) return;

  // Write-path fault injection: kError severs the connection before the
  // response (the client sees EOF and must reconnect + retry); kPartial
  // leaks a truncated frame prefix first (a mid-frame cut from the
  // client's perspective); kDelay stalls the write.
  fail::FaultAction fault;
  bool sever = false;
  std::size_t partial_bytes = 0;
  if (BLINKML_FAILPOINT("net.write_frame", &fault)) {
    NoteFault("net.write_frame");
    ApplyInjectedDelay(fault);
    if (fault.kind == fail::FaultKind::kError) {
      sever = true;
    } else if (fault.kind == fail::FaultKind::kPartial) {
      sever = true;
      partial_bytes = static_cast<std::size_t>(fault.arg);
    }
  }

  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load()) return;
  if (sever) {
    if (partial_bytes > 0) {
      std::vector<std::uint8_t> frame(kFrameHeaderBytes +
                                      payload.bytes().size());
      EncodeFrameHeader(header, frame.data());
      std::memcpy(frame.data() + kFrameHeaderBytes, payload.bytes().data(),
                  payload.bytes().size());
      // Best-effort single send of the truncated prefix (a fault
      // simulation; the bytes fitting the buffer is not load-bearing).
      (void)::send(conn->fd, frame.data(),
                   std::min(partial_bytes, frame.size()), MSG_NOSIGNAL);
    }
    // shutdown(), not close(): the fd number stays reserved until the
    // last ConnPtr drops, but both directions die now — the client sees
    // EOF and the IO thread reaps the connection on its read event.
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->closed.store(true);
    return;
  }

  WriteOptions write_options;
  write_options.stall_timeout_ms = options_.write_stall_timeout_ms;
  bool stalled = false;
  if (WriteFrame(conn->fd, header, payload.bytes().data(),
                 payload.bytes().size(), write_options, &stalled)
          .ok()) {
    conn->last_activity_ms.store(NowMs());
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.responses_sent;
  } else {
    if (stalled) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.write_stalls;
      }
      manager_->metrics().Counter("net_write_stalls_total")->Inc();
      RecordFailureEvent("write_stall");
    }
    // The peer is gone (or stopped draining); the IO thread will reap
    // the connection.
    conn->closed.store(true);
  }
}

void BlinkServer::SendError(const ConnPtr& conn, std::uint64_t request_id,
                            Verb verb, WireStatus status,
                            const std::string& message,
                            std::uint32_t retry_after_ms) {
  ResponseEnvelope envelope;
  envelope.status = status;
  envelope.message = message;
  envelope.retry_after_ms = retry_after_ms;
  SendResponse(conn, request_id, verb, envelope, nullptr);
}

ResponseEnvelope BlinkServer::RunRegisterDataset(const std::uint8_t* payload,
                                                 std::size_t size,
                                                 WireWriter* body) {
  ResponseEnvelope envelope;
  RegisterDatasetRequest request;
  WireReader reader(payload, size);
  Status status = Decode(&reader, &request);
  if (!status.ok()) {
    envelope.status = WireStatus::kDecodeError;
    envelope.message = status.message();
    return envelope;
  }

  // Serializes registration end to end (rare operation, coarse lock) and
  // makes it idempotent: a retried registration whose first response was
  // lost to a connection fault must converge to the same kOk, not fail
  // with "already registered" — without re-charging the byte quota.
  std::lock_guard<std::mutex> register_lock(register_mu_);
  const auto existing = registered_.find(request.name);
  if (existing != registered_.end()) {
    if (SameRegistration(existing->second.first, request)) {
      RegisterDatasetResponse response;
      response.dataset_bytes = existing->second.second;
      Encode(response, body);
      return envelope;
    }
    envelope.status = WireStatus::kInvalidArgument;
    envelope.message = StrFormat(
        "dataset '%s' is already registered with different parameters",
        request.name.c_str());
    return envelope;
  }

  // Admission BEFORE materialization: rows/dim are arbitrary wire int64s
  // and the enqueue admission only charged the tiny request payload, so
  // the size estimate — not the dataset — is what gets checked against
  // the server cap and the tenant's byte quota. Without this a one-frame
  // request could OOM the server past the quota system.
  const std::uint64_t estimate = EstimateWireDatasetBytes(request);
  if (options_.max_dataset_bytes > 0 &&
      estimate > options_.max_dataset_bytes) {
    envelope.status = WireStatus::kInvalidArgument;
    envelope.message = StrFormat(
        "dataset of ~%llu bytes exceeds the server's %llu-byte "
        "per-dataset cap",
        static_cast<unsigned long long>(estimate),
        static_cast<unsigned long long>(options_.max_dataset_bytes));
    return envelope;
  }
  const AdmissionDecision fit = quotas_.CheckResident(request.tenant, estimate);
  if (!fit.admitted()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_quota;
    }
    envelope.status = fit.status;
    envelope.message = fit.message;
    envelope.retry_after_ms = fit.retry_after_ms;
    return envelope;
  }

  // Materialize once up front: it validates the generator parameters and
  // sizes the tenant's resident-byte charge honestly (the same
  // MemoryBytes figure the manager's LRU budget uses). The registered
  // factory then regenerates on demand — deterministic given the wire
  // parameters, so a post-eviction reload is bitwise identical.
  Result<Dataset> data = MakeWireDataset(request);
  if (!data.ok()) {
    envelope.status = WireStatusFromStatus(data.status());
    envelope.message = data.status().message();
    return envelope;
  }
  const std::uint64_t bytes = data->MemoryBytes();

  status = manager_->RegisterDataset(
      request.name,
      [request] {
        Result<Dataset> regenerated = MakeWireDataset(request);
        // Parameters were validated at registration; a failure here is a
        // programming error, not tenant input.
        if (!regenerated.ok()) {
          throw std::runtime_error(regenerated.status().message());
        }
        return std::move(*regenerated);
      },
      ToBlinkConfig(request.config));
  if (!status.ok()) {
    envelope.status = WireStatusFromStatus(status);
    envelope.message = status.message();
    return envelope;
  }
  quotas_.ChargeResident(request.tenant, static_cast<std::int64_t>(bytes));
  registered_.emplace(request.name, std::make_pair(request, bytes));

  RegisterDatasetResponse response;
  response.dataset_bytes = bytes;
  Encode(response, body);
  return envelope;
}

ResponseEnvelope BlinkServer::RunTrain(const std::uint8_t* payload,
                                       std::size_t size, WireWriter* body) {
  ResponseEnvelope envelope;
  TrainRequestWire request;
  WireReader reader(payload, size);
  Status status = Decode(&reader, &request);
  if (!status.ok()) {
    envelope.status = WireStatus::kDecodeError;
    envelope.message = status.message();
    return envelope;
  }

  Result<std::shared_ptr<ModelSpec>> spec =
      MakeSpecByName(request.model_class, request.l2);
  if (!spec.ok()) {
    envelope.status = WireStatusFromStatus(spec.status());
    envelope.message = spec.status().message();
    return envelope;
  }

  TrainRequest train;
  train.dataset = request.dataset;
  train.spec = *spec;
  train.contract.epsilon = request.epsilon;
  train.contract.delta = request.delta;
  train.seed = request.seed;
  Result<ApproxResult> result = manager_->SubmitTrain(std::move(train)).get();
  if (!result.ok()) {
    envelope.status = WireStatusFromStatus(result.status());
    envelope.message = result.status().message();
    return envelope;
  }

  TrainResponseWire response;
  response.model_class = request.model_class;
  response.model = result->model;
  response.sample_size = result->sample_size;
  response.full_size = result->full_size;
  response.initial_epsilon = result->initial_epsilon;
  response.final_epsilon = result->final_epsilon;
  response.used_initial_only = result->used_initial_only;
  response.contract_satisfied = result->contract_satisfied;
  response.initial_iterations = result->initial_iterations;
  response.final_iterations = result->final_iterations;
  status = Encode(response, body);
  if (!status.ok()) {
    envelope.status = WireStatus::kInternal;
    envelope.message = status.message();
  }
  return envelope;
}

ResponseEnvelope BlinkServer::RunSearch(const std::uint8_t* payload,
                                        std::size_t size, WireWriter* body) {
  ResponseEnvelope envelope;
  SearchRequestWire request;
  WireReader reader(payload, size);
  Status status = Decode(&reader, &request);
  if (!status.ok()) {
    envelope.status = WireStatus::kDecodeError;
    envelope.message = status.message();
    return envelope;
  }

  // Validate the class before enqueueing anything.
  Result<std::shared_ptr<ModelSpec>> probe =
      MakeSpecByName(request.model_class, 1e-3);
  if (!probe.ok()) {
    envelope.status = WireStatusFromStatus(probe.status());
    envelope.message = probe.status().message();
    return envelope;
  }

  SearchRequest search;
  search.dataset = request.dataset;
  search.factory = [model_class = request.model_class](const Candidate& c) {
    Result<std::shared_ptr<ModelSpec>> spec =
        MakeSpecByName(model_class, c.l2);
    return spec.ok() ? *spec : nullptr;
  };
  search.candidates.reserve(request.candidates.size());
  for (const SearchCandidateWire& candidate : request.candidates) {
    Candidate c;
    c.l2 = candidate.l2;
    c.seed = candidate.seed;
    search.candidates.push_back(std::move(c));
  }
  search.options.contract.epsilon = request.epsilon;
  search.options.contract.delta = request.delta;
  search.seed = request.seed;
  Result<SearchOutcome> outcome =
      manager_->SubmitSearch(std::move(search)).get();
  if (!outcome.ok()) {
    envelope.status = WireStatusFromStatus(outcome.status());
    envelope.message = outcome.status().message();
    return envelope;
  }

  SearchResponseWire response;
  response.best_index = outcome->best_index;
  response.candidates.reserve(outcome->candidates.size());
  for (const CandidateResult& cr : outcome->candidates) {
    SearchCandidateResultWire wire;
    wire.l2 = cr.candidate.l2;
    if (!cr.status.ok()) {
      wire.status = WireStatusFromStatus(cr.status);
      wire.message = cr.status.message();
    } else if (cr.skipped) {
      // No model was trained; kInfeasible keeps "model present iff kOk".
      wire.status = WireStatus::kInfeasible;
      wire.message = "skipped (search budget)";
    } else {
      wire.score = cr.score;
      wire.final_epsilon = cr.result.final_epsilon;
      wire.sample_size = cr.result.sample_size;
      wire.model = cr.result.model;
    }
    response.candidates.push_back(std::move(wire));
  }
  status = Encode(response, body);
  if (!status.ok()) {
    envelope.status = WireStatus::kInternal;
    envelope.message = status.message();
  }
  return envelope;
}

ResponseEnvelope BlinkServer::RunPredict(const std::uint8_t* payload,
                                         std::size_t size, WireWriter* body) {
  ResponseEnvelope envelope;
  PredictRequestWire request;
  WireReader reader(payload, size);
  Status status = Decode(&reader, &request);
  if (!status.ok()) {
    envelope.status = WireStatus::kDecodeError;
    envelope.message = status.message();
    return envelope;
  }

  Result<std::shared_ptr<ModelSpec>> spec =
      MakeSpecByName(request.model_class, 1e-3);
  Result<Task> task = TaskForModelClass(request.model_class);
  if (!spec.ok() || !task.ok()) {
    const Status& bad = spec.ok() ? task.status() : spec.status();
    envelope.status = WireStatusFromStatus(bad);
    envelope.message = bad.message();
    return envelope;
  }

  Matrix features(request.rows, request.dim);
  std::memcpy(features.data(), request.features.data(),
              request.features.size() * sizeof(double));
  // Zero labels satisfy every task's label validation and Predict never
  // reads them.
  Vector labels(request.rows);
  const Dataset data(std::move(features), std::move(labels), *task);

  if ((*spec)->ParamDim(data) != request.model.theta.size()) {
    envelope.status = WireStatus::kInvalidArgument;
    envelope.message = StrFormat(
        "model has %lld parameters but %s over %lld features needs %lld",
        static_cast<long long>(request.model.theta.size()),
        request.model_class.c_str(), static_cast<long long>(request.dim),
        static_cast<long long>((*spec)->ParamDim(data)));
    return envelope;
  }

  // Stateless and cheap relative to training: runs inline on the runner
  // thread (its parallel regions still land on the runtime pool).
  PredictResponseWire response;
  Vector predictions;
  (*spec)->Predict(request.model.theta, data, &predictions);
  response.predictions.assign(predictions.data(),
                              predictions.data() + predictions.size());
  Encode(response, body);
  return envelope;
}

ResponseEnvelope BlinkServer::RunStats(WireWriter* body) {
  ResponseEnvelope envelope;
  StatsResponseWire response;
  response.manager = manager_->stats();
  response.server = stats();
  Encode(response, body);
  return envelope;
}

ResponseEnvelope BlinkServer::RunEvictIdle(WireWriter* body) {
  ResponseEnvelope envelope;
  EvictIdleResponseWire response;
  response.sessions_evicted = manager_->EvictIdle();
  Encode(response, body);
  return envelope;
}

ResponseEnvelope BlinkServer::RunMetrics(WireWriter* body) {
  // Sampled gauges refresh at scrape time (same convention as the
  // manager's MetricsText refresh).
  g_net_queued_jobs_->Set(static_cast<std::int64_t>(queue_.size()));
  g_net_open_connections_->Set(open_connections_.load());

  ResponseEnvelope envelope;
  MetricsResponseWire response;
  // Manager registry (serve_* / net_* metrics) followed by the process-
  // global registry (pipeline_*, kernel_*, estimator_*, session_*).
  response.text =
      manager_->MetricsText() + obs::Registry::Global().TextSnapshot();
  Encode(response, body);
  return envelope;
}

}  // namespace net
}  // namespace blinkml
