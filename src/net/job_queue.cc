#include "net/job_queue.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoints.h"

namespace blinkml {
namespace net {

bool JobQueue::Push(Job job) {
  fail::FaultAction fault;
  if (BLINKML_FAILPOINT("queue.enqueue", &fault)) {
    obs::Registry::Global()
        .Counter("net_faults_injected_total", {{"point", "queue.enqueue"}})
        ->Inc();
    if (fault.kind == fail::FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.arg));
    } else if (fault.kind != fail::FaultKind::kNone) {
      // Injected enqueue failure: same contract as a full queue — the
      // caller rejects the job with a retryable status.
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    if (max_queued_ > 0 && heap_.size() >= max_queued_) return false;
    Entry entry{job.priority, next_seq_++, std::move(job)};
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), EntryLess());
  }
  cv_.notify_one();
  return true;
}

bool JobQueue::Pop(Job* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || !heap_.empty(); });
  if (heap_.empty()) return false;  // shut down and drained
  std::pop_heap(heap_.begin(), heap_.end(), EntryLess());
  *out = std::move(heap_.back().job);
  heap_.pop_back();
  return true;
}

void JobQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

}  // namespace net
}  // namespace blinkml
