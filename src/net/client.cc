#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace blinkml {
namespace net {

namespace {

/// SplitMix64: the backoff jitter's deterministic hash. Same
/// (request_id, attempt) -> same jitter, so a chaos run's timing is a
/// pure function of the schedule, never of a clock or global RNG.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Result<BlinkClient> BlinkClient::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("unix socket path too long: %s", path.c_str()));
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Status::IOError(
        StrFormat("connect(%s): %s", path.c_str(), ::strerror(errno)));
    ::close(fd);
    return status;
  }
  Endpoint endpoint;
  endpoint.is_unix = true;
  endpoint.unix_path = path;
  return BlinkClient(fd, std::move(endpoint));
}

Result<BlinkClient> BlinkClient::ConnectTcp(const std::string& host,
                                            int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad host address: %s", host.c_str()));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Status::IOError(StrFormat(
        "connect(%s:%d): %s", host.c_str(), port, ::strerror(errno)));
    ::close(fd);
    return status;
  }
  Endpoint endpoint;
  endpoint.host = host;
  endpoint.port = port;
  return BlinkClient(fd, std::move(endpoint));
}

namespace {

template <typename ConnectFn>
Result<BlinkClient> ConnectWithRetry(int attempts, std::uint32_t backoff_ms,
                                     ConnectFn connect) {
  Status last = Status::IOError("connect: no attempts made");
  for (int attempt = 0; attempt < std::max(1, attempts); ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    Result<BlinkClient> client = connect();
    if (client.ok()) return client;
    last = client.status();
  }
  return last;
}

}  // namespace

Result<BlinkClient> BlinkClient::ConnectUnixRetry(const std::string& path,
                                                  int attempts,
                                                  std::uint32_t backoff_ms) {
  return ConnectWithRetry(attempts, backoff_ms,
                          [&] { return ConnectUnix(path); });
}

Result<BlinkClient> BlinkClient::ConnectTcpRetry(const std::string& host,
                                                 int port, int attempts,
                                                 std::uint32_t backoff_ms) {
  return ConnectWithRetry(attempts, backoff_ms,
                          [&] { return ConnectTcp(host, port); });
}

BlinkClient::BlinkClient(BlinkClient&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      recv_timeout_ms_(other.recv_timeout_ms_),
      next_request_id_(other.next_request_id_),
      last_retry_after_ms_(other.last_retry_after_ms_),
      last_wire_status_(other.last_wire_status_),
      retry_policy_(other.retry_policy_),
      retry_stats_(other.retry_stats_) {
  other.fd_ = -1;
}

BlinkClient& BlinkClient::operator=(BlinkClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    recv_timeout_ms_ = other.recv_timeout_ms_;
    next_request_id_ = other.next_request_id_;
    last_retry_after_ms_ = other.last_retry_after_ms_;
    last_wire_status_ = other.last_wire_status_;
    retry_policy_ = other.retry_policy_;
    retry_stats_ = other.retry_stats_;
    other.fd_ = -1;
  }
  return *this;
}

BlinkClient::~BlinkClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlinkClient::Reconnect() {
  Result<BlinkClient> fresh =
      endpoint_.is_unix ? ConnectUnix(endpoint_.unix_path)
                        : ConnectTcp(endpoint_.host, endpoint_.port);
  BLINKML_RETURN_NOT_OK(fresh.status());
  if (fd_ >= 0) ::close(fd_);
  fd_ = fresh->fd_;
  fresh->fd_ = -1;
  return ApplyRecvTimeout();
}

Status BlinkClient::ApplyRecvTimeout() {
  if (fd_ < 0 || recv_timeout_ms_ <= 0) return Status::OK();
  timeval tv{};
  tv.tv_sec = recv_timeout_ms_ / 1000;
  tv.tv_usec = (recv_timeout_ms_ % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::IOError(
        StrFormat("setsockopt(SO_RCVTIMEO): %s", ::strerror(errno)));
  }
  return Status::OK();
}

Status BlinkClient::set_recv_timeout_ms(int timeout_ms) {
  if (timeout_ms < 0) {
    return Status::InvalidArgument("recv timeout must be >= 0");
  }
  recv_timeout_ms_ = timeout_ms;
  return ApplyRecvTimeout();
}

Status BlinkClient::Call(Verb verb, const WireWriter& payload,
                         CallOptions options,
                         std::vector<std::uint8_t>* body) {
  last_retry_after_ms_ = 0;
  last_wire_status_ = WireStatus::kOk;
  // All attempts reuse one request id: a retry is the SAME logical call,
  // and bitwise-deterministic execution makes the duplicate safe.
  const std::uint64_t request_id = next_request_id_++;
  std::uint32_t backoff_ms = retry_policy_.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    bool transport_error = false;
    const Status status =
        CallOnce(request_id, verb, payload, options, body, &transport_error);
    if (status.ok()) {
      last_retry_after_ms_ = 0;
      return status;
    }
    const bool retryable = transport_error
                               ? retry_policy_.reconnect
                               : IsRetryableWireStatus(last_wire_status_);
    if (!retryable || attempt >= retry_policy_.max_attempts) return status;
    const std::uint32_t hint = last_retry_after_ms_;
    if (transport_error) {
      // If the endpoint itself is gone the original error is the more
      // useful one to surface.
      if (!Reconnect().ok()) return status;
      ++retry_stats_.reconnects;
    }
    const std::uint32_t jitter =
        backoff_ms == 0
            ? 0
            : static_cast<std::uint32_t>(
                  SplitMix64(request_id * 0x2545F4914F6CDD1Dull +
                             static_cast<std::uint64_t>(attempt)) %
                  (backoff_ms / 2 + 1));
    const std::uint32_t sleep_ms = std::max(backoff_ms + jitter, hint);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    backoff_ms = std::min(std::max<std::uint32_t>(backoff_ms, 1) * 2,
                          retry_policy_.max_backoff_ms);
    ++retry_stats_.retries;
  }
}

Status BlinkClient::CallOnce(std::uint64_t request_id, Verb verb,
                             const WireWriter& payload, CallOptions options,
                             std::vector<std::uint8_t>* body,
                             bool* transport_error) {
  *transport_error = false;
  if (fd_ < 0) {
    *transport_error = true;
    return Status::IOError("client is not connected");
  }

  FrameHeader header;
  header.verb = verb;
  header.request_id = request_id;
  header.priority = options.priority;
  header.deadline_ms = options.deadline_ms;
  Status status = WriteFrame(fd_, header, payload.bytes().data(),
                             payload.bytes().size());
  if (!status.ok()) {
    *transport_error = true;
    return status;
  }

  Frame response;
  status = ReadFrame(fd_, &response);
  if (!status.ok()) {
    *transport_error = true;
    return status;
  }
  if (response.header.request_id != request_id) {
    *transport_error = true;
    return Status::IOError(StrFormat(
        "response id %llu does not match request id %llu (stream "
        "desynchronized)",
        static_cast<unsigned long long>(response.header.request_id),
        static_cast<unsigned long long>(request_id)));
  }

  WireReader reader(response.payload.data(), response.payload.size());
  ResponseEnvelope envelope;
  status = Decode(&reader, &envelope);
  if (!status.ok()) {
    *transport_error = true;
    return status;
  }
  if (envelope.status != WireStatus::kOk) {
    last_wire_status_ = envelope.status;
    last_retry_after_ms_ = envelope.retry_after_ms;
    return StatusFromWire(envelope.status, envelope.message);
  }
  body->assign(response.payload.end() -
                   static_cast<std::ptrdiff_t>(reader.remaining()),
               response.payload.end());
  return Status::OK();
}

template <typename Response>
Result<Response> BlinkClient::TypedCall(Verb verb, const WireWriter& payload,
                                        CallOptions options) {
  std::vector<std::uint8_t> body;
  BLINKML_RETURN_NOT_OK(Call(verb, payload, options, &body));
  WireReader reader(body.data(), body.size());
  Response response;
  BLINKML_RETURN_NOT_OK(Decode(&reader, &response));
  return response;
}

Result<RegisterDatasetResponse> BlinkClient::RegisterDataset(
    const RegisterDatasetRequest& request, CallOptions options) {
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<RegisterDatasetResponse>(Verb::kRegisterDataset, payload,
                                            options);
}

Result<TrainResponseWire> BlinkClient::Train(const TrainRequestWire& request,
                                             CallOptions options) {
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<TrainResponseWire>(Verb::kTrain, payload, options);
}

Result<SearchResponseWire> BlinkClient::Search(
    const SearchRequestWire& request, CallOptions options) {
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<SearchResponseWire>(Verb::kSearch, payload, options);
}

Result<PredictResponseWire> BlinkClient::Predict(
    const PredictRequestWire& request, CallOptions options) {
  WireWriter payload;
  BLINKML_RETURN_NOT_OK(Encode(request, &payload));
  return TypedCall<PredictResponseWire>(Verb::kPredict, payload, options);
}

Result<StatsResponseWire> BlinkClient::Stats(const std::string& tenant,
                                             CallOptions options) {
  StatsRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<StatsResponseWire>(Verb::kStats, payload, options);
}

Result<EvictIdleResponseWire> BlinkClient::EvictIdle(
    const std::string& tenant, CallOptions options) {
  EvictIdleRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<EvictIdleResponseWire>(Verb::kEvictIdle, payload, options);
}

Result<MetricsResponseWire> BlinkClient::Metrics(const std::string& tenant,
                                                 CallOptions options) {
  MetricsRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<MetricsResponseWire>(Verb::kMetrics, payload, options);
}

Result<HealthResponseWire> BlinkClient::Health(const std::string& tenant,
                                               CallOptions options) {
  HealthRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<HealthResponseWire>(Verb::kHealth, payload, options);
}

}  // namespace net
}  // namespace blinkml
