#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace blinkml {
namespace net {

Result<BlinkClient> BlinkClient::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("unix socket path too long: %s", path.c_str()));
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Status::IOError(
        StrFormat("connect(%s): %s", path.c_str(), ::strerror(errno)));
    ::close(fd);
    return status;
  }
  return BlinkClient(fd);
}

Result<BlinkClient> BlinkClient::ConnectTcp(const std::string& host,
                                            int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad host address: %s", host.c_str()));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", ::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Status::IOError(StrFormat(
        "connect(%s:%d): %s", host.c_str(), port, ::strerror(errno)));
    ::close(fd);
    return status;
  }
  return BlinkClient(fd);
}

BlinkClient::BlinkClient(BlinkClient&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      last_retry_after_ms_(other.last_retry_after_ms_) {
  other.fd_ = -1;
}

BlinkClient& BlinkClient::operator=(BlinkClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    last_retry_after_ms_ = other.last_retry_after_ms_;
    other.fd_ = -1;
  }
  return *this;
}

BlinkClient::~BlinkClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlinkClient::Call(Verb verb, const WireWriter& payload,
                         CallOptions options,
                         std::vector<std::uint8_t>* body) {
  last_retry_after_ms_ = 0;
  if (fd_ < 0) return Status::IOError("client is not connected");

  FrameHeader header;
  header.verb = verb;
  header.request_id = next_request_id_++;
  header.priority = options.priority;
  header.deadline_ms = options.deadline_ms;
  BLINKML_RETURN_NOT_OK(WriteFrame(fd_, header, payload.bytes().data(),
                                   payload.bytes().size()));

  Frame response;
  BLINKML_RETURN_NOT_OK(ReadFrame(fd_, &response));
  if (response.header.request_id != header.request_id) {
    return Status::IOError(StrFormat(
        "response id %llu does not match request id %llu (stream "
        "desynchronized)",
        static_cast<unsigned long long>(response.header.request_id),
        static_cast<unsigned long long>(header.request_id)));
  }

  WireReader reader(response.payload.data(), response.payload.size());
  ResponseEnvelope envelope;
  BLINKML_RETURN_NOT_OK(Decode(&reader, &envelope));
  if (envelope.status != WireStatus::kOk) {
    last_retry_after_ms_ = envelope.retry_after_ms;
    return StatusFromWire(envelope.status, envelope.message);
  }
  body->assign(response.payload.end() -
                   static_cast<std::ptrdiff_t>(reader.remaining()),
               response.payload.end());
  return Status::OK();
}

template <typename Response>
Result<Response> BlinkClient::TypedCall(Verb verb, const WireWriter& payload,
                                        CallOptions options) {
  std::vector<std::uint8_t> body;
  BLINKML_RETURN_NOT_OK(Call(verb, payload, options, &body));
  WireReader reader(body.data(), body.size());
  Response response;
  BLINKML_RETURN_NOT_OK(Decode(&reader, &response));
  return response;
}

Result<RegisterDatasetResponse> BlinkClient::RegisterDataset(
    const RegisterDatasetRequest& request, CallOptions options) {
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<RegisterDatasetResponse>(Verb::kRegisterDataset, payload,
                                            options);
}

Result<TrainResponseWire> BlinkClient::Train(const TrainRequestWire& request,
                                             CallOptions options) {
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<TrainResponseWire>(Verb::kTrain, payload, options);
}

Result<SearchResponseWire> BlinkClient::Search(
    const SearchRequestWire& request, CallOptions options) {
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<SearchResponseWire>(Verb::kSearch, payload, options);
}

Result<PredictResponseWire> BlinkClient::Predict(
    const PredictRequestWire& request, CallOptions options) {
  WireWriter payload;
  BLINKML_RETURN_NOT_OK(Encode(request, &payload));
  return TypedCall<PredictResponseWire>(Verb::kPredict, payload, options);
}

Result<StatsResponseWire> BlinkClient::Stats(const std::string& tenant,
                                             CallOptions options) {
  StatsRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<StatsResponseWire>(Verb::kStats, payload, options);
}

Result<EvictIdleResponseWire> BlinkClient::EvictIdle(
    const std::string& tenant, CallOptions options) {
  EvictIdleRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<EvictIdleResponseWire>(Verb::kEvictIdle, payload, options);
}

Result<MetricsResponseWire> BlinkClient::Metrics(const std::string& tenant,
                                                 CallOptions options) {
  MetricsRequestWire request;
  request.tenant = tenant;
  WireWriter payload;
  Encode(request, &payload);
  return TypedCall<MetricsResponseWire>(Verb::kMetrics, payload, options);
}

}  // namespace net
}  // namespace blinkml
