// Per-tenant admission control for the networked serving front.
//
// Two independent quotas per tenant, both checked at enqueue time (before
// a job consumes a queue slot or a runner thread):
//
//  * request rate — a token bucket (requests_per_second refill, burst
//    capacity). An empty bucket rejects with kRateLimited and a
//    retry-after hint equal to the time until the next token;
//  * bytes — outstanding request payload bytes (queued + executing, i.e.
//    admitted and not yet released) PLUS the tenant's resident charge.
//    The resident charge is wired to the real accounting the serving
//    layer already keeps: the server charges Dataset::MemoryBytes for
//    every dataset a tenant registers (the same figure SessionManager's
//    byte-budget LRU uses), so a tenant that parks gigabytes of data
//    cannot also queue unbounded work. Rejections use kOverQuota with a
//    configurable retry-after hint.
//
// Admission never blocks: the client is told to back off instead of
// holding a connection slot (the retry-after hint rides the response
// envelope). Time is injected as a microsecond clock so tests drive the
// bucket deterministically.

#ifndef BLINKML_NET_QUOTAS_H_
#define BLINKML_NET_QUOTAS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/protocol.h"

namespace blinkml {
namespace net {

struct TenantQuotaOptions {
  /// Token-bucket refill rate; 0 = unlimited (no rate check).
  double requests_per_second = 0.0;
  /// Bucket capacity (maximum burst). Clamped to >= 1 when rate-limited.
  double burst = 8.0;
  /// Cap on outstanding payload bytes + resident charge; 0 = unlimited.
  std::uint64_t max_outstanding_bytes = 0;
  /// Retry-after hint for kOverQuota rejections (bytes free at an
  /// unpredictable time, unlike the bucket's computable refill).
  std::uint32_t over_quota_retry_ms = 100;
};

struct AdmissionDecision {
  /// kOk, kRateLimited, or kOverQuota.
  WireStatus status = WireStatus::kOk;
  std::uint32_t retry_after_ms = 0;
  std::string message;

  bool admitted() const { return status == WireStatus::kOk; }
};

class TenantQuotas {
 public:
  /// Monotonic microsecond clock (injectable for tests; defaults to
  /// steady_clock).
  using ClockMicros = std::function<std::uint64_t()>;

  explicit TenantQuotas(TenantQuotaOptions defaults = {},
                        ClockMicros clock = {});

  TenantQuotas(const TenantQuotas&) = delete;
  TenantQuotas& operator=(const TenantQuotas&) = delete;

  /// Per-tenant override of the default options (takes effect on the
  /// tenant's next admission; the bucket refills under the new rate).
  void SetTenantOptions(const std::string& tenant,
                        TenantQuotaOptions options);

  /// Admission check for one request of `payload_bytes`. On kOk the bytes
  /// are charged as outstanding until Release(); on rejection nothing is
  /// charged (and no token is consumed by an over-bytes rejection).
  AdmissionDecision Admit(const std::string& tenant,
                          std::uint64_t payload_bytes);

  /// Returns an admitted request's payload bytes (response written or
  /// request rejected later in the pipeline).
  void Release(const std::string& tenant, std::uint64_t payload_bytes);

  /// Adjusts the tenant's resident charge (registered dataset bytes);
  /// negative deltas floor at zero.
  void ChargeResident(const std::string& tenant, std::int64_t delta);

  /// Pre-checks that `bytes` of ADDITIONAL resident charge would fit
  /// under the tenant's byte quota (outstanding + resident + bytes <=
  /// cap). Nothing is charged and no rate token is consumed — callers
  /// charge the materialized figure via ChargeResident once it exists.
  /// Rejects with kOverQuota; always admits when the quota is unlimited.
  AdmissionDecision CheckResident(const std::string& tenant,
                                  std::uint64_t bytes) const;

  std::uint64_t OutstandingBytes(const std::string& tenant) const;
  std::uint64_t ResidentBytes(const std::string& tenant) const;

 private:
  struct TenantState {
    TenantQuotaOptions options;
    bool has_options = false;  // false = use defaults_
    double tokens = 0.0;
    std::uint64_t last_refill_micros = 0;
    bool bucket_started = false;
    std::uint64_t outstanding_bytes = 0;
    std::uint64_t resident_bytes = 0;
  };

  const TenantQuotaOptions defaults_;
  const ClockMicros clock_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, TenantState> tenants_;
};

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_QUOTAS_H_
