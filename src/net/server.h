// BlinkServer: the networked serving front over SessionManager.
//
// Promotes the in-process serving layer (serve/session_manager.h) to an
// actual service: a TCP or Unix-domain listener speaking the framed wire
// protocol (net/protocol.h), one IO thread multiplexing accept + reads
// over poll(), a priority job queue with per-request deadlines
// (net/job_queue.h), per-tenant admission control (net/quotas.h), and a
// small set of runner threads that execute admitted jobs against the
// SessionManager's async API and write the responses.
//
// Request path:
//   IO thread: parse frame -> version/verb checks -> peek tenant ->
//              quota admission -> enqueue (priority + absolute deadline)
//   runner:    deadline check -> decode payload -> execute verb ->
//              response frame (status envelope + body)
//
// Failure containment: every malformed input is answered with an error
// frame and NEVER kills the server loop. Bad version, unknown verb, and
// payload decode errors keep the connection alive; only unsynchronizable
// framing corruption (bad magic, payload above the cap) closes that one
// connection — the listener and every other connection are unaffected.
// Expired-deadline jobs are rejected with kDeadlineExceeded before
// execution; over-quota requests are rejected at enqueue with a
// retry-after hint. Neither disturbs jobs already running.
//
// Transparency: the service adds scheduling, never arithmetic. A job
// executed through the socket returns results BITWISE IDENTICAL to the
// same SessionManager call in-process, at any server thread count — the
// wire codecs ship doubles as IEEE-754 bit patterns or 17-digit text
// (models/serialization.h), both exact (tests/net_test.cc holds this at
// 1/2/8 runner threads).
//
// Writes from runner threads interleave with the IO thread's error
// frames on the same socket; a per-connection write lock plus
// frame-at-a-time writes keep frames atomic. Connection fds are
// non-blocking (one IO thread polls the reads), so a response that
// overruns the free send-buffer space polls for POLLOUT and resumes
// (protocol.cc WriteAll); a client that never drains its socket stalls
// one runner for at most the write-stall timeout before that one
// connection is dropped — never the listener or other connections.
//
// Observability (obs/trace.h, obs/metrics.h): a request's spans start at
// ADMISSION, not at the socket read — pre-admission work (frame parse,
// version/verb checks, tenant peek, quota check) is queue-position-
// dependent bookkeeping measured only by the stats counters. HandleFrame
// stamps the job at enqueue; the runner's first act on pop is to close
// the "queue_wait" span (enqueue -> pop) and feed the
// net_queue_wait_seconds histogram, then ExecuteJob installs the
// request's TraceContext (request_id/tenant/verb from the frame header)
// and opens the verb span, which everything below — SessionManager
// submit, pipeline phases, kernel scopes — nests under and tags with the
// same request_id. Rejected frames (version, verb, decode, quota, rate,
// deadline, queue-full) never open spans; they only bump
// net_rejected_total{reason=...}. The resilience-layer failure paths
// (shed, connection cap, idle reap, write stall, injected faults) add a
// zero-duration "fault"-category trace event on top of their counters —
// cheap enough for cold paths and it puts failures on the same timeline
// as the request spans. Server-scoped metrics live in the
// manager's registry (SessionManager::metrics()); the Metrics verb
// returns that snapshot concatenated with the process-global registry.

#ifndef BLINKML_NET_SERVER_H_
#define BLINKML_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/codec.h"
#include "net/job_queue.h"
#include "net/protocol.h"
#include "net/quotas.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"

namespace blinkml {
namespace net {

struct ServerOptions {
  /// Non-empty: listen on this Unix-domain socket path (an existing file
  /// at the path is replaced). Empty: listen on TCP host:port.
  std::string unix_path;
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Runner threads executing admitted jobs (each blocks on the
  /// SessionManager future it submitted; size the manager's
  /// max_concurrent_jobs accordingly).
  int runner_threads = 2;
  /// Bound on queued (admitted, not yet running) jobs; pushes beyond it
  /// are rejected with kQueueFull. 0 = unbounded.
  std::size_t max_queued_jobs = 1024;
  /// Default per-tenant quotas (override per tenant via quotas()).
  TenantQuotaOptions default_quota;
  /// Hard cap on the estimated size of any single RegisterDataset
  /// (EstimateWireDatasetBytes, checked before anything is materialized
  /// and independent of tenant quotas — it protects the server even from
  /// tenants with unlimited byte quotas). 0 = unlimited.
  std::uint64_t max_dataset_bytes = 1ull << 30;
  int listen_backlog = 64;
  /// Cap on concurrently open connections. A connection accepted past the
  /// cap gets one structured kOverloaded error frame (with a retry-after
  /// hint) and is closed before it can send anything. 0 = unlimited.
  int max_connections = 0;
  /// Load-shed high-water mark: while the queue holds at least this many
  /// jobs, new requests are rejected before enqueue with kOverloaded and
  /// a shed_retry_ms hint (cheaper than admitting work the queue will
  /// only age out, and it keeps rejection latency flat under overload).
  /// 0 = off.
  std::size_t shed_queue_depth = 0;
  /// Retry-after hint on shed/connection-cap rejections.
  std::uint32_t shed_retry_ms = 50;
  /// Connections with no traffic and no in-flight jobs for this long are
  /// reaped by the IO loop (poll timeout is derived from the nearest
  /// deadline, so reaping needs no extra thread). 0 = never.
  int idle_timeout_ms = 0;
  /// How long a response write blocked on a full send buffer waits for
  /// the peer to drain before the connection is dropped
  /// (protocol.h WriteOptions; stalls count net_write_stalls_total).
  int write_stall_timeout_ms = kDefaultWriteStallTimeoutMs;
};

class BlinkServer {
 public:
  /// The manager must outlive the server.
  BlinkServer(SessionManager* manager, ServerOptions options);

  /// Stops and joins (drains queued jobs first).
  ~BlinkServer();

  BlinkServer(const BlinkServer&) = delete;
  BlinkServer& operator=(const BlinkServer&) = delete;

  /// Binds the listener and starts the IO + runner threads.
  Status Start();

  /// Idempotent. Stops accepting, drains the job queue (every admitted
  /// job runs or expires, every response is written), joins all threads,
  /// closes every connection.
  void Stop();

  /// The bound TCP port (after Start; 0 for Unix listeners).
  int port() const { return port_; }

  const ServerOptions& options() const { return options_; }

  /// Admission control (set per-tenant overrides before or while
  /// serving).
  TenantQuotas& quotas() { return quotas_; }

  ServerStatsWire stats() const;

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    const int fd;
    /// Unparsed received bytes (IO thread only).
    std::vector<std::uint8_t> in;
    /// Serializes whole-frame writes (IO thread error frames vs runner
    /// responses).
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    /// Last read/write on this connection (steady-clock ms; atomic so the
    /// IO thread's idle reaper can read against runner-thread writes).
    std::atomic<std::int64_t> last_activity_ms{0};
    /// Admitted-but-unanswered jobs. The idle reaper never closes a
    /// connection that is only "idle" because its job is still running.
    std::atomic<int> inflight{0};
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void IoLoop();
  void RunnerLoop();

  /// Parses every complete frame out of conn->in; returns false when the
  /// connection must close (framing corruption).
  bool DrainConnectionBuffer(const ConnPtr& conn);

  /// Admission + enqueue (IO thread).
  void HandleFrame(const ConnPtr& conn, const FrameHeader& header,
                   std::vector<std::uint8_t> payload);

  /// Decode + execute + respond (runner thread). Installs the request's
  /// TraceContext and verb span for the duration of the call.
  void ExecuteJob(const ConnPtr& conn, const FrameHeader& header,
                  const std::string& tenant,
                  const std::vector<std::uint8_t>& payload);

  /// Bumps net_rejected_total{reason=...} in the manager's registry
  /// (`reason` must be a string literal). Rejections are cold paths; the
  /// registry lookup cost is irrelevant there.
  void NoteRejected(const char* reason);

  /// Failure-path observability added with the resilience layer: every
  /// NEW failure path (shed, connection cap, idle reap, write stall,
  /// injected fault) gets a zero-duration trace event under cat "fault"
  /// in addition to its counter. (Pre-existing rejections stay
  /// counter-only; see the header comment.) `name` must be a string
  /// literal.
  void RecordFailureEvent(const char* name);
  /// Injected-fault bookkeeping: net_faults_injected_total{point=...} +
  /// a failure trace event.
  void NoteFault(const char* point);

  /// Answers a Health probe inline on the IO thread (no quota charge, no
  /// queue hop — probes must work while the server sheds or drains).
  void HandleHealth(const ConnPtr& conn, const FrameHeader& header);

  void SendResponse(const ConnPtr& conn, std::uint64_t request_id, Verb verb,
                    const ResponseEnvelope& envelope,
                    const WireWriter* body);
  void SendError(const ConnPtr& conn, std::uint64_t request_id, Verb verb,
                 WireStatus status, const std::string& message,
                 std::uint32_t retry_after_ms = 0);

  // Verb bodies: decode the payload, run, fill `body`; the returned
  // envelope carries any failure.
  ResponseEnvelope RunRegisterDataset(const std::uint8_t* payload,
                                      std::size_t size, WireWriter* body);
  ResponseEnvelope RunTrain(const std::uint8_t* payload, std::size_t size,
                            WireWriter* body);
  ResponseEnvelope RunSearch(const std::uint8_t* payload, std::size_t size,
                             WireWriter* body);
  ResponseEnvelope RunPredict(const std::uint8_t* payload, std::size_t size,
                              WireWriter* body);
  ResponseEnvelope RunStats(WireWriter* body);
  ResponseEnvelope RunEvictIdle(WireWriter* body);
  ResponseEnvelope RunMetrics(WireWriter* body);

  SessionManager* const manager_;
  const ServerOptions options_;

  TenantQuotas quotas_;
  JobQueue queue_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// IO-thread-owned connection table (fd -> connection).
  std::unordered_map<int, ConnPtr> connections_;
  std::atomic<int> open_connections_{0};

  std::thread io_thread_;
  std::vector<std::thread> runners_;

  mutable std::mutex stats_mu_;
  ServerStatsWire stats_;

  /// Wire registrations by dataset name, for idempotent retries: a client
  /// whose RegisterDataset response was lost to a connection fault
  /// re-sends the request, and an identical re-registration must answer
  /// kOk (with the original byte charge) instead of "already registered".
  /// The mutex also serializes RunRegisterDataset end to end —
  /// registration is rare, and coarse serialization keeps the
  /// check-materialize-register-charge sequence atomic.
  std::mutex register_mu_;
  std::unordered_map<std::string, std::pair<RegisterDatasetRequest,
                                            std::uint64_t>>
      registered_;

  // Hot-path metrics in the manager's registry, resolved once here
  // (pointers are stable; see obs/metrics.h).
  obs::Histogram* const h_queue_wait_;
  obs::Gauge* const g_net_queued_jobs_;
  obs::Gauge* const g_net_open_connections_;
};

}  // namespace net
}  // namespace blinkml

#endif  // BLINKML_NET_SERVER_H_
