#include "net/protocol.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/string_util.h"

namespace blinkml {
namespace net {

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kError: return "Error";
    case Verb::kRegisterDataset: return "RegisterDataset";
    case Verb::kTrain: return "Train";
    case Verb::kSearch: return "Search";
    case Verb::kPredict: return "Predict";
    case Verb::kStats: return "Stats";
    case Verb::kEvictIdle: return "EvictIdle";
    case Verb::kMetrics: return "Metrics";
    case Verb::kHealth: return "Health";
  }
  return "Unknown";
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kInvalidArgument: return "InvalidArgument";
    case WireStatus::kNotFound: return "NotFound";
    case WireStatus::kIOError: return "IOError";
    case WireStatus::kNotConverged: return "NotConverged";
    case WireStatus::kInfeasible: return "Infeasible";
    case WireStatus::kInternal: return "Internal";
    case WireStatus::kMalformedFrame: return "MalformedFrame";
    case WireStatus::kVersionMismatch: return "VersionMismatch";
    case WireStatus::kUnknownVerb: return "UnknownVerb";
    case WireStatus::kDecodeError: return "DecodeError";
    case WireStatus::kDeadlineExceeded: return "DeadlineExceeded";
    case WireStatus::kRateLimited: return "RateLimited";
    case WireStatus::kOverQuota: return "OverQuota";
    case WireStatus::kQueueFull: return "QueueFull";
    case WireStatus::kShuttingDown: return "ShuttingDown";
    case WireStatus::kOverloaded: return "Overloaded";
    case WireStatus::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

bool IsRetryableWireStatus(WireStatus status) {
  switch (status) {
    case WireStatus::kDeadlineExceeded:
    case WireStatus::kRateLimited:
    case WireStatus::kOverQuota:
    case WireStatus::kQueueFull:
    case WireStatus::kShuttingDown:
    case WireStatus::kOverloaded:
    case WireStatus::kUnavailable:
      return true;
    default:
      return false;
  }
}

WireStatus WireStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return WireStatus::kOk;
    case StatusCode::kInvalidArgument: return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound: return WireStatus::kNotFound;
    case StatusCode::kIOError: return WireStatus::kIOError;
    case StatusCode::kNotConverged: return WireStatus::kNotConverged;
    case StatusCode::kInfeasible: return WireStatus::kInfeasible;
    case StatusCode::kInternal: return WireStatus::kInternal;
    case StatusCode::kUnavailable: return WireStatus::kUnavailable;
  }
  return WireStatus::kInternal;
}

Status StatusFromWire(WireStatus status, const std::string& message) {
  switch (status) {
    case WireStatus::kOk: return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kNotFound: return Status::NotFound(message);
    case WireStatus::kIOError: return Status::IOError(message);
    case WireStatus::kNotConverged: return Status::NotConverged(message);
    case WireStatus::kInfeasible: return Status::Infeasible(message);
    case WireStatus::kInternal: return Status::Internal(message);
    // Protocol errors: the peer rejected the bytes we sent.
    case WireStatus::kMalformedFrame:
    case WireStatus::kVersionMismatch:
    case WireStatus::kUnknownVerb:
    case WireStatus::kDecodeError:
      return Status::InvalidArgument(std::string(WireStatusName(status)) +
                                     ": " + message);
    // Scheduling / admission rejections: retryable by design, so they
    // come back as kUnavailable (the retryable client category).
    case WireStatus::kDeadlineExceeded:
    case WireStatus::kRateLimited:
    case WireStatus::kOverQuota:
    case WireStatus::kQueueFull:
    case WireStatus::kShuttingDown:
    case WireStatus::kOverloaded:
    case WireStatus::kUnavailable:
      return Status::Unavailable(std::string(WireStatusName(status)) + ": " +
                                 message);
  }
  return Status::Internal(message);
}

namespace {

void PutU16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64(std::uint8_t* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t GetU16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t GetU64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(GetU32(in)) |
         (static_cast<std::uint64_t>(GetU32(in + 4)) << 32);
}

}  // namespace

void EncodeFrameHeader(const FrameHeader& header, std::uint8_t* out) {
  PutU32(out, kWireMagic);
  PutU16(out + 4, header.version);
  PutU16(out + 6, static_cast<std::uint16_t>(header.verb));
  PutU64(out + 8, header.request_id);
  PutU32(out + 16, static_cast<std::uint32_t>(header.priority));
  PutU32(out + 20, header.deadline_ms);
  PutU32(out + 24, header.payload_len);
}

Status DecodeFrameHeader(const std::uint8_t* data, FrameHeader* out) {
  if (GetU32(data) != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  out->version = GetU16(data + 4);
  out->verb = static_cast<Verb>(GetU16(data + 6));
  out->request_id = GetU64(data + 8);
  out->priority = static_cast<std::int32_t>(GetU32(data + 16));
  out->deadline_ms = GetU32(data + 20);
  out->payload_len = GetU32(data + 24);
  if (out->payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %u-byte cap",
                  out->payload_len, kMaxPayloadBytes));
  }
  return Status::OK();
}

void WireWriter::U16(std::uint16_t v) {
  std::uint8_t b[2];
  PutU16(b, v);
  buf_.insert(buf_.end(), b, b + 2);
}

void WireWriter::U32(std::uint32_t v) {
  std::uint8_t b[4];
  PutU32(b, v);
  buf_.insert(buf_.end(), b, b + 4);
}

void WireWriter::U64(std::uint64_t v) {
  std::uint8_t b[8];
  PutU64(b, v);
  buf_.insert(buf_.end(), b, b + 8);
}

void WireWriter::F64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::Bytes(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void WireWriter::Doubles(const double* data, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) F64(data[i]);
}

bool WireReader::Need(std::size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t WireReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t WireReader::U16() {
  if (!Need(2)) return 0;
  const std::uint16_t v = GetU16(data_ + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::U32() {
  if (!Need(4)) return 0;
  const std::uint32_t v = GetU32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::U64() {
  if (!Need(8)) return 0;
  const std::uint64_t v = GetU64(data_ + pos_);
  pos_ += 8;
  return v;
}

double WireReader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const std::uint32_t len = U32();
  if (!Need(len)) return std::string();
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

void WireReader::Doubles(std::size_t count, std::vector<double>* out) {
  // Guard the resize: a corrupted count must not allocate gigabytes
  // before the bounds check fails. Divide instead of multiplying —
  // count * 8 can wrap for adversarial counts and slip past Need().
  if (failed_ || count > remaining() / sizeof(double)) {
    failed_ = true;
    return;
  }
  out->resize(count);
  for (std::size_t i = 0; i < count; ++i) (*out)[i] = F64();
}

namespace {

/// A write blocked on a full send buffer waits `stall_timeout_ms` for
/// the peer to drain before the connection is declared dead. Multi-MB
/// responses routinely exceed the kernel's socket buffers, so EAGAIN is
/// normal operation, not an error — but a peer that never reads must not
/// wedge a writer forever. *stalled reports whether a failure was that
/// timeout (as opposed to an ordinary peer-gone error).
Status WriteAll(int fd, const std::uint8_t* data, std::size_t size,
                int stall_timeout_ms, bool* stalled) {
  std::size_t done = 0;
  while (done < size) {
    // send + MSG_NOSIGNAL, not write: a peer that closed mid-response
    // must surface as EPIPE, not a process-killing SIGPIPE (the fds here
    // are always sockets).
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The server's connection fds are non-blocking (one IO thread
        // polls the reads); a response larger than the free send-buffer
        // space must wait for the peer to drain, not fail mid-frame.
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, stall_timeout_ms);
        if (ready > 0) continue;  // writable again (or error: send reports)
        if (ready < 0 && errno == EINTR) continue;
        if (ready == 0) {
          if (stalled != nullptr) *stalled = true;
          return Status::IOError(StrFormat(
              "send: peer did not drain its socket within %d ms",
              stall_timeout_ms));
        }
        return Status::IOError(
            StrFormat("poll(POLLOUT): %s", std::strerror(errno)));
      }
      return Status::IOError(StrFormat("send: %s", std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) return Status::IOError("connection closed by peer");
    done += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const FrameHeader& header,
                  const std::uint8_t* payload, std::size_t payload_len,
                  const WriteOptions& options, bool* stalled) {
  if (stalled != nullptr) *stalled = false;
  // One buffer, one write: a frame must never interleave with another
  // writer's frame on the same connection (the server's per-connection
  // write lock relies on frame-at-a-time writes).
  std::vector<std::uint8_t> buf(kFrameHeaderBytes + payload_len);
  FrameHeader h = header;
  h.payload_len = static_cast<std::uint32_t>(payload_len);
  EncodeFrameHeader(h, buf.data());
  if (payload_len > 0) {
    std::memcpy(buf.data() + kFrameHeaderBytes, payload, payload_len);
  }
  const int timeout = options.stall_timeout_ms > 0
                          ? options.stall_timeout_ms
                          : kDefaultWriteStallTimeoutMs;
  return WriteAll(fd, buf.data(), buf.size(), timeout, stalled);
}

Status ReadFrame(int fd, Frame* out) {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  BLINKML_RETURN_NOT_OK(ReadAll(fd, header_bytes, kFrameHeaderBytes));
  BLINKML_RETURN_NOT_OK(DecodeFrameHeader(header_bytes, &out->header));
  out->payload.resize(out->header.payload_len);
  if (out->header.payload_len > 0) {
    BLINKML_RETURN_NOT_OK(
        ReadAll(fd, out->payload.data(), out->payload.size()));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace blinkml
