// Descriptive statistics over samples of doubles: means, variances,
// quantiles, and a streaming accumulator. Used by the accuracy estimator
// (empirical quantiles of sampled model differences, paper Lemma 2) and the
// experiment harnesses (mean / 5th / 95th percentile reporting).

#ifndef BLINKML_UTIL_STATS_H_
#define BLINKML_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace blinkml {

/// Arithmetic mean; checks the sample is non-empty.
double Mean(const std::vector<double>& xs);

/// Unbiased (n-1) sample variance; returns 0 for samples of size < 2.
double Variance(const std::vector<double>& xs);

/// Square root of Variance().
double StdDev(const std::vector<double>& xs);

/// Empirical quantile with linear interpolation between order statistics
/// (type-7, the NumPy default). `q` must be in [0, 1].
double Quantile(std::vector<double> xs, double q);

/// Quantile without interpolation: the smallest order statistic x_(m) such
/// that at least ceil(q * n) observations are <= x_(m). This is the
/// *conservative* quantile used by the accuracy estimator: the returned
/// value is never smaller than the interpolated quantile.
double UpperOrderStatistic(std::vector<double> xs, double q);

/// Nearest-rank percentile (p in [0, 100], clamped): the ceil(p/100 * n)-th
/// order statistic, 1-based. Unlike Quantile/UpperOrderStatistic this is
/// total on empty input (returns 0) — it is the latency-reporting
/// percentile shared by the bench harnesses and the obs histogram
/// summaries, where an empty sample is "no data yet", not a bug.
double Percentile(std::vector<double> values, double p);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace blinkml

#endif  // BLINKML_UTIL_STATS_H_
