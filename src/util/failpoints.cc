#include "util/failpoints.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

namespace blinkml {
namespace fail {

std::atomic<int> g_armed_point_count{0};

struct Failpoints::Impl {
  struct PointState {
    FaultSchedule schedule;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  mutable std::mutex mu;
  std::map<std::string, PointState> points;
};

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Impl& Failpoints::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

void Failpoints::Arm(const std::string& point, const FaultSchedule& schedule) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto [it, inserted] = state.points.try_emplace(point);
  it->second = Impl::PointState{};
  it->second.schedule = schedule;
  if (inserted) g_armed_point_count.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::Disarm(const std::string& point) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.points.erase(point) > 0) {
    g_armed_point_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  g_armed_point_count.fetch_sub(static_cast<int>(state.points.size()),
                                std::memory_order_relaxed);
  state.points.clear();
}

bool Failpoints::Evaluate(const char* point, FaultAction* action) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.points.find(point);
  if (it == state.points.end()) return false;
  Impl::PointState& p = it->second;
  const FaultSchedule& s = p.schedule;
  const std::uint64_t hit = ++p.hits;
  if (p.fires >= s.max_fires) return false;
  if (hit < s.start_hit) return false;
  const std::uint64_t every = s.every == 0 ? 1 : s.every;
  if ((hit - s.start_hit) % every != 0) return false;
  ++p.fires;
  *action = s.action;
  // A fired kExit never returns: it IS the crash (see failpoints.h). Skip
  // atexit handlers and buffers on purpose — a real crash flushes nothing.
  if (action->kind == FaultKind::kExit) {
    ::_exit(static_cast<int>(action->arg));
  }
  return true;
}

std::uint64_t Failpoints::Hits(const std::string& point) const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.points.find(point);
  return it == state.points.end() ? 0 : it->second.hits;
}

std::uint64_t Failpoints::Fires(const std::string& point) const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.points.find(point);
  return it == state.points.end() ? 0 : it->second.fires;
}

std::uint64_t Failpoints::TotalFires() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::uint64_t total = 0;
  for (const auto& [name, p] : state.points) total += p.fires;
  return total;
}

std::vector<std::string> Failpoints::ArmedPoints() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.points.size());
  for (const auto& [name, p] : state.points) names.push_back(name);
  return names;
}

namespace {

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

Status ParseAction(const std::string& text, FaultAction* out) {
  const std::size_t colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);
  std::uint64_t value = 0;
  if (kind == "err") {
    out->kind = FaultKind::kError;
    if (!arg.empty()) {
      if (!ParseU64(arg, &value)) {
        return Status::InvalidArgument("bad errno in failpoint action: " +
                                       text);
      }
      out->error_code = static_cast<int>(value);
    }
    return Status::OK();
  }
  if (kind == "exit") {
    out->kind = FaultKind::kExit;
    out->arg = 137;  // the conventional SIGKILL-style exit code
    if (!arg.empty()) {
      if (!ParseU64(arg, &value)) {
        return Status::InvalidArgument("bad exit code in failpoint action: " +
                                       text);
      }
      out->arg = value;
    }
    return Status::OK();
  }
  if (kind == "partial" || kind == "delay") {
    if (!ParseU64(arg, &value)) {
      return Status::InvalidArgument("failpoint action needs a numeric arg: " +
                                     text);
    }
    out->kind = kind == "partial" ? FaultKind::kPartial : FaultKind::kDelay;
    out->arg = value;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint action: " + text);
}

Status ParseSchedule(const std::string& text, FaultSchedule* out) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string part = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = part.find(':');
    std::uint64_t value = 0;
    if (colon == std::string::npos ||
        !ParseU64(part.substr(colon + 1), &value)) {
      return Status::InvalidArgument("bad failpoint schedule part: " + part);
    }
    const std::string key = part.substr(0, colon);
    if (key == "nth") {
      out->start_hit = value;
      out->max_fires = 1;
    } else if (key == "start") {
      out->start_hit = value;
    } else if (key == "every") {
      out->every = value;
    } else if (key == "limit") {
      out->max_fires = value;
    } else {
      return Status::InvalidArgument("unknown failpoint schedule key: " +
                                     part);
    }
  }
  if (out->start_hit == 0 || out->every == 0) {
    return Status::InvalidArgument(
        "failpoint start/every must be positive: " + text);
  }
  return Status::OK();
}

}  // namespace

Status Failpoints::ArmFromSpec(const std::string& spec) {
  std::vector<std::pair<std::string, FaultSchedule>> parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint clause (want name=action): " +
                                     clause);
    }
    const std::string name = clause.substr(0, eq);
    const std::string rest = clause.substr(eq + 1);
    const std::size_t at = rest.find('@');
    FaultSchedule schedule;
    BLINKML_RETURN_NOT_OK(ParseAction(rest.substr(0, at), &schedule.action));
    if (at != std::string::npos) {
      BLINKML_RETURN_NOT_OK(
          ParseSchedule(rest.substr(at + 1), &schedule));
    }
    parsed.emplace_back(name, schedule);
  }
  // All-or-nothing: nothing armed until the whole spec parsed.
  for (const auto& [name, schedule] : parsed) Arm(name, schedule);
  return Status::OK();
}

namespace {

/// Arms schedules from BLINKML_FAILPOINTS at process start, so CI chaos
/// jobs can inject faults under unmodified binaries. Tests that arm
/// their own schedules call DisarmAll() first and win.
struct EnvArmer {
  EnvArmer() {
    const char* spec = std::getenv("BLINKML_FAILPOINTS");
    if (spec == nullptr || spec[0] == '\0') return;
    const Status status = Failpoints::Global().ArmFromSpec(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "BLINKML_FAILPOINTS ignored: %s\n",
                   status.ToString().c_str());
    }
  }
};
const EnvArmer g_env_armer;

}  // namespace

}  // namespace fail
}  // namespace blinkml
