#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace blinkml {

double Mean(const std::vector<double>& xs) {
  BLINKML_CHECK_MSG(!xs.empty(), "Mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::vector<double> xs, double q) {
  BLINKML_CHECK_MSG(!xs.empty(), "Quantile of empty sample");
  BLINKML_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile level outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double UpperOrderStatistic(std::vector<double> xs, double q) {
  BLINKML_CHECK_MSG(!xs.empty(), "UpperOrderStatistic of empty sample");
  BLINKML_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile level outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > xs.size()) rank = xs.size();
  return xs[rank - 1];
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: ceil(p/100 * N), 1-based.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  BLINKML_CHECK_MSG(count_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  BLINKML_CHECK_MSG(count_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  BLINKML_CHECK_MSG(count_ > 0, "max of empty RunningStats");
  return max_;
}

}  // namespace blinkml
