// Precondition/invariant checking macros.
//
// BLINKML_CHECK* throw blinkml::CheckError (a std::logic_error) instead of
// aborting so that tests can assert on violations and library users get a
// catchable error with a useful message. Checks are always on (they guard
// API misuse, not hot inner loops; hot loops use BLINKML_DCHECK which
// compiles out under NDEBUG).

#ifndef BLINKML_UTIL_CHECK_H_
#define BLINKML_UTIL_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace blinkml {

/// Error thrown by BLINKML_CHECK* macros on violated pre/post-conditions.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr,
                                   const std::string& message) {
  std::ostringstream os;
  os << "Check failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) os << " — " << message;
  throw CheckError(os.str());
}

}  // namespace internal
}  // namespace blinkml

#define BLINKML_CHECK(expr)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::blinkml::internal::CheckFail(__FILE__, __LINE__, #expr, ""); \
    }                                                                \
  } while (false)

#define BLINKML_CHECK_MSG(expr, msg)                                    \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::blinkml::internal::CheckFail(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                   \
  } while (false)

#define BLINKML_CHECK_OP(op, a, b)                                          \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      std::ostringstream os_;                                               \
      os_ << "lhs=" << (a) << " rhs=" << (b);                               \
      ::blinkml::internal::CheckFail(__FILE__, __LINE__, #a " " #op " " #b, \
                                     os_.str());                            \
    }                                                                       \
  } while (false)

#define BLINKML_CHECK_EQ(a, b) BLINKML_CHECK_OP(==, a, b)
#define BLINKML_CHECK_NE(a, b) BLINKML_CHECK_OP(!=, a, b)
#define BLINKML_CHECK_LT(a, b) BLINKML_CHECK_OP(<, a, b)
#define BLINKML_CHECK_LE(a, b) BLINKML_CHECK_OP(<=, a, b)
#define BLINKML_CHECK_GT(a, b) BLINKML_CHECK_OP(>, a, b)
#define BLINKML_CHECK_GE(a, b) BLINKML_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define BLINKML_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define BLINKML_DCHECK(expr) BLINKML_CHECK(expr)
#endif

#endif  // BLINKML_UTIL_CHECK_H_
