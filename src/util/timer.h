// Wall-clock timing utilities used for the experiment harnesses and the
// Coordinator's per-phase timing breakdown (paper Figure 8a).

#ifndef BLINKML_UTIL_TIMER_H_
#define BLINKML_UTIL_TIMER_H_

#include <chrono>

namespace blinkml {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed wall time (seconds) to *sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.Seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace blinkml

#endif  // BLINKML_UTIL_TIMER_H_
