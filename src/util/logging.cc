#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace blinkml {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename for readability.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string s = stream_.str();
    std::fprintf(stderr, "%s\n", s.c_str());
  }
}

}  // namespace internal
}  // namespace blinkml
