#include "util/status.h"

namespace blinkml {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace blinkml
