#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace blinkml {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view s) {
  const char* ws = " \t\r\n";
  const std::size_t begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  const std::size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.0fus", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2fms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2fs", seconds);
  const int mins = static_cast<int>(seconds / 60.0);
  const int secs = static_cast<int>(std::lround(seconds - 60.0 * mins));
  return StrFormat("%dm%02ds", mins, secs);
}

std::string WithThousands(long long n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return (n < 0 ? "-" : "") + out;
}

}  // namespace blinkml
