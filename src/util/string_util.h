// Small string helpers shared by loaders and harness table printers.

#ifndef BLINKML_UTIL_STRING_UTIL_H_
#define BLINKML_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace blinkml {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats seconds compactly: "734us", "1.53ms", "2.4s", "3m12s".
std::string HumanSeconds(double seconds);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string WithThousands(long long n);

}  // namespace blinkml

#endif  // BLINKML_UTIL_STRING_UTIL_H_
