// Status / Result<T>: Arrow-style error propagation for expected failures
// (bad input files, infeasible contracts, non-convergence). Programming
// errors use BLINKML_CHECK (check.h) instead.

#ifndef BLINKML_UTIL_STATUS_H_
#define BLINKML_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace blinkml {

/// Machine-readable failure category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kNotConverged,
  kInfeasible,
  kInternal,
  /// Transient failure: the operation did not run (or did not complete
  /// observably) and is safe to retry — overload shedding, injected
  /// faults, draining servers.
  kUnavailable,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail in expected ways.
///
/// Cheap to copy in the OK case (no allocation); carries a message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or a Status explaining why there is none.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // arrow::Result, so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    BLINKML_CHECK_MSG(!status_.ok(),
                      "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The value; checks ok().
  const T& value() const& {
    BLINKML_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    BLINKML_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    BLINKML_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace blinkml

/// Propagate a non-OK Status to the caller.
#define BLINKML_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::blinkml::Status st_ = (expr);            \
    if (!st_.ok()) return st_;                 \
  } while (false)

#define BLINKML_CONCAT_IMPL_(a, b) a##b
#define BLINKML_CONCAT_(a, b) BLINKML_CONCAT_IMPL_(a, b)

#define BLINKML_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

/// Assign the value of a Result to `lhs`, or propagate its Status.
#define BLINKML_ASSIGN_OR_RETURN(lhs, rexpr) \
  BLINKML_ASSIGN_OR_RETURN_IMPL_(            \
      BLINKML_CONCAT_(result_, __LINE__), lhs, rexpr)

#endif  // BLINKML_UTIL_STATUS_H_
