// Minimal leveled logging to stderr.
//
// Usage: BLINKML_LOG(INFO) << "trained in " << secs << "s";
// The global level is controlled with SetLogLevel (default WARNING so the
// library is quiet unless asked; benches/examples raise it to INFO).

#ifndef BLINKML_UTIL_LOGGING_H_
#define BLINKML_UTIL_LOGGING_H_

#include <sstream>

namespace blinkml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace blinkml

#define BLINKML_LOG_DEBUG \
  ::blinkml::internal::LogMessage(::blinkml::LogLevel::kDebug, __FILE__, __LINE__)
#define BLINKML_LOG_INFO \
  ::blinkml::internal::LogMessage(::blinkml::LogLevel::kInfo, __FILE__, __LINE__)
#define BLINKML_LOG_WARNING \
  ::blinkml::internal::LogMessage(::blinkml::LogLevel::kWarning, __FILE__, __LINE__)
#define BLINKML_LOG_ERROR \
  ::blinkml::internal::LogMessage(::blinkml::LogLevel::kError, __FILE__, __LINE__)

#define BLINKML_LOG(severity) BLINKML_LOG_##severity

#endif  // BLINKML_UTIL_LOGGING_H_
