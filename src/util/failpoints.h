// Deterministic fault injection for resilience testing.
//
// A failpoint is a named hook compiled into a production code path
// (e.g. "net.read_frame" in the server's IO loop). Tests and chaos
// harnesses arm a schedule per point; the code at the site asks "should
// this hit fail, and how?" and simulates the requested fault. Schedules
// are driven purely by per-point hit counters — no wall clock, no
// randomness — so a given schedule against a given request sequence
// injects the same faults on every run, which is what lets the chaos
// tests assert bitwise-identical surviving responses.
//
//   fail::FaultAction action;
//   if (BLINKML_FAILPOINT("net.read_frame", &action)) {
//     switch (action.kind) { ... simulate the fault ... }
//   }
//
// Disarmed cost: one relaxed atomic load of a process-global armed
// counter (no lock, no map lookup, no string work) — cheap enough to
// leave in release builds, which is the point: the exact binary that
// serves traffic is the one the chaos tests exercise.
//
// Schedules fire on deterministic hit indices: the first fire at hit
// `start_hit` (1-based), then every `every`-th hit after that, for at
// most `max_fires` fires. The spec-string grammar (ArmFromSpec, also
// read from the BLINKML_FAILPOINTS environment variable at process
// start so CI can arm a schedule under an unmodified test binary):
//
//   spec   := point '=' action ('@' sched)? (';' spec)?
//   action := 'err' (':' errno)?   -- fail with an error (code optional)
//           | 'partial' ':' N      -- cap the IO at N bytes
//           | 'delay' ':' MS       -- sleep MS milliseconds, then proceed
//           | 'exit' (':' CODE)?   -- _exit(CODE) the process (default 137),
//                                     simulating a crash AT the hit site
//                                     (worker-kill chaos; the evaluating
//                                     process never returns)
//   sched  := part (',' part)*
//   part   := 'nth' ':' N          -- fire exactly once, on the Nth hit
//           | 'start' ':' N        -- first fire at hit N (default 1)
//           | 'every' ':' K        -- then every Kth hit (default 1)
//           | 'limit' ':' M        -- at most M fires (default unlimited)
//
//   e.g. BLINKML_FAILPOINTS='net.write_frame=err@every:5;manager.train=delay:2@nth:3'
//
// This lives in util (below obs in the module graph), so injection
// sites — not this file — own the fault metrics and trace events.

#ifndef BLINKML_UTIL_FAILPOINTS_H_
#define BLINKML_UTIL_FAILPOINTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace blinkml {
namespace fail {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Fail the operation. `error_code` carries an errno-style code for IO
  /// sites; non-IO sites just fail.
  kError,
  /// Cap the IO at `arg` bytes (short read/write), exercising the
  /// partial-IO resumption paths.
  kPartial,
  /// Sleep `arg` milliseconds, then proceed normally (stall simulation;
  /// the only action that touches time, and only when it fires).
  kDelay,
  /// _exit(arg) the process the moment the schedule fires — a
  /// deterministic crash at the hit site. Handled inside Evaluate (the
  /// site never sees it), so ANY failpoint can double as a kill switch:
  /// a supervisor arming "manager.search=exit:137@nth:2" in a worker's
  /// environment gets a worker that dies mid-way through its second
  /// Search, every run, at every thread count.
  kExit,
};

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  /// errno for kError at IO sites (default EIO).
  int error_code = 5;
  /// Byte cap for kPartial; milliseconds for kDelay.
  std::uint64_t arg = 0;
};

struct FaultSchedule {
  /// 1-based hit index of the first fire.
  std::uint64_t start_hit = 1;
  /// After the first fire, fire again every `every`-th hit.
  std::uint64_t every = 1;
  /// Total fires before the point goes quiet (it keeps counting hits).
  std::uint64_t max_fires = UINT64_MAX;
  FaultAction action;
};

/// Process-global failpoint registry. All methods are thread-safe; the
/// armed-or-not fast path is lock-free (see ShouldEvaluate below).
class Failpoints {
 public:
  static Failpoints& Global();

  /// Arms (or re-arms, resetting counters for) one point.
  void Arm(const std::string& point, const FaultSchedule& schedule);
  /// Arms every point in a spec string (grammar above). On a parse error
  /// nothing is armed and the error names the offending clause.
  Status ArmFromSpec(const std::string& spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Counts a hit against `point`; returns true (filling *action) when
  /// the schedule says this hit fires. Unarmed points return false
  /// without counting. Call through BLINKML_FAILPOINT, not directly —
  /// the macro adds the disarmed fast path.
  bool Evaluate(const char* point, FaultAction* action);

  /// Observability for tests and bench harnesses.
  std::uint64_t Hits(const std::string& point) const;
  std::uint64_t Fires(const std::string& point) const;
  /// Sum of Fires over every armed point.
  std::uint64_t TotalFires() const;
  /// Names of currently armed points (sorted).
  std::vector<std::string> ArmedPoints() const;

  Failpoints(const Failpoints&) = delete;
  Failpoints& operator=(const Failpoints&) = delete;

 private:
  Failpoints() = default;
  struct Impl;
  Impl& impl() const;
};

/// Nonzero iff any point is armed anywhere in the process. Defined in
/// failpoints.cc; constant-initialized, safe to read from any static
/// initialization context.
extern std::atomic<int> g_armed_point_count;

/// True when the schedule for `point` says this hit fires; fills
/// *action. One relaxed load when nothing is armed process-wide.
inline bool MaybeFail(const char* point, FaultAction* action) {
  if (g_armed_point_count.load(std::memory_order_relaxed) == 0) return false;
  return Failpoints::Global().Evaluate(point, action);
}

}  // namespace fail
}  // namespace blinkml

/// The canonical injection-site form (reads as a predicate at the site).
#define BLINKML_FAILPOINT(point, action_ptr) \
  ::blinkml::fail::MaybeFail((point), (action_ptr))

#endif  // BLINKML_UTIL_FAILPOINTS_H_
