#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace blinkml {

namespace {

using Index = Dataset::Index;

StatsOptions StatsOptionsFrom(const BlinkConfig& config) {
  StatsOptions options;
  options.method = config.stats_method;
  options.stats_sample_size = config.stats_sample_size;
  options.max_rank = config.sampler_max_rank;
  options.reuse_feature_gram = config.reuse_feature_gram;
  return options;
}

}  // namespace

PhaseTimings& PhaseTimings::operator+=(const PhaseTimings& other) {
  initial_train += other.initial_train;
  statistics += other.statistics;
  size_estimation += other.size_estimation;
  final_train += other.final_train;
  accuracy_estimation += other.accuracy_estimation;
  total += other.total;
  return *this;
}

Result<TrainingPrefix> ComputeTrainingPrefix(const Dataset& data,
                                             const BlinkConfig& config,
                                             SampleCache* cache) {
  if (data.num_rows() < 10) {
    return Status::InvalidArgument("dataset too small");
  }
  RuntimeScope runtime_scope(config.runtime);
  WallTimer timer;
  Rng rng(config.seed);
  TrainingPrefix prefix;

  // Holdout split. The holdout estimates v; everything else is the pool
  // the "full model" would be trained on. Only the holdout and the (much
  // smaller) training samples are materialized; the pool stays an index
  // view into `data` so no O(N) copy is ever made.
  Index holdout_size = std::min<Index>(config.holdout_size,
                                       data.num_rows() / 5);
  holdout_size = std::max<Index>(holdout_size, 1);
  Rng split_rng = rng.Split();
  std::vector<Index> perm = RandomPermutation(data.num_rows(), &split_rng);
  std::vector<Index> holdout_rows(perm.begin(), perm.begin() + holdout_size);
  auto pool_rows = std::make_shared<std::vector<Index>>(
      perm.begin() + holdout_size, perm.end());
  auto materialize_holdout = [&] { return data.TakeRows(holdout_rows); };
  bool holdout_retained = false;
  prefix.holdout =
      cache ? cache->GetOrCreate({SampleCache::Purpose::kHoldout, config.seed,
                                  holdout_size},
                                 materialize_holdout, &holdout_retained)
            : std::make_shared<const Dataset>(materialize_holdout());
  if (!holdout_retained) prefix.uncached_bytes += prefix.holdout->MemoryBytes();
  prefix.full_n = static_cast<Index>(pool_rows->size());
  prefix.pool_rows = std::move(pool_rows);

  // Initial sample D_0. On a cache hit sample_rng goes unused; it is a
  // dead-end stream (nothing downstream reads it), so skipping the draws
  // leaves every later stream untouched.
  const Index n0 = std::min<Index>(config.initial_sample_size, prefix.full_n);
  Rng sample_rng = rng.Split();
  auto materialize_d0 = [&] {
    std::vector<Index> chosen =
        SampleWithoutReplacement(prefix.full_n, n0, &sample_rng);
    for (Index& c : chosen) {
      c = (*prefix.pool_rows)[static_cast<std::size_t>(c)];
    }
    return data.TakeRows(chosen);
  };
  bool d0_retained = false;
  prefix.initial_sample =
      cache ? cache->GetOrCreate(
                  {SampleCache::Purpose::kInitialSample, config.seed, n0},
                  materialize_d0, &d0_retained)
            : std::make_shared<const Dataset>(materialize_d0());
  if (!d0_retained) {
    prefix.uncached_bytes += prefix.initial_sample->MemoryBytes();
  }
  prefix.n0 = n0;
  prefix.seconds = timer.Seconds();
  return prefix;
}

TrainingPipeline::TrainingPipeline(
    const ModelSpec& spec, const Dataset& data,
    const ApproximationContract& contract, const BlinkConfig& config,
    std::shared_ptr<const TrainingPrefix> prefix, SampleCache* cache,
    FeatureGramCache* gram_cache)
    : spec_(&spec),
      data_(&data),
      contract_(contract),
      config_(&config),
      prefix_(std::move(prefix)),
      cache_(cache),
      gram_cache_(gram_cache),
      rng_(config.seed) {
  // The prefix consumed the first two streams of the master Rng (holdout
  // split, D_0 draw); discard them so the stage streams below line up with
  // the monolithic path bitwise.
  rng_.Split();
  rng_.Split();
  out_.contract = contract_;
  out_.full_size = prefix_->full_n;
  out_.holdout = prefix_->holdout;
}

Status TrainingPipeline::TrainInitial() {
  BLINKML_CHECK_MSG(next_stage_ == 0, "TrainInitial called out of order");
  next_stage_ = 1;
  RuntimeScope runtime_scope(config_->runtime);
  const ModelTrainer trainer(config_->trainer);
  {
    obs::PhaseScope t("initial_train", &out_.timings.initial_train);
    BLINKML_ASSIGN_OR_RETURN(m0_,
                             trainer.Train(*spec_, *prefix_->initial_sample));
  }
  out_.initial_iterations = m0_.iterations;
  return Status::OK();
}

Status TrainingPipeline::ComputeInitialStatistics() {
  BLINKML_CHECK_MSG(next_stage_ == 1,
                    "ComputeInitialStatistics called out of order");
  next_stage_ = 2;
  RuntimeScope runtime_scope(config_->runtime);
  Rng stats_rng = rng_.Split();
  StatsOptions options = StatsOptionsFrom(*config_);
  if (gram_cache_ != nullptr) {
    // D_0 and the stats sub-sample drawn from it (the stream split above)
    // are pure functions of (seed, n_0), so every candidate on this seed
    // shares one feature Gram.
    options.gram_cache = gram_cache_;
    options.gram_key = {FeatureGramCache::Phase::kInitialStats,
                        config_->seed, prefix_->initial_sample->num_rows()};
  }
  {
    obs::PhaseScope t("statistics", &out_.timings.statistics);
    BLINKML_ASSIGN_OR_RETURN(
        sampler_,
        ComputeStatistics(*spec_, m0_.theta, *prefix_->initial_sample,
                          options, &stats_rng));
  }
  return Status::OK();
}

Status TrainingPipeline::EstimateInitialAccuracy() {
  BLINKML_CHECK_MSG(next_stage_ == 2,
                    "EstimateInitialAccuracy called out of order");
  next_stage_ = 3;
  RuntimeScope runtime_scope(config_->runtime);
  AccuracyOptions acc_options;
  acc_options.num_samples = config_->accuracy_samples;
  acc_options.delta = contract_.delta;
  Rng acc_rng = rng_.Split();
  AccuracyEstimate eps0;
  {
    obs::PhaseScope t("accuracy_estimation", &out_.timings.accuracy_estimation);
    BLINKML_ASSIGN_OR_RETURN(
        eps0, EstimateAccuracy(*spec_, m0_.theta, prefix_->n0, prefix_->full_n,
                               sampler_, *prefix_->holdout, acc_options,
                               &acc_rng));
  }
  out_.initial_epsilon = eps0.epsilon;
  accuracy_estimated_ = true;
  return Status::OK();
}

bool TrainingPipeline::initial_meets_contract() const {
  return accuracy_estimated_ && out_.initial_epsilon <= contract_.epsilon;
}

Status TrainingPipeline::EstimateMinimumSampleSize() {
  BLINKML_CHECK_MSG(next_stage_ == 3,
                    "EstimateMinimumSampleSize called out of order");
  next_stage_ = 4;
  RuntimeScope runtime_scope(config_->runtime);
  SampleSizeOptions size_options;
  size_options.num_samples = config_->size_samples;
  size_options.epsilon = contract_.epsilon;
  size_options.delta = contract_.delta;
  size_options.min_n = std::max<Index>(config_->min_sample_size, prefix_->n0);
  Rng size_rng = rng_.Split();
  {
    obs::PhaseScope t("size_estimation", &out_.timings.size_estimation);
    BLINKML_ASSIGN_OR_RETURN(
        out_.size_estimate,
        EstimateSampleSize(*spec_, m0_.theta, prefix_->n0, prefix_->full_n,
                           sampler_, *prefix_->holdout, size_options,
                           &size_rng));
  }
  BLINKML_LOG(INFO) << spec_->name() << ": estimated minimum sample size "
                    << out_.size_estimate.sample_size << " of "
                    << prefix_->full_n;
  return Status::OK();
}

void TrainingPipeline::QuantizeEstimatedSampleSize() {
  BLINKML_CHECK_MSG(next_stage_ == 4,
                    "QuantizeEstimatedSampleSize must follow "
                    "EstimateMinimumSampleSize");
  const Index raw = out_.size_estimate.sample_size;
  if (raw >= prefix_->full_n || raw <= 0) return;
  // Smallest grid point round(2^(k/4)) >= raw. A pure function of raw, so
  // equal (or near-equal) estimates on any thread/schedule land on the
  // same grid point.
  const double ratio = std::pow(2.0, 0.25);
  double g = 1.0;
  while (static_cast<Index>(std::llround(g)) < raw) g *= ratio;
  const Index quantized =
      std::min<Index>(static_cast<Index>(std::llround(g)), prefix_->full_n);
  if (quantized <= raw) return;  // already on the grid
  out_.size_estimate.quantized_from = raw;
  out_.size_estimate.sample_size = quantized;
}

Status TrainingPipeline::TrainFinal() {
  BLINKML_CHECK_MSG(next_stage_ == 4, "TrainFinal called out of order");
  next_stage_ = 5;
  RuntimeScope runtime_scope(config_->runtime);
  const Index n = out_.size_estimate.sample_size;
  const Index full_n = prefix_->full_n;

  // Final sample. The rows are a pure function of (seed, n) — the master
  // Rng splits the same number of streams on every path to this stage — so
  // the cache shares one materialization across candidates that land on
  // the same n. On a hit final_rng is a dead-end stream, like sample_rng
  // in the prefix.
  Rng final_rng = rng_.Split();
  std::shared_ptr<const Dataset> dn;
  if (n >= full_n) {
    auto materialize = [&] { return data_->TakeRows(*prefix_->pool_rows); };
    dn = cache_ ? cache_->GetOrCreate(
                      {SampleCache::Purpose::kFullPool, config_->seed, full_n},
                      materialize)
                : std::make_shared<const Dataset>(materialize());
  } else {
    auto materialize = [&] {
      std::vector<Index> chosen =
          SampleWithoutReplacement(full_n, n, &final_rng);
      for (Index& c : chosen) {
        c = (*prefix_->pool_rows)[static_cast<std::size_t>(c)];
      }
      return data_->TakeRows(chosen);
    };
    dn = cache_ ? cache_->GetOrCreate(
                      {SampleCache::Purpose::kFinalSample, config_->seed, n},
                      materialize)
                : std::make_shared<const Dataset>(materialize());
  }

  TrainerOptions final_options = config_->trainer;
  if (config_->warm_start_final && !spec_->has_closed_form_trainer()) {
    final_options.warm_start = m0_.theta;
  }
  const ModelTrainer final_trainer(final_options);
  {
    obs::PhaseScope t("final_train", &out_.timings.final_train);
    BLINKML_ASSIGN_OR_RETURN(mn_, final_trainer.Train(*spec_, *dn));
  }
  out_.final_iterations = mn_.iterations;
  final_n_ = dn->num_rows();
  out_.sample_size = final_n_;

  // Re-estimate the returned model's bound with statistics at theta_n.
  if (config_->reestimate_final_accuracy && final_n_ < full_n) {
    Rng restats_rng = rng_.Split();
    Rng reacc_rng = rng_.Split();
    StatsOptions restats_options = StatsOptionsFrom(*config_);
    if (gram_cache_ != nullptr) {
      // The final sample's rows are a pure function of (seed, n) — the
      // same property the kFinalSample entry of the sample cache relies
      // on — and the stats sub-sample stream is at a fixed split offset,
      // so candidates landing on the same n share this Gram too.
      restats_options.gram_cache = gram_cache_;
      restats_options.gram_key = {FeatureGramCache::Phase::kFinalStats,
                                  config_->seed, dn->num_rows()};
    }
    ParamSampler final_sampler = ParamSampler::FromDenseFactor(Matrix());
    {
      obs::PhaseScope t("statistics", &out_.timings.statistics);
      BLINKML_ASSIGN_OR_RETURN(
          final_sampler,
          ComputeStatistics(*spec_, mn_.theta, *dn, restats_options,
                            &restats_rng));
    }
    AccuracyOptions acc_options;
    acc_options.num_samples = config_->accuracy_samples;
    acc_options.delta = contract_.delta;
    AccuracyEstimate eps_final;
    {
      obs::PhaseScope t("accuracy_estimation", &out_.timings.accuracy_estimation);
      BLINKML_ASSIGN_OR_RETURN(
          eps_final,
          EstimateAccuracy(*spec_, mn_.theta, final_n_, full_n, final_sampler,
                           *prefix_->holdout, acc_options, &reacc_rng));
    }
    out_.final_epsilon = eps_final.epsilon;
  } else {
    out_.final_epsilon = (final_n_ >= full_n) ? 0.0 : contract_.epsilon;
  }
  final_trained_ = true;
  return Status::OK();
}

ApproxResult TrainingPipeline::Finish() {
  BLINKML_CHECK_MSG(accuracy_estimated_,
                    "Finish requires at least EstimateInitialAccuracy");
  if (final_trained_) {
    out_.model = std::move(mn_);
    out_.used_initial_only = false;
  } else {
    if (initial_meets_contract()) {
      BLINKML_LOG(INFO) << spec_->name()
                        << ": initial model meets the contract (eps0="
                        << out_.initial_epsilon << " <= " << contract_.epsilon
                        << ")";
    }
    out_.model = std::move(m0_);
    out_.sample_size = prefix_->n0;
    out_.final_epsilon = out_.initial_epsilon;
    out_.used_initial_only = true;
  }
  out_.contract_satisfied = out_.final_epsilon <= contract_.epsilon;
  out_.timings.total = total_timer_.Seconds();
  return std::move(out_);
}

Result<ApproxResult> TrainingPipeline::RunAll() {
  BLINKML_RETURN_NOT_OK(TrainInitial());
  BLINKML_RETURN_NOT_OK(ComputeInitialStatistics());
  BLINKML_RETURN_NOT_OK(EstimateInitialAccuracy());
  if (!initial_meets_contract()) {
    BLINKML_RETURN_NOT_OK(EstimateMinimumSampleSize());
    BLINKML_RETURN_NOT_OK(TrainFinal());
  }
  return Finish();
}

}  // namespace blinkml
