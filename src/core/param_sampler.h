// Parameter sampler: draws from N(0, s^2 * H^-1 J H^-1) without ever
// materializing the covariance (paper Section 4.3).
//
// The covariance is represented by a factor W with W W^T = H^-1 J H^-1.
// Two backends:
//  * dense  — W is an explicit p x r matrix (used by the dense statistics
//    methods, and by ObservedFisher when materializing W is cheap);
//  * gram   — W = Q^T * V_scaled is applied lazily (Q is the per-example
//    gradient matrix, sparse or dense; V_scaled is n_s x r). This is the
//    memory- and time-efficient path for high-dimensional models: a draw
//    costs O(n_s r + nnz(Q)) and p x r storage is never allocated. For a
//    single-output GLM the sparse Q is diag(c) X and ALIASES the sample's
//    CSR structure (linalg/sparse.h): holding the factor here costs only
//    the nnz values, not a second copy of the index arrays.
//
// Both paper optimizations are built in:
//  * sampling by scaling — Draw takes the sqrt(1/n - 1/N) scale as an
//    argument, so one unscaled draw serves every candidate n;
//  * common random numbers — DrawWithZ reuses a caller-held z across
//    candidate sample sizes (the binary search's monotonicity then holds
//    path-by-path).

#ifndef BLINKML_CORE_PARAM_SAMPLER_H_
#define BLINKML_CORE_PARAM_SAMPLER_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/vector.h"
#include "random/rng.h"
#include "util/status.h"

namespace blinkml {

class ParamSampler {
 public:
  /// Explicit factor: W is p x r with W W^T = Sigma.
  static ParamSampler FromDenseFactor(Matrix w);

  /// Lazy Gram-form factor: W = Q^T * v_scaled, Q dense n_s x p.
  static ParamSampler FromGramFactor(Matrix q, Matrix v_scaled);

  /// Lazy Gram-form factor with sparse Q.
  static ParamSampler FromSparseGramFactor(SparseMatrix q, Matrix v_scaled);

  /// Parameter dimension p.
  Matrix::Index dim() const;

  /// Factor rank r (the z dimension).
  Matrix::Index rank() const;

  /// Draws scale * W z with fresh z ~ N(0, I_r).
  Vector Draw(double scale, Rng* rng) const;

  /// Draws scale * W z for a caller-supplied z (CRN support).
  Vector DrawWithZ(double scale, const Vector& z) const;

  /// Batched draws: row b of `zs` (B x r) is draw b's z vector. Element
  /// [b] of the result is bitwise equal to DrawWithZ(scale, zs.row(b)) at
  /// every kernel level and thread count. Under the blocked kernels one
  /// pass over the factor (W, or V then Q) serves the whole batch via the
  /// multi-z kernels — the amortization the Monte-Carlo estimators ride;
  /// kNaive keeps the per-draw loop as the oracle.
  std::vector<Vector> DrawBatch(double scale, const Matrix& zs) const;

  /// Dense covariance W W^T for diagnostics (paper Figure 9); guarded to
  /// p <= 8192 to prevent accidental quadratic blowups.
  Result<Matrix> DenseCovariance() const;

  /// diag(W W^T): per-parameter sampler variances (paper Figure 9a).
  /// Same dimension guard as DenseCovariance for the gram backend.
  Result<Vector> VarianceDiagonal() const;

  /// Fraction of total variance dropped by rank truncation (0 when the
  /// factor is exact); recorded by the statistics computation.
  double dropped_variance_fraction() const {
    return dropped_variance_fraction_;
  }
  void set_dropped_variance_fraction(double f) {
    dropped_variance_fraction_ = f;
  }

 private:
  enum class Backend { kDense, kGram, kSparseGram };

  ParamSampler() = default;

  Backend backend_ = Backend::kDense;
  Matrix w_;               // dense backend
  Matrix q_dense_;         // gram backend: n_s x p
  SparseMatrix q_sparse_;  // sparse-gram backend
  Matrix v_scaled_;        // gram backends: n_s x r
  double dropped_variance_fraction_ = 0.0;
};

}  // namespace blinkml

#endif  // BLINKML_CORE_PARAM_SAMPLER_H_
