// BlinkML Coordinator (paper Section 2.3 / Figure 2).
//
// Workflow:
//   1. split a holdout off the training set; sample D_0 (n_0 rows) from
//      the remaining pool and train the initial model m_0;
//   2. compute statistics at m_0 (ObservedFisher by default) and estimate
//      m_0's accuracy bound eps_0;
//   3. if eps_0 <= eps: return m_0;
//   4. otherwise consult the Sample Size Estimator for the minimum n, train
//      the final model m_n on a fresh size-n sample (warm-started from m_0),
//      and return it.
// At most two models are ever trained. Per-phase wall-clock timings are
// recorded (they are the subject of paper Figure 8a).
//
// The run body lives in core/pipeline.h as composable stages (prefix +
// TrainingPipeline); Coordinator is the one-shot driver. Multi-model
// drivers that amortize the prefix live in session/training_session.h.

#ifndef BLINKML_CORE_COORDINATOR_H_
#define BLINKML_CORE_COORDINATOR_H_

#include "core/contract.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "models/model_spec.h"
#include "util/status.h"

namespace blinkml {

class Coordinator {
 public:
  explicit Coordinator(BlinkConfig config = {});

  /// Trains an approximate model of `spec` on `data` under `contract`.
  ///
  /// Fails with InvalidArgument for malformed contracts/datasets and
  /// propagates training/statistics failures. Requires the dataset to
  /// have at least a few times the holdout size rows.
  Result<ApproxResult> Train(const ModelSpec& spec, const Dataset& data,
                             const ApproximationContract& contract) const;

  const BlinkConfig& config() const { return config_; }

 private:
  BlinkConfig config_;
};

}  // namespace blinkml

#endif  // BLINKML_CORE_COORDINATOR_H_
