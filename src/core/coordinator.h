// BlinkML Coordinator (paper Section 2.3 / Figure 2).
//
// Workflow:
//   1. split a holdout off the training set; sample D_0 (n_0 rows) from
//      the remaining pool and train the initial model m_0;
//   2. compute statistics at m_0 (ObservedFisher by default) and estimate
//      m_0's accuracy bound eps_0;
//   3. if eps_0 <= eps: return m_0;
//   4. otherwise consult the Sample Size Estimator for the minimum n, train
//      the final model m_n on a fresh size-n sample (warm-started from m_0),
//      and return it.
// At most two models are ever trained. Per-phase wall-clock timings are
// recorded (they are the subject of paper Figure 8a).

#ifndef BLINKML_CORE_COORDINATOR_H_
#define BLINKML_CORE_COORDINATOR_H_

#include "core/accuracy_estimator.h"
#include "core/contract.h"
#include "core/param_sampler.h"
#include "core/sample_size_estimator.h"
#include "core/statistics.h"
#include "data/dataset.h"
#include "models/model_spec.h"
#include "models/trainer.h"
#include "util/status.h"

namespace blinkml {

/// Wall-clock breakdown of one approximate-training run (paper Figure 8a).
struct PhaseTimings {
  double initial_train = 0.0;
  double statistics = 0.0;
  double size_estimation = 0.0;
  double final_train = 0.0;
  double accuracy_estimation = 0.0;
  double total = 0.0;
};

/// Everything a BlinkML training run returns.
struct ApproxResult {
  /// The approximate model (the initial model when it already met the
  /// contract, otherwise the final model).
  TrainedModel model;

  /// Rows the returned model was trained on.
  Dataset::Index sample_size = 0;

  /// Size of the training pool (the "N" of the guarantee).
  Dataset::Index full_size = 0;

  /// The contract that was requested.
  ApproximationContract contract;

  /// Accuracy bound of the initial model (eps_0).
  double initial_epsilon = 0.0;

  /// Accuracy bound of the returned model.
  double final_epsilon = 0.0;

  /// True when the initial model already satisfied the contract and was
  /// returned directly (paper Section 5.3 observes this regime).
  bool used_initial_only = false;

  /// The Sample Size Estimator's output (sample_size == 0 when the search
  /// was skipped).
  SampleSizeEstimate size_estimate;

  /// The held-out rows (not used for training) on which v was estimated;
  /// exposed so callers can evaluate generalization error consistently.
  Dataset holdout;

  PhaseTimings timings;

  /// Optimizer iterations of the initial / final training (Figure 8c).
  int initial_iterations = 0;
  int final_iterations = 0;
};

class Coordinator {
 public:
  explicit Coordinator(BlinkConfig config = {});

  /// Trains an approximate model of `spec` on `data` under `contract`.
  ///
  /// Fails with InvalidArgument for malformed contracts/datasets and
  /// propagates training/statistics failures. Requires the dataset to
  /// have at least a few times the holdout size rows.
  Result<ApproxResult> Train(const ModelSpec& spec, const Dataset& data,
                             const ApproximationContract& contract) const;

  const BlinkConfig& config() const { return config_; }

 private:
  BlinkConfig config_;
};

}  // namespace blinkml

#endif  // BLINKML_CORE_COORDINATOR_H_
