#include "core/contract.h"

#include <cmath>

#include "util/string_util.h"

namespace blinkml {

Status ValidateContract(const ApproximationContract& contract) {
  if (!std::isfinite(contract.epsilon) || contract.epsilon < 0.0) {
    return Status::InvalidArgument(
        StrFormat("epsilon must be finite and >= 0, got %g", contract.epsilon));
  }
  if (!(contract.delta > 0.0 && contract.delta < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("delta must be in (0, 1), got %g", contract.delta));
  }
  return Status::OK();
}

const char* StatsMethodName(StatsMethod method) {
  switch (method) {
    case StatsMethod::kClosedForm:
      return "ClosedForm";
    case StatsMethod::kInverseGradients:
      return "InverseGradients";
    case StatsMethod::kObservedFisher:
      return "ObservedFisher";
  }
  return "Unknown";
}

}  // namespace blinkml
