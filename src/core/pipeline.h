// Composable training pipeline (the stages of Coordinator::Train).
//
// The monolithic BlinkML run decomposes into
//   1. prefix   — holdout split + initial sample D_0 (ComputeTrainingPrefix);
//   2. stages   — initial train -> statistics -> accuracy estimate ->
//                 [size estimate -> final train -> re-estimate] (TrainingPipeline).
// The prefix depends only on (dataset, seed, holdout_size, n_0), so
// multi-model drivers (session/training_session.h) compute it once and
// inject it into many pipelines; a pipeline that receives a cached prefix
// is bitwise identical to one that recomputes it, because the prefix
// consumes exactly the first two streams split off the master Rng and the
// stages consume the rest in the order the monolithic path did.
//
// Stage methods must be called in order; drivers may stop after
// EstimateInitialAccuracy() (e.g. when a hyperparameter candidate is
// dominated) and Finish() packages whatever ran.

#ifndef BLINKML_CORE_PIPELINE_H_
#define BLINKML_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/accuracy_estimator.h"
#include "core/contract.h"
#include "core/param_sampler.h"
#include "core/sample_size_estimator.h"
#include "core/statistics.h"
#include "data/dataset.h"
#include "data/sample_cache.h"
#include "models/model_spec.h"
#include "models/trainer.h"
#include "random/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace blinkml {

/// Wall-clock breakdown of one approximate-training run (paper Figure 8a).
struct PhaseTimings {
  double initial_train = 0.0;
  double statistics = 0.0;
  double size_estimation = 0.0;
  double final_train = 0.0;
  double accuracy_estimation = 0.0;
  double total = 0.0;

  /// Accumulates another run's phases (session-level aggregation).
  PhaseTimings& operator+=(const PhaseTimings& other);
};

/// Everything a BlinkML training run returns.
struct ApproxResult {
  /// The approximate model (the initial model when it already met the
  /// contract, otherwise the final model).
  TrainedModel model;

  /// Rows the returned model was trained on.
  Dataset::Index sample_size = 0;

  /// Size of the training pool (the "N" of the guarantee).
  Dataset::Index full_size = 0;

  /// The contract that was requested.
  ApproximationContract contract;

  /// Accuracy bound of the initial model (eps_0).
  double initial_epsilon = 0.0;

  /// Accuracy bound of the returned model.
  double final_epsilon = 0.0;

  /// True when the returned model is the initial model m_0 — either
  /// because it already satisfied the contract (paper Section 5.3
  /// observes this regime) or because a driver stopped the pipeline
  /// after m_0 (dominance pruning / budget clipping; the driver's result
  /// flags say which). `contract_satisfied` distinguishes the cases.
  bool used_initial_only = false;

  /// True when final_epsilon meets the requested contract epsilon.
  bool contract_satisfied = false;

  /// The Sample Size Estimator's output (sample_size == 0 when the search
  /// was skipped).
  SampleSizeEstimate size_estimate;

  /// The held-out rows (not used for training) on which v was estimated;
  /// shared by reference so that session runs over one dataset never
  /// re-copy it per candidate.
  std::shared_ptr<const Dataset> holdout;

  PhaseTimings timings;

  /// Optimizer iterations of the initial / final training (Figure 8c).
  int initial_iterations = 0;
  int final_iterations = 0;
};

/// The artifacts every run on the same (dataset, seed, holdout_size, n_0)
/// shares: the holdout split and the initial sample D_0. Datasets are held
/// by shared_ptr so sessions hand one materialization to many concurrent
/// pipelines.
struct TrainingPrefix {
  std::shared_ptr<const Dataset> holdout;
  std::shared_ptr<const std::vector<Dataset::Index>> pool_rows;
  Dataset::Index full_n = 0;

  /// D_0 and its size n_0.
  std::shared_ptr<const Dataset> initial_sample;
  Dataset::Index n0 = 0;

  /// Wall-clock cost of computing the prefix (the part a session
  /// amortizes).
  double seconds = 0.0;

  /// Bytes of prefix datasets (holdout / D_0) this prefix retains that NO
  /// SampleCache accounts for — materializations the cache bypassed at
  /// its row budget, or built with no cache at all. A driver that memoizes
  /// the prefix (TrainingSession) must add these to its own byte
  /// accounting or the serving layer's eviction budget under-counts it.
  std::uint64_t uncached_bytes = 0;
};

/// Computes the holdout split and D_0, consuming the first two streams of
/// the master Rng exactly as the monolithic path did. When `cache` is
/// non-null the materialized datasets are fetched through it (kHoldout /
/// kInitialSample keyed by the config seed), so concurrent sessions share
/// one copy. Fails with InvalidArgument for datasets of fewer than 10 rows.
Result<TrainingPrefix> ComputeTrainingPrefix(const Dataset& data,
                                             const BlinkConfig& config,
                                             SampleCache* cache = nullptr);

/// One contract-bound training, decomposed. Holds pointers into the
/// caller's dataset/config/prefix; all must outlive the pipeline.
class TrainingPipeline {
 public:
  /// Positions the master Rng after the prefix's two Split() calls.
  /// `gram_cache` (optional, session-owned) shares the statistics phase's
  /// feature Gram across candidates; the statistics stages key it by
  /// (phase, seed, sample rows), which determine the stats sub-sample
  /// deterministically.
  TrainingPipeline(const ModelSpec& spec, const Dataset& data,
                   const ApproximationContract& contract,
                   const BlinkConfig& config,
                   std::shared_ptr<const TrainingPrefix> prefix,
                   SampleCache* cache = nullptr,
                   FeatureGramCache* gram_cache = nullptr);

  // --- Stages (call in order). ---

  /// Trains m_0 on D_0.
  Status TrainInitial();

  /// Builds the parameter sampler at m_0 (H^-1 J H^-1 statistics).
  Status ComputeInitialStatistics();

  /// Estimates eps_0, the accuracy bound of m_0.
  Status EstimateInitialAccuracy();

  /// True once EstimateInitialAccuracy() ran and eps_0 <= contract epsilon
  /// (the run may stop here and return m_0).
  bool initial_meets_contract() const;

  /// Runs the Sample Size Estimator for the minimum n.
  Status EstimateMinimumSampleSize();

  /// Optionally call between EstimateMinimumSampleSize() and TrainFinal():
  /// rounds the estimated n UP to the next point of a small log-grid
  /// (ratio 2^(1/4)), capped at the pool size. Candidates whose raw
  /// estimates are near-identical then land on the same (seed, final n)
  /// sample-cache and feature-Gram keys and share the final sample and
  /// the re-estimation Gram (SearchOptions::quantize_final_n). Only ever
  /// rounds up, so the contract guarantee is preserved: v(m_n, m_N) is
  /// monotone non-increasing in n (paper Theorem 2). The raw estimate is
  /// kept in size_estimate.quantized_from.
  void QuantizeEstimatedSampleSize();

  /// Trains m_n on a fresh size-n sample (warm-started from m_0) and
  /// optionally re-estimates its bound at theta_n.
  Status TrainFinal();

  /// Packages the result from whichever stages ran. The model is m_n when
  /// TrainFinal() ran, otherwise m_0. Call at most once.
  ApproxResult Finish();

  /// All stages in the monolithic order: equivalent to the original
  /// Coordinator::Train body after the prefix.
  Result<ApproxResult> RunAll();

  // --- Observers for drivers that interleave stages. ---
  const TrainedModel& initial_model() const { return m0_; }
  double initial_epsilon() const { return out_.initial_epsilon; }
  const ApproximationContract& contract() const { return contract_; }
  const Dataset& holdout() const { return *prefix_->holdout; }

 private:
  const ModelSpec* spec_;
  const Dataset* data_;
  ApproximationContract contract_;
  const BlinkConfig* config_;
  std::shared_ptr<const TrainingPrefix> prefix_;
  SampleCache* cache_;
  FeatureGramCache* gram_cache_;

  Rng rng_;
  WallTimer total_timer_;
  int next_stage_ = 0;
  bool accuracy_estimated_ = false;
  bool final_trained_ = false;

  TrainedModel m0_;
  ParamSampler sampler_ = ParamSampler::FromDenseFactor(Matrix());
  TrainedModel mn_;
  Dataset::Index final_n_ = 0;
  ApproxResult out_;
};

}  // namespace blinkml

#endif  // BLINKML_CORE_PIPELINE_H_
