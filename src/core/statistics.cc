#include "core/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/kernels.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "util/string_util.h"

namespace blinkml {

namespace {

using Index = Matrix::Index;

// InverseGradients is O(p) gradient calls and O(p^2) memory; beyond this
// it is always the wrong tool (the paper's own Figure 9b measures the
// blowup at p = 7840).
constexpr Index kInverseGradientsDimLimit = 16384;

// Dense-factor construction shared by ClosedForm and InverseGradients:
// J = H - beta I = V L V^T (clamped PSD), W = H^-1 V L^{1/2}.
Result<ParamSampler> FactorFromDenseHessian(const Matrix& h, double beta) {
  Matrix j = h;
  j.AddToDiagonal(-beta);
  BLINKML_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSym(j));
  const Index p = h.rows();
  // Scale columns of V by sqrt(max(lambda, 0)).
  Matrix v_scaled = eig.eigenvectors;
  for (Index c = 0; c < p; ++c) {
    const double s = std::sqrt(std::max(eig.eigenvalues[c], 0.0));
    for (Index r = 0; r < p; ++r) v_scaled(r, c) *= s;
  }
  Result<Cholesky> chol = Cholesky::Factor(h);
  if (!chol.ok()) {
    return Status::InvalidArgument(
        "Hessian is not positive definite: " + chol.status().ToString());
  }
  Matrix w = chol->Solve(v_scaled);
  return ParamSampler::FromDenseFactor(std::move(w));
}

Result<ParamSampler> ComputeClosedForm(const ModelSpec& spec,
                                       const Vector& theta,
                                       const Dataset& sample) {
  if (!spec.has_closed_form_hessian()) {
    return Status::InvalidArgument(spec.name() +
                                   " has no closed-form Hessian");
  }
  BLINKML_ASSIGN_OR_RETURN(Matrix h, spec.ClosedFormHessian(theta, sample));
  return FactorFromDenseHessian(h, spec.l2());
}

Result<ParamSampler> ComputeInverseGradients(const ModelSpec& spec,
                                             const Vector& theta,
                                             const Dataset& sample,
                                             const StatsOptions& options) {
  const Index p = theta.size();
  if (p > kInverseGradientsDimLimit) {
    return Status::InvalidArgument(StrFormat(
        "InverseGradients needs %lld gradient calls and O(p^2) memory; "
        "use ObservedFisher for p > %lld",
        static_cast<long long>(p),
        static_cast<long long>(kInverseGradientsDimLimit)));
  }
  const double eps = options.fd_epsilon;
  BLINKML_CHECK_GT(eps, 0.0);
  Vector g0;
  spec.Gradient(theta, sample, &g0);
  Matrix h(p, p);
  Vector perturbed = theta;
  Vector g(p);
  for (Index j = 0; j < p; ++j) {
    perturbed[j] = theta[j] + eps;
    spec.Gradient(perturbed, sample, &g);
    perturbed[j] = theta[j];
    for (Index r = 0; r < p; ++r) h(r, j) = (g[r] - g0[r]) / eps;
  }
  // Finite differences break exact symmetry; restore it.
  for (Index r = 0; r < p; ++r) {
    for (Index c = r + 1; c < p; ++c) {
      const double v = 0.5 * (h(r, c) + h(c, r));
      h(r, c) = v;
      h(c, r) = v;
    }
  }
  return FactorFromDenseHessian(h, spec.l2());
}

}  // namespace

// The blocked kernel level runs the tiled scatter/gather kernel
// (linalg/kernels.cc: column-intersection state paid once per row tile);
// kNaive keeps the per-pair sorted-column merges below — O(sum over pairs
// of overlapping nnz), which is what makes ObservedFisher practical on
// hashed/bag-of-words features either way.
Matrix SparseGradientGram(const SparseMatrix& q) {
  const bool blocked = CurrentKernelLevel() == KernelLevel::kBlocked;
  obs::SpanScope span("kernel:SparseGram", "kernel", "rows",
                      static_cast<long long>(q.rows()));
  kernels::NoteKernelDispatch("SparseGram", blocked);
  if (blocked) {
    return kernels::SparseGram(q);
  }
  const Index n = static_cast<Index>(q.rows());
  Matrix g(n, n);
  // Parallel over rows of the upper triangle; every (i, j) merge is one
  // independent dot product, so results match the serial loop bitwise. Row
  // i costs O(n - i) merges; small chunks keep the lanes balanced.
  ParallelFor(0, n, [&](Index i0, Index i1) {
    for (Index i = i0; i < i1; ++i) {
      const auto nnz_i = q.RowNnz(i);
      const auto* cols_i = q.RowCols(i);
      const auto* vals_i = q.RowValues(i);
      for (Index j = i; j < n; ++j) {
        const auto nnz_j = q.RowNnz(j);
        const auto* cols_j = q.RowCols(j);
        const auto* vals_j = q.RowValues(j);
        double s = 0.0;
        SparseMatrix::Index a = 0, b = 0;
        while (a < nnz_i && b < nnz_j) {
          if (cols_i[a] < cols_j[b]) {
            ++a;
          } else if (cols_i[a] > cols_j[b]) {
            ++b;
          } else {
            s += vals_i[a] * vals_j[b];
            ++a;
            ++b;
          }
        }
        g(i, j) = s;
        g(j, i) = s;
      }
    }
  }, kFineGrain);
  return g;
}

namespace {

// Covariance estimate from a cached candidate-independent feature Gram:
// gram(i, j) = (c_i / sqrt(n_s)) (c_j / sqrt(n_s)) gram_x(i, j). Shared by
// the sparse and dense rescale paths.
Matrix RescaledGram(const Matrix& gram_x, const Vector& coeffs,
                    double row_scale) {
  const Index n = gram_x.rows();
  // Fold the 1/sqrt(n_s) row scaling into the coefficients so the rescale
  // lands directly on the covariance estimate.
  Vector scaled = coeffs;
  scaled *= row_scale;
  Matrix gram(n, n);
  ParallelFor(0, n, [&](Index i0, Index i1) {
    for (Index i = i0; i < i1; ++i) {
      const double si = scaled[i];
      const double* src = gram_x.row_data(i);
      double* dst = gram.row_data(i);
      for (Index j = 0; j < n; ++j) dst[j] = si * scaled[j] * src[j];
    }
  });
  return gram;
}

// Small-parameter-dimension path: when p <= n_s it is cheaper to form
// J = Q^T Q (p x p) directly and eigendecompose it, yielding the dense
// factor W = V diag(sqrt(l)/(l + beta)) with W W^T = H^-1 J H^-1.
// ObservedFisher rests on the information-matrix equality J ~= Hessian.
// On an (unregularized) model that nearly interpolates its sample, the
// per-example gradients — and hence J — are numerically zero while the
// true Hessian is O(1): the equality collapses and the implied variances
// 1/lambda explode. Detect and reject rather than return garbage. (With
// L2 regularization the case is benign: variances lambda/(lambda+beta)^2
// vanish as lambda -> 0.)
Status CheckObservedInformation(double lambda_max, double beta) {
  if (lambda_max <= 0.0) {
    return Status::InvalidArgument(
        "all per-example gradients are zero; no parameter uncertainty");
  }
  if (beta == 0.0 && lambda_max < 1e-12) {
    return Status::InvalidArgument(
        "per-example gradients are numerically zero (near-exact fit with "
        "no regularization): the information-matrix equality does not "
        "hold and no finite-variance estimate exists");
  }
  return Status::OK();
}

Result<ParamSampler> ObservedFisherSmallDim(const ModelSpec& spec,
                                            const Vector& theta,
                                            const Dataset& stats_rows,
                                            const StatsOptions& options) {
  Matrix q;
  spec.PerExampleGradients(theta, stats_rows, &q);
  q *= 1.0 / std::sqrt(static_cast<double>(stats_rows.num_rows()));
  Matrix j = GramCols(q);  // p x p
  BLINKML_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSym(j));
  const Index p = j.rows();
  double lambda_max = 0.0;
  for (Index i = 0; i < p; ++i) {
    lambda_max = std::max(lambda_max, eig.eigenvalues[i]);
  }
  BLINKML_RETURN_NOT_OK(CheckObservedInformation(lambda_max, spec.l2()));
  const double floor = options.eigenvalue_floor_rel * lambda_max;
  const double beta = spec.l2();
  Matrix w(p, p);
  for (Index c = 0; c < p; ++c) {
    const double l = eig.eigenvalues[c];
    if (l <= floor) continue;  // zero column: no variance in that direction
    const double scale = std::sqrt(l) / (l + beta);
    for (Index r = 0; r < p; ++r) {
      w(r, c) = eig.eigenvectors(r, c) * scale;
    }
  }
  return ParamSampler::FromDenseFactor(std::move(w));
}

Result<ParamSampler> ComputeObservedFisher(const ModelSpec& spec,
                                           const Vector& theta,
                                           const Dataset& sample,
                                           const StatsOptions& options,
                                           Rng* rng) {
  const Index n = sample.num_rows();
  Index n_s = options.stats_sample_size;
  if (n_s <= 0 || n_s > n) n_s = n;
  const Dataset stats_rows =
      (n_s == n) ? sample : sample.SampleRows(n_s, rng);

  if (theta.size() <= n_s) {
    return ObservedFisherSmallDim(spec, theta, stats_rows, options);
  }

  const bool sparse_path =
      stats_rows.is_sparse() && spec.has_sparse_gradients();
  const double row_scale = 1.0 / std::sqrt(static_cast<double>(n_s));
  // True when the 1/sqrt(n_s) row scaling was folded into the Gram's
  // coefficients instead of the factor matrix Q (both rescale paths); the
  // sampler operator then re-applies it through V.
  bool folded_row_scale = false;

  SparseMatrix q_sparse;
  Matrix q_dense;
  Matrix gram;
  if (sparse_path) {
    if (options.reuse_feature_gram && spec.has_gradient_coeffs()) {
      // Structure-sharing path: Q = diag(c) X, so
      //   Gram(Q)(i, j) = c_i c_j Gram(X)(i, j).
      // Gram(X) is candidate-independent — pay its O(n^2 * overlap)
      // sorted merge once (per cache key when a session cache is wired
      // in) and give each candidate an O(n^2) rescale. The scaled Q
      // aliases X's CSR structure (linalg/sparse.h), so the sampler
      // factor costs only the values.
      Vector coeffs;
      spec.PerExampleGradientCoeffs(theta, stats_rows, &coeffs);
      const SparseMatrix& x = stats_rows.sparse();
      const auto factory = [&x] { return SparseGradientGram(x); };
      std::shared_ptr<const Matrix> gram_x =
          options.gram_cache
              ? options.gram_cache->GetOrCreate(options.gram_key, factory)
              : std::make_shared<const Matrix>(factory());
      // A key collision (e.g. one cache fed by configs with different
      // stats_sample_size) must fail loudly, not read out of bounds.
      BLINKML_CHECK_EQ(gram_x->rows(), n_s);
      gram = RescaledGram(*gram_x, coeffs, row_scale);
      folded_row_scale = true;
      q_sparse = x.ScaleRows(coeffs);
    } else {
      // Per-candidate merge path (multi-output specs such as max_entropy,
      // and the opt-out oracle for the rescale algebra above).
      q_sparse = spec.PerExampleGradientsSparse(theta, stats_rows);
      // Scale rows by 1/sqrt(n_s) so J = Q^T Q is the covariance estimate:
      // rebuild with scaled values (CSR values are contiguous; rescale via
      // Gram on the unscaled matrix and adjust eigenvalues instead).
      gram = SparseGradientGram(q_sparse);
      gram *= row_scale * row_scale;
      folded_row_scale = true;
    }
  } else if (options.reuse_feature_gram && spec.has_gradient_coeffs() &&
             !stats_rows.is_sparse()) {
    // Dense rescale path: the identity Gram(diag(c) X) = diag(c) Gram(X)
    // diag(c) holds for dense X too, and Gram(X) — the O(n_s^2 d) part —
    // is candidate-independent, so mid-size dense searches share it
    // through the same cache the sparse path uses.
    Vector coeffs;
    spec.PerExampleGradientCoeffs(theta, stats_rows, &coeffs);
    const Matrix& x = stats_rows.dense();
    const auto factory = [&x] { return GramRows(x); };
    std::shared_ptr<const Matrix> gram_x =
        options.gram_cache
            ? options.gram_cache->GetOrCreate(options.gram_key, factory)
            : std::make_shared<const Matrix>(factory());
    BLINKML_CHECK_EQ(gram_x->rows(), n_s);
    gram = RescaledGram(*gram_x, coeffs, row_scale);
    folded_row_scale = true;
    // The factor Q = diag(c) X carries the raw coefficients; the sampler
    // operator re-applies row_scale through V below, as the sparse path
    // does.
    q_dense = Matrix(n_s, x.cols());
    ParallelFor(0, n_s, [&](Index i0, Index i1) {
      for (Index i = i0; i < i1; ++i) {
        const double ci = coeffs[i];
        const double* src = x.row_data(i);
        double* dst = q_dense.row_data(i);
        for (Index j = 0; j < x.cols(); ++j) dst[j] = ci * src[j];
      }
    });
  } else {
    spec.PerExampleGradients(theta, stats_rows, &q_dense);
    q_dense *= row_scale;
    gram = GramRows(q_dense);
  }

  BLINKML_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSym(gram));

  // Eigenvalues ascending. Drop numerically-zero directions, weight the
  // rest by their sampler variance contribution l/(l+beta)^2, keep the
  // top max_rank.
  const double beta = spec.l2();
  const Index m = eig.eigenvalues.size();
  double lambda_max = 0.0;
  for (Index i = 0; i < m; ++i) {
    lambda_max = std::max(lambda_max, eig.eigenvalues[i]);
  }
  BLINKML_RETURN_NOT_OK(CheckObservedInformation(lambda_max, beta));
  const double floor = options.eigenvalue_floor_rel * lambda_max;
  struct Direction {
    Index index;
    double lambda;
    double contribution;  // l / (l + beta)^2
  };
  std::vector<Direction> dirs;
  dirs.reserve(static_cast<std::size_t>(m));
  double total_contribution = 0.0;
  for (Index i = 0; i < m; ++i) {
    const double l = eig.eigenvalues[i];
    if (l <= floor) continue;
    const double denom = l + beta;
    const double contribution = l / (denom * denom);
    dirs.push_back({i, l, contribution});
    total_contribution += contribution;
  }
  if (dirs.empty()) {
    return Status::InvalidArgument("gradient covariance has rank zero");
  }
  std::sort(dirs.begin(), dirs.end(), [](const Direction& a,
                                         const Direction& b) {
    return a.contribution > b.contribution;
  });
  Index rank = static_cast<Index>(dirs.size());
  if (options.max_rank > 0 && rank > options.max_rank) {
    rank = options.max_rank;
  }
  double kept_contribution = 0.0;
  for (Index i = 0; i < rank; ++i) {
    kept_contribution += dirs[static_cast<std::size_t>(i)].contribution;
  }

  // V_scaled column j = V[:, dirs[j]] / (lambda_j + beta). On the rescale
  // paths the (1/sqrt(n_s)) row scaling was folded into the eigenvalues,
  // so rescale the operator: W = (Q_raw * row_scale)^T V diag(1/(l+beta))
  // = Q_raw^T (row_scale * V diag(1/(l+beta))).
  Matrix v_scaled(m, rank);
  for (Index j = 0; j < rank; ++j) {
    const Direction& dir = dirs[static_cast<std::size_t>(j)];
    const double scale =
        (folded_row_scale ? row_scale : 1.0) / (dir.lambda + beta);
    for (Index r = 0; r < m; ++r) {
      v_scaled(r, j) = eig.eigenvectors(r, dir.index) * scale;
    }
  }

  ParamSampler sampler =
      sparse_path
          ? ParamSampler::FromSparseGramFactor(std::move(q_sparse),
                                               std::move(v_scaled))
          : ParamSampler::FromGramFactor(std::move(q_dense),
                                         std::move(v_scaled));
  double dropped = total_contribution > 0.0
                       ? 1.0 - kept_contribution / total_contribution
                       : 0.0;
  if (dropped < 1e-12) dropped = 0.0;  // snap round-off to exact zero
  sampler.set_dropped_variance_fraction(dropped);
  return sampler;
}

}  // namespace

Result<ParamSampler> ComputeStatistics(const ModelSpec& spec,
                                       const Vector& theta,
                                       const Dataset& sample,
                                       const StatsOptions& options, Rng* rng) {
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("empty sample");
  }
  if (theta.size() != spec.ParamDim(sample)) {
    return Status::InvalidArgument("theta dimension mismatch");
  }
  switch (options.method) {
    case StatsMethod::kClosedForm:
      return ComputeClosedForm(spec, theta, sample);
    case StatsMethod::kInverseGradients:
      return ComputeInverseGradients(spec, theta, sample, options);
    case StatsMethod::kObservedFisher:
      return ComputeObservedFisher(spec, theta, sample, options, rng);
  }
  return Status::Internal("unknown statistics method");
}

}  // namespace blinkml
