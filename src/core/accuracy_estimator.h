// Model Accuracy Estimator (paper Section 3): given a trained approximate
// model m_n, bounds its prediction difference v(m_n) from the (untrained)
// full model m_N with confidence 1 - delta.
//
// Monte-Carlo over the conditional distribution of Corollary 1:
//   theta_N,i = theta_n + sqrt(1/n - 1/N) * W z_i,   z_i ~ N(0, I_r),
// v_i = diff(m(theta_n), m(theta_N,i)) on the holdout, and the bound is
// the conservative empirical quantile of {v_i} (repaired Lemma 2, see
// conservative.h).

#ifndef BLINKML_CORE_ACCURACY_ESTIMATOR_H_
#define BLINKML_CORE_ACCURACY_ESTIMATOR_H_

#include "core/param_sampler.h"
#include "data/dataset.h"
#include "models/model_spec.h"
#include "random/rng.h"
#include "util/status.h"

namespace blinkml {

struct AccuracyEstimate {
  /// The bound: Pr[v(m_n) <= epsilon] >= 1 - delta.
  double epsilon = 0.0;
  /// Mean of the sampled v's (diagnostic; not a bound).
  double mean_v = 0.0;
  /// Quantile level actually used (1.0 = max of the sampled v's).
  double quantile_level = 1.0;
  /// Number of Monte-Carlo samples.
  int num_samples = 0;
};

struct AccuracyOptions {
  int num_samples = 512;  // k
  double delta = 0.05;
  /// Draw in groups of kernels::kMultiVec via ParamSampler::DrawBatch and
  /// batch score matrices, one factor pass per group instead of per draw.
  /// Each chunk's z-block is filled in the per-draw Rng stream order and
  /// the batched kernels are bitwise equal per column, so flipping this
  /// switch never changes the estimate — it is a pure speed knob (kept as
  /// the regression reference for tests and the bench).
  bool batch_draws = true;
};

/// Estimates the accuracy bound for a model with parameters `theta_n`
/// trained on n rows, relative to the full model on N rows (n <= N).
/// `sampler` must be the unscaled N(0, H^-1 J H^-1) sampler computed at
/// theta_n. Returns epsilon = 0 when n == N (the model *is* the full
/// model).
Result<AccuracyEstimate> EstimateAccuracy(
    const ModelSpec& spec, const Vector& theta_n, Dataset::Index n,
    Dataset::Index full_n, const ParamSampler& sampler,
    const Dataset& holdout, const AccuracyOptions& options, Rng* rng);

}  // namespace blinkml

#endif  // BLINKML_CORE_ACCURACY_ESTIMATOR_H_
