// Statistics computation (paper Section 3.4): builds the parameter sampler
// for N(0, H^-1 J H^-1) from a trained model, by one of three methods.
//
//  * ClosedForm — analytic H (available for linear and logistic
//    regression); J = H - beta I; exact but O(d^2) memory and O(d^3) time.
//  * InverseGradients — numeric H, one gradient evaluation per parameter
//    (finite difference of g_n along each axis); model-agnostic but costs
//    d gradient calls (paper Figure 9b shows the blowup at d = 784).
//  * ObservedFisher (default) — the information-matrix equality: J equals
//    the covariance of per-example gradients at the MLE. Only the factor
//    of J is ever formed: with Q the (1/sqrt(n_s))-scaled per-example
//    gradient matrix, the Gram matrix Q Q^T = V L V^T is eigendecomposed
//    (n_s x n_s, never p x p) and the sampler factor is the lazy operator
//    W = Q^T V diag(1/(l_i + beta)), which satisfies
//    W W^T = H^-1 J H^-1 for L2 regularization (paper Section 4.3).
//
// The ObservedFisher path never allocates O(p^2); with sparse features the
// Gram matrix costs O(n_s^2 * nnz/row) and a draw costs O(n_s r + nnz).

#ifndef BLINKML_CORE_STATISTICS_H_
#define BLINKML_CORE_STATISTICS_H_

#include <cstdint>

#include "core/contract.h"
#include "core/param_sampler.h"
#include "data/dataset.h"
#include "data/feature_gram_cache.h"
#include "models/model_spec.h"
#include "random/rng.h"
#include "util/status.h"

namespace blinkml {

struct StatsOptions {
  StatsMethod method = StatsMethod::kObservedFisher;
  /// Rows used for the ObservedFisher covariance estimate (uniform
  /// sub-sample of the training sample; 0 = use every row).
  Dataset::Index stats_sample_size = 1024;
  /// Sampler factor rank cap (0 = no cap). Directions are kept by largest
  /// variance contribution l/(l+beta)^2; the dropped fraction is recorded
  /// on the sampler.
  Matrix::Index max_rank = 512;
  /// Finite-difference step for InverseGradients (paper default 1e-6).
  double fd_epsilon = 1e-6;
  /// Gram eigenvalues below rel_floor * lambda_max are treated as zero
  /// (numerically rank-deficient directions carry no observed information).
  double eigenvalue_floor_rel = 1e-10;
  /// Structure-sharing sparse path: when the spec exposes per-example
  /// gradient coefficients (q_i = c_i x_i), compute the gradient Gram as
  /// c_i c_j * Gram(X)(i, j) — the feature Gram is candidate-independent
  /// and shareable via `gram_cache` — instead of re-merging the scaled
  /// rows per candidate. Off = the original per-candidate sorted-merge
  /// path (kept for multi-output specs and as the opt-out oracle).
  bool reuse_feature_gram = true;
  /// Cross-candidate feature-Gram cache (session-owned); nullptr = compute
  /// the feature Gram locally (the rescale algebra still applies).
  FeatureGramCache* gram_cache = nullptr;
  /// Key under which this computation's feature Gram is shared; must be
  /// set by the caller when gram_cache is non-null (the pipeline keys by
  /// phase, seed, and parent-sample size — see data/feature_gram_cache.h).
  FeatureGramCache::Key gram_key;
};

/// Gram matrix Q Q^T of a sparse (gradient) matrix, dispatching on the
/// ambient RuntimeOptions::kernel_level: the tiled scatter/gather kernel
/// (linalg/kernels.h) under kBlocked, the per-pair sorted-column merge —
/// the oracle — under kNaive. Used by every sparse ObservedFisher path;
/// public so the kernel bench/tests exercise exactly the statistics
/// phase's Gram.
Matrix SparseGradientGram(const SparseMatrix& q);

/// Builds the sampler for the unscaled distribution N(0, H^-1 J H^-1),
/// evaluated at `theta` on `sample` (the data the model was trained on).
///
/// Fails with InvalidArgument if the method is inapplicable (ClosedForm on
/// a model without an analytic Hessian; InverseGradients beyond the
/// dimension guard) and NotConverged if an eigendecomposition fails.
Result<ParamSampler> ComputeStatistics(const ModelSpec& spec,
                                       const Vector& theta,
                                       const Dataset& sample,
                                       const StatsOptions& options, Rng* rng);

}  // namespace blinkml

#endif  // BLINKML_CORE_STATISTICS_H_
