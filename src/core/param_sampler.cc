#include "core/param_sampler.h"

#include "linalg/kernels.h"
#include "runtime/runtime_options.h"

namespace blinkml {

namespace {
constexpr Matrix::Index kDenseDiagnosticsLimit = 8192;
}  // namespace

ParamSampler ParamSampler::FromDenseFactor(Matrix w) {
  ParamSampler s;
  s.backend_ = Backend::kDense;
  s.w_ = std::move(w);
  return s;
}

ParamSampler ParamSampler::FromGramFactor(Matrix q, Matrix v_scaled) {
  BLINKML_CHECK_EQ(q.rows(), v_scaled.rows());
  ParamSampler s;
  s.backend_ = Backend::kGram;
  s.q_dense_ = std::move(q);
  s.v_scaled_ = std::move(v_scaled);
  return s;
}

ParamSampler ParamSampler::FromSparseGramFactor(SparseMatrix q,
                                                Matrix v_scaled) {
  BLINKML_CHECK_EQ(q.rows(), v_scaled.rows());
  ParamSampler s;
  s.backend_ = Backend::kSparseGram;
  s.q_sparse_ = std::move(q);
  s.v_scaled_ = std::move(v_scaled);
  return s;
}

Matrix::Index ParamSampler::dim() const {
  switch (backend_) {
    case Backend::kDense:
      return w_.rows();
    case Backend::kGram:
      return q_dense_.cols();
    case Backend::kSparseGram:
      return static_cast<Matrix::Index>(q_sparse_.cols());
  }
  return 0;
}

Matrix::Index ParamSampler::rank() const {
  switch (backend_) {
    case Backend::kDense:
      return w_.cols();
    case Backend::kGram:
    case Backend::kSparseGram:
      return v_scaled_.cols();
  }
  return 0;
}

Vector ParamSampler::Draw(double scale, Rng* rng) const {
  Vector z(rank());
  rng->FillNormal(&z);
  return DrawWithZ(scale, z);
}

// The matvecs below (MatVec / MatTVec / CSR applies) dispatch on the
// ambient kernel level at their own entry points, so every Monte-Carlo
// draw runs the parallel unrolled kernels under kBlocked with no
// sampler-side switching.
Vector ParamSampler::DrawWithZ(double scale, const Vector& z) const {
  BLINKML_CHECK_EQ(z.size(), rank());
  Vector out;
  switch (backend_) {
    case Backend::kDense:
      out = MatVec(w_, z);
      break;
    case Backend::kGram: {
      const Vector t = MatVec(v_scaled_, z);  // n_s
      out = MatTVec(q_dense_, t);             // p
      break;
    }
    case Backend::kSparseGram: {
      const Vector t = MatVec(v_scaled_, z);
      out = q_sparse_.ApplyTransposed(t);
      break;
    }
  }
  if (scale != 1.0) out *= scale;
  return out;
}

std::vector<Vector> ParamSampler::DrawBatch(double scale,
                                            const Matrix& zs) const {
  BLINKML_CHECK_EQ(zs.cols(), rank());
  const Matrix::Index batch = zs.rows();
  std::vector<Vector> out;
  out.reserve(static_cast<std::size_t>(batch));
  if (batch == 0) return out;
  if (CurrentKernelLevel() != KernelLevel::kBlocked) {
    // Oracle: the exact per-draw path.
    for (Matrix::Index b = 0; b < batch; ++b) {
      out.push_back(DrawWithZ(scale, zs.Row(b)));
    }
    return out;
  }
  // Blocked: one pass over the factor serves the whole batch. Each multi-z
  // kernel's column b is bitwise its single-vector counterpart on z_b
  // (kernels.h), so extracting column b and scaling per element
  // reproduces DrawWithZ(scale, z_b) exactly.
  Matrix stacked;  // p x batch
  switch (backend_) {
    case Backend::kDense:
      stacked = kernels::MatVecMulti(w_, zs);
      break;
    case Backend::kGram: {
      const Matrix t = kernels::MatVecMulti(v_scaled_, zs);  // n_s x batch
      stacked = kernels::MatTVecMulti(q_dense_, t);          // p x batch
      break;
    }
    case Backend::kSparseGram: {
      const Matrix t = kernels::MatVecMulti(v_scaled_, zs);
      stacked = kernels::ApplyTransposedMultiBlocked(q_sparse_, t);
      break;
    }
  }
  const Matrix::Index p = stacked.rows();
  for (Matrix::Index b = 0; b < batch; ++b) {
    Vector v(p);
    for (Matrix::Index i = 0; i < p; ++i) v[i] = stacked(i, b);
    if (scale != 1.0) v *= scale;
    out.push_back(std::move(v));
  }
  return out;
}

Result<Matrix> ParamSampler::DenseCovariance() const {
  const Matrix::Index p = dim();
  if (backend_ != Backend::kDense && p > kDenseDiagnosticsLimit) {
    return Status::InvalidArgument(
        "DenseCovariance is limited to small parameter dimensions");
  }
  switch (backend_) {
    case Backend::kDense:
      return MatMulT(w_, w_);
    case Backend::kGram: {
      const Matrix w = MatTMul(q_dense_, v_scaled_);  // p x r
      return MatMulT(w, w);
    }
    case Backend::kSparseGram: {
      // W = Q^T V. The blocked kernel builds every column in one parallel
      // pass (each an independent serial scatter — same arithmetic as the
      // per-column loop below, which stays as the kNaive oracle).
      if (CurrentKernelLevel() == KernelLevel::kBlocked) {
        const Matrix w = kernels::ApplyTransposedMulti(q_sparse_, v_scaled_);
        return MatMulT(w, w);
      }
      const Matrix::Index r = rank();
      Matrix w(p, r);
      for (Matrix::Index j = 0; j < r; ++j) {
        const Vector col = q_sparse_.ApplyTransposed(v_scaled_.Col(j));
        w.SetCol(j, col);
      }
      return MatMulT(w, w);
    }
  }
  return Status::Internal("unreachable");
}

Result<Vector> ParamSampler::VarianceDiagonal() const {
  if (backend_ == Backend::kDense) {
    Vector diag(w_.rows());
    for (Matrix::Index i = 0; i < w_.rows(); ++i) {
      const double* row = w_.row_data(i);
      double s = 0.0;
      for (Matrix::Index j = 0; j < w_.cols(); ++j) s += row[j] * row[j];
      diag[i] = s;
    }
    return diag;
  }
  BLINKML_ASSIGN_OR_RETURN(Matrix cov, DenseCovariance());
  Vector diag(cov.rows());
  for (Matrix::Index i = 0; i < cov.rows(); ++i) diag[i] = cov(i, i);
  return diag;
}

}  // namespace blinkml
