// User-facing approximation contract and system configuration.

#ifndef BLINKML_CORE_CONTRACT_H_
#define BLINKML_CORE_CONTRACT_H_

#include <cstdint>

#include "data/dataset.h"
#include "models/trainer.h"
#include "runtime/runtime_options.h"
#include "util/status.h"

namespace blinkml {

/// The error-computation trade-off requested by the user (paper Section
/// 2.1): with probability at least 1 - delta, the approximate model's
/// prediction difference v from the full model is at most epsilon.
struct ApproximationContract {
  double epsilon = 0.05;
  double delta = 0.05;
};

/// Validates a contract (epsilon >= 0, delta in (0, 1)).
Status ValidateContract(const ApproximationContract& contract);

/// How the statistics (H, J of paper Theorem 1) are computed; paper
/// Section 3.4. ObservedFisher is the default, as in the paper.
enum class StatsMethod { kClosedForm, kInverseGradients, kObservedFisher };

const char* StatsMethodName(StatsMethod method);

/// System-level knobs. Defaults follow the paper where it states a value
/// (initial sample 10K, ObservedFisher, BFGS/L-BFGS policy) and otherwise
/// use settings validated by the test suite.
struct BlinkConfig {
  /// n_0: size of the initial training sample (paper default 10K).
  Dataset::Index initial_sample_size = 10000;

  /// Rows held out from training for estimating v (paper Section 2.1).
  Dataset::Index holdout_size = 2000;

  /// Rows used by ObservedFisher for the gradient-covariance estimate
  /// (a uniform sub-sample of the training sample; DESIGN.md Section 2.2).
  Dataset::Index stats_sample_size = 1024;

  /// Rank cap of the parameter-sampler factor (0 = no cap); directions are
  /// kept by largest variance contribution (DESIGN.md Section 2.3).
  Matrix::Index sampler_max_rank = 512;

  /// Monte-Carlo samples k for the Model Accuracy Estimator (Lemma 2).
  int accuracy_samples = 512;

  /// Monte-Carlo samples k for the Sample Size Estimator.
  int size_samples = 256;

  StatsMethod stats_method = StatsMethod::kObservedFisher;

  /// ObservedFisher on sparse data with a single-output GLM: compute the
  /// gradient Gram by rescaling the candidate-independent feature Gram
  /// (shared across a session's candidates) instead of re-merging scaled
  /// rows per candidate. The opt-out (false) keeps the original
  /// per-candidate sorted-merge path (see StatsOptions::reuse_feature_gram).
  bool reuse_feature_gram = true;

  /// Never train the final model on fewer rows than this.
  Dataset::Index min_sample_size = 100;

  /// Warm-start the final model from the initial model's parameters.
  bool warm_start_final = true;

  /// Recompute statistics at the final model and report a fresh bound.
  bool reestimate_final_accuracy = true;

  /// Master seed for every random choice (sampling, Monte Carlo).
  std::uint64_t seed = 42;

  /// Parallel-runtime knobs (thread count, on/off switch); installed by
  /// Coordinator::Train for the duration of a run. The determinism
  /// contract (runtime/parallel.h) guarantees identical results for any
  /// num_threads setting.
  RuntimeOptions runtime;

  /// Training configuration (optimizer choice defaults to the paper's
  /// dimension policy).
  TrainerOptions trainer;
};

}  // namespace blinkml

#endif  // BLINKML_CORE_CONTRACT_H_
