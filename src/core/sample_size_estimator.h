// Sample Size Estimator (paper Section 4): finds the minimum sample size n
// such that Pr[v(m_n, m_N) <= epsilon] >= 1 - delta, without training any
// additional models.
//
// Two-stage sampling from the joint distribution (paper Section 4.1):
//   theta_n,i = theta_0 + sqrt(1/n_0 - 1/n) * W z1_i
//   theta_N,i = theta_n,i + sqrt(1/n - 1/N)  * W z2_i
// and binary search on n (monotonicity is paper Theorem 2).
//
// Optimizations (paper Section 4.3 plus DESIGN.md Section 2.5):
//   * sampling by scaling — the unscaled draws W z1_i, W z2_i are taken
//     once; each candidate n only rescales them;
//   * common random numbers — the same (z1_i, z2_i) pairs are reused for
//     every candidate, making the feasibility test monotone path-by-path;
//   * score caching — for linear-score models the unscaled draws are
//     converted to holdout score deltas once, so each candidate costs
//     O(k * holdout * classes) comparisons with no O(p) work at all.

#ifndef BLINKML_CORE_SAMPLE_SIZE_ESTIMATOR_H_
#define BLINKML_CORE_SAMPLE_SIZE_ESTIMATOR_H_

#include "core/param_sampler.h"
#include "data/dataset.h"
#include "models/model_spec.h"
#include "random/rng.h"
#include "util/status.h"

namespace blinkml {

struct SampleSizeEstimate {
  /// The estimated minimum n.
  Dataset::Index sample_size = 0;
  /// Feasibility probability estimate at the returned n (diagnostic).
  double success_fraction = 0.0;
  /// Quantile level the search targeted.
  double quantile_level = 1.0;
  /// Monte-Carlo feasibility evaluations performed. Each distinct
  /// candidate n is evaluated exactly once (results are memoized, so
  /// re-reading the fraction at the returned n is free).
  int evaluations = 0;
  /// When a driver rounded sample_size up to a log-grid point
  /// (TrainingPipeline::QuantizeEstimatedSampleSize), the raw estimate it
  /// replaced; 0 when no quantization was applied.
  Dataset::Index quantized_from = 0;
};

struct SampleSizeOptions {
  int num_samples = 256;  // k Monte-Carlo pairs
  double epsilon = 0.05;
  double delta = 0.05;
  Dataset::Index min_n = 100;
  /// Draw the (u_i, w_i) pairs in groups of kernels::kMultiVec via
  /// ParamSampler::DrawBatch and batched score passes. The z blocks are
  /// filled in the per-draw stream order (u_i then w_i for each i) and the
  /// batched kernels match per column bitwise, so this is a pure speed
  /// knob: the estimate is identical with it on or off.
  bool batch_draws = true;
};

/// Estimates the minimum sample size in [max(min_n, n0), full_n] for the
/// contract (epsilon, delta), given the initial model `theta0` trained on
/// n0 rows and its unscaled sampler. Never fails to find an n: at
/// n = full_n the approximate model equals the full model and v = 0.
Result<SampleSizeEstimate> EstimateSampleSize(
    const ModelSpec& spec, const Vector& theta0, Dataset::Index n0,
    Dataset::Index full_n, const ParamSampler& sampler,
    const Dataset& holdout, const SampleSizeOptions& options, Rng* rng);

}  // namespace blinkml

#endif  // BLINKML_CORE_SAMPLE_SIZE_ESTIMATOR_H_
