#include "core/coordinator.h"

#include <memory>
#include <utility>

#include "util/timer.h"

namespace blinkml {

Coordinator::Coordinator(BlinkConfig config) : config_(std::move(config)) {}

Result<ApproxResult> Coordinator::Train(
    const ModelSpec& spec, const Dataset& data,
    const ApproximationContract& contract) const {
  BLINKML_RETURN_NOT_OK(ValidateContract(contract));
  WallTimer total_timer;
  BLINKML_ASSIGN_OR_RETURN(TrainingPrefix prefix,
                           ComputeTrainingPrefix(data, config_));
  TrainingPipeline pipeline(
      spec, data, contract, config_,
      std::make_shared<const TrainingPrefix>(std::move(prefix)));
  BLINKML_ASSIGN_OR_RETURN(ApproxResult out, pipeline.RunAll());
  // The one-shot path charges the prefix (split + D_0) to this run; a
  // session amortizes it instead (ApproxResult::timings then covers only
  // the stages).
  out.timings.total = total_timer.Seconds();
  return out;
}

}  // namespace blinkml
