#include "core/coordinator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace blinkml {

namespace {
using Index = Dataset::Index;
}  // namespace

Coordinator::Coordinator(BlinkConfig config) : config_(std::move(config)) {}

Result<ApproxResult> Coordinator::Train(
    const ModelSpec& spec, const Dataset& data,
    const ApproximationContract& contract) const {
  BLINKML_RETURN_NOT_OK(ValidateContract(contract));
  if (data.num_rows() < 10) {
    return Status::InvalidArgument("dataset too small");
  }

  // Every parallel hot path below (statistics, Monte-Carlo estimation,
  // training gradients) honors the config's runtime knobs for the
  // duration of this run.
  RuntimeScope runtime_scope(config_.runtime);

  WallTimer total_timer;
  Rng rng(config_.seed);

  ApproxResult out;
  out.contract = contract;

  // Holdout split. The holdout estimates v; everything else is the pool
  // the "full model" would be trained on. Only the holdout and the (much
  // smaller) training samples are materialized; the pool stays an index
  // view into `data` so no O(N) copy is ever made.
  Index holdout_size = std::min<Index>(config_.holdout_size,
                                       data.num_rows() / 5);
  holdout_size = std::max<Index>(holdout_size, 1);
  Rng split_rng = rng.Split();
  std::vector<Index> perm = RandomPermutation(data.num_rows(), &split_rng);
  std::vector<Index> holdout_rows(perm.begin(), perm.begin() + holdout_size);
  std::vector<Index> pool_rows(perm.begin() + holdout_size, perm.end());
  out.holdout = data.TakeRows(holdout_rows);
  const Index full_n = static_cast<Index>(pool_rows.size());
  out.full_size = full_n;

  // Materializes a uniform random size-k subset of the pool.
  auto sample_pool = [&](Index k, Rng* sample_rng) {
    std::vector<Index> chosen = SampleWithoutReplacement(full_n, k, sample_rng);
    for (Index& c : chosen) c = pool_rows[static_cast<std::size_t>(c)];
    return data.TakeRows(chosen);
  };

  // Initial model m_0 on D_0.
  const Index n0 = std::min<Index>(config_.initial_sample_size, full_n);
  Rng sample_rng = rng.Split();
  const Dataset d0 = sample_pool(n0, &sample_rng);
  const ModelTrainer trainer(config_.trainer);
  TrainedModel m0;
  {
    ScopedTimer t(&out.timings.initial_train);
    BLINKML_ASSIGN_OR_RETURN(m0, trainer.Train(spec, d0));
  }
  out.initial_iterations = m0.iterations;

  // Statistics at m_0.
  StatsOptions stats_options;
  stats_options.method = config_.stats_method;
  stats_options.stats_sample_size = config_.stats_sample_size;
  stats_options.max_rank = config_.sampler_max_rank;
  Rng stats_rng = rng.Split();
  ParamSampler sampler = ParamSampler::FromDenseFactor(Matrix());
  {
    ScopedTimer t(&out.timings.statistics);
    BLINKML_ASSIGN_OR_RETURN(
        sampler,
        ComputeStatistics(spec, m0.theta, d0, stats_options, &stats_rng));
  }

  // Accuracy of m_0.
  AccuracyOptions acc_options;
  acc_options.num_samples = config_.accuracy_samples;
  acc_options.delta = contract.delta;
  Rng acc_rng = rng.Split();
  AccuracyEstimate eps0;
  {
    ScopedTimer t(&out.timings.accuracy_estimation);
    BLINKML_ASSIGN_OR_RETURN(
        eps0, EstimateAccuracy(spec, m0.theta, n0, full_n, sampler,
                               out.holdout, acc_options, &acc_rng));
  }
  out.initial_epsilon = eps0.epsilon;

  if (eps0.epsilon <= contract.epsilon) {
    BLINKML_LOG(INFO) << spec.name() << ": initial model meets the contract"
                      << " (eps0=" << eps0.epsilon << " <= "
                      << contract.epsilon << ")";
    out.model = std::move(m0);
    out.sample_size = n0;
    out.final_epsilon = eps0.epsilon;
    out.used_initial_only = true;
    out.timings.total = total_timer.Seconds();
    return out;
  }

  // Minimum sample size for the final model.
  SampleSizeOptions size_options;
  size_options.num_samples = config_.size_samples;
  size_options.epsilon = contract.epsilon;
  size_options.delta = contract.delta;
  size_options.min_n = std::max<Index>(config_.min_sample_size, n0);
  Rng size_rng = rng.Split();
  {
    ScopedTimer t(&out.timings.size_estimation);
    BLINKML_ASSIGN_OR_RETURN(
        out.size_estimate,
        EstimateSampleSize(spec, m0.theta, n0, full_n, sampler, out.holdout,
                           size_options, &size_rng));
  }
  const Index n = out.size_estimate.sample_size;
  BLINKML_LOG(INFO) << spec.name() << ": estimated minimum sample size " << n
                    << " of " << full_n;

  // Final model m_n on a fresh sample.
  Rng final_rng = rng.Split();
  const Dataset dn = (n >= full_n) ? data.TakeRows(pool_rows)
                                   : sample_pool(n, &final_rng);
  TrainerOptions final_options = config_.trainer;
  if (config_.warm_start_final && !spec.has_closed_form_trainer()) {
    final_options.warm_start = m0.theta;
  }
  const ModelTrainer final_trainer(final_options);
  TrainedModel mn;
  {
    ScopedTimer t(&out.timings.final_train);
    BLINKML_ASSIGN_OR_RETURN(mn, final_trainer.Train(spec, dn));
  }
  out.final_iterations = mn.iterations;
  out.sample_size = dn.num_rows();

  // Re-estimate the returned model's bound with statistics at theta_n.
  if (config_.reestimate_final_accuracy && dn.num_rows() < full_n) {
    Rng restats_rng = rng.Split();
    Rng reacc_rng = rng.Split();
    ParamSampler final_sampler = ParamSampler::FromDenseFactor(Matrix());
    {
      ScopedTimer t(&out.timings.statistics);
      BLINKML_ASSIGN_OR_RETURN(
          final_sampler, ComputeStatistics(spec, mn.theta, dn, stats_options,
                                           &restats_rng));
    }
    AccuracyEstimate eps_final;
    {
      ScopedTimer t(&out.timings.accuracy_estimation);
      BLINKML_ASSIGN_OR_RETURN(
          eps_final,
          EstimateAccuracy(spec, mn.theta, dn.num_rows(), full_n,
                           final_sampler, out.holdout, acc_options,
                           &reacc_rng));
    }
    out.final_epsilon = eps_final.epsilon;
  } else {
    out.final_epsilon = (dn.num_rows() >= full_n) ? 0.0 : contract.epsilon;
  }

  out.model = std::move(mn);
  out.timings.total = total_timer.Seconds();
  return out;
}

}  // namespace blinkml
