#include "core/accuracy_estimator.h"

#include <algorithm>
#include <cmath>

#include "core/conservative.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "util/stats.h"
#include "util/timer.h"

namespace blinkml {

// The Monte-Carlo loops below chunk with kFineGrain: each chunk consumes
// its own Rng stream (split off the caller's generator in chunk order
// before the parallel region), and the chunk layout is a pure function of
// the sample count — so the drawn v_i are identical for any thread count,
// including fully serial execution.

Result<AccuracyEstimate> EstimateAccuracy(
    const ModelSpec& spec, const Vector& theta_n, Dataset::Index n,
    Dataset::Index full_n, const ParamSampler& sampler,
    const Dataset& holdout, const AccuracyOptions& options, Rng* rng) {
  if (n <= 0 || n > full_n) {
    return Status::InvalidArgument("need 0 < n <= N");
  }
  if (options.num_samples < 1) {
    return Status::InvalidArgument("need at least one Monte-Carlo sample");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }

  AccuracyEstimate out;
  out.num_samples = options.num_samples;
  if (n == full_n) {
    out.epsilon = 0.0;
    out.quantile_level = 1.0;
    return out;
  }

  const double alpha = 1.0 / static_cast<double>(n) -
                       1.0 / static_cast<double>(full_n);
  const double scale = std::sqrt(alpha);

  // With cached scores, v_i needs only the score-space delta (scores are
  // linear in theta for every GLM); otherwise fall back to Diff on
  // materialized parameters (PPCA's v is parameter-space and cheap).
  const bool score_path = spec.has_linear_scores();
  Matrix base_scores;
  if (score_path) base_scores = spec.Scores(theta_n, holdout);

  const ParallelIndex k = options.num_samples;
  const ChunkLayout layout = ComputeChunks(k, kFineGrain);
  std::vector<Rng> chunk_rngs = SplitRngPerChunk(layout, rng);
  std::vector<double> vs(static_cast<std::size_t>(k));
  {
    // Observability only: the span + draw-seconds counter read the wall
    // clock around the loop and never touch the drawn values.
    obs::SpanScope span("mc:accuracy_draws", "estimator", "num_samples", k);
    WallTimer draw_timer;
    ParallelForChunks(
        0, k, layout,
        [&](ParallelIndex chunk, ParallelIndex b, ParallelIndex e) {
          Rng& chunk_rng = chunk_rngs[static_cast<std::size_t>(chunk)];
          if (!options.batch_draws) {
            for (ParallelIndex i = b; i < e; ++i) {
              const Vector delta_theta = sampler.Draw(scale, &chunk_rng);
              double v;
              if (score_path) {
                Matrix scores = spec.Scores(delta_theta, holdout);
                scores += base_scores;
                v = spec.DiffFromScores(base_scores, scores, holdout);
              } else {
                Vector theta_full = theta_n;
                theta_full += delta_theta;
                v = spec.Diff(theta_n, theta_full, holdout);
              }
              vs[static_cast<std::size_t>(i)] = v;
            }
            return;
          }
          // Batched: groups of kMultiVec draws share one factor pass and
          // (score path) one batched score pass. The z block is filled row
          // by row from the chunk's stream — the same normal sequence the
          // per-draw loop consumes, so the drawn bits are identical.
          const Vector::Index rank = sampler.rank();
          Matrix scratch;  // per-chunk scratch scores, reused across draws
          std::vector<const Vector*> ptrs;
          for (ParallelIndex g = b; g < e; g += kernels::kMultiVec) {
            const ParallelIndex ge =
                std::min<ParallelIndex>(g + kernels::kMultiVec, e);
            const Matrix::Index width = static_cast<Matrix::Index>(ge - g);
            Matrix zs(width, rank);
            chunk_rng.FillNormal(zs.row_data(0), width * rank);
            const std::vector<Vector> deltas = sampler.DrawBatch(scale, zs);
            if (score_path) {
              ptrs.clear();
              for (const Vector& d : deltas) ptrs.push_back(&d);
              const Matrix batch = spec.ScoresBatch(ptrs, holdout);
              const Matrix::Index h = base_scores.rows();
              const Matrix::Index c = base_scores.cols();
              if (scratch.rows() == 0) scratch = Matrix(h, c);
              for (Matrix::Index d = 0; d < width; ++d) {
                for (Matrix::Index r = 0; r < h; ++r) {
                  const double* brow = batch.row_data(r) + d * c;
                  const double* base_row = base_scores.row_data(r);
                  double* srow = scratch.row_data(r);
                  for (Matrix::Index j = 0; j < c; ++j) {
                    srow[j] = brow[j] + base_row[j];
                  }
                }
                vs[static_cast<std::size_t>(g) + static_cast<std::size_t>(d)] =
                    spec.DiffFromScores(base_scores, scratch, holdout);
              }
            } else {
              for (Matrix::Index d = 0; d < width; ++d) {
                Vector theta_full = theta_n;
                theta_full += deltas[static_cast<std::size_t>(d)];
                vs[static_cast<std::size_t>(g) + static_cast<std::size_t>(d)] =
                    spec.Diff(theta_n, theta_full, holdout);
              }
            }
          }
        });
    auto& registry = obs::Registry::Global();
    registry.FloatCounter("estimator_seconds", {{"part", "accuracy_draws"}})
        ->Add(draw_timer.Seconds());
    registry.Counter("estimator_draws_total", {{"estimator", "accuracy"}})
        ->Inc(static_cast<std::uint64_t>(k));
  }

  out.mean_v = Mean(vs);
  const QuantileLevel level =
      ConservativeQuantileLevel(options.delta, options.num_samples);
  out.quantile_level = level.level;
  out.epsilon = UpperOrderStatistic(vs, level.level);
  return out;
}

}  // namespace blinkml
