#include "core/conservative.h"

#include <cmath>

#include "util/check.h"

namespace blinkml {

QuantileLevel ConservativeQuantileLevel(double delta, int k) {
  BLINKML_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  BLINKML_CHECK_GE(k, 1);
  QuantileLevel best;
  best.level = 1.0;
  best.clamped = true;
  // Grid over the split constant; the objective is smooth and single-dipped
  // in c, so a modest geometric grid suffices.
  const double lo = 1.0 - delta;
  for (double gap = delta * 0.999; gap > 1e-7; gap *= 0.7) {
    const double c = 1.0 - gap;
    if (c <= lo) continue;
    const double hoeffding =
        std::sqrt(std::log(1.0 / gap) / (2.0 * static_cast<double>(k)));
    const double level = (1.0 - delta) / c + hoeffding;
    if (level < best.level) {
      best.level = level;
      best.split_c = c;
      best.clamped = false;
    }
  }
  if (best.level >= 1.0) {
    best.level = 1.0;
    best.clamped = true;
  }
  return best;
}

double FullModelGeneralizationBound(double eps_g, double eps) {
  BLINKML_CHECK(eps_g >= 0.0 && eps_g <= 1.0);
  BLINKML_CHECK_GE(eps, 0.0);
  const double e = eps > 1.0 ? 1.0 : eps;
  return eps_g + e - eps_g * e;
}

}  // namespace blinkml
