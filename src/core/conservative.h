// Conservative empirical-quantile level (repaired paper Lemma 2).
//
// Given k i.i.d. Monte-Carlo draws of the model difference v, the accuracy
// estimator returns the empirical quantile of {v_i} at level
//   p(c) = (1 - delta)/c + sqrt(ln(1/(1-c)) / (2k)),
// minimized over the split constant c in (1 - delta, 1). Derivation: if the
// *true* probability Pr[v <= eps] is at least (1-delta)/c (event B), and a
// one-sided Hoeffding bound with failure probability 1-c connects the
// empirical fraction to the true one (event C => B), then
// Pr[v(m_n) <= eps] >= (1-delta)/c * c = 1-delta.
//
// The paper's printed constant (split 0.95 with a Hoeffding step at failure
// probability 0.95) makes the level exceed 1 for every delta <= 0.05 — the
// regime all its experiments use; see DESIGN.md Section 2.4. When even the
// optimized level exceeds 1 (small k), the level clamps to 1, i.e. the
// estimator returns the maximum sampled v — the most conservative choice
// k draws permit.

#ifndef BLINKML_CORE_CONSERVATIVE_H_
#define BLINKML_CORE_CONSERVATIVE_H_

namespace blinkml {

struct QuantileLevel {
  /// Level in (0, 1]: the fraction of sampled v's that must lie below the
  /// returned bound.
  double level = 1.0;
  /// The split constant c that attained it.
  double split_c = 0.95;
  /// True when no feasible level < 1 exists for this (delta, k).
  bool clamped = false;
};

/// Computes the minimal conservative quantile level for confidence
/// 1 - delta from k Monte-Carlo samples. Checks delta in (0,1) and k >= 1.
QuantileLevel ConservativeQuantileLevel(double delta, int k);

/// Lemma 1 (paper Section 2.1): bound on the *full* model's generalization
/// error given the approximate model's generalization error eps_g and the
/// contract bound eps: gen(m_N) <= eps_g + eps - eps_g * eps.
double FullModelGeneralizationBound(double eps_g, double eps);

}  // namespace blinkml

#endif  // BLINKML_CORE_CONSERVATIVE_H_
