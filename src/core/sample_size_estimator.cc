#include "core/sample_size_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/conservative.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "util/timer.h"

namespace blinkml {

namespace {

using Index = Dataset::Index;

// The Monte-Carlo loops chunk with the runtime's kFineGrain so the chunk
// layout (and the per-chunk Rng stream assignment) never depends on the
// thread count. See accuracy_estimator.cc for the determinism argument.

// Scales for a candidate n: a1 = sqrt(1/n0 - 1/n), a2 = sqrt(1/n - 1/N).
struct Scales {
  double a1;
  double a2;
};

Scales ScalesFor(Index n0, Index n, Index full_n) {
  const double inv_n0 = 1.0 / static_cast<double>(n0);
  const double inv_n = 1.0 / static_cast<double>(n);
  const double inv_full = 1.0 / static_cast<double>(full_n);
  return {std::sqrt(std::max(0.0, inv_n0 - inv_n)),
          std::sqrt(std::max(0.0, inv_n - inv_full))};
}

}  // namespace

Result<SampleSizeEstimate> EstimateSampleSize(
    const ModelSpec& spec, const Vector& theta0, Index n0, Index full_n,
    const ParamSampler& sampler, const Dataset& holdout,
    const SampleSizeOptions& options, Rng* rng) {
  if (n0 <= 0 || n0 > full_n) {
    return Status::InvalidArgument("need 0 < n0 <= N");
  }
  if (options.num_samples < 1) {
    return Status::InvalidArgument("need at least one Monte-Carlo sample");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }

  const int k = options.num_samples;
  const bool score_path = spec.has_linear_scores();

  // Unscaled draws (sampling by scaling + common random numbers): u_i and
  // w_i, held either as holdout score deltas (score path; O(k h C) memory)
  // or as parameter vectors (generic path; O(k p) memory).
  std::vector<Matrix> score_u, score_w;
  std::vector<Vector> param_u, param_w;
  if (score_path) {
    score_u.resize(static_cast<std::size_t>(k));
    score_w.resize(static_cast<std::size_t>(k));
  } else {
    param_u.resize(static_cast<std::size_t>(k));
    param_w.resize(static_cast<std::size_t>(k));
  }
  {
    // Observability only (wall clock around the loop; never feeds back).
    obs::SpanScope span("mc:size_draws", "estimator", "num_samples", k);
    WallTimer draw_timer;
    const ChunkLayout layout = ComputeChunks(k, kFineGrain);
    std::vector<Rng> chunk_rngs = SplitRngPerChunk(layout, rng);
    ParallelForChunks(
        0, k, layout,
        [&](ParallelIndex chunk, ParallelIndex b, ParallelIndex e) {
          Rng& chunk_rng = chunk_rngs[static_cast<std::size_t>(chunk)];
          if (!options.batch_draws) {
            for (ParallelIndex i = b; i < e; ++i) {
              Vector u = sampler.Draw(1.0, &chunk_rng);
              Vector w = sampler.Draw(1.0, &chunk_rng);
              if (score_path) {
                score_u[static_cast<std::size_t>(i)] = spec.Scores(u, holdout);
                score_w[static_cast<std::size_t>(i)] = spec.Scores(w, holdout);
              } else {
                param_u[static_cast<std::size_t>(i)] = std::move(u);
                param_w[static_cast<std::size_t>(i)] = std::move(w);
              }
            }
            return;
          }
          // Batched: kMultiVec pairs per group. The per-draw loop consumes
          // the stream as z(u_i), z(w_i), z(u_i+1), ... so the two z blocks
          // are filled row-interleaved in exactly that order — the drawn
          // bits match the unbatched path for any thread count.
          const Vector::Index rank = sampler.rank();
          for (ParallelIndex g = b; g < e; g += kernels::kMultiVec) {
            const ParallelIndex ge =
                std::min<ParallelIndex>(g + kernels::kMultiVec, e);
            const Matrix::Index width = static_cast<Matrix::Index>(ge - g);
            Matrix zu(width, rank);
            Matrix zw(width, rank);
            for (Matrix::Index d = 0; d < width; ++d) {
              chunk_rng.FillNormal(zu.row_data(d), rank);
              chunk_rng.FillNormal(zw.row_data(d), rank);
            }
            std::vector<Vector> us = sampler.DrawBatch(1.0, zu);
            std::vector<Vector> ws = sampler.DrawBatch(1.0, zw);
            if (score_path) {
              std::vector<const Vector*> ptrs;
              for (const Vector& u : us) ptrs.push_back(&u);
              const Matrix batch_u = spec.ScoresBatch(ptrs, holdout);
              ptrs.clear();
              for (const Vector& w : ws) ptrs.push_back(&w);
              const Matrix batch_w = spec.ScoresBatch(ptrs, holdout);
              const Matrix::Index h = holdout.num_rows();
              const Matrix::Index c = batch_u.cols() / width;
              for (Matrix::Index d = 0; d < width; ++d) {
                const std::size_t i =
                    static_cast<std::size_t>(g) + static_cast<std::size_t>(d);
                Matrix su(h, c);
                Matrix sw(h, c);
                for (Matrix::Index r = 0; r < h; ++r) {
                  const double* urow = batch_u.row_data(r) + d * c;
                  const double* wrow = batch_w.row_data(r) + d * c;
                  double* suo = su.row_data(r);
                  double* swo = sw.row_data(r);
                  for (Matrix::Index j = 0; j < c; ++j) {
                    suo[j] = urow[j];
                    swo[j] = wrow[j];
                  }
                }
                score_u[i] = std::move(su);
                score_w[i] = std::move(sw);
              }
            } else {
              for (Matrix::Index d = 0; d < width; ++d) {
                const std::size_t i =
                    static_cast<std::size_t>(g) + static_cast<std::size_t>(d);
                param_u[i] = std::move(us[static_cast<std::size_t>(d)]);
                param_w[i] = std::move(ws[static_cast<std::size_t>(d)]);
              }
            }
          }
        });
    auto& registry = obs::Registry::Global();
    registry.FloatCounter("estimator_seconds", {{"part", "size_draws"}})
        ->Add(draw_timer.Seconds());
    registry.Counter("estimator_draws_total", {{"estimator", "size"}})
        ->Inc(static_cast<std::uint64_t>(2 * k));
  }
  Matrix base_scores;
  if (score_path) base_scores = spec.Scores(theta0, holdout);

  const QuantileLevel level = ConservativeQuantileLevel(options.delta, k);

  SampleSizeEstimate out;
  out.quantile_level = level.level;

  // Feasibility: fraction of pairs with v(theta_n,i, theta_N,i) <= eps.
  // The pairs are independent; the integer ok-count reduction is exact, so
  // the fraction is identical for any thread count.
  obs::FloatCounter* const eval_seconds = obs::Registry::Global().FloatCounter(
      "estimator_seconds", {{"part", "size_search_evals"}});
  // Memo of every candidate n already evaluated: the bisection can revisit
  // a candidate (the final report at the returned n, or a trivially
  // feasible lower bound), and each Monte-Carlo pass over all k pairs is
  // the dominant search cost. out.evaluations counts memo misses only, so
  // it equals the number of *distinct* candidates evaluated.
  std::vector<std::pair<Index, double>> evaluated;
  auto success_fraction = [&](Index n) {
    for (const auto& memo : evaluated) {
      if (memo.first == n) return memo.second;
    }
    obs::SpanScope eval_span("mc:size_eval", "estimator", "candidate_n",
                             static_cast<long long>(n));
    WallTimer eval_timer;
    const Scales s = ScalesFor(n0, n, full_n);
    const Matrix::Index score_cols =
        score_path ? base_scores.cols() : Matrix::Index{0};
    const int ok_count = ParallelReduce(
        ParallelIndex{0}, static_cast<ParallelIndex>(k), 0,
        [&](ParallelIndex b, ParallelIndex e) {
          int part = 0;
          // Per-chunk scratch: the score matrices (and parameter vectors)
          // are overwritten for every pair instead of freshly allocated.
          Matrix s1, s2;
          Vector t1, t2;
          if (score_path) {
            s1 = Matrix(base_scores.rows(), score_cols);
            s2 = Matrix(base_scores.rows(), score_cols);
          } else {
            t1 = Vector(theta0.size());
            t2 = Vector(theta0.size());
          }
          for (ParallelIndex i = b; i < e; ++i) {
            double v;
            if (score_path) {
              // scores(theta_n,i) = S0 + a1 * Su_i;
              // scores(theta_N,i) = S0 + a1 * Su_i + a2 * Sw_i.
              // Written fused: s1 = Su_i * a1 + S0 (the same operand order
              // as the copy/scale/add sequence, so the bits are unchanged).
              const Matrix& su = score_u[static_cast<std::size_t>(i)];
              const Matrix& sw = score_w[static_cast<std::size_t>(i)];
              for (Matrix::Index r = 0; r < s1.rows(); ++r) {
                const double* surow = su.row_data(r);
                const double* swrow = sw.row_data(r);
                const double* base_row = base_scores.row_data(r);
                double* s1row = s1.row_data(r);
                double* s2row = s2.row_data(r);
                for (Matrix::Index j = 0; j < score_cols; ++j) {
                  s1row[j] = surow[j] * s.a1 + base_row[j];
                  s2row[j] = swrow[j] * s.a2 + s1row[j];
                }
              }
              v = spec.DiffFromScores(s1, s2, holdout);
            } else {
              for (Vector::Index j = 0; j < t1.size(); ++j) t1[j] = theta0[j];
              Axpy(s.a1, param_u[static_cast<std::size_t>(i)], &t1);
              for (Vector::Index j = 0; j < t2.size(); ++j) t2[j] = t1[j];
              Axpy(s.a2, param_w[static_cast<std::size_t>(i)], &t2);
              v = spec.Diff(t1, t2, holdout);
            }
            if (v <= options.epsilon) ++part;
          }
          return part;
        },
        [](int acc, int part) { return acc + part; }, kFineGrain);
    ++out.evaluations;
    eval_seconds->Add(eval_timer.Seconds());
    const double fraction =
        static_cast<double>(ok_count) / static_cast<double>(k);
    evaluated.emplace_back(n, fraction);
    return fraction;
  };

  // The level is in (0, 1]; a fraction f is feasible when f >= level
  // (with level = 1 this demands every sampled pair to satisfy eps).
  auto feasible = [&](Index n) { return success_fraction(n) >= level.level; };

  Index lo = std::max<Index>(options.min_n, 1);
  lo = std::min(lo, full_n);
  Index hi = full_n;
  if (feasible(lo)) {
    out.sample_size = lo;
    out.success_fraction = success_fraction(lo);  // memoized; no re-eval
    return out;
  }
  // Invariant: lo infeasible, hi feasible (at n = N the two parameter
  // draws coincide up to a2 = 0, giving v = 0 <= eps for every pair).
  while (hi - lo > 1) {
    const Index mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  out.sample_size = hi;
  // Memoized whenever hi was probed as a bisection midpoint; evaluated
  // once here otherwise (hi == full_n with no feasible midpoint found).
  out.success_fraction = success_fraction(hi);
  return out;
}

}  // namespace blinkml
