#include "core/sample_size_estimator.h"

#include <cmath>
#include <vector>

#include "core/conservative.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "util/timer.h"

namespace blinkml {

namespace {

using Index = Dataset::Index;

// The Monte-Carlo loops chunk with the runtime's kFineGrain so the chunk
// layout (and the per-chunk Rng stream assignment) never depends on the
// thread count. See accuracy_estimator.cc for the determinism argument.

// Scales for a candidate n: a1 = sqrt(1/n0 - 1/n), a2 = sqrt(1/n - 1/N).
struct Scales {
  double a1;
  double a2;
};

Scales ScalesFor(Index n0, Index n, Index full_n) {
  const double inv_n0 = 1.0 / static_cast<double>(n0);
  const double inv_n = 1.0 / static_cast<double>(n);
  const double inv_full = 1.0 / static_cast<double>(full_n);
  return {std::sqrt(std::max(0.0, inv_n0 - inv_n)),
          std::sqrt(std::max(0.0, inv_n - inv_full))};
}

}  // namespace

Result<SampleSizeEstimate> EstimateSampleSize(
    const ModelSpec& spec, const Vector& theta0, Index n0, Index full_n,
    const ParamSampler& sampler, const Dataset& holdout,
    const SampleSizeOptions& options, Rng* rng) {
  if (n0 <= 0 || n0 > full_n) {
    return Status::InvalidArgument("need 0 < n0 <= N");
  }
  if (options.num_samples < 1) {
    return Status::InvalidArgument("need at least one Monte-Carlo sample");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }

  const int k = options.num_samples;
  const bool score_path = spec.has_linear_scores();

  // Unscaled draws (sampling by scaling + common random numbers): u_i and
  // w_i, held either as holdout score deltas (score path; O(k h C) memory)
  // or as parameter vectors (generic path; O(k p) memory).
  std::vector<Matrix> score_u, score_w;
  std::vector<Vector> param_u, param_w;
  if (score_path) {
    score_u.resize(static_cast<std::size_t>(k));
    score_w.resize(static_cast<std::size_t>(k));
  } else {
    param_u.resize(static_cast<std::size_t>(k));
    param_w.resize(static_cast<std::size_t>(k));
  }
  {
    // Observability only (wall clock around the loop; never feeds back).
    obs::SpanScope span("mc:size_draws", "estimator", "num_samples", k);
    WallTimer draw_timer;
    const ChunkLayout layout = ComputeChunks(k, kFineGrain);
    std::vector<Rng> chunk_rngs = SplitRngPerChunk(layout, rng);
    ParallelForChunks(
        0, k, layout,
        [&](ParallelIndex chunk, ParallelIndex b, ParallelIndex e) {
          Rng& chunk_rng = chunk_rngs[static_cast<std::size_t>(chunk)];
          for (ParallelIndex i = b; i < e; ++i) {
            Vector u = sampler.Draw(1.0, &chunk_rng);
            Vector w = sampler.Draw(1.0, &chunk_rng);
            if (score_path) {
              score_u[static_cast<std::size_t>(i)] = spec.Scores(u, holdout);
              score_w[static_cast<std::size_t>(i)] = spec.Scores(w, holdout);
            } else {
              param_u[static_cast<std::size_t>(i)] = std::move(u);
              param_w[static_cast<std::size_t>(i)] = std::move(w);
            }
          }
        });
    auto& registry = obs::Registry::Global();
    registry.FloatCounter("estimator_seconds", {{"part", "size_draws"}})
        ->Add(draw_timer.Seconds());
    registry.Counter("estimator_draws_total", {{"estimator", "size"}})
        ->Inc(static_cast<std::uint64_t>(2 * k));
  }
  Matrix base_scores;
  if (score_path) base_scores = spec.Scores(theta0, holdout);

  const QuantileLevel level = ConservativeQuantileLevel(options.delta, k);

  SampleSizeEstimate out;
  out.quantile_level = level.level;

  // Feasibility: fraction of pairs with v(theta_n,i, theta_N,i) <= eps.
  // The pairs are independent; the integer ok-count reduction is exact, so
  // the fraction is identical for any thread count.
  obs::FloatCounter* const eval_seconds = obs::Registry::Global().FloatCounter(
      "estimator_seconds", {{"part", "size_search_evals"}});
  auto success_fraction = [&](Index n) {
    obs::SpanScope eval_span("mc:size_eval", "estimator", "candidate_n",
                             static_cast<long long>(n));
    WallTimer eval_timer;
    const Scales s = ScalesFor(n0, n, full_n);
    const int ok_count = ParallelReduce(
        ParallelIndex{0}, static_cast<ParallelIndex>(k), 0,
        [&](ParallelIndex b, ParallelIndex e) {
          int part = 0;
          for (ParallelIndex i = b; i < e; ++i) {
            double v;
            if (score_path) {
              // scores(theta_n,i) = S0 + a1 * Su_i;
              // scores(theta_N,i) = S0 + a1 * Su_i + a2 * Sw_i.
              Matrix s1 = score_u[static_cast<std::size_t>(i)];
              s1 *= s.a1;
              s1 += base_scores;
              Matrix s2 = score_w[static_cast<std::size_t>(i)];
              s2 *= s.a2;
              s2 += s1;
              v = spec.DiffFromScores(s1, s2, holdout);
            } else {
              Vector t1 = theta0;
              Axpy(s.a1, param_u[static_cast<std::size_t>(i)], &t1);
              Vector t2 = t1;
              Axpy(s.a2, param_w[static_cast<std::size_t>(i)], &t2);
              v = spec.Diff(t1, t2, holdout);
            }
            if (v <= options.epsilon) ++part;
          }
          return part;
        },
        [](int acc, int part) { return acc + part; }, kFineGrain);
    ++out.evaluations;
    eval_seconds->Add(eval_timer.Seconds());
    return static_cast<double>(ok_count) / static_cast<double>(k);
  };

  // The level is in (0, 1]; a fraction f is feasible when f >= level
  // (with level = 1 this demands every sampled pair to satisfy eps).
  auto feasible = [&](Index n) { return success_fraction(n) >= level.level; };

  Index lo = std::max<Index>(options.min_n, 1);
  lo = std::min(lo, full_n);
  Index hi = full_n;
  if (feasible(lo)) {
    out.sample_size = lo;
    out.success_fraction = 1.0;  // recomputed below for the reported value
    out.success_fraction = success_fraction(lo);
    return out;
  }
  // Invariant: lo infeasible, hi feasible (at n = N the two parameter
  // draws coincide up to a2 = 0, giving v = 0 <= eps for every pair).
  while (hi - lo > 1) {
    const Index mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  out.sample_size = hi;
  out.success_fraction = success_fraction(hi);
  return out;
}

}  // namespace blinkml
