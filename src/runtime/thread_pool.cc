#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace blinkml {

ThreadPool::ThreadPool(int parallelism) {
  const int workers = std::max(parallelism, 1) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  try {
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. a thread-limited container):
    // join the workers that did start so unwinding doesn't terminate.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultParallelism());
  return pool;
}

int ThreadPool::DefaultParallelism() {
  if (const char* env = std::getenv("BLINKML_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min(v, 1024L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace blinkml
