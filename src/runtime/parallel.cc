#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "runtime/thread_pool.h"

namespace blinkml {

namespace {

const RuntimeOptions kDefaultOptions;
thread_local const RuntimeOptions* g_current_options = &kDefaultOptions;
thread_local bool g_in_parallel_region = false;

// Cap on reduction-slot count (kMaxParallelChunks in the header); part of
// the chunk layout and therefore of the determinism contract (must not
// depend on thread count).
constexpr ParallelIndex kMaxChunks = kMaxParallelChunks;

// Shared state of one parallel region.
struct Region {
  const std::function<void(ParallelIndex, ParallelIndex, ParallelIndex)>* body;
  ParallelIndex begin;
  ParallelIndex end;
  ChunkLayout layout;
  int lanes;
  // The caller's ambient RuntimeOptions, installed on every lane for the
  // region's duration: chunk bodies consult the scope too (nested regions
  // run inline, and the kernel-level dispatch happens wherever a linalg
  // entry point is reached), so worker lanes must see the same options as
  // the calling thread or a non-default kernel_level would apply on lane
  // 0 only — making results depend on the lane count. The pointee lives
  // in a RuntimeScope on (or above) the caller's stack, which outlives
  // the region because ParallelForChunks joins every lane before
  // returning.
  const RuntimeOptions* ambient_options;

  std::atomic<bool> abort{false};
  std::mutex mu;
  std::condition_variable done_cv;
  int lanes_remaining;
  std::exception_ptr first_exception;

  // Lane r runs chunks r, r + lanes, r + 2*lanes, ... On exception the
  // region aborts: already-running chunks finish, queued ones are skipped.
  void RunLane(int lane) {
    const bool was_in_region = g_in_parallel_region;
    const RuntimeOptions* previous_options = g_current_options;
    g_in_parallel_region = true;
    g_current_options = ambient_options;
    for (ParallelIndex c = lane; c < layout.num_chunks; c += lanes) {
      if (abort.load(std::memory_order_relaxed)) break;
      const ParallelIndex b = begin + c * layout.chunk_size;
      const ParallelIndex e = std::min(b + layout.chunk_size, end);
      try {
        (*body)(c, b, e);
      } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (!first_exception) first_exception = std::current_exception();
      }
    }
    g_in_parallel_region = was_in_region;
    g_current_options = previous_options;
    std::lock_guard<std::mutex> lock(mu);
    if (--lanes_remaining == 0) done_cv.notify_all();
  }
};

}  // namespace

RuntimeScope::RuntimeScope(const RuntimeOptions& options)
    : options_(options), previous_(g_current_options) {
  g_current_options = &options_;
}

RuntimeScope::~RuntimeScope() { g_current_options = previous_; }

const RuntimeOptions& RuntimeScope::Current() { return *g_current_options; }

bool InParallelRegion() { return g_in_parallel_region; }

KernelLevel CurrentKernelLevel() {
  return RuntimeScope::Current().kernel_level;
}

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Process-wide kAuto resolution: BLINKML_KERNEL_ISA if set (an avx2
// request is clamped to scalar on CPUs without it, so a stale env var
// can't crash the process), else CPU detection. Resolved once; a
// RuntimeScope with an explicit kernel_isa still overrides per scope.
KernelIsa ResolveAmbientIsa() {
  const char* env = std::getenv("BLINKML_KERNEL_ISA");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return KernelIsa::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return CpuHasAvx2() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
    }
  }
  return CpuHasAvx2() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
}

}  // namespace

KernelIsa CurrentKernelIsa() {
  static const KernelIsa ambient = ResolveAmbientIsa();
  const KernelIsa scoped = RuntimeScope::Current().kernel_isa;
  if (scoped == KernelIsa::kAuto) return ambient;
  if (scoped == KernelIsa::kAvx2 && !CpuHasAvx2()) return KernelIsa::kScalar;
  return scoped;
}

int CurrentParallelism() {
  const RuntimeOptions& options = RuntimeScope::Current();
  if (!options.enabled || InParallelRegion()) return 1;
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::Global();
  const int lanes = options.num_threads > 0 ? options.num_threads
                                            : pool.parallelism();
  return std::max(1, std::min(lanes, pool.parallelism()));
}

ChunkLayout ComputeChunks(ParallelIndex n, ParallelIndex grain) {
  ChunkLayout layout;
  if (n <= 0) return layout;
  const ParallelIndex g = std::max<ParallelIndex>(grain, 1);
  layout.chunk_size = std::max(g, (n + kMaxChunks - 1) / kMaxChunks);
  layout.num_chunks = (n + layout.chunk_size - 1) / layout.chunk_size;
  return layout;
}

void ParallelForChunks(
    ParallelIndex begin, ParallelIndex end, ParallelIndex grain,
    const std::function<void(ParallelIndex, ParallelIndex, ParallelIndex)>&
        body) {
  ParallelForChunks(begin, end, ComputeChunks(end - begin, grain), body);
}

void ParallelForChunks(
    ParallelIndex begin, ParallelIndex end, const ChunkLayout& layout,
    const std::function<void(ParallelIndex, ParallelIndex, ParallelIndex)>&
        body) {
  if (layout.num_chunks == 0) return;

  const RuntimeOptions& options = RuntimeScope::Current();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::Global();
  int lanes = options.num_threads > 0 ? options.num_threads
                                      : pool.parallelism();
  lanes = std::min(lanes, pool.parallelism());
  lanes = static_cast<int>(
      std::min<ParallelIndex>(lanes, layout.num_chunks));
  if (!options.enabled || lanes <= 1 || InParallelRegion()) {
    // Inline execution: same chunk layout, same results, no handoff.
    for (ParallelIndex c = 0; c < layout.num_chunks; ++c) {
      const ParallelIndex b = begin + c * layout.chunk_size;
      body(c, b, std::min(b + layout.chunk_size, end));
    }
    return;
  }

  Region region;
  region.body = &body;
  region.begin = begin;
  region.end = end;
  region.layout = layout;
  region.lanes = lanes;
  region.ambient_options = g_current_options;
  region.lanes_remaining = lanes;
  int submitted = 0;
  std::exception_ptr submit_failure;
  try {
    for (int lane = 1; lane < lanes; ++lane) {
      pool.Submit([&region, lane] { region.RunLane(lane); });
      ++submitted;
    }
  } catch (...) {
    // Already-enqueued lane tasks reference `region`; abort them, account
    // for the lanes that never got enqueued, and still wait below so the
    // region outlives every task that holds a pointer to it.
    submit_failure = std::current_exception();
    region.abort.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(region.mu);
    region.lanes_remaining -= lanes - 1 - submitted;
  }
  region.RunLane(0);
  {
    std::unique_lock<std::mutex> lock(region.mu);
    region.done_cv.wait(lock, [&region] {
      return region.lanes_remaining == 0;
    });
  }
  if (region.first_exception) std::rethrow_exception(region.first_exception);
  if (submit_failure) std::rethrow_exception(submit_failure);
}

void ParallelFor(ParallelIndex begin, ParallelIndex end,
                 const std::function<void(ParallelIndex, ParallelIndex)>& body,
                 ParallelIndex grain) {
  ParallelForChunks(begin, end, grain,
                    [&body](ParallelIndex, ParallelIndex b, ParallelIndex e) {
                      body(b, e);
                    });
}

}  // namespace blinkml
