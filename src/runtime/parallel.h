// Parallel loops with a determinism contract.
//
// Every parallel construct here partitions [begin, end) into chunks whose
// boundaries depend only on the range size and the grain — never on the
// thread count. ParallelFor chunks are distributed to lanes statically
// (lane r runs chunks r, r + P, r + 2P, ...); ParallelReduce gives every
// chunk its own partial slot and combines the slots serially in chunk
// order. Consequently any quantity computed through these constructs is
// bitwise identical for 1, 2, or N threads, and identical again when the
// runtime is capped by RuntimeOptions::num_threads or disabled outright.
//
// Nested parallel regions execute inline on the calling lane (no deadlock,
// same chunk layout, same results).

#ifndef BLINKML_RUNTIME_PARALLEL_H_
#define BLINKML_RUNTIME_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/runtime_options.h"

namespace blinkml {

/// Loop index type (matches Matrix::Index / Dataset::Index width).
using ParallelIndex = std::ptrdiff_t;

/// Deterministic chunk layout: boundaries are a pure function of the range
/// size and grain. The chunk count is additionally capped (at
/// kMaxParallelChunks) so that reduction slots stay cheap on huge ranges.
struct ChunkLayout {
  ParallelIndex chunk_size = 0;
  ParallelIndex num_chunks = 0;
};
ChunkLayout ComputeChunks(ParallelIndex n, ParallelIndex grain);

/// Hard cap on ComputeChunks' chunk count.
inline constexpr ParallelIndex kMaxParallelChunks = 64;

/// Upper bound on ComputeChunks(m, grain).num_chunks for every m <= n.
/// Needed by callers that allocate one slot buffer for many sub-ranges:
/// num_chunks is NOT monotone in the range size (it dips where the
/// kMaxParallelChunks cap starts to bind), so sizing by the largest range
/// alone under-allocates.
inline ParallelIndex MaxChunksForRanges(ParallelIndex n, ParallelIndex grain) {
  if (n <= 0) return 0;
  const ParallelIndex g = grain < 1 ? 1 : grain;
  const ParallelIndex by_grain = (n + g - 1) / g;
  return by_grain < kMaxParallelChunks ? by_grain : kMaxParallelChunks;
}

/// Default grain: small enough to balance triangular / uneven chunk costs,
/// large enough to amortize the per-chunk dispatch.
inline constexpr ParallelIndex kDefaultGrain = 64;

/// Grain for loops whose per-item cost is large or strongly uneven
/// (triangular Gram rows, Monte-Carlo draws). Part of the determinism
/// contract wherever the chunk layout feeds per-chunk Rng streams or
/// reduction slots — keep every such call site on this one constant.
inline constexpr ParallelIndex kFineGrain = 8;

/// Grain for per-example reduction loops (full gradients): large chunks
/// keep the number of theta-sized partial buffers small while still
/// splitting any real dataset across the pool. GradientGrain additionally
/// caps the chunk count at 16 — peak reduction memory is then at most 16
/// gradient-sized partials however large the dataset. Both are pure
/// functions of n, so the layout stays thread-count independent.
inline constexpr ParallelIndex kGradientGrain = 256;
inline constexpr ParallelIndex kMaxGradientChunks = 16;
inline ParallelIndex GradientGrain(ParallelIndex n) {
  const ParallelIndex capped =
      (n + kMaxGradientChunks - 1) / kMaxGradientChunks;
  return capped > kGradientGrain ? capped : kGradientGrain;
}

/// Lanes the next non-nested parallel region would use under the current
/// scope (1 when the runtime is disabled, the pool is 1-wide, or the
/// caller is already inside a region). Lets loops whose results are
/// layout-independent pick a coarser chunking when running serial.
int CurrentParallelism();

/// True while the calling thread is executing inside a parallel region
/// (used to run nested regions inline).
bool InParallelRegion();

/// Runs body(chunk_index, chunk_begin, chunk_end) for every chunk of
/// [begin, end). Exceptions thrown by any chunk abort outstanding chunks
/// and the first one is rethrown on the calling thread.
void ParallelForChunks(
    ParallelIndex begin, ParallelIndex end, ParallelIndex grain,
    const std::function<void(ParallelIndex, ParallelIndex, ParallelIndex)>&
        body);

/// Same, over a layout the caller already computed with ComputeChunks —
/// for call sites that size per-chunk state (e.g. one Rng stream per
/// chunk) and must index it with the exact layout the loop runs.
void ParallelForChunks(
    ParallelIndex begin, ParallelIndex end, const ChunkLayout& layout,
    const std::function<void(ParallelIndex, ParallelIndex, ParallelIndex)>&
        body);

/// Runs body(range_begin, range_end) over disjoint chunks of [begin, end).
void ParallelFor(ParallelIndex begin, ParallelIndex end,
                 const std::function<void(ParallelIndex, ParallelIndex)>& body,
                 ParallelIndex grain = kDefaultGrain);

/// Deterministic reduction: chunk_fn(chunk_begin, chunk_end) -> partial,
/// combined in chunk-index order as acc = combine(move(acc), partial).
/// Bitwise-reproducible for any thread count (fixed chunk -> slot mapping).
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(ParallelIndex begin, ParallelIndex end, T init,
                 const ChunkFn& chunk_fn, const CombineFn& combine,
                 ParallelIndex grain = kDefaultGrain) {
  const ChunkLayout layout = ComputeChunks(end - begin, grain);
  if (layout.num_chunks == 0) return init;
  std::vector<T> partials(static_cast<std::size_t>(layout.num_chunks));
  ParallelForChunks(begin, end, layout,
                    [&](ParallelIndex chunk, ParallelIndex b, ParallelIndex e) {
                      partials[static_cast<std::size_t>(chunk)] =
                          chunk_fn(b, e);
                    });
  T acc = std::move(init);
  for (auto& partial : partials) acc = combine(std::move(acc), partial);
  return acc;
}

}  // namespace blinkml

#endif  // BLINKML_RUNTIME_PARALLEL_H_
