// Lightweight runtime configuration: the knobs threaded through
// BlinkConfig and the RAII scope that installs them. Kept free of the
// threading headers so config-level headers (core/contract.h) stay thin;
// the parallel constructs themselves live in runtime/parallel.h.

#ifndef BLINKML_RUNTIME_RUNTIME_OPTIONS_H_
#define BLINKML_RUNTIME_RUNTIME_OPTIONS_H_

namespace blinkml {

class ThreadPool;

/// Which implementation the linear-algebra hot paths run (linalg/kernels.h).
///
/// kBlocked (the default) selects the register-tiled / cache-blocked
/// kernels: fixed block schedules independent of the thread count, so
/// results are still bitwise identical at 1/2/N threads, but the
/// accumulation order differs from the naive loops by design (multiple
/// accumulator chains), so values may differ from kNaive by rounding
/// (within 1e-12 relative — tests/kernels_test.cc). kNaive keeps the
/// original scalar loops as the opt-out oracle, the same escape hatch
/// BlinkConfig::reuse_feature_gram provides for the Gram rescale algebra.
enum class KernelLevel {
  kNaive = 0,    // reference scalar loops (the oracle)
  kBlocked = 1,  // tiled/unrolled kernels (default)
};

/// Knobs for the parallel runtime, threaded through BlinkConfig and applied
/// with a RuntimeScope. The defaults (ambient when no scope is active) use
/// the global pool at full parallelism.
struct RuntimeOptions {
  /// Lanes a parallel region may use; 0 = the pool's full parallelism.
  /// Values above the pool's capacity are clamped (results are unaffected
  /// either way — see the determinism contract in runtime/parallel.h).
  int num_threads = 0;

  /// false runs every chunk inline on the calling thread. The chunk layout
  /// is unchanged, so disabling the runtime does not change results; it
  /// only drops the worker handoff.
  bool enabled = true;

  /// Pool to run on; nullptr = ThreadPool::Global(). Tests inject local
  /// pools here to exercise specific thread counts deterministically.
  ThreadPool* pool = nullptr;

  /// Kernel implementation for the linalg hot paths (see KernelLevel).
  KernelLevel kernel_level = KernelLevel::kBlocked;
};

/// The innermost active scope's kernel_level (the ambient default — the
/// blocked kernels — when no scope is installed). The dispatch point the
/// linalg/model hot paths consult.
KernelLevel CurrentKernelLevel();

/// RAII ambient-options override (thread-local): parallel constructs
/// consult the innermost active scope. Coordinator::Train installs the
/// BlinkConfig's RuntimeOptions for the duration of a run. The options are
/// stored by value, so binding a temporary is safe.
class RuntimeScope {
 public:
  explicit RuntimeScope(const RuntimeOptions& options);
  ~RuntimeScope();

  RuntimeScope(const RuntimeScope&) = delete;
  RuntimeScope& operator=(const RuntimeScope&) = delete;

  /// The innermost active scope's options (defaults when none).
  static const RuntimeOptions& Current();

 private:
  RuntimeOptions options_;
  const RuntimeOptions* previous_;
};

}  // namespace blinkml

#endif  // BLINKML_RUNTIME_RUNTIME_OPTIONS_H_
