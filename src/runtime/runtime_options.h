// Lightweight runtime configuration: the knobs threaded through
// BlinkConfig and the RAII scope that installs them. Kept free of the
// threading headers so config-level headers (core/contract.h) stay thin;
// the parallel constructs themselves live in runtime/parallel.h.

#ifndef BLINKML_RUNTIME_RUNTIME_OPTIONS_H_
#define BLINKML_RUNTIME_RUNTIME_OPTIONS_H_

namespace blinkml {

class ThreadPool;

/// Which implementation the linear-algebra hot paths run (linalg/kernels.h).
///
/// kBlocked (the default) selects the register-tiled / cache-blocked
/// kernels: fixed block schedules independent of the thread count, so
/// results are still bitwise identical at 1/2/N threads, but the
/// accumulation order differs from the naive loops by design (multiple
/// accumulator chains), so values may differ from kNaive by rounding
/// (within 1e-12 relative — tests/kernels_test.cc). kNaive keeps the
/// original scalar loops as the opt-out oracle, the same escape hatch
/// BlinkConfig::reuse_feature_gram provides for the Gram rescale algebra.
enum class KernelLevel {
  kNaive = 0,    // reference scalar loops (the oracle)
  kBlocked = 1,  // tiled/unrolled kernels (default)
};

/// Which instruction set the blocked kernels' inner loops run with.
///
/// Orthogonal to KernelLevel: the ISA only applies at kBlocked (kNaive
/// always runs the plain scalar oracle loops). The vector variants keep
/// the blocked kernels' exact accumulation association — the 4 unrolled
/// scalar chains become the 4 lanes of one ymm register (or one lane per
/// batched column), merged in the same (s0+s1)+(s2+s3) order, and FMA is
/// deliberately not used — so kAvx2 output is bitwise identical to
/// kScalar blocked output, not merely within tolerance.
enum class KernelIsa {
  kAuto = 0,    // resolve from BLINKML_KERNEL_ISA, else CPU detection
  kScalar = 1,  // portable unrolled scalar loops
  kAvx2 = 2,    // AVX2 256-bit variants (requires CPU support)
};

/// Knobs for the parallel runtime, threaded through BlinkConfig and applied
/// with a RuntimeScope. The defaults (ambient when no scope is active) use
/// the global pool at full parallelism.
struct RuntimeOptions {
  /// Lanes a parallel region may use; 0 = the pool's full parallelism.
  /// Values above the pool's capacity are clamped (results are unaffected
  /// either way — see the determinism contract in runtime/parallel.h).
  int num_threads = 0;

  /// false runs every chunk inline on the calling thread. The chunk layout
  /// is unchanged, so disabling the runtime does not change results; it
  /// only drops the worker handoff.
  bool enabled = true;

  /// Pool to run on; nullptr = ThreadPool::Global(). Tests inject local
  /// pools here to exercise specific thread counts deterministically.
  ThreadPool* pool = nullptr;

  /// Kernel implementation for the linalg hot paths (see KernelLevel).
  KernelLevel kernel_level = KernelLevel::kBlocked;

  /// Instruction set for the blocked kernels' inner loops (see KernelIsa).
  /// kAuto resolves once per process: BLINKML_KERNEL_ISA=scalar|avx2 if
  /// set, else runtime CPU detection, clamped to scalar where AVX2 is
  /// unavailable. Ignored at kNaive.
  KernelIsa kernel_isa = KernelIsa::kAuto;
};

/// The innermost active scope's kernel_level (the ambient default — the
/// blocked kernels — when no scope is installed). The dispatch point the
/// linalg/model hot paths consult.
KernelLevel CurrentKernelLevel();

/// The resolved instruction set for the innermost active scope: the
/// scope's kernel_isa if it is not kAuto, else the process-wide resolution
/// of BLINKML_KERNEL_ISA / CPU detection. Never returns kAuto, and never
/// returns kAvx2 on a CPU without AVX2 support.
KernelIsa CurrentKernelIsa();

/// RAII ambient-options override (thread-local): parallel constructs
/// consult the innermost active scope. Coordinator::Train installs the
/// BlinkConfig's RuntimeOptions for the duration of a run. The options are
/// stored by value, so binding a temporary is safe.
class RuntimeScope {
 public:
  explicit RuntimeScope(const RuntimeOptions& options);
  ~RuntimeScope();

  RuntimeScope(const RuntimeScope&) = delete;
  RuntimeScope& operator=(const RuntimeScope&) = delete;

  /// The innermost active scope's options (defaults when none).
  static const RuntimeOptions& Current();

 private:
  RuntimeOptions options_;
  const RuntimeOptions* previous_;
};

}  // namespace blinkml

#endif  // BLINKML_RUNTIME_RUNTIME_OPTIONS_H_
