// Fixed-size worker pool for the parallel runtime.
//
// A ThreadPool of parallelism P owns P-1 worker threads; the thread that
// opens a parallel region always participates as the P-th lane, so
// ThreadPool(1) spawns no threads and is pure serial execution. The global
// singleton is created lazily on first use and sized from the
// BLINKML_NUM_THREADS environment variable (default: hardware
// concurrency). Workers are started once and live until destruction; tasks
// are closures pushed to a single locked queue (parallel regions submit
// one long-lived task per lane, so queue contention is negligible).

#ifndef BLINKML_RUNTIME_THREAD_POOL_H_
#define BLINKML_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blinkml {

class ThreadPool {
 public:
  /// Pool with the given total parallelism (calling thread included);
  /// spawns parallelism - 1 workers. Clamped below at 1.
  explicit ThreadPool(int parallelism);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker count + the participating caller).
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues a task for any idle worker. Never blocks.
  void Submit(std::function<void()> task);

  /// Lazy global singleton sized by DefaultParallelism().
  static ThreadPool& Global();

  /// BLINKML_NUM_THREADS if set (clamped to [1, 1024]), otherwise
  /// std::thread::hardware_concurrency (at least 1).
  static int DefaultParallelism();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace blinkml

#endif  // BLINKML_RUNTIME_THREAD_POOL_H_
