#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>

#include "core/accuracy_estimator.h"
#include "core/statistics.h"
#include "util/timer.h"

namespace blinkml {

namespace {

using Index = Dataset::Index;

// Shared holdout/pool split identical to the Coordinator's, so baseline
// numbers are comparable run-to-run.
struct SplitData {
  Dataset holdout;
  Dataset pool;
};

SplitData SplitHoldout(const Dataset& data, const BlinkConfig& config,
                       Rng* rng) {
  Index holdout_size =
      std::min<Index>(config.holdout_size, data.num_rows() / 5);
  holdout_size = std::max<Index>(holdout_size, 1);
  std::vector<Index> perm = RandomPermutation(data.num_rows(), rng);
  std::vector<Index> holdout_rows(perm.begin(), perm.begin() + holdout_size);
  std::vector<Index> pool_rows(perm.begin() + holdout_size, perm.end());
  return {data.TakeRows(holdout_rows), data.TakeRows(pool_rows)};
}

Result<BaselineResult> TrainOnFraction(const ModelSpec& spec,
                                       const Dataset& data, double fraction,
                                       const BlinkConfig& config) {
  if (!(fraction > 0.0 && fraction <= 1.0)) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  WallTimer timer;
  Rng rng(config.seed);
  Rng split_rng = rng.Split();
  SplitData split = SplitHoldout(data, config, &split_rng);
  const Index n = std::max<Index>(
      1, static_cast<Index>(std::llround(
             fraction * static_cast<double>(split.pool.num_rows()))));
  Rng sample_rng = rng.Split();
  const Dataset sample = split.pool.SampleRows(n, &sample_rng);
  const ModelTrainer trainer(config.trainer);
  BaselineResult out;
  BLINKML_ASSIGN_OR_RETURN(out.model, trainer.Train(spec, sample));
  out.sample_size = n;
  out.full_size = split.pool.num_rows();
  out.holdout = std::move(split.holdout);
  out.total_seconds = timer.Seconds();
  return out;
}

}  // namespace

FixedRatioBaseline::FixedRatioBaseline(double fraction, BlinkConfig config)
    : fraction_(fraction), config_(std::move(config)) {}

Result<BaselineResult> FixedRatioBaseline::Train(
    const ModelSpec& spec, const Dataset& data,
    const ApproximationContract& contract) const {
  (void)contract;  // FixedRatio ignores the contract by design
  return TrainOnFraction(spec, data, fraction_, config_);
}

RelativeRatioBaseline::RelativeRatioBaseline(double scale, BlinkConfig config)
    : scale_(scale), config_(std::move(config)) {}

Result<BaselineResult> RelativeRatioBaseline::Train(
    const ModelSpec& spec, const Dataset& data,
    const ApproximationContract& contract) const {
  BLINKML_RETURN_NOT_OK(ValidateContract(contract));
  const double fraction =
      std::clamp((1.0 - contract.epsilon) * scale_, 1e-6, 1.0);
  return TrainOnFraction(spec, data, fraction, config_);
}

IncEstimatorBaseline::IncEstimatorBaseline(BlinkConfig config)
    : config_(std::move(config)) {}

Result<BaselineResult> IncEstimatorBaseline::Train(
    const ModelSpec& spec, const Dataset& data,
    const ApproximationContract& contract) const {
  BLINKML_RETURN_NOT_OK(ValidateContract(contract));
  WallTimer timer;
  Rng rng(config_.seed);
  Rng split_rng = rng.Split();
  SplitData split = SplitHoldout(data, config_, &split_rng);
  const Index full_n = split.pool.num_rows();

  StatsOptions stats_options;
  stats_options.method = config_.stats_method;
  stats_options.stats_sample_size = config_.stats_sample_size;
  stats_options.max_rank = config_.sampler_max_rank;
  AccuracyOptions acc_options;
  acc_options.num_samples = config_.accuracy_samples;
  acc_options.delta = contract.delta;

  const ModelTrainer trainer(config_.trainer);
  BaselineResult out;
  out.full_size = full_n;
  out.models_trained = 0;

  // Sample size at step k is 1000 * k^2 (paper Section 5.4).
  for (Index step = 1;; ++step) {
    const Index n = std::min<Index>(1000 * step * step, full_n);
    Rng sample_rng = rng.Split();
    const Dataset sample =
        (n >= full_n) ? split.pool : split.pool.SampleRows(n, &sample_rng);
    BLINKML_ASSIGN_OR_RETURN(TrainedModel model, trainer.Train(spec, sample));
    ++out.models_trained;
    if (n >= full_n) {
      out.model = std::move(model);
      out.sample_size = n;
      break;
    }
    Rng stats_rng = rng.Split();
    BLINKML_ASSIGN_OR_RETURN(
        ParamSampler sampler,
        ComputeStatistics(spec, model.theta, sample, stats_options,
                          &stats_rng));
    Rng acc_rng = rng.Split();
    BLINKML_ASSIGN_OR_RETURN(
        AccuracyEstimate estimate,
        EstimateAccuracy(spec, model.theta, n, full_n, sampler, split.holdout,
                         acc_options, &acc_rng));
    if (estimate.epsilon <= contract.epsilon) {
      out.model = std::move(model);
      out.sample_size = n;
      break;
    }
  }
  out.holdout = std::move(split.holdout);
  out.total_seconds = timer.Seconds();
  return out;
}

}  // namespace blinkml
