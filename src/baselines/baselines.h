// Sample-size selection baselines from the paper's evaluation (Section 5.4).
//
//  * FixedRatio    — always trains on a fixed fraction of the data (1% in
//    the paper); model- and contract-oblivious.
//  * RelativeRatio — trains on (1 - epsilon) * 10% of the data (e.g. a 9.5%
//    sample for a 95% accuracy request); contract-aware but model-oblivious.
//  * IncEstimator  — trains models on growing samples (1000 * k^2 rows at
//    step k) until the trained model's estimated accuracy meets the
//    contract; adaptive but pays for every intermediate model.
//
// All three share BlinkML's trainer and (for IncEstimator) its accuracy
// estimator, so the comparison isolates the sample-size policy.

#ifndef BLINKML_BASELINES_BASELINES_H_
#define BLINKML_BASELINES_BASELINES_H_

#include "core/contract.h"
#include "core/coordinator.h"
#include "data/dataset.h"
#include "models/model_spec.h"
#include "util/status.h"

namespace blinkml {

/// Result of a baseline run (subset of ApproxResult).
struct BaselineResult {
  TrainedModel model;
  Dataset::Index sample_size = 0;
  Dataset::Index full_size = 0;
  Dataset holdout;
  double total_seconds = 0.0;
  /// Models trained along the way (IncEstimator can train several).
  int models_trained = 1;
};

/// Trains on a fixed fraction of the pool, ignoring the contract.
class FixedRatioBaseline {
 public:
  explicit FixedRatioBaseline(double fraction = 0.01, BlinkConfig config = {});
  Result<BaselineResult> Train(const ModelSpec& spec, const Dataset& data,
                               const ApproximationContract& contract) const;

 private:
  double fraction_;
  BlinkConfig config_;
};

/// Trains on (1 - epsilon) * scale of the pool (paper: scale = 10%).
class RelativeRatioBaseline {
 public:
  explicit RelativeRatioBaseline(double scale = 0.10, BlinkConfig config = {});
  Result<BaselineResult> Train(const ModelSpec& spec, const Dataset& data,
                               const ApproximationContract& contract) const;

 private:
  double scale_;
  BlinkConfig config_;
};

/// Grows the sample (1000 * k^2) until the trained model's estimated
/// accuracy bound meets the contract.
class IncEstimatorBaseline {
 public:
  explicit IncEstimatorBaseline(BlinkConfig config = {});
  Result<BaselineResult> Train(const ModelSpec& spec, const Dataset& data,
                               const ApproximationContract& contract) const;

 private:
  BlinkConfig config_;
};

}  // namespace blinkml

#endif  // BLINKML_BASELINES_BASELINES_H_
