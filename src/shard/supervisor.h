// WorkerSupervisor: owns the lifecycle of the shard router's worker
// processes (each one an example_serve_daemon speaking the framed wire
// protocol on its own Unix socket).
//
// Lifecycle of one worker:
//
//   spawn (fork+exec, --ready-fd handshake)
//     -> kReplaying  (the on_worker_up callback reconciles state — the
//                     router replays journaled registrations)
//     -> kUp         (routable)
//     -> death       (waitpid on the monitor thread, a failed Health
//                     probe, or a forwarding transport error reported
//                     via NoteSuspect)
//     -> kBackoff    (bounded-exponential restart delay)
//     -> spawn again ... until the restart budget is exhausted
//     -> kTripped    (restart-storm circuit breaker: the worker stays
//                     down, the on_worker_tripped callback migrates its
//                     keys to surviving shards)
//
// Liveness is judged three ways, cheapest first: waitpid(WNOHANG) on the
// monitor thread catches exits between probes; periodic Health probes
// (a BlinkClient with a recv timeout — a hung worker fails the probe
// instead of hanging the prober) catch live-but-wedged processes; and
// NoteSuspect lets the router's forwarding path report a transport error
// (EPIPE/ECONNRESET/EOF) the moment it happens, waking the monitor
// instead of waiting out a probe interval.
//
// Spawning from a multithreaded process: argv/envp are fully built
// BEFORE fork; between fork and exec the child calls only
// async-signal-safe functions (dup2/close/prctl/execve/_exit). The child
// gets PR_SET_PDEATHSIG=SIGTERM so an abandoned worker dies with its
// supervisor. Readiness is the daemon's --ready-fd handshake: one byte
// on a pipe after listen() succeeded; EOF without the byte (the daemon
// exits non-zero naming the failing address) fails the start without
// connect-polling.
//
// Failpoint arming for chaos tests and CI: `worker_failpoints` (or, when
// `inherit_env_failpoints` is set, the BLINKML_WORKER_FAILPOINTS
// environment variable) is exported to each worker as its
// BLINKML_FAILPOINTS — e.g. "manager.search=exit:137@nth:2" yields a
// worker that crashes mid-way through its second Search, every run. The
// parent's own BLINKML_FAILPOINTS is always stripped from the child
// environment: worker faults are injected only through this knob.

#ifndef BLINKML_SHARD_SUPERVISOR_H_
#define BLINKML_SHARD_SUPERVISOR_H_

#include <sys/types.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace blinkml {
namespace shard {

struct WorkerOptions {
  /// Worker binary; empty resolves <dir of /proc/self/exe>/ +
  /// "example_serve_daemon" (tests and the router example live in the
  /// same build directory as the daemon).
  std::string worker_binary;
  /// Directory for the per-worker Unix sockets (worker<i>.sock) — keep
  /// it short, sockaddr_un caps paths around 100 bytes.
  std::string socket_dir = "/tmp";
  /// Distinguishes concurrent supervisors sharing a socket_dir (tests).
  std::string socket_prefix = "blinkml_shard";
  int runner_threads = 2;
  /// Ready-handshake deadline per spawn attempt.
  int start_timeout_ms = 10000;
  /// Monitor cadence: waitpid sweep always, Health probe at this period.
  int probe_interval_ms = 200;
  /// SO_RCVTIMEO on the prober's client; a probe slower than this counts
  /// as a failed probe.
  int probe_timeout_ms = 2000;
  /// Restart backoff: initial, doubling per consecutive restart, capped.
  std::uint32_t backoff_initial_ms = 10;
  std::uint32_t backoff_max_ms = 2000;
  /// Circuit breaker: lifetime restart budget per worker. The budget'th
  /// restart still runs; the one after trips the breaker. 0 = any death
  /// trips immediately (how tests exercise the tripped path
  /// deterministically).
  int max_restarts = 16;
  /// SIGTERM -> SIGKILL escalation deadline at Stop()/FinishDrain.
  int kill_timeout_ms = 5000;
  /// BLINKML_FAILPOINTS exported to every worker ("" = none).
  std::string worker_failpoints;
  /// Also honor the BLINKML_WORKER_FAILPOINTS env var when
  /// worker_failpoints is empty (the CI chaos leg's hook). Tests that
  /// must not inherit ambient kill schedules set this false.
  bool inherit_env_failpoints = true;
};

enum class WorkerState {
  kStarting,   // spawned, waiting for the ready byte
  kReplaying,  // ready; on_worker_up (journal replay) running
  kUp,         // routable
  kBackoff,    // dead; restart scheduled
  kTripped,    // circuit breaker open; stays down
  kDraining,   // planned drain in progress (router-driven); not probed
  kStopped,    // drained/stopped for good
};

const char* WorkerStateName(WorkerState state);

struct WorkerStatus {
  std::uint32_t shard_id = 0;
  WorkerState state = WorkerState::kStopped;
  std::string socket_path;
  pid_t pid = -1;
  /// Restarts consumed from the budget.
  int restarts = 0;
  /// Bumps on every successful (re)start; forwarding connections cache
  /// it and redial when it moves.
  std::uint64_t generation = 0;
};

class WorkerSupervisor {
 public:
  /// Ran after a worker's ready handshake, before it is marked kUp; a
  /// non-OK return counts as a failed start (consumes restart budget,
  /// re-enters backoff). The router replays journaled registrations
  /// here. Called WITHOUT the supervisor lock.
  using WorkerUpCallback =
      std::function<Status(std::uint32_t shard_id, const std::string& socket)>;
  /// Ran when a worker trips the breaker (without the lock); the router
  /// migrates the shard's keys to the survivors.
  using WorkerTrippedCallback = std::function<void(std::uint32_t shard_id)>;

  WorkerSupervisor(int num_workers, WorkerOptions options);
  ~WorkerSupervisor();
  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Set before Start().
  void set_on_worker_up(WorkerUpCallback cb) { on_up_ = std::move(cb); }
  void set_on_worker_tripped(WorkerTrippedCallback cb) {
    on_tripped_ = std::move(cb);
  }

  /// Spawns every worker, waits for each handshake + up-callback, then
  /// starts the monitor thread. Fails (and stops what it started) if any
  /// worker cannot complete its FIRST start — a router that never had a
  /// full member set should not serve.
  Status Start();

  /// Idempotent: SIGTERM (then SIGKILL) every live worker, join the
  /// monitor, reap everything.
  void Stop();

  int num_workers() const { return num_workers_; }
  WorkerStatus status(std::uint32_t shard_id) const;
  std::vector<WorkerStatus> AllStatus() const;

  /// Forwarding-path failure report: wakes the monitor to waitpid/probe
  /// this worker now instead of at the next interval.
  void NoteSuspect(std::uint32_t shard_id);

  /// How long a client should wait before retrying a request routed at
  /// this worker (remaining backoff, or the probe interval when it is
  /// mid-restart) — the retry-after hint on kUnavailable responses.
  std::uint32_t RetryAfterHintMs(std::uint32_t shard_id) const;

  /// Planned drain, phase 1: stop lifecycle management (no probes, no
  /// restarts) while the router migrates registrations and drains
  /// in-flight work. The worker keeps serving.
  Status BeginDrain(std::uint32_t shard_id);
  /// Phase 2: SIGTERM the worker (it drains its own queue and exits),
  /// reap it, mark kStopped. Never restarted afterwards.
  Status FinishDrain(std::uint32_t shard_id);

 private:
  struct Worker {
    std::uint32_t shard_id = 0;
    std::string socket_path;
    WorkerState state = WorkerState::kStopped;
    pid_t pid = -1;
    int restarts = 0;
    std::uint64_t generation = 0;
    std::uint32_t next_backoff_ms = 0;
    std::chrono::steady_clock::time_point restart_due{};
    std::chrono::steady_clock::time_point last_probe{};
    bool suspect = false;
  };

  void MonitorLoop();
  /// One monitor pass over all workers (lock held; drops it around
  /// spawn/probe/callbacks).
  void Sweep(std::unique_lock<std::mutex>* lock);

  /// fork+exec + ready handshake. On success fills pid. Lock NOT held.
  Status SpawnWorker(std::uint32_t shard_id, const std::string& socket_path,
                     pid_t* pid);
  /// Health-probe `socket_path` with a fresh short-timeout client.
  bool ProbeWorker(const std::string& socket_path);
  /// Full start cycle for one worker: spawn, handshake, up-callback.
  /// Returns the new pid via the worker entry. Lock held on entry/exit,
  /// released during the slow parts.
  Status StartWorkerLocked(std::unique_lock<std::mutex>* lock, Worker* w);
  /// Death bookkeeping: budget check, backoff arm or breaker trip.
  void OnWorkerDeathLocked(std::unique_lock<std::mutex>* lock, Worker* w);

  /// SIGTERM, escalate to SIGKILL after kill_timeout_ms, reap.
  void TerminateAndReap(pid_t pid);

  const int num_workers_;
  const WorkerOptions options_;
  /// Resolved failpoint spec for workers (worker_failpoints or the env
  /// hook; frozen at construction).
  std::string resolved_failpoints_;

  WorkerUpCallback on_up_;
  WorkerTrippedCallback on_tripped_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Worker> workers_;
  bool started_ = false;
  bool stopping_ = false;
  std::thread monitor_;
};

}  // namespace shard
}  // namespace blinkml

#endif  // BLINKML_SHARD_SUPERVISOR_H_
