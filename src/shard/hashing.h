// Rendezvous (highest-random-weight) placement for the shard router.
//
// Every shard-routed request carries a routing key — (tenant, dataset)
// for dataset verbs, (tenant, "") for tenant-scoped ones — and the owner
// of a key is the member shard with the highest pseudo-random weight
// Hash(key, shard). Properties the router depends on:
//
//  * deterministic and process-independent: the weight is FNV-1a +
//    SplitMix64 over the key bytes and the shard id, never std::hash —
//    a restarted router, a worker, and a test all compute the same
//    owner for the same member set;
//  * minimal disruption: removing one shard from the member set moves
//    ONLY the keys that shard owned (each surviving key's argmax is
//    unchanged); adding a shard steals only the keys it now wins. This
//    is what makes drain/failover migration proportional to the lost
//    shard's share instead of a full reshuffle (tests/shard_test.cc
//    holds both);
//  * placement never affects results: jobs are bitwise deterministic
//    functions of (generator, seed, config), so ownership is purely a
//    load/locality decision and any migration is bitwise invisible.

#ifndef BLINKML_SHARD_HASHING_H_
#define BLINKML_SHARD_HASHING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace blinkml {
namespace shard {

/// Routing key of one request. Dataset verbs (RegisterDataset / Train /
/// Search) use the full pair; tenant-scoped verbs (Predict) leave
/// `dataset` empty. The two never collide: the hash separates the fields
/// with a NUL that cannot appear inside either string's length prefix.
struct ShardKey {
  std::string tenant;
  std::string dataset;
};

inline bool operator==(const ShardKey& a, const ShardKey& b) {
  return a.tenant == b.tenant && a.dataset == b.dataset;
}

/// FNV-1a over tenant, NUL, dataset, finalized with SplitMix64.
std::uint64_t ShardKeyHash(const ShardKey& key);

/// The weight of placing a key (by its hash) on `shard_id`. Higher wins.
std::uint64_t RendezvousWeight(std::uint64_t key_hash, std::uint32_t shard_id);

/// The member of `shards` with the highest weight for `key`; -1 when the
/// member set is empty. Ties (vanishingly rare with 64-bit weights)
/// break toward the lower shard id, keeping the choice total-ordered.
int RendezvousOwner(const ShardKey& key, const std::vector<std::uint32_t>& shards);

}  // namespace shard
}  // namespace blinkml

#endif  // BLINKML_SHARD_HASHING_H_
