#include "shard/journal.h"

namespace blinkml {
namespace shard {
namespace {

std::string JournalKey(const std::string& tenant, const std::string& name) {
  std::string key;
  key.reserve(tenant.size() + 1 + name.size());
  key.append(tenant);
  key.push_back('\0');
  key.append(name);
  return key;
}

bool SameConfig(const net::WireConfig& a, const net::WireConfig& b) {
  return a.seed == b.seed && a.initial_sample_size == b.initial_sample_size &&
         a.holdout_size == b.holdout_size &&
         a.stats_sample_size == b.stats_sample_size &&
         a.accuracy_samples == b.accuracy_samples &&
         a.size_samples == b.size_samples;
}

}  // namespace

bool SameRegistration(const net::RegisterDatasetRequest& a,
                      const net::RegisterDatasetRequest& b) {
  return a.tenant == b.tenant && a.name == b.name &&
         a.generator == b.generator && a.rows == b.rows && a.dim == b.dim &&
         a.data_seed == b.data_seed && a.sparsity == b.sparsity &&
         a.noise == b.noise && a.nnz_per_row == b.nnz_per_row &&
         SameConfig(a.config, b.config);
}

Status RegistrationJournal::Record(const net::RegisterDatasetRequest& request) {
  const std::string key = JournalKey(request.tenant, request.name);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    if (SameRegistration(entries_[it->second], request)) return Status::OK();
    return Status::InvalidArgument(
        "dataset '" + request.name + "' already journaled for tenant '" +
        request.tenant + "' with different parameters");
  }
  index_.emplace(key, entries_.size());
  entries_.push_back(request);
  return Status::OK();
}

std::vector<net::RegisterDatasetRequest> RegistrationJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

bool RegistrationJournal::Contains(const std::string& tenant,
                                   const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(JournalKey(tenant, name)) != 0;
}

std::size_t RegistrationJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace shard
}  // namespace blinkml
