// ShardRouter: a supervised cross-process shard front over the
// networked serving protocol.
//
// The router listens on its own Unix socket speaking the same framed
// wire protocol as BlinkServer — a BlinkClient cannot tell the two
// apart — and partitions the dataset registry across N worker processes
// (example_serve_daemon instances spawned and lifecycle-managed by
// shard/supervisor.h). Routing is rendezvous hashing (shard/hashing.h)
// on the request's (tenant, dataset) key; frames are forwarded RAW
// (header re-written with the same request_id/priority/deadline), so a
// worker's trace spans carry the client's request id across the hop and
// the payload bytes the worker sees are the bytes the client sent.
//
// Verb handling:
//   RegisterDataset  decode -> journal (idempotent; conflicts answer
//                    kInvalidArgument) -> forward to the key's owner
//   Train / Search   forward to Owner(tenant, dataset)
//   Predict          forward to Owner(tenant, "") — stateless, any
//                    shard computes identical bytes; the key just
//                    spreads tenants
//   EvictIdle        broadcast to every up shard, sum evictions
//   Stats            fan out, sum manager + server counters per field
//   Metrics          fan out, concatenate per-shard snapshots under
//                    "# shard <i>" headers, append the router's own
//   Health           answered locally from supervisor state (accepting,
//                    any-shard-degraded as `shedding`, rolled-up
//                    counters) — works whatever the workers are doing
//
// Failure model (the contract tests/shard_test.cc and chaos_test.cc
// hold): every response is either bitwise identical to the same request
// served by a single in-process SessionManager, or a structured
// retryable rejection. A request routed at a dead/restarting shard is
// answered kUnavailable with a retry-after hint sized from the shard's
// restart backoff; ownership is STICKY across a crash (no migration),
// so a client retrying through net/client.h RetryPolicy converges to
// the bitwise-identical result once the worker restarts and the
// registration journal (shard/journal.h) is replayed into it. Keys
// migrate only when a shard leaves the member set for good: planned
// drain (DrainShard: re-register to the new owners FIRST, then flip
// routing, then drain in-flight and stop the worker — no window where a
// routed request can hit an owner missing its registration) and the
// restart-storm circuit breaker (same migration, driven by the
// supervisor's tripped callback). Migration is bitwise invisible:
// results are pure functions of (generator, seed, config), never of
// placement.

#ifndef BLINKML_SHARD_ROUTER_H_
#define BLINKML_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/codec.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "shard/hashing.h"
#include "shard/journal.h"
#include "shard/supervisor.h"
#include "util/status.h"

namespace blinkml {
namespace shard {

struct RouterOptions {
  /// The router's own listening socket.
  std::string unix_path;
  int num_shards = 2;
  WorkerOptions worker;
  int listen_backlog = 64;
  /// Floor for the retry-after hint on kUnavailable responses (the
  /// supervisor's backoff-aware hint can raise it).
  std::uint32_t unavailable_retry_ms = 25;
  /// Control-plane clients (journal replay, drain/trip migration):
  /// connect retry budget and per-call retry policy attempts.
  int control_connect_attempts = 40;
  std::uint32_t control_connect_backoff_ms = 25;
  int control_call_attempts = 5;
};

/// Rolled-up router counters (mirrors of the registry metrics, for
/// tests and benches that want numbers without parsing a snapshot).
struct RouterStatsSnapshot {
  std::uint64_t forwarded = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t replayed_registrations = 0;
  std::uint64_t migrated_registrations = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t workers_tripped = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options);
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Spawns the workers (fails if the full member set cannot start),
  /// then binds the router socket and begins serving.
  Status Start();

  /// Idempotent: stops accepting, unblocks and joins every connection
  /// handler, stops the workers.
  void Stop();

  /// Planned removal of one shard: migrate its journaled registrations
  /// to their new owners, flip routing, wait out in-flight forwards,
  /// then SIGTERM the worker (which drains its own queue). The shard
  /// never comes back; its capacity is gone, its keys are not.
  Status DrainShard(std::uint32_t shard_id);

  /// The current owner of `key` (-1 when no members remain): test hook
  /// and operator introspection.
  int OwnerShard(const ShardKey& key) const;

  /// Shards currently eligible for ownership.
  std::vector<std::uint32_t> Members() const;

  WorkerSupervisor& supervisor() { return *supervisor_; }
  const RegistrationJournal& journal() const { return journal_; }
  /// Router-scoped metrics (shard_* series; the Metrics verb appends
  /// this snapshot after the per-shard ones).
  obs::Registry& metrics() { return metrics_; }
  RouterStatsSnapshot stats() const;

 private:
  /// One client connection's forwarding state: a cached socket per
  /// shard, keyed by worker generation so a restart redials.
  struct ShardConn {
    int fd = -1;
    std::uint64_t generation = 0;
  };
  struct ClientConn {
    int fd = -1;
    std::unordered_map<std::uint32_t, ShardConn> shard_conns;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Dispatches one parsed frame; returns false when the connection
  /// must close (framing desync).
  bool HandleFrame(ClientConn* conn, const net::Frame& frame);

  /// Routes + forwards a data-plane frame, writing the worker's
  /// response (or a structured rejection) back to the client.
  void RouteAndForward(ClientConn* conn, const net::Frame& frame,
                       const ShardKey& key);
  /// Raw forward to one shard: preserves request_id/priority/deadline,
  /// returns the response frame. IOError = transport-level failure
  /// (the caller answers kUnavailable and flags the shard suspect).
  Status ForwardToShard(ClientConn* conn, std::uint32_t shard_id,
                        const net::Frame& frame, net::Frame* response);

  void HandleRegisterDataset(ClientConn* conn, const net::Frame& frame);
  void HandleHealth(ClientConn* conn, const net::Frame& frame);
  void HandleStats(ClientConn* conn, const net::Frame& frame);
  void HandleMetrics(ClientConn* conn, const net::Frame& frame);
  void HandleEvictIdle(ClientConn* conn, const net::Frame& frame);

  void SendEnvelopeOnly(ClientConn* conn, std::uint64_t request_id,
                        net::Verb verb, net::WireStatus status,
                        const std::string& message,
                        std::uint32_t retry_after_ms = 0);
  void SendBody(ClientConn* conn, std::uint64_t request_id, net::Verb verb,
                const net::WireWriter& body);
  void ReplyUnavailable(ClientConn* conn, const net::Frame& frame,
                        std::uint32_t shard_id, const std::string& why);

  /// Supervisor callbacks.
  Status ReplayShard(std::uint32_t shard_id, const std::string& socket_path);
  void OnShardTripped(std::uint32_t shard_id);

  /// Re-registers every journal entry owned by `leaving` (under the
  /// CURRENT member set) to its owner in the member set WITHOUT
  /// `leaving`, via control clients. Routing is not touched.
  Status MigrateShardKeys(std::uint32_t leaving);
  /// Removes `shard_id` from the member set.
  void RemoveMember(std::uint32_t shard_id);

  /// Control-plane client to one worker (connect-retry + retry policy).
  Result<net::BlinkClient> ControlClient(const std::string& socket_path);

  const RouterOptions options_;
  std::unique_ptr<WorkerSupervisor> supervisor_;
  RegistrationJournal journal_;
  obs::Registry metrics_;

  mutable std::mutex members_mu_;
  std::vector<std::uint32_t> members_;

  /// In-flight forwards per shard (drain waits for zero).
  std::vector<std::unique_ptr<std::atomic<int>>> inflight_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;
  bool started_ = false;
  std::thread accept_thread_;
  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
  /// Open client fds (shutdown() at Stop unblocks their handlers).
  std::vector<int> client_fds_;

  // Registry-resolved hot-path counters, one per shard.
  std::vector<obs::Counter*> c_forwarded_;
  std::vector<obs::Counter*> c_unavailable_;
  obs::Counter* c_replayed_;
  obs::Counter* c_migrated_;
  obs::Counter* c_restarts_;
  obs::Counter* c_tripped_;
  obs::Gauge* g_connections_;
  obs::Gauge* g_up_workers_;
};

}  // namespace shard
}  // namespace blinkml

#endif  // BLINKML_SHARD_ROUTER_H_
