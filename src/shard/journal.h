// RegistrationJournal: the shard router's durable (in-process) record of
// every dataset registration it has admitted, keyed (tenant, name).
//
// Why it exists: workers are disposable. A crashed worker restarts with
// an empty SessionManager, and every dataset it owned must be re-created
// before the shard re-enters routing — otherwise a re-sent Train answers
// kNotFound, which is NOT retryable, and a client that survived the
// crash with kUnavailable retries would now fail spuriously. The journal
// is the replay source: RegisterDataset requests are idempotent and
// self-contained (the wire ships generator parameters, not data — the
// worker regenerates bitwise-identical bytes, net/codec.h), so replaying
// the journal reconstructs a worker's exact serving state.
//
// One GLOBAL journal, not one per shard. Ownership is a function of the
// key and the CURRENT member set (shard/hashing.h), and keys move:
// drain migrates them away, a breaker trip reassigns them, a revived
// shard wins some back. A per-shard journal would have to chase those
// moves; the global journal just answers "all registrations", and the
// router filters by Owner(key, members) at each replay/migration site.
//
// Idempotency contract (matches the server's re-registration rule): an
// identical re-record is kOk and a no-op; a conflicting re-record (same
// key, different parameters) is InvalidArgument and leaves the original
// in place. Thread-safe; snapshot order is insertion order, so replays
// are deterministic.

#ifndef BLINKML_SHARD_JOURNAL_H_
#define BLINKML_SHARD_JOURNAL_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "util/status.h"

namespace blinkml {
namespace shard {

/// Field-wise equality of two wire registrations (every parameter that
/// affects the materialized dataset or its serving config).
bool SameRegistration(const net::RegisterDatasetRequest& a,
                      const net::RegisterDatasetRequest& b);

class RegistrationJournal {
 public:
  RegistrationJournal() = default;
  RegistrationJournal(const RegistrationJournal&) = delete;
  RegistrationJournal& operator=(const RegistrationJournal&) = delete;

  /// Records `request` under (tenant, name). OK and a no-op when an
  /// identical entry exists; InvalidArgument on a conflicting one.
  Status Record(const net::RegisterDatasetRequest& request);

  /// All entries in insertion order (copy; replay iterates without
  /// holding the journal lock).
  std::vector<net::RegisterDatasetRequest> Snapshot() const;

  bool Contains(const std::string& tenant, const std::string& name) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<net::RegisterDatasetRequest> entries_;
  /// "tenant\0name" -> index into entries_.
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace shard
}  // namespace blinkml

#endif  // BLINKML_SHARD_JOURNAL_H_
