#include "shard/hashing.h"

namespace blinkml {
namespace shard {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// SplitMix64 finalizer: full-avalanche bit mix (the same constants the
/// random/ module uses; no shared state, just arithmetic).
std::uint64_t Mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t ShardKeyHash(const ShardKey& key) {
  std::uint64_t h = FnvMix(kFnvOffset, key.tenant);
  h ^= 0u;  // NUL separator: ("ab","c") and ("a","bc") hash apart
  h *= kFnvPrime;
  h = FnvMix(h, key.dataset);
  return Mix64(h);
}

std::uint64_t RendezvousWeight(std::uint64_t key_hash, std::uint32_t shard_id) {
  return Mix64(key_hash ^ Mix64(0x5348415244ull + shard_id));  // "SHARD"
}

int RendezvousOwner(const ShardKey& key,
                    const std::vector<std::uint32_t>& shards) {
  if (shards.empty()) return -1;
  const std::uint64_t key_hash = ShardKeyHash(key);
  int best = -1;
  std::uint64_t best_weight = 0;
  std::uint32_t best_id = 0;
  for (const std::uint32_t id : shards) {
    const std::uint64_t w = RendezvousWeight(key_hash, id);
    if (best < 0 || w > best_weight ||
        (w == best_weight && id < best_id)) {
      best = static_cast<int>(id);
      best_weight = w;
      best_id = id;
    }
  }
  return best;
}

}  // namespace shard
}  // namespace blinkml
